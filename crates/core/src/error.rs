//! The analyzer error type.

use std::fmt;

use hb_sta::StaError;

/// Errors raised while preparing or running a timing analysis.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AnalyzeError {
    /// The underlying timing-graph construction failed.
    Sta(StaError),
    /// The clock set is empty.
    NoClocks,
    /// A spec entry names a port that does not exist on the module.
    UnknownPort {
        /// The port name.
        port: String,
    },
    /// A spec entry names a clock that does not exist in the clock set.
    UnknownClock {
        /// The clock name.
        clock: String,
    },
    /// A spec references a clock edge occurrence beyond the pulse count.
    EdgeOccurrenceOutOfRange {
        /// The clock name.
        clock: String,
        /// The requested occurrence.
        occurrence: u32,
    },
    /// A synchronising element's control input is not reachable from any
    /// clock port.
    UnclockedControl {
        /// The instance name.
        inst: String,
    },
    /// A control input is reachable from more than one clock, violating
    /// the paper's assumption that every control signal is a function of
    /// exactly one clock signal.
    MultiClockControl {
        /// The instance name.
        inst: String,
    },
    /// A control path is not a monotonic function of its clock.
    NonMonotonicControl {
        /// The instance name.
        inst: String,
    },
    /// A combinational path feeds a synchronising element's control input
    /// from another synchronising element's output (an *enable path*).
    /// Conforming designs per Section 3 do not contain these.
    EnablePath {
        /// The instance whose control is driven by latch outputs.
        inst: String,
    },
    /// The parametric (symbolic) what-if analysis could not be built.
    Parametric {
        /// Why the symbolic build failed.
        reason: String,
    },
}

impl fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalyzeError::Sta(e) => write!(f, "{e}"),
            AnalyzeError::NoClocks => write!(f, "the clock set is empty"),
            AnalyzeError::UnknownPort { port } => {
                write!(f, "spec references unknown port {port:?}")
            }
            AnalyzeError::UnknownClock { clock } => {
                write!(f, "spec references unknown clock {clock:?}")
            }
            AnalyzeError::EdgeOccurrenceOutOfRange { clock, occurrence } => write!(
                f,
                "clock {clock:?} has no edge occurrence {occurrence} within the overall period"
            ),
            AnalyzeError::UnclockedControl { inst } => write!(
                f,
                "control input of {inst:?} is not reachable from any clock port"
            ),
            AnalyzeError::MultiClockControl { inst } => write!(
                f,
                "control input of {inst:?} is a function of more than one clock"
            ),
            AnalyzeError::NonMonotonicControl { inst } => write!(
                f,
                "control input of {inst:?} is not a monotonic function of its clock"
            ),
            AnalyzeError::EnablePath { inst } => write!(
                f,
                "control input of {inst:?} is driven from a synchronising element output \
                 (enable paths are outside the supported design class)"
            ),
            AnalyzeError::Parametric { reason } => {
                write!(f, "parametric analysis failed: {reason}")
            }
        }
    }
}

impl std::error::Error for AnalyzeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AnalyzeError::Sta(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StaError> for AnalyzeError {
    fn from(e: StaError) -> AnalyzeError {
        AnalyzeError::Sta(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = AnalyzeError::UnclockedControl { inst: "ff0".into() };
        assert!(e.to_string().contains("ff0"));
        assert!(e.source().is_none());
        let e = AnalyzeError::Sta(StaError::UnboundLeaf { inst: "u".into() });
        assert!(e.source().is_some());
        assert_eq!(AnalyzeError::NoClocks.to_string(), "the clock set is empty");
    }
}
