//! Reproduces **Table 1** of the paper: timing-analysis run times for
//! the four evaluation designs.
//!
//! Paper (VAX 8800, ULTRIX, cpu seconds):
//!
//! ```text
//! Example  Cells  Pre-processing  Analysis
//! DES      3681   (…)             14.87 total
//! ALU       899   (…)
//! SM1F     (12-bit FSM, flat)
//! SM1H     (same machine, hierarchical)
//! ```
//!
//! We reproduce the *shape*: analysis cost grows roughly linearly in
//! cells, pre-processing is a small fraction, and the hierarchical SM1H
//! analysis is cheaper than the flattened SM1F because the combinational
//! logic collapses into pre-combined module delays.

use hb_bench::{format_table1, table1_row};
use hb_cells::sc89;
use hb_workloads::{alu, des_like, fsm12};

fn main() {
    let lib = sc89();
    let workloads = [
        des_like(&lib, 1989),
        alu(&lib, 7),
        fsm12(&lib, true),
        fsm12(&lib, false),
    ];
    let rows: Vec<_> = workloads.iter().map(|w| table1_row(&lib, w)).collect();
    println!("Table 1 reproduction — run times (host seconds, not VAX 8800)");
    println!("{}", format_table1(&rows));
    println!("paper: DES analysed in 14.87 VAX-8800 cpu seconds; the shape to check");
    println!("is DES > ALU > SM1F >= SM1H, with pre-processing a small fraction.");
}
