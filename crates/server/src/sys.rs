//! Thin, libc-crate-free bindings to the two syscalls the reactor
//! needs beyond what `std::net` exposes: `poll(2)` for readiness over
//! many descriptors, and `getrlimit(2)`/`setrlimit(2)` to widen the
//! file-descriptor budget for c10k runs.
//!
//! The workspace is dependency-free by policy, and std already links
//! the platform C library, so declaring the symbols ourselves resolves
//! them at no cost — the mio spirit without the crate. Structure
//! layouts and constants below are the Unix ABI values shared by Linux
//! and the BSDs (`pollfd` is specified by POSIX; `RLIMIT_NOFILE` is 7
//! on Linux, where this daemon runs).

use std::io;
use std::os::raw::{c_int, c_ulong};
use std::time::Duration;

/// One descriptor's readiness interest and result — `struct pollfd`.
#[repr(C)]
#[derive(Clone, Copy, Debug)]
pub struct PollFd {
    /// The descriptor to watch.
    pub fd: i32,
    /// Requested events (`POLLIN` / `POLLOUT`).
    pub events: i16,
    /// Returned events, filled by the kernel.
    pub revents: i16,
}

impl PollFd {
    /// Interest in `events` on `fd`, with no results yet.
    pub fn new(fd: i32, events: i16) -> PollFd {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }
}

/// Data may be read without blocking.
pub const POLLIN: i16 = 0x001;
/// Data may be written without blocking.
pub const POLLOUT: i16 = 0x004;
/// An error condition is pending (always polled, never requested).
pub const POLLERR: i16 = 0x008;
/// The peer hung up; buffered data may still be readable.
pub const POLLHUP: i16 = 0x010;
/// The descriptor is not open (always polled, never requested).
pub const POLLNVAL: i16 = 0x020;

/// `struct rlimit` — soft and hard resource limits.
#[repr(C)]
#[derive(Clone, Copy)]
struct RLimit {
    cur: u64,
    max: u64,
}

/// The open-file-descriptor resource on Linux.
const RLIMIT_NOFILE: c_int = 7;

mod c {
    use super::{PollFd, RLimit};
    use std::os::raw::{c_int, c_ulong};

    extern "C" {
        pub fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
        pub fn getrlimit(resource: c_int, rlim: *mut RLimit) -> c_int;
        pub fn setrlimit(resource: c_int, rlim: *const RLimit) -> c_int;
    }
}

/// Waits until a watched descriptor is ready or `timeout` elapses.
/// Returns the number of descriptors with nonzero `revents` (zero on
/// timeout). An empty set is a plain bounded sleep.
///
/// # Errors
///
/// The raw OS error; callers retry [`io::ErrorKind::Interrupted`].
pub fn poll(fds: &mut [PollFd], timeout: Duration) -> io::Result<usize> {
    let ms = c_int::try_from(timeout.as_millis()).unwrap_or(c_int::MAX);
    let rc = unsafe { c::poll(fds.as_mut_ptr(), fds.len() as c_ulong, ms) };
    if rc < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(rc as usize)
    }
}

/// Raises the soft open-files limit to at least `want` descriptors
/// (raising the hard limit too when the process is privileged enough),
/// and returns the soft limit actually in force afterwards — possibly
/// below `want` on an unprivileged process, which callers treat as a
/// smaller connection budget rather than an error.
///
/// # Errors
///
/// Only if the limits cannot be read at all.
pub fn raise_nofile_limit(want: u64) -> io::Result<u64> {
    let mut lim = RLimit { cur: 0, max: 0 };
    if unsafe { c::getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
        return Err(io::Error::last_os_error());
    }
    if lim.cur >= want {
        return Ok(lim.cur);
    }
    let raised = RLimit {
        cur: want,
        max: lim.max.max(want),
    };
    if unsafe { c::setrlimit(RLIMIT_NOFILE, &raised) } == 0 {
        return Ok(want);
    }
    // Could not raise the hard limit; settle for all of the existing
    // one.
    if lim.cur < lim.max {
        let capped = RLimit {
            cur: lim.max,
            max: lim.max,
        };
        if unsafe { c::setrlimit(RLIMIT_NOFILE, &capped) } == 0 {
            return Ok(lim.max);
        }
    }
    Ok(lim.cur)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn empty_poll_is_a_bounded_sleep() {
        let started = std::time::Instant::now();
        let n = poll(&mut [], Duration::from_millis(20)).unwrap();
        assert_eq!(n, 0);
        assert!(started.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn poll_reports_readability() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut fds = [PollFd::new(listener.as_raw_fd(), POLLIN)];
        // Nothing pending: a short poll times out.
        assert_eq!(poll(&mut fds, Duration::from_millis(10)).unwrap(), 0);
        assert_eq!(fds[0].revents, 0);
        // A connecting client makes the listener readable.
        let mut client = TcpStream::connect(addr).unwrap();
        assert_eq!(poll(&mut fds, Duration::from_secs(5)).unwrap(), 1);
        assert_ne!(fds[0].revents & POLLIN, 0);
        // And bytes in flight make the accepted socket readable.
        let (server, _) = listener.accept().unwrap();
        client.write_all(b"x").unwrap();
        let mut fds = [PollFd::new(server.as_raw_fd(), POLLIN)];
        assert_eq!(poll(&mut fds, Duration::from_secs(5)).unwrap(), 1);
        assert_ne!(fds[0].revents & POLLIN, 0);
    }

    #[test]
    fn nofile_limit_is_queryable_and_monotone() {
        // Asking for what we already have is a no-op...
        let current = raise_nofile_limit(1).unwrap();
        assert!(current >= 1);
        // ...and asking for more never lowers the budget.
        let after = raise_nofile_limit(current).unwrap();
        assert!(after >= current);
    }
}
