//! Net-level timing graphs.

use std::collections::HashMap;
use std::fmt;

use hb_cells::{Binding, CellId, Function, Library};
use hb_netlist::{Design, InstId, InstRef, ModuleId, NetId, PinSlot};
use hb_units::{MinMax, RiseFall, Sense, Time};

use crate::error::StaError;

/// One weighted timing arc between two nets, contributed by an instance.
#[derive(Clone, Copy, Debug)]
pub struct GraphArc {
    /// The source net (an input pin of the instance connects here).
    pub from: NetId,
    /// The destination net (driven by the instance).
    pub to: NetId,
    /// Arc unateness.
    pub sense: Sense,
    /// Min/max delay, rise/fall split, already evaluated at the
    /// estimated load of the destination net.
    pub delay: MinMax<RiseFall<Time>>,
    /// The contributing instance.
    pub inst: InstId,
}

/// A synchronising element found in the module, with its pin bindings.
///
/// Sync elements contribute no combinational arcs; the system-level
/// analyzer assigns assertion/closure offsets to these records.
#[derive(Clone, Copy, Debug)]
pub struct SyncInst {
    /// The instance.
    pub inst: InstId,
    /// The library cell (query [`hb_cells::Cell::sync_spec`] for timing).
    pub cell: CellId,
    /// The net feeding the data input.
    pub data_net: NetId,
    /// The net feeding the control input.
    pub control_net: NetId,
    /// The net driven by the output, if connected.
    pub output_net: Option<NetId>,
    /// Estimated capacitive load on the output net, in femtofarads.
    pub output_load_ff: i64,
    /// The net driven by the complementary output (output-bar), if the
    /// cell has one and it is connected.
    pub output_bar_net: Option<NetId>,
    /// Estimated capacitive load on the output-bar net, in femtofarads.
    pub output_bar_load_ff: i64,
}

/// Handle to a [`Cluster`] of a [`TimingGraph`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClusterId(pub(crate) u32);

impl ClusterId {
    /// Returns the raw index.
    pub fn as_raw(self) -> u32 {
        self.0
    }

    /// Reconstructs a handle from a raw index (as returned by
    /// [`ClusterId::as_raw`]).
    pub fn from_raw(raw: u32) -> ClusterId {
        ClusterId(raw)
    }
}

impl fmt::Display for ClusterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cluster{}", self.0)
    }
}

/// A maximal connected network of combinational logic — the paper's
/// *cluster*, the unit at which analysis passes are planned.
#[derive(Clone, Debug, Default)]
pub struct Cluster {
    /// The member nets.
    pub nets: Vec<NetId>,
}

/// A net-level timing graph for one module.
///
/// Nodes are the module's nets (indexed by [`NetId`]); arcs are cell (or
/// abstracted child-module) timing arcs with load-evaluated delays.
/// Synchronising elements appear as [`SyncInst`] records instead of arcs,
/// so the combinational part is a DAG by construction (enforced at build
/// time).
#[derive(Clone, Debug)]
pub struct TimingGraph {
    node_count: usize,
    arcs: Vec<GraphArc>,
    // Fanin/fanout adjacency in CSR form: `*_heads` holds
    // `node_count + 1` prefix sums into `*_idx`, which lists arc
    // indices grouped by endpoint. Two flat arrays per direction
    // instead of a Vec-of-Vecs keeps million-net graphs cache-dense
    // and allocation-free to traverse.
    fanin_heads: Vec<u32>,
    fanin_idx: Vec<u32>,
    fanout_heads: Vec<u32>,
    fanout_idx: Vec<u32>,
    topo: Vec<NetId>,
    syncs: Vec<SyncInst>,
    net_loads: Vec<i64>,
    cluster_of: Vec<ClusterId>,
    clusters: Vec<Cluster>,
}

/// Builds one CSR direction: arc indices grouped by `key(arc)`, in
/// arc order within each group (matching the order a push-based
/// adjacency list would produce).
fn csr_adjacency(
    node_count: usize,
    arcs: &[GraphArc],
    key: impl Fn(&GraphArc) -> NetId,
) -> (Vec<u32>, Vec<u32>) {
    let mut heads = vec![0u32; node_count + 1];
    for arc in arcs {
        heads[key(arc).as_raw() as usize + 1] += 1;
    }
    for i in 0..node_count {
        heads[i + 1] += heads[i];
    }
    let mut cursor = heads.clone();
    let mut idx = vec![0u32; arcs.len()];
    for (i, arc) in arcs.iter().enumerate() {
        let k = key(arc).as_raw() as usize;
        idx[cursor[k] as usize] = i as u32;
        cursor[k] += 1;
    }
    (heads, idx)
}

impl TimingGraph {
    /// Builds the timing graph of `module`.
    ///
    /// Hierarchical instances are abstracted into pin-to-pin arcs by
    /// recursive block analysis of the child module (which must be purely
    /// combinational) — the SM1H analysis mode of the paper.
    ///
    /// # Errors
    ///
    /// Fails on unbound leaf instances, dangling sync pins, combinational
    /// cycles, and sync elements inside abstracted child modules.
    pub fn build(
        design: &Design,
        module: ModuleId,
        binding: &Binding,
        library: &Library,
    ) -> Result<TimingGraph, StaError> {
        let mut cache: HashMap<ModuleId, Vec<AbsArc>> = HashMap::new();
        Self::build_with_cache(design, module, binding, library, &mut cache, true)
    }

    fn build_with_cache(
        design: &Design,
        module: ModuleId,
        binding: &Binding,
        library: &Library,
        cache: &mut HashMap<ModuleId, Vec<AbsArc>>,
        allow_sync: bool,
    ) -> Result<TimingGraph, StaError> {
        let m = design.module(module);
        let node_count = m.net_count();
        let net_loads: Vec<i64> = m
            .nets()
            .map(|(id, _)| binding.net_load_ff(design, library, module, id))
            .collect();

        // Most leaf cells contribute one or two arcs; reserving up
        // front avoids repeated doubling on million-cell flat modules.
        let mut arcs: Vec<GraphArc> = Vec::with_capacity(m.instance_count() * 2);
        let mut syncs: Vec<SyncInst> = Vec::new();

        for (inst_id, inst) in m.instances() {
            match inst.target() {
                InstRef::Leaf(leaf) => {
                    let cell_id =
                        binding
                            .cell_for_leaf(leaf)
                            .ok_or_else(|| StaError::UnboundLeaf {
                                inst: inst.name().to_owned(),
                            })?;
                    let cell = library.cell(cell_id);
                    match cell.function() {
                        Function::Combinational(cell_arcs) => {
                            for arc in cell_arcs {
                                let (Some(from), Some(to)) =
                                    (inst.conn(arc.from), inst.conn(arc.to))
                                else {
                                    continue;
                                };
                                let load = net_loads[to.as_raw() as usize];
                                arcs.push(GraphArc {
                                    from,
                                    to,
                                    sense: arc.sense,
                                    delay: arc.delay.eval(load),
                                    inst: inst_id,
                                });
                            }
                        }
                        Function::Sync(spec) => {
                            if !allow_sync {
                                return Err(StaError::SyncInsideAbstractedModule {
                                    module: m.name().to_owned(),
                                    inst: inst.name().to_owned(),
                                });
                            }
                            let data_net =
                                inst.conn(spec.data)
                                    .ok_or_else(|| StaError::DanglingSyncPin {
                                        inst: inst.name().to_owned(),
                                        pin: "data",
                                    })?;
                            let control_net = inst.conn(spec.control).ok_or_else(|| {
                                StaError::DanglingSyncPin {
                                    inst: inst.name().to_owned(),
                                    pin: "control",
                                }
                            })?;
                            let output_net = inst.conn(spec.output);
                            let output_load_ff = output_net
                                .map(|n| net_loads[n.as_raw() as usize])
                                .unwrap_or(0);
                            let output_bar_net = spec.output_bar.and_then(|p| inst.conn(p));
                            let output_bar_load_ff = output_bar_net
                                .map(|n| net_loads[n.as_raw() as usize])
                                .unwrap_or(0);
                            syncs.push(SyncInst {
                                inst: inst_id,
                                cell: cell_id,
                                data_net,
                                control_net,
                                output_net,
                                output_load_ff,
                                output_bar_net,
                                output_bar_load_ff,
                            });
                        }
                    }
                }
                InstRef::Module(child) => {
                    let abs = match cache.get(&child) {
                        Some(abs) => abs.clone(),
                        None => {
                            let abs = abstract_module(design, child, binding, library, cache)?;
                            cache.insert(child, abs.clone());
                            abs
                        }
                    };
                    for a in &abs {
                        let (Some(from), Some(to)) = (
                            inst.conn(PinSlot::from_raw(a.from_port)),
                            inst.conn(PinSlot::from_raw(a.to_port)),
                        ) else {
                            continue;
                        };
                        arcs.push(GraphArc {
                            from,
                            to,
                            sense: a.sense,
                            delay: a.delay,
                            inst: inst_id,
                        });
                    }
                }
            }
        }

        assert!(
            arcs.len() <= u32::MAX as usize,
            "timing graph exceeds the u32 arc index space"
        );
        let (fanin_heads, fanin_idx) = csr_adjacency(node_count, &arcs, |a| a.to);
        let (fanout_heads, fanout_idx) = csr_adjacency(node_count, &arcs, |a| a.from);

        let topo = topo_sort(
            design,
            module,
            node_count,
            &fanin_heads,
            &fanout_heads,
            &fanout_idx,
            &arcs,
        )?;
        let (cluster_of, clusters) = find_clusters(node_count, &arcs);

        Ok(TimingGraph {
            node_count,
            arcs,
            fanin_heads,
            fanin_idx,
            fanout_heads,
            fanout_idx,
            topo,
            syncs,
            net_loads,
            cluster_of,
            clusters,
        })
    }

    /// The number of nodes (nets).
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// The number of combinational arcs.
    pub fn arc_count(&self) -> usize {
        self.arcs.len()
    }

    /// All arcs.
    pub fn arcs(&self) -> &[GraphArc] {
        &self.arcs
    }

    /// One arc by index.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn arc(&self, index: u32) -> &GraphArc {
        &self.arcs[index as usize]
    }

    /// Indices of arcs terminating at `net`.
    pub fn fanin_arcs(&self, net: NetId) -> &[u32] {
        let u = net.as_raw() as usize;
        &self.fanin_idx[self.fanin_heads[u] as usize..self.fanin_heads[u + 1] as usize]
    }

    /// Indices of arcs departing from `net`.
    pub fn fanout_arcs(&self, net: NetId) -> &[u32] {
        let u = net.as_raw() as usize;
        &self.fanout_idx[self.fanout_heads[u] as usize..self.fanout_heads[u + 1] as usize]
    }

    /// Nets in a topological order of the combinational arcs.
    pub fn topo(&self) -> &[NetId] {
        &self.topo
    }

    /// The synchronising elements of the module.
    pub fn syncs(&self) -> &[SyncInst] {
        &self.syncs
    }

    /// The estimated load of `net` in femtofarads.
    pub fn net_load_ff(&self, net: NetId) -> i64 {
        self.net_loads[net.as_raw() as usize]
    }

    /// The cluster containing `net`.
    pub fn cluster_of(&self, net: NetId) -> ClusterId {
        self.cluster_of[net.as_raw() as usize]
    }

    /// One cluster.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn cluster(&self, id: ClusterId) -> &Cluster {
        &self.clusters[id.0 as usize]
    }

    /// All clusters (singleton nets included).
    pub fn clusters(&self) -> impl Iterator<Item = (ClusterId, &Cluster)> {
        self.clusters
            .iter()
            .enumerate()
            .map(|(i, c)| (ClusterId(i as u32), c))
    }

    /// The maximum combinational depth (in arcs) over the whole graph.
    pub fn max_depth(&self) -> usize {
        let mut depth = vec![0usize; self.node_count];
        let mut best = 0;
        for &net in &self.topo {
            let d = depth[net.as_raw() as usize];
            for &ai in self.fanout_arcs(net) {
                let to = self.arcs[ai as usize].to.as_raw() as usize;
                if depth[to] < d + 1 {
                    depth[to] = d + 1;
                    best = best.max(d + 1);
                }
            }
        }
        best
    }
}

/// An abstracted child-module arc: input port to output port.
#[derive(Clone, Copy, Debug)]
struct AbsArc {
    from_port: u32,
    to_port: u32,
    sense: Sense,
    delay: MinMax<RiseFall<Time>>,
}

/// Computes pin-to-pin delay arcs for a purely combinational module by
/// per-input-port block analysis ("the delays have been combined to
/// generate estimates of the module propagation delays").
fn abstract_module(
    design: &Design,
    child: ModuleId,
    binding: &Binding,
    library: &Library,
    cache: &mut HashMap<ModuleId, Vec<AbsArc>>,
) -> Result<Vec<AbsArc>, StaError> {
    let graph = TimingGraph::build_with_cache(design, child, binding, library, cache, false)?;
    let m = design.module(child);
    let in_ports: Vec<(u32, NetId)> = m
        .ports()
        .filter(|(_, p)| p.dir() == hb_netlist::PinDir::Input)
        .map(|(id, p)| (id.as_raw(), p.net()))
        .collect();
    let out_ports: Vec<(u32, NetId)> = m
        .ports()
        .filter(|(_, p)| p.dir() == hb_netlist::PinDir::Output)
        .map(|(id, p)| (id.as_raw(), p.net()))
        .collect();

    let mut abs = Vec::new();
    for &(from_port, src) in &in_ports {
        // Forward max and min delays plus path sense from this source.
        let mut dmax = vec![RiseFall::splat(Time::NEG_INF); graph.node_count()];
        let mut dmin = vec![RiseFall::splat(Time::INF); graph.node_count()];
        let mut sense = vec![None::<Sense>; graph.node_count()];
        dmax[src.as_raw() as usize] = RiseFall::ZERO;
        dmin[src.as_raw() as usize] = RiseFall::ZERO;
        sense[src.as_raw() as usize] = Some(Sense::Positive);
        for &net in graph.topo() {
            let u = net.as_raw() as usize;
            if sense[u].is_none() {
                continue;
            }
            for &ai in graph.fanout_arcs(net) {
                let arc = graph.arc(ai);
                let v = arc.to.as_raw() as usize;
                let new_max = arc.sense.propagate(dmax[u], arc.delay.max);
                dmax[v] = dmax[v].max(new_max);
                let new_min = propagate_min(arc.sense, dmin[u], arc.delay.min);
                dmin[v] = dmin[v].min(new_min);
                let through = sense[u].expect("checked").then(arc.sense);
                sense[v] = Some(match sense[v] {
                    None => through,
                    Some(s) => s.merge(through),
                });
            }
        }
        for &(to_port, dst) in &out_ports {
            let v = dst.as_raw() as usize;
            if let Some(s) = sense[v] {
                abs.push(AbsArc {
                    from_port,
                    to_port,
                    sense: s,
                    delay: MinMax::new(dmin[v], dmax[v]),
                });
            }
        }
    }
    Ok(abs)
}

/// Minimum-arrival propagation through one arc (the dual of
/// [`Sense::propagate`]): earliest output transition given earliest
/// input transitions.
pub(crate) fn propagate_min(
    sense: Sense,
    input: RiseFall<Time>,
    delay: RiseFall<Time>,
) -> RiseFall<Time> {
    match sense {
        Sense::Positive => input.saturating_add(delay),
        Sense::Negative => input.swapped().saturating_add(delay),
        Sense::NonUnate => {
            let best = input.rise.min(input.fall);
            RiseFall::splat(best).saturating_add(delay)
        }
    }
}

fn topo_sort(
    design: &Design,
    module: ModuleId,
    node_count: usize,
    fanin_heads: &[u32],
    fanout_heads: &[u32],
    fanout_idx: &[u32],
    arcs: &[GraphArc],
) -> Result<Vec<NetId>, StaError> {
    let mut indeg: Vec<u32> = (0..node_count)
        .map(|i| fanin_heads[i + 1] - fanin_heads[i])
        .collect();
    let mut queue: Vec<NetId> = (0..node_count as u32)
        .filter(|&i| indeg[i as usize] == 0)
        .map(NetId::from_raw)
        .collect();
    let mut order = Vec::with_capacity(node_count);
    let mut head = 0;
    while head < queue.len() {
        let net = queue[head];
        head += 1;
        order.push(net);
        let u = net.as_raw() as usize;
        for &ai in &fanout_idx[fanout_heads[u] as usize..fanout_heads[u + 1] as usize] {
            let to = arcs[ai as usize].to;
            let d = &mut indeg[to.as_raw() as usize];
            *d -= 1;
            if *d == 0 {
                queue.push(to);
            }
        }
    }
    if order.len() != node_count {
        let on_cycle = (0..node_count)
            .find(|&i| indeg[i] > 0)
            .expect("cycle implies a positive in-degree");
        return Err(StaError::CombinationalCycle {
            net: design
                .module(module)
                .net(NetId::from_raw(on_cycle as u32))
                .name()
                .to_owned(),
        });
    }
    Ok(order)
}

fn find_clusters(node_count: usize, arcs: &[GraphArc]) -> (Vec<ClusterId>, Vec<Cluster>) {
    // Union–find over nets connected by combinational arcs.
    let mut parent: Vec<u32> = (0..node_count as u32).collect();
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            parent[x as usize] = parent[parent[x as usize] as usize];
            x = parent[x as usize];
        }
        x
    }
    for arc in arcs {
        let a = find(&mut parent, arc.from.as_raw());
        let b = find(&mut parent, arc.to.as_raw());
        if a != b {
            parent[a as usize] = b;
        }
    }
    // Root → cluster index, as a flat array rather than a hash map:
    // roots are net indices, so a sentinel-initialised Vec is direct.
    let mut cluster_index: Vec<u32> = vec![u32::MAX; node_count];
    let mut clusters: Vec<Cluster> = Vec::new();
    let mut cluster_of = Vec::with_capacity(node_count);
    for i in 0..node_count as u32 {
        let root = find(&mut parent, i) as usize;
        let idx = if cluster_index[root] == u32::MAX {
            clusters.push(Cluster::default());
            let idx = (clusters.len() - 1) as u32;
            cluster_index[root] = idx;
            idx
        } else {
            cluster_index[root]
        };
        clusters[idx as usize].nets.push(NetId::from_raw(i));
        cluster_of.push(ClusterId(idx));
    }
    (cluster_of, clusters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_cells::sc89;
    use hb_netlist::{Design, PinDir};
    use hb_units::Transition;

    /// a --INV--> b --INV--> y, with a DFF from y to q.
    fn small() -> (Design, ModuleId, Library) {
        let lib = sc89();
        let mut d = Design::new("t");
        lib.declare_into(&mut d).unwrap();
        let m = d.add_module("top").unwrap();
        let a = d.add_net(m, "a").unwrap();
        let b = d.add_net(m, "b").unwrap();
        let y = d.add_net(m, "y").unwrap();
        let ck = d.add_net(m, "ck").unwrap();
        let q = d.add_net(m, "q").unwrap();
        d.add_port(m, "a", PinDir::Input, a).unwrap();
        d.add_port(m, "ck", PinDir::Input, ck).unwrap();
        d.add_port(m, "q", PinDir::Output, q).unwrap();
        let inv = d.leaf_by_name("INV_X1").unwrap();
        let dff = d.leaf_by_name("DFF").unwrap();
        let u1 = d.add_leaf_instance(m, "u1", inv).unwrap();
        let u2 = d.add_leaf_instance(m, "u2", inv).unwrap();
        let ff = d.add_leaf_instance(m, "ff", dff).unwrap();
        d.connect(m, u1, "A", a).unwrap();
        d.connect(m, u1, "Y", b).unwrap();
        d.connect(m, u2, "A", b).unwrap();
        d.connect(m, u2, "Y", y).unwrap();
        d.connect(m, ff, "D", y).unwrap();
        d.connect(m, ff, "CK", ck).unwrap();
        d.connect(m, ff, "Q", q).unwrap();
        d.set_top(m).unwrap();
        (d, m, lib)
    }

    #[test]
    fn build_collects_arcs_and_syncs() {
        let (d, m, lib) = small();
        let binding = Binding::new(&d, &lib);
        let g = TimingGraph::build(&d, m, &binding, &lib).unwrap();
        assert_eq!(g.arc_count(), 2);
        assert_eq!(g.syncs().len(), 1);
        let sync = g.syncs()[0];
        assert_eq!(d.module(m).net(sync.data_net).name(), "y");
        assert_eq!(d.module(m).net(sync.control_net).name(), "ck");
        assert_eq!(
            d.module(m).net(sync.output_net.expect("connected")).name(),
            "q"
        );
        assert_eq!(g.max_depth(), 2);
    }

    #[test]
    fn arc_delays_grow_with_fanout() {
        let lib = sc89();
        let mut d = Design::new("fan");
        lib.declare_into(&mut d).unwrap();
        let m = d.add_module("top").unwrap();
        let a = d.add_net(m, "a").unwrap();
        let y1 = d.add_net(m, "y1").unwrap();
        let y2 = d.add_net(m, "y2").unwrap();
        d.add_port(m, "a", PinDir::Input, a).unwrap();
        let inv = d.leaf_by_name("INV_X1").unwrap();
        let u1 = d.add_leaf_instance(m, "u1", inv).unwrap();
        let u2 = d.add_leaf_instance(m, "u2", inv).unwrap();
        d.connect(m, u1, "A", a).unwrap();
        d.connect(m, u1, "Y", y1).unwrap();
        d.connect(m, u2, "A", a).unwrap();
        d.connect(m, u2, "Y", y2).unwrap();
        // Load y1 with three extra inverters.
        for i in 0..3 {
            let s = d.add_leaf_instance(m, format!("s{i}"), inv).unwrap();
            d.connect(m, s, "A", y1).unwrap();
        }
        let binding = Binding::new(&d, &lib);
        let g = TimingGraph::build(&d, m, &binding, &lib).unwrap();
        let d1 = g.arcs().iter().find(|arc| arc.to == y1).unwrap().delay.max[Transition::Rise];
        let d2 = g.arcs().iter().find(|arc| arc.to == y2).unwrap().delay.max[Transition::Rise];
        assert!(d1 > d2, "heavier load means longer delay: {d1} vs {d2}");
    }

    #[test]
    fn cycle_detection() {
        let lib = sc89();
        let mut d = Design::new("c");
        lib.declare_into(&mut d).unwrap();
        let m = d.add_module("top").unwrap();
        let a = d.add_net(m, "a").unwrap();
        let b = d.add_net(m, "b").unwrap();
        let inv = d.leaf_by_name("INV_X1").unwrap();
        let u1 = d.add_leaf_instance(m, "u1", inv).unwrap();
        let u2 = d.add_leaf_instance(m, "u2", inv).unwrap();
        d.connect(m, u1, "A", a).unwrap();
        d.connect(m, u1, "Y", b).unwrap();
        d.connect(m, u2, "A", b).unwrap();
        d.connect(m, u2, "Y", a).unwrap();
        let binding = Binding::new(&d, &lib);
        assert!(matches!(
            TimingGraph::build(&d, m, &binding, &lib),
            Err(StaError::CombinationalCycle { .. })
        ));
    }

    #[test]
    fn clusters_split_at_sync_elements() {
        let (d, m, lib) = small();
        let binding = Binding::new(&d, &lib);
        let g = TimingGraph::build(&d, m, &binding, &lib).unwrap();
        let module = d.module(m);
        let y = module.net_by_name("y").unwrap();
        let a = module.net_by_name("a").unwrap();
        let q = module.net_by_name("q").unwrap();
        assert_eq!(g.cluster_of(a), g.cluster_of(y), "same comb cluster");
        assert_ne!(g.cluster_of(y), g.cluster_of(q), "split by the DFF");
        assert!(g.clusters().count() >= 2);
        assert!(g
            .cluster(g.cluster_of(a))
            .nets
            .contains(&module.net_by_name("b").unwrap()));
    }

    #[test]
    fn dangling_sync_pin_rejected() {
        let lib = sc89();
        let mut d = Design::new("s");
        lib.declare_into(&mut d).unwrap();
        let m = d.add_module("top").unwrap();
        let y = d.add_net(m, "y").unwrap();
        d.add_port(m, "y", PinDir::Input, y).unwrap();
        let dff = d.leaf_by_name("DFF").unwrap();
        let ff = d.add_leaf_instance(m, "ff", dff).unwrap();
        d.connect(m, ff, "D", y).unwrap();
        let binding = Binding::new(&d, &lib);
        assert!(matches!(
            TimingGraph::build(&d, m, &binding, &lib),
            Err(StaError::DanglingSyncPin { pin: "control", .. })
        ));
    }

    #[test]
    fn module_abstraction_matches_flat_depth() {
        // Hierarchical: top contains child with 2 inverters in series.
        let lib = sc89();
        let mut d = Design::new("h");
        lib.declare_into(&mut d).unwrap();
        let child = d.add_module("pair").unwrap();
        let ci = d.add_net(child, "in").unwrap();
        let cm = d.add_net(child, "mid").unwrap();
        let co = d.add_net(child, "out").unwrap();
        d.add_port(child, "in", PinDir::Input, ci).unwrap();
        d.add_port(child, "out", PinDir::Output, co).unwrap();
        let inv = d.leaf_by_name("INV_X1").unwrap();
        let g1 = d.add_leaf_instance(child, "g1", inv).unwrap();
        let g2 = d.add_leaf_instance(child, "g2", inv).unwrap();
        d.connect(child, g1, "A", ci).unwrap();
        d.connect(child, g1, "Y", cm).unwrap();
        d.connect(child, g2, "A", cm).unwrap();
        d.connect(child, g2, "Y", co).unwrap();

        let top = d.add_module("top").unwrap();
        let a = d.add_net(top, "a").unwrap();
        let y = d.add_net(top, "y").unwrap();
        d.add_port(top, "a", PinDir::Input, a).unwrap();
        d.add_port(top, "y", PinDir::Output, y).unwrap();
        let p = d.add_module_instance(top, "p0", child).unwrap();
        d.connect(top, p, "in", a).unwrap();
        d.connect(top, p, "out", y).unwrap();
        d.set_top(top).unwrap();

        let binding = Binding::new(&d, &lib);
        let g = TimingGraph::build(&d, top, &binding, &lib).unwrap();
        assert_eq!(g.arc_count(), 1, "one abstracted arc");
        let arc = &g.arcs()[0];
        assert_eq!(arc.sense, Sense::Positive, "two inversions compose");
        // The abstracted delay covers two gate delays.
        assert!(arc.delay.max.worst() > Time::from_ps(100));
        assert!(arc.delay.min.best() > Time::ZERO);
        assert!(arc.delay.min.best() <= arc.delay.max.worst());
    }

    #[test]
    fn sync_inside_abstracted_module_rejected() {
        let lib = sc89();
        let mut d = Design::new("bad");
        lib.declare_into(&mut d).unwrap();
        let child = d.add_module("seq").unwrap();
        let ci = d.add_net(child, "in").unwrap();
        let ck = d.add_net(child, "ck").unwrap();
        let co = d.add_net(child, "out").unwrap();
        d.add_port(child, "in", PinDir::Input, ci).unwrap();
        d.add_port(child, "ck", PinDir::Input, ck).unwrap();
        d.add_port(child, "out", PinDir::Output, co).unwrap();
        let dff = d.leaf_by_name("DFF").unwrap();
        let ff = d.add_leaf_instance(child, "ff", dff).unwrap();
        d.connect(child, ff, "D", ci).unwrap();
        d.connect(child, ff, "CK", ck).unwrap();
        d.connect(child, ff, "Q", co).unwrap();

        let top = d.add_module("top").unwrap();
        let a = d.add_net(top, "a").unwrap();
        let k = d.add_net(top, "k").unwrap();
        let y = d.add_net(top, "y").unwrap();
        d.add_port(top, "a", PinDir::Input, a).unwrap();
        d.add_port(top, "k", PinDir::Input, k).unwrap();
        d.add_port(top, "y", PinDir::Output, y).unwrap();
        let s = d.add_module_instance(top, "s0", child).unwrap();
        d.connect(top, s, "in", a).unwrap();
        d.connect(top, s, "ck", k).unwrap();
        d.connect(top, s, "out", y).unwrap();

        let binding = Binding::new(&d, &lib);
        assert!(matches!(
            TimingGraph::build(&d, top, &binding, &lib),
            Err(StaError::SyncInsideAbstractedModule { .. })
        ));
    }
}
