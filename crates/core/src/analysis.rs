//! Analysis preparation and multi-pass slack evaluation.
//!
//! Preparation (the paper's "pre-processing": cluster generation plus the
//! Section 7 pass-minimisation algorithm) resolves the clock binding of
//! every synchronising element, replicates elements per control pulse,
//! derives the cluster ordering requirements, and plans the minimal set
//! of analysis passes per cluster.
//!
//! Slack evaluation then runs, for each distinct "broken open" window,
//! one forward ready sweep and one backward required sweep over the
//! whole graph (paper Section 7), assigning each cluster output to the
//! pass that places its ideal closure time closest to the window end.

use std::collections::HashMap;
use std::sync::Arc;

use hb_cells::{Binding, Library};
use hb_clock::{ClockId, ClockSet, EdgeGraph, EdgeId, PassPlan, Requirement, Timeline};
use hb_netlist::{Design, ModuleId, NetId, PinDir};
use hb_sta::analysis::{
    propagate_ready_max, propagate_required, scalar_slack, slack_table, table, TimeTable,
};
use hb_sta::TimingGraph;
use hb_units::{RiseFall, Sense, Time};

use crate::engine::{Engine, ItemTables, SlackCache};
use crate::error::AnalyzeError;
use crate::spec::{AnalysisOptions, EdgeSpec, EngineKind, LatchModel, Spec};
use crate::sync::{Replica, ReplicaTiming};

/// A boundary timing point: a primary input (source) or primary output
/// (sink) with its reference edge and offset.
#[derive(Clone, Debug)]
pub(crate) struct Boundary {
    pub port: String,
    pub net: NetId,
    pub edge: EdgeId,
    pub offset: Time,
}

/// Pre-processing statistics (the paper's Table 1 "pre-processing"
/// column covers exactly this work).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PrepStats {
    /// Number of combinational clusters carrying sources or sinks.
    pub active_clusters: usize,
    /// Total ordering requirements across all clusters (deduplicated).
    pub requirements: usize,
    /// Total analysis passes summed over clusters.
    pub total_cluster_passes: usize,
    /// The largest per-cluster pass count — the maximum number of
    /// settling times any node needs.
    pub max_cluster_passes: usize,
    /// Distinct global windows actually swept.
    pub global_passes: usize,
}

/// Everything derived from the design before any offsets move.
pub(crate) struct Prepared<'a> {
    pub design: &'a Design,
    pub module: ModuleId,
    #[allow(dead_code)]
    pub library: &'a Library,
    #[allow(dead_code)]
    pub binding: Binding,
    pub graph: TimingGraph,
    pub timeline: Timeline,
    pub options: AnalysisOptions,
    /// Initial replicas (offsets at the late end of their windows).
    pub replicas: Vec<Replica>,
    /// The clock period governing each replica (for min-delay checks).
    pub replica_period: Vec<Time>,
    pub pis: Vec<Boundary>,
    pub pos: Vec<Boundary>,
    /// Distinct global window starts.
    pub passes: Vec<Time>,
    /// Per cluster: the global pass indices it participates in (empty
    /// for clusters with no sources or sinks, e.g. clock trees).
    pub cluster_passes: Vec<Vec<usize>>,
    /// Per replica: assigned global pass (for its data input).
    pub replica_pass: Vec<usize>,
    /// Per primary output: assigned global pass.
    pub po_pass: Vec<usize>,
    /// The sharded engine schedule (shards + `(cluster, pass)` items).
    pub engine: Engine,
    pub stats: PrepStats,
}

/// The backing storage of a [`SlackView`]'s ready/required tables.
pub(crate) enum SlackStorage {
    /// Dense whole-graph tables, one pair per global pass (the
    /// reference engine's native format).
    Dense {
        ready: Vec<TimeTable>,
        required: Vec<TimeTable>,
    },
    /// Per-work-item local tables (the sharded engine's native format),
    /// positionally parallel to `Prepared::engine.items`. Nets outside
    /// an item keep their sentinel values, exactly as in the dense
    /// format.
    Sharded { items: Vec<Arc<ItemTables>> },
}

/// The result of one full multi-pass slack evaluation at fixed offsets.
pub(crate) struct SlackView {
    /// Ready/required tables, in engine-native form; use
    /// [`SlackView::ready_for_pass`] / [`SlackView::dense_ready`] to
    /// view them densely.
    pub storage: SlackStorage,
    /// Per net: the smallest scalar slack over all passes.
    pub net_slack: Vec<Time>,
    /// Per replica: node slack at the data-input terminal.
    pub replica_in: Vec<Time>,
    /// Per replica: node slack at the output terminal (`INF` when the
    /// output is unconnected).
    pub replica_out: Vec<Time>,
    /// Per primary input: node slack at the source terminal.
    pub pi_slack: Vec<Time>,
    /// Per primary output: node slack at the sink terminal.
    pub po_slack: Vec<Time>,
}

impl SlackView {
    /// The paper's global stop condition: every terminal slack strictly
    /// positive.
    pub fn all_positive(&self) -> bool {
        self.replica_in
            .iter()
            .chain(&self.replica_out)
            .chain(&self.pi_slack)
            .chain(&self.po_slack)
            .all(|&s| s > Time::ZERO)
    }

    /// The worst terminal slack.
    pub fn worst(&self) -> Time {
        self.replica_in
            .iter()
            .chain(&self.replica_out)
            .chain(&self.pi_slack)
            .chain(&self.po_slack)
            .copied()
            .min()
            .unwrap_or(Time::INF)
    }

    /// Materialises the dense forward ready table of one pass.
    pub fn ready_for_pass(&self, prep: &Prepared<'_>, pass: usize) -> TimeTable {
        match &self.storage {
            SlackStorage::Dense { ready, .. } => ready[pass].clone(),
            SlackStorage::Sharded { items } => {
                let mut out = table(&prep.graph, Time::NEG_INF);
                self.scatter_pass(prep, items, pass, &mut out, |t| &t.ready);
                out
            }
        }
    }

    /// Materialises the dense ready tables of every pass.
    pub fn dense_ready(&self, prep: &Prepared<'_>) -> Vec<TimeTable> {
        match &self.storage {
            SlackStorage::Dense { ready, .. } => ready.clone(),
            SlackStorage::Sharded { .. } => (0..prep.passes.len())
                .map(|p| self.ready_for_pass(prep, p))
                .collect(),
        }
    }

    /// Materialises the dense required tables of every pass.
    pub fn dense_required(&self, prep: &Prepared<'_>) -> Vec<TimeTable> {
        match &self.storage {
            SlackStorage::Dense { required, .. } => required.clone(),
            SlackStorage::Sharded { items } => (0..prep.passes.len())
                .map(|p| {
                    let mut out = table(&prep.graph, Time::INF);
                    self.scatter_pass(prep, items, p, &mut out, |t| &t.required);
                    out
                })
                .collect(),
        }
    }

    fn scatter_pass<'t>(
        &self,
        prep: &Prepared<'_>,
        items: &'t [Arc<ItemTables>],
        pass: usize,
        out: &mut TimeTable,
        select: impl Fn(&'t ItemTables) -> &'t [RiseFall<Time>],
    ) {
        for (i, item) in prep.engine.items.iter().enumerate() {
            if item.pass != pass {
                continue;
            }
            let shard = prep
                .engine
                .sharded
                .shard(hb_sta::ClusterId::from_raw(item.cluster));
            let local = select(&items[i]);
            for (l, &net) in shard.nets().iter().enumerate() {
                out[net.as_raw() as usize] = local[l];
            }
        }
    }
}

/// Forward reachability with accumulated max delay and path sense.
fn forward_reach(
    graph: &TimingGraph,
    seeds: &[NetId],
) -> (Vec<RiseFall<Time>>, Vec<Option<Sense>>) {
    let mut delay = vec![RiseFall::splat(Time::NEG_INF); graph.node_count()];
    let mut sense: Vec<Option<Sense>> = vec![None; graph.node_count()];
    for &net in seeds {
        delay[net.as_raw() as usize] = RiseFall::ZERO;
        sense[net.as_raw() as usize] = Some(Sense::Positive);
    }
    for &net in graph.topo() {
        let u = net.as_raw() as usize;
        let Some(su) = sense[u] else { continue };
        for &ai in graph.fanout_arcs(net) {
            let arc = graph.arc(ai);
            let v = arc.to.as_raw() as usize;
            let out = arc.sense.propagate(delay[u], arc.delay.max);
            delay[v] = delay[v].max(out);
            let through = su.then(arc.sense);
            sense[v] = Some(match sense[v] {
                None => through,
                Some(s) => s.merge(through),
            });
        }
    }
    (delay, sense)
}

/// Resolves an [`EdgeSpec`] against the clock set and timeline.
fn resolve_edge(
    clocks: &ClockSet,
    timeline: &Timeline,
    spec: &EdgeSpec,
) -> Result<EdgeId, AnalyzeError> {
    let clock = clocks
        .clock_by_name(&spec.clock)
        .ok_or_else(|| AnalyzeError::UnknownClock {
            clock: spec.clock.clone(),
        })?;
    let mut matching: Vec<EdgeId> = timeline
        .edges()
        .filter(|(_, e)| e.clock == clock && e.polarity == spec.transition)
        .map(|(id, _)| id)
        .collect();
    matching.sort_by_key(|id| timeline.edge_time(*id));
    matching
        .get(spec.occurrence as usize)
        .copied()
        .ok_or_else(|| AnalyzeError::EdgeOccurrenceOutOfRange {
            clock: spec.clock.clone(),
            occurrence: spec.occurrence,
        })
}

pub(crate) fn prepare<'a>(
    design: &'a Design,
    module: ModuleId,
    library: &'a Library,
    clocks: &ClockSet,
    spec: &Spec,
    options: AnalysisOptions,
) -> Result<Prepared<'a>, AnalyzeError> {
    if clocks.is_empty() {
        return Err(AnalyzeError::NoClocks);
    }
    // Wall time per preprocessing phase, visible on the daemon's
    // metrics endpoint. Spans are inert unless hb-obs is armed.
    let prep_phase = |phase: &'static str| {
        hb_obs::global()
            .histogram_with(
                "hb_prep_nanoseconds",
                "preprocessing wall time, by phase",
                &[("phase", phase)],
            )
            .span()
    };
    let graph_span = prep_phase("graph-build");
    let binding = Binding::new(design, library);
    let graph = TimingGraph::build(design, module, &binding, library)?;
    let timeline = clocks.timeline();
    let m = design.module(module);
    drop(graph_span);
    let control_span = prep_phase("controls-and-replicas");

    // --- clock ports -----------------------------------------------------
    let mut clock_sources: Vec<(NetId, ClockId)> = Vec::new();
    for (port, clock_name) in spec.clock_ports() {
        let pid = m
            .port_by_name(port)
            .ok_or_else(|| AnalyzeError::UnknownPort { port: port.into() })?;
        let clock = clocks
            .clock_by_name(clock_name)
            .ok_or_else(|| AnalyzeError::UnknownClock {
                clock: clock_name.into(),
            })?;
        clock_sources.push((m.port(pid).net(), clock));
    }

    // --- control path resolution ------------------------------------------
    // One reach per clock source; then each sync element must see exactly
    // one clock, monotonically.
    type Reach = (ClockId, Vec<RiseFall<Time>>, Vec<Option<Sense>>);
    let reaches: Vec<Reach> = clock_sources
        .iter()
        .map(|&(net, clock)| {
            let (d, s) = forward_reach(&graph, &[net]);
            (clock, d, s)
        })
        .collect();

    // Enable-path detection: control nets must not be reachable from
    // synchronising element outputs.
    let sync_outputs: Vec<NetId> = graph
        .syncs()
        .iter()
        .flat_map(|s| [s.output_net, s.output_bar_net])
        .flatten()
        .collect();
    let (_, from_sync_sense) = forward_reach(&graph, &sync_outputs);

    struct ControlInfo {
        clock: ClockId,
        cdel: Time,
        sense: Sense,
    }
    let mut controls: Vec<ControlInfo> = Vec::with_capacity(graph.syncs().len());
    for sync in graph.syncs() {
        let inst_name = || m.instance(sync.inst).name().to_owned();
        let cn = sync.control_net.as_raw() as usize;
        if from_sync_sense[cn].is_some() {
            return Err(AnalyzeError::EnablePath { inst: inst_name() });
        }
        let mut hit: Option<ControlInfo> = None;
        for (clock, delays, senses) in &reaches {
            if let Some(s) = senses[cn] {
                if hit.is_some() {
                    return Err(AnalyzeError::MultiClockControl { inst: inst_name() });
                }
                if s == Sense::NonUnate {
                    return Err(AnalyzeError::NonMonotonicControl { inst: inst_name() });
                }
                hit = Some(ControlInfo {
                    clock: *clock,
                    cdel: delays[cn].worst().max(Time::ZERO),
                    sense: s,
                });
            }
        }
        controls.push(hit.ok_or_else(|| AnalyzeError::UnclockedControl { inst: inst_name() })?);
    }

    // --- boundary points ---------------------------------------------------
    let clock_port_nets: Vec<NetId> = clock_sources.iter().map(|&(n, _)| n).collect();
    let default_edge = timeline
        .edges()
        .next()
        .map(|(id, _)| id)
        .expect("non-empty clock set has edges");
    let mut pis: Vec<Boundary> = Vec::new();
    let mut pos: Vec<Boundary> = Vec::new();
    for (_, port) in m.ports() {
        match port.dir() {
            PinDir::Input => {
                if clock_port_nets.contains(&port.net()) {
                    continue;
                }
                let (edge, offset) = match spec.arrival_for_port(port.name()) {
                    Some((es, off)) => (resolve_edge(clocks, &timeline, es)?, off),
                    None => (default_edge, Time::ZERO),
                };
                pis.push(Boundary {
                    port: port.name().to_owned(),
                    net: port.net(),
                    edge,
                    offset,
                });
            }
            PinDir::Output => {
                if let Some((es, off)) = spec.required_for_port(port.name()) {
                    pos.push(Boundary {
                        port: port.name().to_owned(),
                        net: port.net(),
                        edge: resolve_edge(clocks, &timeline, es)?,
                        offset: off,
                    });
                }
            }
        }
    }
    // Unknown port names in the spec are errors even when unused.
    for (port, _, _) in spec.input_arrivals() {
        if m.port_by_name(port).is_none() {
            return Err(AnalyzeError::UnknownPort { port: port.into() });
        }
    }
    for (port, _, _) in spec.output_requireds() {
        if m.port_by_name(port).is_none() {
            return Err(AnalyzeError::UnknownPort { port: port.into() });
        }
    }

    // --- replicas -----------------------------------------------------------
    let mut replicas: Vec<Replica> = Vec::new();
    let mut replica_period: Vec<Time> = Vec::new();
    for (sync_index, sync) in graph.syncs().iter().enumerate() {
        let ctrl = &controls[sync_index];
        let cell = library.cell(sync.cell);
        let cspec = cell.sync_spec().expect("sync instances have sync cells");
        let effective = ctrl.sense.then(cspec.control_sense);
        let transparent =
            cspec.kind.is_transparent() && options.latch_model == LatchModel::Transparent;
        // One output driver stage serves both outputs; evaluate it at the
        // heavier of the two loads (pessimistic-safe).
        let out_extra = cspec
            .output_delay
            .eval(sync.output_load_ff.max(sync.output_bar_load_ff))
            .max
            .worst();
        for pulse in timeline.pulses(ctrl.clock, effective) {
            let assert_edge = if transparent { pulse.lead } else { pulse.trail };
            let mut replica = Replica::new(
                sync.inst,
                sync_index,
                pulse.index,
                cspec.kind,
                assert_edge,
                pulse.trail,
                sync.data_net,
                sync.output_net,
                ReplicaTiming {
                    width: pulse.width,
                    setup: cspec.setup,
                    hold: cspec.hold,
                    d_cx: cspec.d_cx,
                    d_dx: cspec.d_dx,
                    cdel: ctrl.cdel,
                    out_extra,
                },
                transparent,
            );
            if let Some(bar) = sync.output_bar_net {
                replica = replica.with_output_bar(bar);
            }
            replicas.push(replica);
            replica_period.push(clocks.clock(ctrl.clock).period());
        }
    }

    drop(control_span);
    let plan_span = prep_phase("pass-planning");

    // --- ordering requirements per cluster ----------------------------------
    // Distinct assertion edges get bit positions; bitmasks flow forward.
    let mut edge_bits: HashMap<EdgeId, usize> = HashMap::new();
    let mut bit_edges: Vec<EdgeId> = Vec::new();
    let mut seeds: Vec<(NetId, EdgeId)> = Vec::new();
    for r in &replicas {
        for out in [r.output_net, r.output_bar_net].into_iter().flatten() {
            seeds.push((out, r.assert_edge));
        }
    }
    for pi in &pis {
        seeds.push((pi.net, pi.edge));
    }
    for &(_, edge) in &seeds {
        edge_bits.entry(edge).or_insert_with(|| {
            bit_edges.push(edge);
            bit_edges.len() - 1
        });
    }
    let blocks = bit_edges.len().div_ceil(64).max(1);
    let mut masks: Vec<u64> = vec![0; graph.node_count() * blocks];
    for &(net, edge) in &seeds {
        let bit = edge_bits[&edge];
        masks[net.as_raw() as usize * blocks + bit / 64] |= 1 << (bit % 64);
    }
    for &net in graph.topo() {
        let u = net.as_raw() as usize;
        for &ai in graph.fanout_arcs(net) {
            let v = graph.arc(ai).to.as_raw() as usize;
            for b in 0..blocks {
                let bits = masks[u * blocks + b];
                masks[v * blocks + b] |= bits;
            }
        }
    }
    let reaching_edges = |net: NetId| -> Vec<EdgeId> {
        let u = net.as_raw() as usize;
        let mut edges = Vec::new();
        for b in 0..blocks {
            let mut bits = masks[u * blocks + b];
            while bits != 0 {
                let i = bits.trailing_zeros() as usize;
                edges.push(bit_edges[b * 64 + i]);
                bits &= bits - 1;
            }
        }
        edges
    };

    let cluster_count = graph.clusters().count();
    let mut cluster_reqs: Vec<Vec<Requirement>> = vec![Vec::new(); cluster_count];
    let mut cluster_active = vec![false; cluster_count];
    for &(net, _) in &seeds {
        cluster_active[graph.cluster_of(net).as_raw() as usize] = true;
    }
    let mut add_reqs = |net: NetId, close_edge: EdgeId| {
        let c = graph.cluster_of(net).as_raw() as usize;
        cluster_active[c] = true;
        for assert_edge in reaching_edges(net) {
            cluster_reqs[c].push(Requirement {
                assert_edge,
                close_edge,
            });
        }
    };
    for r in &replicas {
        add_reqs(r.data_net, r.close_edge);
    }
    for po in &pos {
        add_reqs(po.net, po.edge);
    }

    // --- pass plans ----------------------------------------------------------
    let egraph = EdgeGraph::new(&timeline);
    let mut plans: Vec<Option<PassPlan>> = Vec::with_capacity(cluster_count);
    let mut requirements = 0usize;
    for c in 0..cluster_count {
        if cluster_active[c] {
            requirements += cluster_reqs[c].len();
            plans.push(Some(egraph.minimal_passes(&cluster_reqs[c])));
        } else {
            plans.push(None);
        }
    }
    let mut passes: Vec<Time> = Vec::new();
    let mut pass_index: HashMap<Time, usize> = HashMap::new();
    let mut cluster_passes: Vec<Vec<usize>> = vec![Vec::new(); cluster_count];
    for (c, plan) in plans.iter().enumerate() {
        if let Some(plan) = plan {
            for &s in plan.starts() {
                let idx = *pass_index.entry(s).or_insert_with(|| {
                    passes.push(s);
                    passes.len() - 1
                });
                cluster_passes[c].push(idx);
            }
        }
    }
    let assigned_pass = |net: NetId, close_edge: EdgeId| -> usize {
        let c = graph.cluster_of(net).as_raw() as usize;
        let plan = plans[c].as_ref().expect("sink clusters are active");
        let local = plan.pass_for_closure(timeline.edge_time(close_edge));
        pass_index[&plan.starts()[local]]
    };
    let replica_pass: Vec<usize> = replicas
        .iter()
        .map(|r| assigned_pass(r.data_net, r.close_edge))
        .collect();
    let po_pass: Vec<usize> = pos.iter().map(|p| assigned_pass(p.net, p.edge)).collect();

    let stats = PrepStats {
        active_clusters: cluster_active.iter().filter(|&&a| a).count(),
        requirements,
        total_cluster_passes: plans.iter().flatten().map(|p| p.pass_count()).sum(),
        max_cluster_passes: plans
            .iter()
            .flatten()
            .map(|p| p.pass_count())
            .max()
            .unwrap_or(0),
        global_passes: passes.len(),
    };

    let engine = Engine::new(
        &graph,
        &timeline,
        &passes,
        &cluster_passes,
        &replicas,
        &replica_pass,
        &pis,
        &pos,
        &po_pass,
    );
    drop(plan_span);

    Ok(Prepared {
        design,
        module,
        library,
        binding,
        graph,
        timeline,
        options,
        replicas,
        replica_period,
        pis,
        pos,
        passes,
        cluster_passes,
        replica_pass,
        po_pass,
        engine,
        stats,
    })
}

impl Prepared<'_> {
    /// The window position of an assertion at `edge` in the pass with
    /// window start `start`.
    fn pos_assert(&self, start: Time, edge: EdgeId) -> Time {
        (self.timeline.edge_time(edge) - start).rem_euclid(self.timeline.overall_period())
    }

    /// The window position of a closure at `edge` (end-biased).
    fn pos_close(&self, start: Time, edge: EdgeId) -> Time {
        (self.timeline.edge_time(edge) - start).rem_euclid_end(self.timeline.overall_period())
    }

    /// Whether `net`'s cluster participates in global pass `p`.
    fn in_pass(&self, net: NetId, p: usize) -> bool {
        self.cluster_passes[self.graph.cluster_of(net).as_raw() as usize].contains(&p)
    }

    /// Evaluates all slacks at the given replica offsets, dispatching
    /// on [`AnalysisOptions::engine`]. Both engines produce
    /// bit-identical views.
    pub fn compute_slacks(&self, replicas: &[Replica], cache: &mut SlackCache) -> SlackView {
        match self.options.engine {
            EngineKind::Reference => self.compute_slacks_reference(replicas),
            EngineKind::Sharded => self.compute_slacks_sharded(replicas, cache),
        }
    }

    /// The sharded evaluation: every participating `(cluster, pass)`
    /// pair is swept over its compact shard — in parallel when
    /// [`AnalysisOptions::threads`] allows, and skipped entirely when
    /// `cache` still holds tables for the item's seed signature.
    fn compute_slacks_sharded(&self, replicas: &[Replica], cache: &mut SlackCache) -> SlackView {
        let tables = self
            .engine
            .evaluate(replicas, cache, self.options.effective_threads());
        let mut view = SlackView {
            storage: SlackStorage::Sharded { items: tables },
            net_slack: vec![Time::INF; self.graph.node_count()],
            replica_in: vec![Time::INF; replicas.len()],
            replica_out: vec![Time::INF; replicas.len()],
            pi_slack: vec![Time::INF; self.pis.len()],
            po_slack: vec![Time::INF; self.pos.len()],
        };
        let SlackStorage::Sharded { items } = &view.storage else {
            unreachable!("just constructed sharded storage");
        };
        for (i, item) in self.engine.items.iter().enumerate() {
            let t = &items[i];
            let shard = self
                .engine
                .sharded
                .shard(hb_sta::ClusterId::from_raw(item.cluster));
            // Node slacks: `required − ready` exactly as in
            // `slack_table`, minimised over passes.
            for (l, &net) in shard.nets().iter().enumerate() {
                let s = scalar_slack(t.required[l].zip_with(t.ready[l], Time::saturating_sub));
                let slot = &mut view.net_slack[net.as_raw() as usize];
                if s < *slot {
                    *slot = s;
                }
            }
            // Terminal slacks, gated exactly as in the reference
            // engine: the seed lists were built from the same gates.
            for s in &item.close_replica_seeds {
                let k = s.k as usize;
                let close = s.base + replicas[k].input_close_offset();
                let arrive = t.ready[s.local as usize].worst();
                view.replica_in[k] = view.replica_in[k].min(close.saturating_sub(arrive));
            }
            for s in &item.ready_replica_seeds {
                let k = s.k as usize;
                let l = s.local as usize;
                let sl = scalar_slack(t.required[l].zip_with(t.ready[l], Time::saturating_sub));
                view.replica_out[k] = view.replica_out[k].min(sl);
            }
            for s in &item.ready_pi_seeds {
                let k = s.k as usize;
                let l = s.local as usize;
                let sl = scalar_slack(t.required[l].zip_with(t.ready[l], Time::saturating_sub));
                view.pi_slack[k] = view.pi_slack[k].min(sl);
            }
            for s in &item.close_po_seeds {
                let k = s.k as usize;
                let arrive = t.ready[s.local as usize].worst();
                view.po_slack[k] = view.po_slack[k].min(s.at.saturating_sub(arrive));
            }
        }
        view
    }

    /// The reference evaluation: dense whole-graph sweeps per pass,
    /// single-threaded. Kept verbatim for differential testing and as
    /// the benchmark baseline.
    pub fn compute_slacks_reference(&self, replicas: &[Replica]) -> SlackView {
        let pass_count = self.passes.len();
        let mut ready_tables: Vec<TimeTable> = Vec::with_capacity(pass_count);
        let mut required_tables: Vec<TimeTable> = Vec::with_capacity(pass_count);
        let mut view = SlackView {
            storage: SlackStorage::Dense {
                ready: Vec::new(),
                required: Vec::new(),
            },
            net_slack: vec![Time::INF; self.graph.node_count()],
            replica_in: vec![Time::INF; replicas.len()],
            replica_out: vec![Time::INF; replicas.len()],
            pi_slack: vec![Time::INF; self.pis.len()],
            po_slack: vec![Time::INF; self.pos.len()],
        };
        for (p, &start) in self.passes.iter().enumerate() {
            let mut ready = table(&self.graph, Time::NEG_INF);
            for r in replicas {
                for out in [r.output_net, r.output_bar_net].into_iter().flatten() {
                    if self.in_pass(out, p) {
                        let at = self.pos_assert(start, r.assert_edge) + r.output_assert_offset();
                        let slot = &mut ready[out.as_raw() as usize];
                        *slot = (*slot).max(RiseFall::splat(at));
                    }
                }
            }
            for pi in &self.pis {
                if self.in_pass(pi.net, p) {
                    let at = self.pos_assert(start, pi.edge) + pi.offset;
                    let slot = &mut ready[pi.net.as_raw() as usize];
                    *slot = (*slot).max(RiseFall::splat(at));
                }
            }
            propagate_ready_max(&self.graph, &mut ready);

            let mut required = table(&self.graph, Time::INF);
            for (k, r) in replicas.iter().enumerate() {
                if self.replica_pass[k] == p {
                    let at = self.pos_close(start, r.close_edge) + r.input_close_offset();
                    let slot = &mut required[r.data_net.as_raw() as usize];
                    *slot = (*slot).min(RiseFall::splat(at));
                }
            }
            for (k, po) in self.pos.iter().enumerate() {
                if self.po_pass[k] == p {
                    let at = self.pos_close(start, po.edge) + po.offset;
                    let slot = &mut required[po.net.as_raw() as usize];
                    *slot = (*slot).min(RiseFall::splat(at));
                }
            }
            propagate_required(&self.graph, &mut required);

            let slacks = slack_table(&ready, &required);
            for (i, s) in slacks.iter().enumerate() {
                let sc = scalar_slack(*s);
                if sc < view.net_slack[i] {
                    view.net_slack[i] = sc;
                }
            }
            // Terminal slacks: sinks use their own closure seed against
            // the pass arrival; sources read the net slack at their
            // output in participating passes.
            for (k, r) in replicas.iter().enumerate() {
                if self.replica_pass[k] == p {
                    let close = self.pos_close(start, r.close_edge) + r.input_close_offset();
                    let arrive = ready[r.data_net.as_raw() as usize].worst();
                    let s = close.saturating_sub(arrive);
                    view.replica_in[k] = view.replica_in[k].min(s);
                }
                for out in [r.output_net, r.output_bar_net].into_iter().flatten() {
                    if self.in_pass(out, p) {
                        let s = scalar_slack(slacks[out.as_raw() as usize]);
                        view.replica_out[k] = view.replica_out[k].min(s);
                    }
                }
            }
            for (k, pi) in self.pis.iter().enumerate() {
                if self.in_pass(pi.net, p) {
                    let s = scalar_slack(slacks[pi.net.as_raw() as usize]);
                    view.pi_slack[k] = view.pi_slack[k].min(s);
                }
            }
            for (k, po) in self.pos.iter().enumerate() {
                if self.po_pass[k] == p {
                    let close = self.pos_close(start, po.edge) + po.offset;
                    let arrive = ready[po.net.as_raw() as usize].worst();
                    view.po_slack[k] = view.po_slack[k].min(close.saturating_sub(arrive));
                }
            }

            ready_tables.push(ready);
            required_tables.push(required);
        }
        view.storage = SlackStorage::Dense {
            ready: ready_tables,
            required: required_tables,
        };
        view
    }
}
