//! Journal-streaming replication, fencing terms, and quorum failover.
//!
//! The unit of replication is the write-ahead [`Journal`]: it already
//! captures, in order, every request that changed a design's state,
//! and [`Journal::replay`] already rebuilds a bit-identical session
//! from it (panic recovery and LRU-eviction reload both rely on
//! that). Streaming the same entries to another process therefore
//! yields a warm shadow of the whole fleet for free — no second
//! serialisation format, no snapshot shipping.
//!
//! ## Wire protocol
//!
//! Three verbs, served by **any** node — primary or standby, which is
//! what makes chained primary→standby→standby topologies work:
//!
//! * `repl-state [term=T]` — one payload line per open design:
//!   `ID EPOCH LEN FINGERPRINT` (sorted by id, fingerprint in hex or
//!   `-` before the first mutation). The reply carries the serving
//!   node's `term=`/`role=`.
//! * `repl-pull design=ID epoch=E since=N [max=BYTES] [term=T]` —
//!   journal entries from index `N` on, each encoded as a nested
//!   `entry expect=VERB payload=K` frame whose payload is the
//!   original request frame verbatim. When the caller's `epoch` no
//!   longer matches (the upstream rewrote history: a fresh `load` or
//!   a compaction), the reply carries `resync=1` and restarts from
//!   index 0. Pages are bounded: entries are batched until the next
//!   *encoded entry frame* would push the payload past `max`
//!   (clamped to [`MAX_STREAM_BYTES`]), and the remainder is flagged
//!   `more=1` — the continuation cursor is simply `since=N+count`, so
//!   a resync under sustained write load streams fixed-size pages,
//!   one per round trip. A complete page (`more=0`) carries the
//!   upstream's fingerprint for the replica to verify its rebuilt
//!   session against.
//! * `vote term=T candidate=ID er=E lr=L` — a promotion ballot (see
//!   below). `granted=1|0` plus the voter's `term=` come back.
//!
//! Any replication request or reply carrying `term=` is an
//! observation: a node that sees a term higher than its own adopts
//! it, and a *primary* that does so demotes on the spot.
//!
//! ## Terms and fencing
//!
//! Every node carries a monotonically increasing **fencing term**; a
//! fresh primary starts at term 1, a fresh standby at 0 (it adopts
//! its upstream's term from the first sync reply). Every promotion
//! bumps the term. A node whose role is not primary answers every
//! mutating verb (`load`/`analyze`/`constraints`/`eco`, plus
//! `open`/`close`) with `error code=fenced term=N` — so a zombie
//! ex-primary that returns after a partition heals is rejected by the
//! cluster (its replication traffic carries a stale term) and, the
//! moment it hears the higher term over gossip or any reply, demotes
//! itself, resets its now-divergent shadows, and resyncs from the new
//! primary. Reads keep flowing on every node throughout: warm
//! queryable shadows are the point of a standby.
//!
//! ## Promotion
//!
//! Without [`peers`](crate::ServerOptions::peers) the PR-7 behaviour
//! stands: a lone standby promotes unilaterally after
//! `promote_after` consecutive sync failures (term += 1). That mode
//! cannot distinguish a dead primary from a partition — which is
//! exactly the split-brain hazard — so with `--peers A,B,...` a
//! standby that loses its upstream instead runs a **ranked quorum
//! election**: it bumps a candidate term, votes for itself, and asks
//! every peer for a `vote`. A voter grants when the candidate's
//! replication rank — `(Σ epochs, Σ journal lens)` over the fleet,
//! node id as tiebreak — is at least its own, refuses to vote twice
//! in one term (a competing candidate abandons its own candidacy only
//! for a *strictly* higher-ranked rival), and a sitting primary never
//! grants at its own term. Promotion requires grants from a majority
//! of `peers + 1` nodes, so two standbys can never both promote: the
//! most-caught-up one wins, deterministically. A failed candidate
//! probes the peers for whoever did win and chains behind it.
//!
//! ## The node loop
//!
//! A replicating daemon runs one control loop — [`run_node`] on a
//! dedicated thread under the blocking transport, the nonblocking
//! [`NodeDriver`] state machine inside the reactor's poll loop (no
//! dedicated thread, no blocking client on the sync path). Each round
//! it syncs from its upstream (standby), probes for a primary when it
//! has none, or gossips its term to one peer (clustered primary, so
//! partitions heal). Failed rounds retry on the same seeded
//! decorrelated-jitter backoff the client uses
//! ([`standby_backoff_schedule`](crate::standby_backoff_schedule)),
//! bounded to `[sync_interval, 8 × sync_interval]` — two standbys
//! with different seeds probe a dead primary on diverging schedules.
//!
//! Because a panicked request is never journaled, a standby's state
//! after failover is exactly the last state any client was told
//! about.

use std::collections::HashSet;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Arc, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

use hb_io::{Frame, FrameDecoder};

use crate::fleet::{DesignSlot, DEFAULT_DESIGN};
use crate::journal::{self, Journal};
use crate::net::{lock, Backoff, Client, ServerOptions, Shared};
use crate::sys::{PollFd, POLLIN, POLLOUT};

/// Hard cap on one `repl-pull` page's payload. Entries are batched up
/// to the requested `max=` (clamped here) and the remainder flagged
/// with `more=1`; a single larger entry (a big `load`) still ships
/// whole, and stays inside the codec's 16 MiB frame limit because
/// session payloads are capped at 8 MiB.
pub const MAX_STREAM_BYTES: usize = 12 * 1024 * 1024;

/// Smallest page bound a pull may request; anything lower still ships
/// at least one entry per page, this just keeps the clamp sane.
pub(crate) const MIN_PAGE_BYTES: usize = 1024;

/// How long one outbound replication exchange (connect + request +
/// reply) may take before the round is declared failed.
const EXCHANGE_DEADLINE: Duration = Duration::from_secs(5);

fn err(code: &str, message: impl std::fmt::Display) -> Frame {
    Frame::new("error")
        .arg("code", code)
        .with_payload(message.to_string())
}

fn fp_hex(fp: Option<u64>) -> String {
    match fp {
        Some(fp) => format!("{fp:016x}"),
        None => "-".to_owned(),
    }
}

// --- Node control state ----------------------------------------------

/// What this node is to its cluster right now.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Role {
    Primary,
    Standby,
}

impl Role {
    pub(crate) fn as_str(self) -> &'static str {
        match self {
            Role::Primary => "primary",
            Role::Standby => "standby",
        }
    }
}

/// The node's replication control state, behind `Shared::node`.
pub(crate) struct NodeCtl {
    pub(crate) role: Role,
    /// The fencing term (see the module doc).
    pub(crate) term: u64,
    /// Where this node syncs from when standing by. `None` means the
    /// upstream is unknown (lost, or an election just failed) and the
    /// node loop is probing the peers for the current primary.
    pub(crate) upstream: Option<String>,
    /// The vote ledger: the one `(term, candidate)` ballot this node
    /// granted most recently. A node never votes twice in one term
    /// (the self-override in [`vote`] is the single, safe exception).
    pub(crate) voted: Option<(u64, String)>,
    /// This node's id — its listen address, set at bind. Peers address
    /// a node by it and elections tiebreak on it.
    pub(crate) id: String,
}

impl NodeCtl {
    pub(crate) fn new(options: &ServerOptions) -> NodeCtl {
        let standby = options.standby_of.is_some();
        NodeCtl {
            role: if standby {
                Role::Standby
            } else {
                Role::Primary
            },
            term: u64::from(!standby),
            upstream: options.standby_of.clone(),
            voted: None,
            id: String::new(),
        }
    }
}

/// Recomputes the control state from the (possibly rewired) options,
/// preserving the node id. Called by both transports right before
/// serving: tests bind a whole cluster on ephemeral ports first and
/// only then know the addresses to put in `peers`/`standby_of`.
pub(crate) fn refresh_node(shared: &Shared) {
    let mut ctl = lock(&shared.node);
    let id = std::mem::take(&mut ctl.id);
    *ctl = NodeCtl::new(&shared.options);
    ctl.id = id;
    shared.metrics.term.set(ctl.term as i64);
}

/// The node's current role and term, in one lock.
pub(crate) fn role_term(shared: &Shared) -> (&'static str, u64) {
    let ctl = lock(&shared.node);
    (ctl.role.as_str(), ctl.term)
}

/// Appends `role=`/`term=` to an `ok` reply — the observability face
/// of the control state (`stats` and `designs` carry it).
pub(crate) fn annotate(shared: &Shared, reply: Frame) -> Frame {
    if reply.verb != "ok" {
        return reply;
    }
    let (role, term) = role_term(shared);
    reply.arg("role", role).arg("term", term)
}

/// Adopts `term` when it is newer than ours; a primary that learns of
/// a higher term demotes on the spot (it lost an election it never
/// saw) and resets its shadows — its journal may hold acknowledged
/// writes the quorum never saw, and silently serving them as a
/// standby would be divergence. Returns whether a demotion happened.
pub(crate) fn observe(shared: &Shared, term: u64) -> bool {
    let demoted = {
        let mut ctl = lock(&shared.node);
        if term <= ctl.term {
            return false;
        }
        ctl.term = term;
        shared.metrics.term.set(term as i64);
        if ctl.role == Role::Primary {
            ctl.role = Role::Standby;
            ctl.upstream = None;
            true
        } else {
            false
        }
    };
    if demoted {
        reset_shadows(shared);
    }
    demoted
}

fn observe_arg(shared: &Shared, frame: &Frame) -> Option<u64> {
    let term = frame.get("term").and_then(|v| v.parse::<u64>().ok())?;
    observe(shared, term);
    Some(term)
}

/// Wipes every design's shadow (journal and session) so the next sync
/// round resyncs from zero. The price of a demotion: whatever this
/// node journaled beyond the quorum's history is unrecoverable
/// anyway, and a wiped shadow is the only state a chained `repl-pull`
/// can serve without spreading the divergence.
fn reset_shadows(shared: &Shared) {
    for slot in shared.fleet.snapshot() {
        let mut session = slot.session.write().unwrap_or_else(PoisonError::into_inner);
        slot.session.clear_poison();
        let mut journal = lock(&slot.journal);
        journal.sync_reset(0);
        *session = shared.fleet.fresh_session();
        drop(journal);
        drop(session);
        shared.fleet.settle(&slot);
    }
}

/// The write fence. `None` lets the request through; `Some` is the
/// structured rejection. Mutating verbs (plus `open`/`close`) are
/// only accepted by the primary; a request carrying a `term=` below
/// ours is rejected even on a primary (a fenced ex-primary's write
/// relayed late). A request carrying a *higher* term is itself an
/// observation — a new primary's first write demotes a zombie on
/// contact.
pub(crate) fn fence(shared: &Shared, req: &Frame) -> Option<Frame> {
    if !(journal::is_mutating(&req.verb) || matches!(req.verb.as_str(), "open" | "close")) {
        return None;
    }
    let issuer = observe_arg(shared, req);
    let ctl = lock(&shared.node);
    let stale = issuer.is_some_and(|t| t < ctl.term);
    if ctl.role == Role::Standby || stale {
        return Some(
            Frame::new("error")
                .arg("code", "fenced")
                .arg("term", ctl.term)
                .arg("role", ctl.role.as_str())
                .with_payload(if stale {
                    "stale issuer term; this write was fenced"
                } else {
                    "this node is not the primary; writes are fenced"
                }),
        );
    }
    None
}

/// The node's replication rank: how much acknowledged history its
/// fleet holds, `(Σ journal epochs, Σ journal lens)`. Elections
/// compare ranks lexicographically (node id as final tiebreak) so the
/// most-caught-up standby wins. Ranks are stable while the primary is
/// down — standbys fence writes — which is what makes the comparison
/// meaningful.
pub(crate) fn rank(shared: &Shared) -> (u64, u64) {
    let mut epochs = 0u64;
    let mut lens = 0u64;
    for slot in shared.fleet.snapshot() {
        let journal = lock(&slot.journal);
        epochs += journal.epoch();
        lens += journal.len() as u64;
    }
    (epochs, lens)
}

// --- Serving side -----------------------------------------------------

/// Whether the injected-partition point cuts this exchange (serving
/// or initiating — the node is cut off from its cluster's control
/// plane either way, while ordinary client verbs keep flowing).
fn link_dropped(shared: &Shared) -> bool {
    shared.options.faults.fires(hb_fault::REPL_LINK_DROP)
}

/// Serves `repl-state`: every open design's replication cursor, plus
/// this node's term and role (a probe is just a `repl-state` whose
/// caller only reads the header).
pub(crate) fn repl_state(shared: &Shared, req: &Frame) -> Frame {
    if link_dropped(shared) {
        return err("io", "replication link dropped (injected partition)");
    }
    observe_arg(shared, req);
    let slots = shared.fleet.snapshot();
    let mut body = String::new();
    for slot in &slots {
        let journal = lock(&slot.journal);
        body.push_str(&format!(
            "{} {} {} {}\n",
            slot.id,
            journal.epoch(),
            journal.len(),
            fp_hex(journal.fingerprint())
        ));
    }
    let (role, term) = role_term(shared);
    Frame::new("ok")
        .arg("count", slots.len())
        .arg("term", term)
        .arg("role", role)
        .with_payload(body)
}

/// Serves `repl-pull`: one bounded page of a design's journal from
/// the caller's cursor on (or from zero with `resync=1` when the
/// cursor's epoch is stale).
pub(crate) fn repl_pull(shared: &Shared, req: &Frame) -> Frame {
    if link_dropped(shared) {
        return err("io", "replication link dropped (injected partition)");
    }
    observe_arg(shared, req);
    let Some(id) = req.get("design") else {
        return err("usage", "repl-pull needs design=ID");
    };
    let Some(slot) = shared.fleet.peek(id) else {
        return err("unknown-design", format!("no open design `{id}`"));
    };
    let epoch: u64 = match req.get("epoch").map(str::parse) {
        None => 0,
        Some(Ok(e)) => e,
        Some(Err(_)) => return err("usage", "bad epoch value"),
    };
    let since: usize = match req.get("since").map(str::parse) {
        None => 0,
        Some(Ok(n)) => n,
        Some(Err(_)) => return err("usage", "bad since value"),
    };
    let max: usize = match req.get("max").map(str::parse) {
        None => shared.options.repl_page_bytes,
        Some(Ok(n)) => n,
        Some(Err(_)) => return err("usage", "bad max value"),
    };
    let max = max.clamp(MIN_PAGE_BYTES, MAX_STREAM_BYTES);
    let journal = lock(&slot.journal);
    let (resync, start) = if epoch != journal.epoch() || since > journal.len() {
        (1u8, 0usize)
    } else {
        (0u8, since)
    };
    let mut body = String::new();
    let mut count = 0usize;
    let mut more = 0u8;
    for entry in &journal.entries()[start..] {
        // The bound is judged on the bytes that actually land in the
        // page — the full encoded `entry` wrapper frame, not just the
        // inner request — so an entry landing exactly on the boundary
        // fits exactly, and the continuation cursor `since+count`
        // neither drops nor duplicates it.
        let encoded = Frame::new("entry")
            .arg("expect", &entry.expect)
            .with_payload(entry.req.encode())
            .encode();
        if count > 0 && body.len() + encoded.len() > max {
            more = 1;
            break;
        }
        body.push_str(&encoded);
        count += 1;
    }
    let (role, term) = role_term(shared);
    let mut reply = Frame::new("ok")
        .arg("design", id)
        .arg("epoch", journal.epoch())
        .arg("since", start)
        .arg("count", count)
        .arg("resync", resync)
        .arg("more", more)
        .arg("term", term)
        .arg("role", role);
    if more == 0 {
        if let Some(fp) = journal.fingerprint() {
            reply = reply.arg("fp", format!("{fp:016x}"));
        }
    }
    reply.with_payload(body)
}

/// Serves `vote`: one promotion ballot. The grant rules (see the
/// module doc) make two simultaneous promotions impossible and the
/// most-caught-up candidate the deterministic winner.
pub(crate) fn vote(shared: &Shared, req: &Frame) -> Frame {
    if link_dropped(shared) {
        return err("io", "replication link dropped (injected partition)");
    }
    let Some(term) = req.get("term").and_then(|v| v.parse::<u64>().ok()) else {
        return err("usage", "vote needs term=N");
    };
    let Some(candidate) = req.get("candidate") else {
        return err("usage", "vote needs candidate=ID");
    };
    let er: u64 = req.get("er").and_then(|v| v.parse().ok()).unwrap_or(0);
    let lr: u64 = req.get("lr").and_then(|v| v.parse().ok()).unwrap_or(0);
    // Rank before control lock: both sides take journal locks and the
    // node lock, always in that order.
    let (my_er, my_lr) = rank(shared);
    let mut ctl = lock(&shared.node);
    let deny = |ctl: &NodeCtl| {
        Frame::new("ok")
            .arg("granted", 0)
            .arg("term", ctl.term)
            .arg("role", ctl.role.as_str())
    };
    if term < ctl.term || (ctl.role == Role::Primary && term == ctl.term) {
        // Stale ballot, or a ballot at the term this very node
        // already holds as primary.
        return deny(&ctl);
    }
    let cand_key = (er, lr, candidate);
    let my_key = (my_er, my_lr, ctl.id.as_str());
    let granted = match &ctl.voted {
        // One vote per term — but an identical re-ask is answered
        // consistently (elections retry).
        Some((t, prev)) if *t == term && prev == candidate => true,
        // A candidate abandons its own candidacy only for a strictly
        // higher-ranked rival: of two simultaneous candidates exactly
        // one outranks the other, so exactly one election survives.
        Some((t, prev)) if *t == term && *prev == ctl.id => cand_key > my_key,
        Some((t, _)) if *t == term => false,
        // First ballot this term: grant anyone at least as caught up.
        _ => (er, lr) >= (my_er, my_lr),
    };
    if !granted {
        return deny(&ctl);
    }
    let demote = term > ctl.term && ctl.role == Role::Primary;
    if term > ctl.term {
        ctl.term = term;
        shared.metrics.term.set(term as i64);
    }
    if demote {
        ctl.role = Role::Standby;
    }
    ctl.voted = Some((term, candidate.to_owned()));
    // Follow the likely winner; if it loses, the probe loop finds the
    // real primary (or this node chains behind the loser, which
    // itself chains on).
    ctl.upstream = Some(candidate.to_owned());
    let reply = Frame::new("ok")
        .arg("granted", 1)
        .arg("term", ctl.term)
        .arg("role", ctl.role.as_str());
    drop(ctl);
    if demote {
        reset_shadows(shared);
    }
    reply
}

// --- Sync (pulling) side ---------------------------------------------

/// One design's line in a `repl-state` payload.
struct RemoteCursor {
    id: String,
    epoch: u64,
    len: usize,
    fp: Option<u64>,
}

fn parse_state(payload: &str) -> Result<Vec<RemoteCursor>, String> {
    payload
        .lines()
        .map(|line| {
            let mut parts = line.split_whitespace();
            let mut parse = || {
                parts
                    .next()
                    .ok_or_else(|| format!("short state line `{line}`"))
            };
            let id = parse()?.to_owned();
            let epoch = parse()?
                .parse()
                .map_err(|_| format!("bad epoch in `{line}`"))?;
            let len = parse()?
                .parse()
                .map_err(|_| format!("bad len in `{line}`"))?;
            let fp = u64::from_str_radix(parse()?, 16).ok();
            Ok(RemoteCursor { id, epoch, len, fp })
        })
        .collect()
}

/// Whether the upstream's reply disqualifies it as a sync source:
/// anything but `ok`, or a term behind ours (we already follow a
/// newer cluster history). Observes the reply's term either way.
fn vet_reply(shared: &Shared, what: &str, reply: &Frame) -> Result<(), String> {
    if reply.verb != "ok" {
        return Err(format!(
            "{what} answered `{}`: {}",
            reply.verb,
            reply.payload.as_deref().unwrap_or("")
        ));
    }
    if let Some(term) = observe_arg(shared, reply) {
        let own = lock(&shared.node).term;
        if term < own {
            return Err(format!(
                "{what}: upstream term {term} is behind ours ({own})"
            ));
        }
    }
    Ok(())
}

/// The pull request that would advance one design's shadow toward
/// `cursor`, or `None` when the shadow is already level (same epoch
/// and either ahead of this — possibly stale — snapshot, or at it
/// with a matching fingerprint).
fn pull_request(shared: &Shared, slot: &DesignSlot, cursor: &RemoteCursor) -> Option<Frame> {
    let (epoch, len, fp) = lock(&slot.journal).cursor();
    if epoch == cursor.epoch && (len > cursor.len || (len == cursor.len && fp == cursor.fp)) {
        return None;
    }
    let page = shared
        .options
        .repl_page_bytes
        .clamp(MIN_PAGE_BYTES, MAX_STREAM_BYTES);
    let term = lock(&shared.node).term;
    Some(
        Frame::new("repl-pull")
            .arg("design", &cursor.id)
            .arg("epoch", epoch)
            .arg("since", len)
            .arg("max", page)
            .arg("term", term),
    )
}

/// Mirrors the upstream's design table: prunes local designs it no
/// longer lists (never the default one).
fn prune_absent(shared: &Shared, cursors: &[RemoteCursor]) {
    let present: HashSet<&str> = cursors.iter().map(|c| c.id.as_str()).collect();
    for slot in shared.fleet.snapshot() {
        if !present.contains(slot.id.as_str()) && slot.id != DEFAULT_DESIGN {
            shared.fleet.remove(&slot.id);
        }
    }
}

/// One blocking sync round: pull the upstream's design table, catch
/// every design's shadow up page by page, prune closed ones.
fn sync_once(shared: &Shared, upstream: &str) -> Result<(), String> {
    if link_dropped(shared) {
        return Err("replication link dropped (injected partition)".into());
    }
    let mut client = Client::connect(upstream).map_err(|e| format!("connect: {e}"))?;
    client
        .set_timeout(Some(EXCHANGE_DEADLINE))
        .map_err(|e| format!("timeout: {e}"))?;
    let own_term = lock(&shared.node).term;
    let state = client
        .request(&Frame::new("repl-state").arg("term", own_term))
        .map_err(|e| format!("repl-state: {e}"))?;
    vet_reply(shared, "repl-state", &state)?;
    let cursors = parse_state(state.payload.as_deref().unwrap_or(""))?;
    for cursor in &cursors {
        sync_design(shared, &mut client, cursor)?;
    }
    prune_absent(shared, &cursors);
    Ok(())
}

/// Catches one design's shadow up to the upstream's cursor, pulling
/// bounded pages until a complete one lands or the level check says
/// there is nothing to pull.
fn sync_design(shared: &Shared, client: &mut Client, cursor: &RemoteCursor) -> Result<(), String> {
    let slot = shared.fleet.ensure(&cursor.id);
    loop {
        let Some(req) = pull_request(shared, &slot, cursor) else {
            return Ok(());
        };
        let reply = client
            .request(&req)
            .map_err(|e| format!("repl-pull {}: {e}", cursor.id))?;
        vet_reply(shared, "repl-pull", &reply)?;
        apply_pull(shared, &slot, &reply)?;
        if reply.get("more") != Some("1") {
            return Ok(());
        }
    }
}

/// Applies one `repl-pull` page to a shadow slot: resync-reset when
/// flagged, replay every entry, verify the fingerprint on a complete
/// page. A partial page (`more=1`) clears the recorded fingerprint —
/// the shadow is mid-stream, and a chained puller must not mistake
/// the stale fingerprint for a settled one. Any divergence resets the
/// shadow so the next round resyncs from zero.
fn apply_pull(shared: &Shared, slot: &DesignSlot, reply: &Frame) -> Result<(), String> {
    let epoch: u64 = reply
        .get("epoch")
        .and_then(|v| v.parse().ok())
        .ok_or("repl-pull reply without epoch")?;
    let payload = reply.payload.as_deref().unwrap_or("");
    shared.metrics.repl_pages.inc();
    shared.metrics.repl_bytes.add(payload.len() as u64);
    let mut session = slot.session.write().unwrap_or_else(PoisonError::into_inner);
    slot.session.clear_poison();
    let mut journal = lock(&slot.journal);
    let reset = |journal: &mut Journal, session: &mut crate::session::Session, epoch: u64| {
        journal.sync_reset(epoch);
        *session = shared.fleet.fresh_session();
    };
    if reply.get("resync") == Some("1") {
        reset(&mut journal, &mut session, epoch);
    }
    let mut decoder = FrameDecoder::new();
    decoder.feed(payload.as_bytes());
    loop {
        let entry = match decoder.next_frame() {
            Ok(Some(entry)) => entry,
            Ok(None) => break,
            Err(e) => return Err(format!("bad replication stream: {e}")),
        };
        if entry.verb != "entry" {
            return Err(format!("unexpected `{}` in replication stream", entry.verb));
        }
        let expect = entry.get("expect").unwrap_or("ok").to_owned();
        let mut inner = FrameDecoder::new();
        inner.feed(entry.payload.as_deref().unwrap_or("").as_bytes());
        let req = match inner.next_frame() {
            Ok(Some(req)) => req,
            Ok(None) | Err(_) => return Err("undecodable replication entry".into()),
        };
        let got = catch_unwind(AssertUnwindSafe(|| session.handle_replay(&req)));
        match got {
            Ok(got) if got.verb == expect => journal.sync_push(req, expect),
            outcome => {
                // The shadow diverged (or the replay panicked): throw
                // it away and resync from zero next round.
                reset(&mut journal, &mut session, 0);
                let got = match outcome {
                    Ok(got) => got.verb,
                    Err(_) => "panic".to_owned(),
                };
                return Err(format!(
                    "replicated `{}` replayed to `{got}` (expected `{expect}`)",
                    req.verb
                ));
            }
        }
    }
    decoder
        .finish()
        .map_err(|e| format!("truncated replication stream: {e}"))?;
    if reply.get("more") == Some("1") {
        journal.set_fingerprint(None);
    } else {
        let fp = reply
            .get("fp")
            .and_then(|v| u64::from_str_radix(v, 16).ok());
        journal.set_fingerprint(fp);
        if let Some(fp) = fp {
            if session.fingerprint() != fp {
                reset(&mut journal, &mut session, 0);
                return Err("replicated fingerprint mismatch; resyncing".into());
            }
        }
    }
    drop(journal);
    drop(session);
    shared.fleet.settle(slot);
    Ok(())
}

// --- Probes, gossip, elections ---------------------------------------

/// One bounded request/reply exchange on a fresh connection — probes,
/// gossip and votes use this instead of `Client::connect` so a
/// blackholed peer costs a bounded connect timeout, not a hang.
fn request_once(addr: &str, req: &Frame, timeout: Duration) -> Result<Frame, String> {
    let sock = addr
        .to_socket_addrs()
        .ok()
        .and_then(|mut a| a.next())
        .ok_or_else(|| format!("unresolvable peer `{addr}`"))?;
    let stream =
        TcpStream::connect_timeout(&sock, timeout).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut client = Client::from_stream(stream).map_err(|e| format!("client {addr}: {e}"))?;
    client
        .set_timeout(Some(timeout))
        .map_err(|e| format!("timeout {addr}: {e}"))?;
    client.request(req).map_err(|e| format!("{addr}: {e}"))
}

/// The bounded timeout probes, gossip and votes run under: generous
/// against the sync interval but never a multi-second stall (the
/// reactor runs elections inline).
fn control_timeout(shared: &Shared) -> Duration {
    shared
        .options
        .sync_interval
        .clamp(Duration::from_millis(100), Duration::from_secs(1))
}

/// Asks one peer for its term and role (a header-only `repl-state`).
/// Returns the peer's reply when the exchange succeeded.
fn probe_one(shared: &Shared, peer: &str) -> Option<Frame> {
    if link_dropped(shared) {
        return None;
    }
    let term = lock(&shared.node).term;
    let reply = request_once(
        peer,
        &Frame::new("repl-state").arg("term", term),
        control_timeout(shared),
    )
    .ok()?;
    observe_arg(shared, &reply);
    (reply.verb == "ok").then_some(reply)
}

/// Scans the peers for the current primary: the highest-termed node
/// answering `role=primary` at a term at least ours.
fn probe_peers(shared: &Shared) -> Option<String> {
    let mut best: Option<(u64, String)> = None;
    for peer in &shared.options.peers {
        let Some(reply) = probe_one(shared, peer) else {
            continue;
        };
        let Some(term) = reply.get("term").and_then(|v| v.parse::<u64>().ok()) else {
            continue;
        };
        if reply.get("role") == Some("primary")
            && term >= lock(&shared.node).term
            && best.as_ref().is_none_or(|(t, _)| term > *t)
        {
            best = Some((term, peer.clone()));
        }
    }
    best.map(|(_, addr)| addr)
}

/// A clustered primary's heartbeat: probe one peer per round (rotating)
/// so a healed partition is discovered — the zombie side hears the
/// higher term and demotes inside `observe`.
fn gossip(shared: &Shared, idx: &mut usize) {
    let peers = &shared.options.peers;
    if peers.is_empty() {
        return;
    }
    let peer = &peers[*idx % peers.len()];
    *idx = idx.wrapping_add(1);
    let _ = probe_one(shared, peer);
}

/// Promotes without a quorum — the legacy lone-standby mode, the only
/// option when no peers are configured.
fn promote_unilaterally(shared: &Shared) {
    let mut ctl = lock(&shared.node);
    ctl.role = Role::Primary;
    ctl.term += 1;
    ctl.upstream = None;
    shared.metrics.term.set(ctl.term as i64);
    shared.metrics.promotions.inc();
}

/// Runs one ranked quorum election. Returns whether this node
/// promoted. On failure the node goes back to probing (it must not
/// retry at ever-higher terms and depose whoever did win).
fn run_election(shared: &Shared) -> bool {
    let peers = shared.options.peers.clone();
    if peers.is_empty() {
        promote_unilaterally(shared);
        return true;
    }
    let (ballot_term, my_id) = {
        let mut ctl = lock(&shared.node);
        if ctl.role == Role::Primary {
            return true;
        }
        let term = ctl.term + 1;
        match &ctl.voted {
            // Already pledged this (or a later) term to someone else:
            // campaigning now could hand two candidates a majority.
            Some((t, c)) if *t >= term && *c != ctl.id => return false,
            _ => {}
        }
        ctl.voted = Some((term, ctl.id.clone()));
        (term, ctl.id.clone())
    };
    let (er, lr) = rank(shared);
    let ballot = Frame::new("vote")
        .arg("term", ballot_term)
        .arg("candidate", &my_id)
        .arg("er", er)
        .arg("lr", lr);
    let timeout = control_timeout(shared);
    let mut granted = 1usize; // self
    for peer in &peers {
        if link_dropped(shared) {
            continue;
        }
        let Ok(reply) = request_once(peer, &ballot, timeout) else {
            continue;
        };
        observe_arg(shared, &reply);
        if reply.verb == "ok" && reply.get("granted") == Some("1") {
            granted += 1;
        }
    }
    let majority = peers.len().div_ceil(2) + 1;
    let mut ctl = lock(&shared.node);
    let won = granted >= majority
        && ctl.term < ballot_term + 1
        && ctl.voted.as_ref() == Some(&(ballot_term, my_id.clone()));
    if won {
        ctl.role = Role::Primary;
        ctl.term = ballot_term;
        ctl.upstream = None;
        shared.metrics.term.set(ballot_term as i64);
        shared.metrics.promotions.inc();
    } else {
        // Lost (or overridden for a better candidate mid-count): find
        // whoever won instead of deposing them at term+2.
        ctl.upstream = None;
    }
    won
}

/// Promotion, by whichever rule the configuration arms: unilateral
/// without peers, ranked quorum election with them.
fn seek_promotion(shared: &Shared) -> bool {
    if shared.options.peers.is_empty() {
        promote_unilaterally(shared);
        true
    } else {
        run_election(shared)
    }
}

/// A deterministic-enough per-process seed for the reconnect backoff:
/// node id, clock and pid, so two standbys of one primary never walk
/// the same schedule.
fn loop_seed(shared: &Shared) -> u64 {
    let id_hash = lock(&shared.node)
        .id
        .bytes()
        .fold(0u64, |h, b| h.wrapping_mul(31).wrapping_add(u64::from(b)));
    let clock = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_nanos() as u64);
    clock ^ id_hash.rotate_left(17) ^ (u64::from(std::process::id()) << 32)
}

fn reconnect_backoff(shared: &Shared) -> Backoff {
    let interval = shared.options.sync_interval;
    Backoff::with_bounds(loop_seed(shared), interval, interval.saturating_mul(8))
}

// --- The blocking node loop ------------------------------------------

/// The node control loop for the blocking transport (the reactor runs
/// [`NodeDriver`] instead): sync from the upstream while standing by,
/// probe for a primary when the upstream is unknown, gossip the term
/// while primary-with-peers, and seek promotion after `promote_after`
/// consecutive misses. Exits on shutdown, or on promotion with no
/// peers left to gossip to.
pub(crate) fn run_node(shared: &Arc<Shared>) {
    let interval = shared.options.sync_interval;
    let promote_after = shared.options.promote_after.max(1);
    let mut backoff = reconnect_backoff(shared);
    let mut failures = 0u32;
    let mut probe_rounds = 0u32;
    let mut gossip_idx = 0usize;
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let (role, upstream) = {
            let ctl = lock(&shared.node);
            (ctl.role, ctl.upstream.clone())
        };
        let wait = match role {
            Role::Primary => {
                if shared.options.peers.is_empty() {
                    // A promoted lone standby: nothing left to sync,
                    // probe or gossip — no zombie sync thread.
                    return;
                }
                gossip(shared, &mut gossip_idx);
                interval
            }
            Role::Standby => match upstream {
                Some(addr) => match sync_once(shared, &addr) {
                    Ok(()) => {
                        failures = 0;
                        backoff.reset();
                        interval
                    }
                    Err(_) => {
                        failures += 1;
                        if failures >= promote_after {
                            failures = 0;
                            if !seek_promotion(shared) {
                                // Election lost; probe for the winner.
                                probe_rounds = 0;
                            }
                        }
                        backoff.next_wait(None)
                    }
                },
                None => {
                    if let Some(found) = probe_peers(shared) {
                        lock(&shared.node).upstream = Some(found);
                        probe_rounds = 0;
                        backoff.reset();
                        Duration::ZERO
                    } else {
                        probe_rounds += 1;
                        if probe_rounds >= promote_after {
                            probe_rounds = 0;
                            let _ = seek_promotion(shared);
                        }
                        backoff.next_wait(None)
                    }
                }
            },
        };
        let mut slept = Duration::ZERO;
        while slept < wait {
            if shared.shutdown.load(Ordering::Acquire) {
                return;
            }
            let step = (wait - slept).min(Duration::from_millis(25));
            thread::sleep(step);
            slept += step;
        }
    }
}

// --- The reactor-resident node driver --------------------------------

/// How one in-flight exchange advanced.
enum Outcome {
    /// Mid-exchange; keep the fd in the poll set.
    Pending,
    /// The sync round completed: every design level, table pruned.
    SyncOk,
    /// A probe found the primary at `addr`.
    ProbePrimary(String),
    /// A probe completed but found no primary (the peer is a standby,
    /// or its term is stale).
    ProbeMiss,
    /// The exchange failed (connect, transport, vetting, or replay).
    Failed,
}

/// One nonblocking request/reply conversation with a peer: queued
/// request bytes flush as the socket drains, reply bytes feed the
/// push decoder, and each complete reply frame is stepped through the
/// operation — which may queue the next request on the same
/// connection (a multi-page pull never reconnects).
struct Exchange {
    stream: TcpStream,
    decoder: FrameDecoder,
    out: Vec<u8>,
    out_start: usize,
    started: Instant,
    peer: String,
    op: Op,
}

enum Op {
    /// Awaiting the sync round's `repl-state` from the upstream.
    SyncState,
    /// Awaiting one design's `repl-pull` page.
    SyncPull {
        cursors: Vec<RemoteCursor>,
        idx: usize,
    },
    /// Awaiting a probe/gossip `repl-state` (header only).
    Probe,
}

impl Exchange {
    /// Opens the connection (bounded connect, then nonblocking) and
    /// queues the opening request.
    fn start(shared: &Shared, peer: &str, op: Op) -> Result<Exchange, ()> {
        if link_dropped(shared) {
            return Err(());
        }
        let sock = peer
            .to_socket_addrs()
            .ok()
            .and_then(|mut a| a.next())
            .ok_or(())?;
        // The one bounded blocking step: a dead loopback peer refuses
        // instantly, a blackholed one costs at most the control
        // timeout — never a poll-loop stall beyond it.
        let stream = TcpStream::connect_timeout(&sock, control_timeout(shared)).map_err(|_| ())?;
        let _ = stream.set_nodelay(true);
        stream.set_nonblocking(true).map_err(|_| ())?;
        let term = lock(&shared.node).term;
        let req = Frame::new("repl-state").arg("term", term);
        Ok(Exchange {
            stream,
            decoder: FrameDecoder::new(),
            out: req.encode().into_bytes(),
            out_start: 0,
            started: Instant::now(),
            peer: peer.to_owned(),
            op,
        })
    }

    /// Queues `req` as the next request on this connection.
    fn send(&mut self, req: &Frame) {
        self.out = req.encode().into_bytes();
        self.out_start = 0;
    }

    /// Flushes queued bytes, reads whatever arrived, and steps the
    /// operation once per complete reply frame — repeating while the
    /// socket keeps making progress so a fast peer streams pages
    /// without waiting out poll ticks.
    fn advance(&mut self, shared: &Shared) -> Outcome {
        loop {
            while self.out_start < self.out.len() {
                match (&self.stream).write(&self.out[self.out_start..]) {
                    Ok(0) => return Outcome::Failed,
                    Ok(n) => self.out_start += n,
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        return Outcome::Pending
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(_) => return Outcome::Failed,
                }
            }
            let mut buf = [0u8; 16 * 1024];
            loop {
                match self.decoder.next_frame() {
                    Ok(Some(reply)) => match self.step(shared, reply) {
                        Some(outcome) => return outcome,
                        None => break, // next request queued; write it now
                    },
                    Ok(None) => {}
                    Err(_) => return Outcome::Failed,
                }
                match (&self.stream).read(&mut buf) {
                    Ok(0) => return Outcome::Failed, // EOF before the reply
                    Ok(n) => self.decoder.feed(&buf[..n]),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        return Outcome::Pending
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(_) => return Outcome::Failed,
                }
            }
        }
    }

    /// Handles one complete reply frame. `None` means a follow-up
    /// request was queued and the exchange continues.
    fn step(&mut self, shared: &Shared, reply: Frame) -> Option<Outcome> {
        match &mut self.op {
            Op::Probe => {
                observe_arg(shared, &reply);
                if reply.verb != "ok" {
                    return Some(Outcome::Failed);
                }
                let term = reply.get("term").and_then(|v| v.parse::<u64>().ok());
                let primary = reply.get("role") == Some("primary")
                    && term.is_some_and(|t| t >= lock(&shared.node).term);
                Some(if primary {
                    Outcome::ProbePrimary(self.peer.clone())
                } else {
                    Outcome::ProbeMiss
                })
            }
            Op::SyncState => {
                if vet_reply(shared, "repl-state", &reply).is_err() {
                    return Some(Outcome::Failed);
                }
                let Ok(cursors) = parse_state(reply.payload.as_deref().unwrap_or("")) else {
                    return Some(Outcome::Failed);
                };
                prune_absent(shared, &cursors);
                self.op = Op::SyncPull { cursors, idx: 0 };
                self.queue_next_pull(shared)
            }
            Op::SyncPull { cursors, idx } => {
                if vet_reply(shared, "repl-pull", &reply).is_err() {
                    return Some(Outcome::Failed);
                }
                let slot = shared.fleet.ensure(&cursors[*idx].id);
                if apply_pull(shared, &slot, &reply).is_err() {
                    return Some(Outcome::Failed);
                }
                if reply.get("more") == Some("1") {
                    // Same design, next page: the level check produces
                    // the continuation request off the advanced cursor.
                    if let Some(req) = pull_request(shared, &slot, &cursors[*idx]) {
                        self.send(&req);
                        return None;
                    }
                }
                *idx += 1;
                self.queue_next_pull(shared)
            }
        }
    }

    /// Queues the pull for the next design that is behind, or reports
    /// the round complete.
    fn queue_next_pull(&mut self, shared: &Shared) -> Option<Outcome> {
        let Op::SyncPull { cursors, idx } = &mut self.op else {
            return Some(Outcome::Failed);
        };
        while *idx < cursors.len() {
            let slot = shared.fleet.ensure(&cursors[*idx].id);
            if let Some(req) = pull_request(shared, &slot, &cursors[*idx]) {
                let req = req.clone();
                self.send(&req);
                return None;
            }
            *idx += 1;
        }
        Some(Outcome::SyncOk)
    }
}

/// The reactor-resident node control state machine: [`run_node`]'s
/// duties driven from the poll loop. Sync rounds and probes run as
/// nonblocking [`Exchange`]s whose socket joins the reactor's poll
/// set; only the rare election path (the primary is already dead and
/// votes are due now) uses bounded blocking requests inline.
pub(crate) struct NodeDriver {
    backoff: Backoff,
    failures: u32,
    probe_rounds: u32,
    gossip_idx: usize,
    next_round: Instant,
    exchange: Option<Exchange>,
    /// Set once there is permanently nothing to do (a lone standby
    /// promoted with no peers).
    done: bool,
}

impl NodeDriver {
    /// `None` when this daemon takes no part in replication.
    pub(crate) fn new(shared: &Shared) -> Option<NodeDriver> {
        if shared.options.standby_of.is_none() && shared.options.peers.is_empty() {
            return None;
        }
        Some(NodeDriver {
            backoff: reconnect_backoff(shared),
            failures: 0,
            probe_rounds: 0,
            gossip_idx: 0,
            next_round: Instant::now(),
            exchange: None,
            done: false,
        })
    }

    /// The poll slot for the in-flight exchange, if any.
    pub(crate) fn pollfd(&self) -> Option<PollFd> {
        use std::os::fd::AsRawFd;
        self.exchange.as_ref().map(|ex| {
            let events = if ex.out_start < ex.out.len() {
                POLLOUT
            } else {
                POLLIN
            };
            PollFd::new(ex.stream.as_raw_fd(), events)
        })
    }

    /// How soon the driver needs the loop back, as a cap on the poll
    /// timeout (the exchange fd wakes it early when bytes arrive).
    pub(crate) fn timeout_hint(&self, now: Instant) -> Option<Duration> {
        if self.done {
            return None;
        }
        if self.exchange.is_some() {
            return Some(Duration::from_millis(50));
        }
        Some(self.next_round.saturating_duration_since(now))
    }

    /// One driver step: advance the in-flight exchange or start the
    /// next round when due.
    pub(crate) fn tick(&mut self, shared: &Shared, now: Instant) {
        if self.done {
            return;
        }
        if let Some(mut ex) = self.exchange.take() {
            match ex.advance(shared) {
                Outcome::Pending => {
                    if now.duration_since(ex.started) > EXCHANGE_DEADLINE {
                        self.round_failed(shared, now);
                    } else {
                        self.exchange = Some(ex);
                    }
                }
                Outcome::SyncOk => {
                    self.failures = 0;
                    self.probe_rounds = 0;
                    self.backoff.reset();
                    self.next_round = now + shared.options.sync_interval;
                }
                Outcome::ProbePrimary(addr) => {
                    let mut ctl = lock(&shared.node);
                    if ctl.role == Role::Standby {
                        ctl.upstream = Some(addr);
                    }
                    drop(ctl);
                    self.probe_rounds = 0;
                    self.backoff.reset();
                    self.next_round = now;
                }
                Outcome::ProbeMiss => {
                    let (role, _) = role_term(shared);
                    if role == "primary" {
                        // Gossip answered; nothing to adopt.
                        self.next_round = now + shared.options.sync_interval;
                    } else {
                        self.probe_missed(shared, now);
                    }
                }
                Outcome::Failed => self.round_failed(shared, now),
            }
            return;
        }
        if now < self.next_round {
            return;
        }
        self.start_round(shared, now);
    }

    fn start_round(&mut self, shared: &Shared, now: Instant) {
        let (role, upstream) = {
            let ctl = lock(&shared.node);
            (ctl.role, ctl.upstream.clone())
        };
        let target = match role {
            Role::Primary => {
                let peers = &shared.options.peers;
                if peers.is_empty() {
                    self.done = true;
                    return;
                }
                let peer = peers[self.gossip_idx % peers.len()].clone();
                self.gossip_idx = self.gossip_idx.wrapping_add(1);
                Some((peer, Op::Probe))
            }
            Role::Standby => match upstream {
                Some(addr) => Some((addr, Op::SyncState)),
                None => {
                    let peers = &shared.options.peers;
                    if peers.is_empty() {
                        None
                    } else {
                        let peer = peers[self.gossip_idx % peers.len()].clone();
                        self.gossip_idx = self.gossip_idx.wrapping_add(1);
                        Some((peer, Op::Probe))
                    }
                }
            },
        };
        let Some((peer, op)) = target else {
            self.next_round = now + shared.options.sync_interval;
            return;
        };
        match Exchange::start(shared, &peer, op) {
            Ok(ex) => self.exchange = Some(ex),
            Err(()) => {
                // Bind the role on its own statement: a `match` on
                // `lock(..).role` would keep the guard alive across the
                // arms, and `round_failed` re-locks the node control.
                let role = lock(&shared.node).role;
                match role {
                    Role::Primary => self.next_round = now + shared.options.sync_interval,
                    Role::Standby => self.round_failed(shared, now),
                }
            }
        }
    }

    /// A sync or probe round failed: count it toward promotion (sync
    /// misses) and back off.
    fn round_failed(&mut self, shared: &Shared, now: Instant) {
        let (role, upstream_known) = {
            let ctl = lock(&shared.node);
            (ctl.role, ctl.upstream.is_some())
        };
        if role == Role::Primary {
            self.next_round = now + shared.options.sync_interval;
            return;
        }
        if upstream_known {
            self.failures += 1;
            if self.failures >= shared.options.promote_after.max(1) {
                self.failures = 0;
                if !seek_promotion(shared) {
                    self.probe_rounds = 0;
                }
            }
        } else {
            self.probe_missed(shared, now);
            return;
        }
        self.next_round = now + self.backoff.next_wait(None);
    }

    /// A probe completed without finding a primary.
    fn probe_missed(&mut self, shared: &Shared, now: Instant) {
        self.probe_rounds += 1;
        if self.probe_rounds >= shared.options.promote_after.max(1) {
            self.probe_rounds = 0;
            let _ = seek_promotion(shared);
        }
        self.next_round = now + self.backoff.next_wait(None);
    }
}
