//! Reproduces **Figure 4** of the paper: the directed graph
//! representing the cyclic order of clock edges, the extra arcs added
//! for cluster ordering requirements, and the chosen break-open
//! point(s).
//!
//! The figure's example uses a four-phase clock whose edges are labelled
//! A–H in time order; the requirement "edge E occurs before edge C" is
//! satisfied by removing the arc D→E, giving the order
//! E–F–G–H–A–B–C–D.

use hb_clock::{ClockSet, EdgeGraph, Requirement};
use hb_units::Time;

fn main() {
    // Four phases of a 100 ns clock: edges at 0,10 / 25,35 / 50,60 / 75,85.
    let mut clocks = ClockSet::new();
    for i in 0..4i64 {
        let start = Time::from_ns(25 * i);
        clocks
            .add_clock(
                format!("p{}", i + 1),
                Time::from_ns(100),
                start,
                start + Time::from_ns(10),
            )
            .expect("valid waveform");
    }
    let timeline = clocks.timeline();
    let graph = EdgeGraph::new(&timeline);

    println!("Figure 4 — clock-edge ordering graph");
    println!("{graph}");

    // Label edges A..H in time order, like the figure.
    let labels: Vec<char> = ('A'..='H').collect();
    for (id, edge) in timeline.edges() {
        println!("  {} = {edge}", labels[id.as_raw() as usize]);
    }

    // The figure's requirement: edge E (index 4) before edge C (index 2).
    let e = timeline.edges().nth(4).expect("8 edges").0;
    let c = timeline.edges().nth(2).expect("8 edges").0;
    let req = Requirement {
        assert_edge: e,
        close_edge: c,
    };
    let plan = graph.minimal_passes(&[req]);
    println!("\nrequirement: E before C");
    println!(
        "  minimal pass count: {} (break opened at {})",
        plan.pass_count(),
        plan.starts()[0]
    );
    let pass = plan.pass_for_closure(timeline.edge_time(c));
    println!(
        "  in that window: E at position {}, C at position {}",
        plan.pos_assert(pass, timeline.edge_time(e)),
        plan.pos_close(pass, timeline.edge_time(c)),
    );
    assert!(plan.satisfies(pass, timeline.edge_time(e), timeline.edge_time(c)));

    // And the Figure 1 conflict that forces two passes.
    let p2_trail = timeline.edges().nth(3).expect("8 edges").0; // 35 ns
    let p4_trail = timeline.edges().nth(7).expect("8 edges").0; // 85 ns
    let p1_lead = timeline.edges().next().expect("8 edges").0; // 0 ns
    let p3_lead = timeline.edges().nth(4).expect("8 edges").0; // 50 ns
    let mut reqs = Vec::new();
    for a in [p1_lead, p3_lead] {
        for cl in [p2_trail, p4_trail] {
            reqs.push(Requirement {
                assert_edge: a,
                close_edge: cl,
            });
        }
    }
    let plan = graph.minimal_passes(&reqs);
    println!("\nFigure-1 requirement set (time-multiplexed gate):");
    println!("  minimal pass count: {}", plan.pass_count());
    for (i, s) in plan.starts().iter().enumerate() {
        println!("  pass {i}: break opened at {s}");
    }
    assert_eq!(plan.pass_count(), 2);
}
