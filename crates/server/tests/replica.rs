//! Journal-streaming replication end to end: the `repl-state` /
//! `repl-pull` wire verbs, the warm-standby sync loop mirroring a
//! primary's fleet, epoch-driven resync after history rewrites, and
//! promotion after the primary dies.

use std::thread;
use std::time::{Duration, Instant};

use hb_cells::sc89;
use hb_io::{Frame, FrameDecoder};
use hb_server::{Client, Server, ServerOptions};

fn start_server(
    options: ServerOptions,
) -> (
    std::net::SocketAddr,
    thread::JoinHandle<std::io::Result<()>>,
) {
    let server = Server::bind("127.0.0.1:0", sc89(), options).unwrap();
    let addr = server.local_addr().unwrap();
    let handle = thread::spawn(move || server.run());
    (addr, handle)
}

fn standby_options(primary: std::net::SocketAddr) -> ServerOptions {
    ServerOptions {
        standby_of: Some(primary.to_string()),
        sync_interval: Duration::from_millis(25),
        promote_after: 3,
        ..ServerOptions::default()
    }
}

fn design_text(name: &str) -> String {
    format!(
        "design {name}\n\
         module top\n\
         \x20 port in din clk\n\
         \x20 port out dout\n\
         \x20 inst g0 BUF_X1 A=din Y=n0\n\
         \x20 inst g1 INV_X1 A=n0 Y=n1\n\
         \x20 inst cap DFF D=n1 CK=clk Q=dout\n\
         end\n\
         top top\n\
         clock clk period 10ns rise 0ns fall 5ns\n\
         clockport clk clk\n\
         arrive din clk rise 1ns\n"
    )
}

fn scale_eco(net: &str, percent: u32) -> Frame {
    Frame::new("eco")
        .arg("op", "scale-net")
        .arg("net", net)
        .arg("percent", percent)
}

/// The fingerprint column of one design's `designs` line, or None if
/// the design is missing.
fn design_fp(client: &mut Client, id: &str) -> Option<String> {
    let reply = client.request(&Frame::new("designs")).unwrap();
    reply
        .payload
        .as_deref()
        .unwrap_or("")
        .lines()
        .find_map(|l| {
            let mut parts = l.split_whitespace();
            (parts.next() == Some(id)).then(|| {
                parts
                    .find_map(|p| p.strip_prefix("fp="))
                    .unwrap()
                    .to_owned()
            })
        })
}

/// Polls `standby` until `id`'s fingerprint there equals `want`.
fn await_fp(standby: std::net::SocketAddr, id: &str, want: &str) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let mut client = Client::connect(standby).unwrap();
        if design_fp(&mut client, id).as_deref() == Some(want) {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "standby never reached fp={want} for `{id}`"
        );
        thread::sleep(Duration::from_millis(25));
    }
}

/// The pull protocol over the wire: entries stream as nested frames,
/// cursors advance, stale epochs force a resync from zero.
#[test]
fn repl_pull_streams_the_journal_with_epoch_resync() {
    let (addr, server) = start_server(ServerOptions::default());
    let mut client = Client::connect(addr).unwrap();

    let text = design_text("alpha");
    for req in [
        Frame::new("load").with_payload(text),
        Frame::new("analyze"),
        scale_eco("n0", 120),
    ] {
        assert_eq!(client.request(&req).unwrap().verb, "ok");
    }

    // repl-state reports the default design's cursor.
    let state = client.request(&Frame::new("repl-state")).unwrap();
    assert_eq!(state.verb, "ok");
    assert_eq!(state.get("count"), Some("1"));
    let line = state.payload.as_deref().unwrap().lines().next().unwrap();
    let cols: Vec<&str> = line.split_whitespace().collect();
    assert_eq!(cols[0], "default");
    let epoch = cols[1];
    assert_eq!(cols[2], "3", "load+analyze+eco journal");
    assert_ne!(cols[3], "-", "a mutated design has a fingerprint");

    // A cold replica (epoch 0, since 0) gets flagged resync and the
    // full history: three nested `entry` frames carrying the original
    // requests verbatim.
    let pull = client
        .request(
            &Frame::new("repl-pull")
                .arg("design", "default")
                .arg("epoch", 0)
                .arg("since", 0),
        )
        .unwrap();
    assert_eq!(pull.verb, "ok", "{:?}", pull.payload);
    assert_eq!(pull.get("resync"), Some("1"), "cold epoch must resync");
    assert_eq!(pull.get("count"), Some("3"));
    assert_eq!(pull.get("more"), Some("0"));
    assert_eq!(pull.get("fp"), Some(cols[3]), "complete page carries fp");
    let mut decoder = FrameDecoder::new();
    decoder.feed(pull.payload.as_deref().unwrap().as_bytes());
    let mut verbs = Vec::new();
    while let Some(entry) = decoder.next_frame().unwrap() {
        assert_eq!(entry.verb, "entry");
        assert_eq!(entry.get("expect"), Some("ok"));
        let mut inner = FrameDecoder::new();
        inner.feed(entry.payload.as_deref().unwrap().as_bytes());
        verbs.push(inner.next_frame().unwrap().unwrap().verb);
    }
    decoder.finish().unwrap();
    assert_eq!(verbs, ["load", "analyze", "eco"]);

    // A level replica pulling from its cursor gets an empty page.
    let pull = client
        .request(
            &Frame::new("repl-pull")
                .arg("design", "default")
                .arg("epoch", epoch)
                .arg("since", 3),
        )
        .unwrap();
    assert_eq!(pull.get("resync"), Some("0"));
    assert_eq!(pull.get("count"), Some("0"));

    // A fresh load rewrites history: the epoch moves and the stale
    // cursor is told to start over.
    let reply = client
        .request(&Frame::new("load").with_payload(design_text("beta")))
        .unwrap();
    assert_eq!(reply.verb, "ok");
    let pull = client
        .request(
            &Frame::new("repl-pull")
                .arg("design", "default")
                .arg("epoch", epoch)
                .arg("since", 3),
        )
        .unwrap();
    assert_eq!(pull.get("resync"), Some("1"));
    assert_eq!(pull.get("since"), Some("0"));
    assert_ne!(pull.get("epoch"), Some(epoch));

    // Errors are structured: unknown design, unparseable cursor.
    let reply = client
        .request(&Frame::new("repl-pull").arg("design", "ghost"))
        .unwrap();
    assert_eq!(reply.get("code"), Some("unknown-design"));
    let reply = client
        .request(
            &Frame::new("repl-pull")
                .arg("design", "default")
                .arg("epoch", "soon"),
        )
        .unwrap();
    assert_eq!(reply.get("code"), Some("usage"));

    client.request(&Frame::new("shutdown")).unwrap();
    server.join().unwrap().unwrap();
}

/// The full standby lifecycle: shadow the primary's designs (including
/// ones opened, mutated, re-loaded, and closed mid-stream), answer
/// queries from the warm shadow, and keep serving after the primary
/// dies — with the exact state the primary last acknowledged.
#[test]
fn standby_mirrors_mutations_and_survives_primary_death() {
    let (primary, primary_handle) = start_server(ServerOptions::default());
    let (standby, standby_handle) = start_server(standby_options(primary));
    let mut client = Client::connect(primary).unwrap();

    // Two tenants on the primary, each mutated past its load.
    for id in ["left", "right"] {
        assert_eq!(
            client
                .request(&Frame::new("open").arg("design", id))
                .unwrap()
                .verb,
            "ok"
        );
        for req in [
            Frame::new("load").with_payload(design_text(id)),
            Frame::new("analyze"),
            scale_eco("n0", 130),
        ] {
            let reply = client.request(&req.arg("design", id)).unwrap();
            assert_eq!(reply.verb, "ok", "{id}: {:?}", reply.payload);
        }
    }
    // One short-lived tenant the standby must prune again.
    client
        .request(&Frame::new("open").arg("design", "doomed"))
        .unwrap();

    // The standby catches up to the primary's exact fingerprints.
    let left_fp = design_fp(&mut client, "left").unwrap();
    let right_fp = design_fp(&mut client, "right").unwrap();
    await_fp(standby, "left", &left_fp);
    await_fp(standby, "right", &right_fp);

    // Shadows are warm and queryable, and byte-identical to the
    // primary's sessions.
    let mut shadow = Client::connect(standby).unwrap();
    for id in ["left", "right"] {
        let want = client
            .request(&Frame::new("dump").arg("design", id))
            .unwrap();
        let got = shadow
            .request(&Frame::new("dump").arg("design", id))
            .unwrap();
        assert_eq!(got.payload, want.payload, "{id}: shadow dump diverged");
        let got = shadow
            .request(&Frame::new("slack").arg("design", id).arg("node", "n1"))
            .unwrap();
        assert_eq!(got.verb, "ok", "{id}: {:?}", got.payload);
    }

    // A history rewrite (fresh load) and a close both propagate.
    client
        .request(&Frame::new("close").arg("design", "doomed"))
        .unwrap();
    let reply = client
        .request(
            &Frame::new("load")
                .arg("design", "left")
                .with_payload(design_text("left_v2")),
        )
        .unwrap();
    assert_eq!(reply.verb, "ok");
    let left_fp = design_fp(&mut client, "left").unwrap();
    await_fp(standby, "left", &left_fp);
    let deadline = Instant::now() + Duration::from_secs(10);
    while design_fp(&mut shadow, "doomed").is_some() {
        assert!(Instant::now() < deadline, "standby never pruned `doomed`");
        thread::sleep(Duration::from_millis(25));
    }
    let want_dump = client
        .request(&Frame::new("dump").arg("design", "left"))
        .unwrap();

    // Kill the primary mid-flight. After `promote_after` missed syncs
    // the standby promotes itself: same designs, same state, now
    // accepting writes of its own.
    client.request(&Frame::new("shutdown")).unwrap();
    primary_handle.join().unwrap().unwrap();
    thread::sleep(Duration::from_millis(400));

    let got = shadow
        .request(&Frame::new("dump").arg("design", "left"))
        .unwrap();
    assert_eq!(
        got.payload, want_dump.payload,
        "failover lost acknowledged state"
    );
    let reply = shadow
        .request(&scale_eco("n0", 80).arg("design", "right"))
        .unwrap();
    assert_eq!(reply.verb, "ok", "{:?}", reply.payload);
    let reply = shadow
        .request(&Frame::new("analyze").arg("design", "right"))
        .unwrap();
    assert_eq!(reply.verb, "ok");

    // The post-failover write sticks: no zombie sync thread resets it.
    thread::sleep(Duration::from_millis(150));
    let stats = shadow
        .request(&Frame::new("stats").arg("design", "right"))
        .unwrap();
    assert_eq!(stats.get("ecos"), Some("2"), "{:?}", stats.payload);

    shadow.request(&Frame::new("shutdown")).unwrap();
    standby_handle.join().unwrap().unwrap();
}
