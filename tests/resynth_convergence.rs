//! Algorithm 3 convergence across generated designs.

use hb_cells::sc89;
use hb_resynth::{optimize, ResynthOptions};
use hb_workloads::{random_pipeline, PipelineParams};
use hummingbird::Analyzer;

#[test]
fn redesign_never_worsens_and_often_fixes() {
    let lib = sc89();
    let mut fixed = 0usize;
    for seed in [3u64, 5, 23] {
        let mut w = random_pipeline(
            &lib,
            PipelineParams {
                stages: 3,
                width: 8,
                gates_per_stage: 120,
                transparent: false,
                period_ns: 7,
                seed,
                imbalance_pct: 0,
            },
        );
        let before = Analyzer::new(&w.design, w.module, &lib, &w.clocks, w.spec.clone())
            .expect("conforming workload")
            .analyze()
            .worst_slack();
        let outcome = optimize(
            &mut w.design,
            w.module,
            &lib,
            &w.clocks,
            &w.spec,
            ResynthOptions::default(),
        )
        .expect("loop runs");
        w.design.validate().expect("edits keep the netlist valid");
        let after = Analyzer::new(&w.design, w.module, &lib, &w.clocks, w.spec.clone())
            .expect("still conforming")
            .analyze()
            .worst_slack();
        assert!(after >= before, "seed {seed}: {before} -> {after}");
        if outcome.met && before <= hb_units::Time::ZERO {
            fixed += 1;
            assert!(
                outcome.edits > 0,
                "seed {seed}: fixed a violation without edits?"
            );
        }
    }
    assert!(
        fixed >= 1,
        "at least one failing seed must be closed by the loop"
    );
}

#[test]
fn loop_terminates_without_edits_on_met_designs() {
    let lib = sc89();
    let mut w = random_pipeline(
        &lib,
        PipelineParams {
            stages: 3,
            width: 8,
            gates_per_stage: 120,
            transparent: false,
            period_ns: 60,
            seed: 3,
            imbalance_pct: 0,
        },
    );
    let outcome = optimize(
        &mut w.design,
        w.module,
        &lib,
        &w.clocks,
        &w.spec,
        ResynthOptions::default(),
    )
    .expect("loop runs");
    assert!(outcome.met);
    assert_eq!(outcome.iterations, 1);
    assert_eq!(outcome.edits, 0);
}

#[test]
fn transparent_pipelines_can_be_optimized_too() {
    let lib = sc89();
    let mut w = random_pipeline(
        &lib,
        PipelineParams {
            stages: 4,
            width: 8,
            gates_per_stage: 80,
            transparent: true,
            period_ns: 24,
            seed: 11,
            imbalance_pct: 0,
        },
    );
    let before = Analyzer::new(&w.design, w.module, &lib, &w.clocks, w.spec.clone())
        .expect("conforming workload")
        .analyze()
        .worst_slack();
    let outcome = optimize(
        &mut w.design,
        w.module,
        &lib,
        &w.clocks,
        &w.spec,
        ResynthOptions::default(),
    )
    .expect("loop runs");
    let after = Analyzer::new(&w.design, w.module, &lib, &w.clocks, w.spec.clone())
        .expect("still conforming")
        .analyze()
        .worst_slack();
    assert!(after >= before, "{before} -> {after} ({outcome:?})");
    w.design.validate().expect("valid after edits");
}
