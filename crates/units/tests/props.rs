//! Property-style tests for the unit primitives, driven by a seeded
//! deterministic generator (no external dependency).

use hb_rng::SmallRng;
use hb_units::{MinMax, RiseFall, Sense, Time};

const CASES: usize = 512;

/// Finite times well inside the sentinel head-room.
fn finite_time(rng: &mut SmallRng) -> Time {
    Time::from_ps(rng.gen_range(0..2_000_000_000) as i64 - 1_000_000_000)
}

fn positive_time(rng: &mut SmallRng) -> Time {
    Time::from_ps(rng.gen_range(1..1_000_000_000) as i64)
}

fn sense(rng: &mut SmallRng) -> Sense {
    [Sense::Positive, Sense::Negative, Sense::NonUnate][rng.gen_range(0..3)]
}

#[test]
fn rem_euclid_is_in_range() {
    let mut rng = SmallRng::seed_from_u64(0x1001);
    for _ in 0..CASES {
        let t = finite_time(&mut rng);
        let m = positive_time(&mut rng);
        let r = t.rem_euclid(m);
        assert!(Time::ZERO <= r && r < m, "{t} rem {m} = {r}");
        // Congruence: r == t (mod m)
        assert_eq!((t - r).rem_euclid(m), Time::ZERO);
    }
}

#[test]
fn rem_euclid_end_is_in_half_open_end_range() {
    let mut rng = SmallRng::seed_from_u64(0x1002);
    for _ in 0..CASES {
        let t = finite_time(&mut rng);
        let m = positive_time(&mut rng);
        let r = t.rem_euclid_end(m);
        assert!(Time::ZERO < r && r <= m, "{t} rem_end {m} = {r}");
        assert_eq!((t - r).rem_euclid(m), Time::ZERO);
    }
}

#[test]
fn display_parse_roundtrip() {
    let mut rng = SmallRng::seed_from_u64(0x1003);
    for _ in 0..CASES {
        let t = finite_time(&mut rng);
        let parsed: Time = t.to_string().parse().unwrap();
        assert_eq!(parsed, t);
    }
}

#[test]
fn saturating_add_matches_plain_add_when_finite() {
    let mut rng = SmallRng::seed_from_u64(0x1004);
    for _ in 0..CASES {
        let a = finite_time(&mut rng);
        let b = finite_time(&mut rng);
        assert_eq!(a.saturating_add(b), a + b);
        assert_eq!(a.saturating_sub(b), a - b);
    }
}

#[test]
fn sentinels_absorb() {
    let mut rng = SmallRng::seed_from_u64(0x1005);
    for _ in 0..CASES {
        let a = finite_time(&mut rng);
        assert_eq!(Time::NEG_INF.saturating_add(a), Time::NEG_INF);
        assert_eq!(Time::INF.saturating_add(a), Time::INF);
        assert_eq!(a.saturating_sub(Time::INF), Time::NEG_INF);
    }
}

#[test]
fn gcd_divides_both() {
    let mut rng = SmallRng::seed_from_u64(0x1006);
    for _ in 0..CASES {
        let a = positive_time(&mut rng);
        let b = positive_time(&mut rng);
        let g = a.gcd(b);
        assert!(g > Time::ZERO);
        assert_eq!(a % g, Time::ZERO);
        assert_eq!(b % g, Time::ZERO);
    }
}

#[test]
fn lcm_is_common_multiple() {
    let mut rng = SmallRng::seed_from_u64(0x1007);
    for _ in 0..CASES {
        let a = Time::from_ps(rng.gen_range(1..100_000) as i64);
        let b = Time::from_ps(rng.gen_range(1..100_000) as i64);
        let l = a.lcm(b);
        assert_eq!(l % a, Time::ZERO);
        assert_eq!(l % b, Time::ZERO);
        assert!(l <= Time::from_ps(a.as_ps() * b.as_ps()));
    }
}

#[test]
fn sense_composition_associative() {
    let mut rng = SmallRng::seed_from_u64(0x1008);
    for _ in 0..CASES {
        let (s1, s2, s3) = (sense(&mut rng), sense(&mut rng), sense(&mut rng));
        assert_eq!(s1.then(s2).then(s3), s1.then(s2.then(s3)));
    }
}

#[test]
fn propagate_is_monotone_in_input() {
    let mut rng = SmallRng::seed_from_u64(0x1009);
    for _ in 0..CASES {
        // Increasing an input arrival can never decrease an output arrival.
        let r1 = finite_time(&mut rng);
        let f1 = finite_time(&mut rng);
        let bump = Time::from_ps(rng.gen_range(0..1_000_000) as i64);
        let dr = Time::from_ps(rng.gen_range(0..1_000_000) as i64);
        let df = Time::from_ps(rng.gen_range(0..1_000_000) as i64);
        let s = sense(&mut rng);
        let input = RiseFall::new(r1, f1);
        let later = RiseFall::new(r1 + bump, f1 + bump);
        let delay = RiseFall::new(dr, df);
        let out1 = s.propagate(input, delay);
        let out2 = s.propagate(later, delay);
        assert!(out2.rise >= out1.rise);
        assert!(out2.fall >= out1.fall);
    }
}

#[test]
fn minmax_widen_contains_both() {
    let mut rng = SmallRng::seed_from_u64(0x100a);
    for _ in 0..CASES {
        let (a1, a2) = (finite_time(&mut rng), finite_time(&mut rng));
        let (b1, b2) = (finite_time(&mut rng), finite_time(&mut rng));
        let a = MinMax::new(a1.min(a2), a1.max(a2));
        let b = MinMax::new(b1.min(b2), b1.max(b2));
        let w = a.widen(b);
        assert!(w.min <= a.min && w.min <= b.min);
        assert!(w.max >= a.max && w.max >= b.max);
        assert!(w.is_ordered());
    }
}
