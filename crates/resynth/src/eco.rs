//! Named engineering-change operators.
//!
//! The redesign loop in [`crate::optimize`] picks its own edits; an
//! interactive flow (the `hummingbird serve` daemon, scripted ECO
//! replay) instead needs *addressable* edits: "retarget this instance",
//! "rescale that net". This module exposes the same structural
//! operators as first-class, deterministic operations so that an edit
//! applied through a resident session can be replayed verbatim on a
//! fresh copy of the design — the property the server's parity tests
//! rely on.
//!
//! Both operators are structure-preserving: they never add or remove
//! nets or instances, so net identities, cluster membership and pass
//! plans are unchanged and a content-addressed
//! [`SlackCache`](hummingbird::SlackCache) stays valid for every
//! cluster the edit does not touch.

use std::fmt;

use hb_cells::{Binding, Library, LOAD_SCALE_ATTR};
use hb_netlist::{Design, InstRef, ModuleId};

/// One addressable engineering-change operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EcoOp {
    /// Retarget `inst` to another drive variant of its cell family:
    /// `steps` moves up (positive) or down (negative) the family's
    /// drive-ordered variant list.
    RetargetDrive {
        /// Instance name within the module.
        inst: String,
        /// Signed displacement along the family's variant list.
        steps: i32,
    },
    /// Rescale the modelled capacitive load of `net` to `percent`% of
    /// its structural estimate (100 restores the unscaled model). The
    /// arcs driving the net see their delays re-evaluated at the scaled
    /// load.
    ScaleNetLoad {
        /// Net name within the module.
        net: String,
        /// New load percentage; must be in `1..=10_000`.
        percent: u32,
    },
}

/// Why an ECO could not be applied. The design is unchanged on error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EcoError {
    /// No instance of that name exists in the module.
    UnknownInstance(String),
    /// No net of that name exists in the module.
    UnknownNet(String),
    /// The instance is a hierarchical reference or an unbound leaf, so
    /// it has no cell family to move within.
    NotACell(String),
    /// The requested drive step leaves the family's variant list.
    DriveLimit {
        /// The instance whose family ran out of variants.
        inst: String,
        /// The cell it is currently bound to.
        cell: String,
    },
    /// The load percentage is outside `1..=10_000`.
    BadPercent(u32),
}

impl fmt::Display for EcoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EcoError::UnknownInstance(name) => write!(f, "no instance named `{name}`"),
            EcoError::UnknownNet(name) => write!(f, "no net named `{name}`"),
            EcoError::NotACell(name) => {
                write!(f, "instance `{name}` is not bound to a library cell")
            }
            EcoError::DriveLimit { inst, cell } => {
                write!(f, "no drive variant {cell} steps away for `{inst}`")
            }
            EcoError::BadPercent(p) => {
                write!(f, "load percentage {p} outside 1..=10000")
            }
        }
    }
}

impl std::error::Error for EcoError {}

/// What an applied ECO did, for reporting.
#[derive(Clone, Debug)]
pub struct EcoOutcome {
    /// Human-readable summary, e.g. `drv0:INV_X1->INV_X4`.
    pub description: String,
}

/// Applies one [`EcoOp`] to `module`. Deterministic: the same op on
/// the same design always produces the same edited design.
///
/// # Errors
///
/// Returns an [`EcoError`] (and leaves the design untouched) when the
/// named object does not exist or the edit is out of range.
pub fn apply_eco(
    design: &mut Design,
    module: ModuleId,
    library: &Library,
    op: &EcoOp,
) -> Result<EcoOutcome, EcoError> {
    match op {
        EcoOp::RetargetDrive { inst, steps } => {
            retarget_drive(design, module, library, inst, *steps)
        }
        EcoOp::ScaleNetLoad { net, percent } => scale_net_load(design, module, net, *percent),
    }
}

fn retarget_drive(
    design: &mut Design,
    module: ModuleId,
    library: &Library,
    inst_name: &str,
    steps: i32,
) -> Result<EcoOutcome, EcoError> {
    let inst = design
        .module(module)
        .instance_by_name(inst_name)
        .ok_or_else(|| EcoError::UnknownInstance(inst_name.to_owned()))?;
    let leaf = match design.module(module).instance(inst).target() {
        InstRef::Leaf(l) => l,
        InstRef::Module(_) => return Err(EcoError::NotACell(inst_name.to_owned())),
    };
    let binding = Binding::new(design, library);
    let cell_id = binding
        .cell_for_leaf(leaf)
        .ok_or_else(|| EcoError::NotACell(inst_name.to_owned()))?;
    let cell = library.cell(cell_id);
    let from_name = cell.name().to_owned();
    let variants = library.family_variants(cell.family());
    let position = variants
        .iter()
        .position(|&v| v == cell_id)
        .expect("cell is a member of its own family");
    let target = position as i64 + steps as i64;
    let out_of_range = || EcoError::DriveLimit {
        inst: inst_name.to_owned(),
        cell: from_name.clone(),
    };
    if target < 0 || target as usize >= variants.len() {
        return Err(out_of_range());
    }
    let to_cell = variants[target as usize];
    let to_name = library.cell(to_cell).name().to_owned();
    let new_leaf = design.leaf_by_name(&to_name).ok_or_else(out_of_range)?;
    design
        .replace_instance_ref(module, inst, new_leaf)
        .map_err(|_| out_of_range())?;
    Ok(EcoOutcome {
        description: format!("{inst_name}:{from_name}->{to_name}"),
    })
}

fn scale_net_load(
    design: &mut Design,
    module: ModuleId,
    net_name: &str,
    percent: u32,
) -> Result<EcoOutcome, EcoError> {
    if !(1..=10_000).contains(&percent) {
        return Err(EcoError::BadPercent(percent));
    }
    let net = design
        .module(module)
        .net_by_name(net_name)
        .ok_or_else(|| EcoError::UnknownNet(net_name.to_owned()))?;
    design
        .module_mut(module)
        .set_net_attr(net, LOAD_SCALE_ATTR, percent.to_string());
    Ok(EcoOutcome {
        description: format!("{net_name}:{LOAD_SCALE_ATTR}={percent}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_cells::sc89;
    use hb_netlist::PinDir;

    fn inv_stage() -> (Design, ModuleId) {
        let lib = sc89();
        let mut d = Design::new("eco");
        lib.declare_into(&mut d).unwrap();
        let m = d.add_module("top").unwrap();
        let a = d.add_net(m, "a").unwrap();
        let y = d.add_net(m, "y").unwrap();
        d.add_port(m, "a", PinDir::Input, a).unwrap();
        d.add_port(m, "y", PinDir::Output, y).unwrap();
        let inv = d.leaf_by_name("INV_X1").unwrap();
        let u = d.add_leaf_instance(m, "u0", inv).unwrap();
        d.connect(m, u, "A", a).unwrap();
        d.connect(m, u, "Y", y).unwrap();
        d.set_top(m).unwrap();
        (d, m)
    }

    #[test]
    fn retarget_moves_both_ways_and_clamps() {
        let lib = sc89();
        let (mut d, m) = inv_stage();
        let up = apply_eco(
            &mut d,
            m,
            &lib,
            &EcoOp::RetargetDrive {
                inst: "u0".into(),
                steps: 1,
            },
        )
        .unwrap();
        assert_eq!(up.description, "u0:INV_X1->INV_X2");
        let down = apply_eco(
            &mut d,
            m,
            &lib,
            &EcoOp::RetargetDrive {
                inst: "u0".into(),
                steps: -1,
            },
        )
        .unwrap();
        assert_eq!(down.description, "u0:INV_X2->INV_X1");
        let err = apply_eco(
            &mut d,
            m,
            &lib,
            &EcoOp::RetargetDrive {
                inst: "u0".into(),
                steps: -1,
            },
        )
        .unwrap_err();
        assert!(matches!(err, EcoError::DriveLimit { .. }));
        let err = apply_eco(
            &mut d,
            m,
            &lib,
            &EcoOp::RetargetDrive {
                inst: "nosuch".into(),
                steps: 1,
            },
        )
        .unwrap_err();
        assert_eq!(err, EcoError::UnknownInstance("nosuch".into()));
    }

    #[test]
    fn scale_net_sets_attribute_and_validates() {
        let lib = sc89();
        let (mut d, m) = inv_stage();
        apply_eco(
            &mut d,
            m,
            &lib,
            &EcoOp::ScaleNetLoad {
                net: "y".into(),
                percent: 250,
            },
        )
        .unwrap();
        let net = d.module(m).net_by_name("y").unwrap();
        assert_eq!(d.module(m).net(net).attr(LOAD_SCALE_ATTR), Some("250"));
        let err = apply_eco(
            &mut d,
            m,
            &lib,
            &EcoOp::ScaleNetLoad {
                net: "y".into(),
                percent: 0,
            },
        )
        .unwrap_err();
        assert_eq!(err, EcoError::BadPercent(0));
    }

    /// The scaled load must actually change the driving arc delays seen
    /// by the binding, which is what invalidates the affected shard.
    #[test]
    fn scaled_load_changes_estimate() {
        let lib = sc89();
        let (mut d, m) = inv_stage();
        let binding = Binding::new(&d, &lib);
        let net = d.module(m).net_by_name("y").unwrap();
        let base = binding.net_load_ff(&d, &lib, m, net);
        apply_eco(
            &mut d,
            m,
            &lib,
            &EcoOp::ScaleNetLoad {
                net: "y".into(),
                percent: 300,
            },
        )
        .unwrap();
        let binding = Binding::new(&d, &lib);
        assert_eq!(binding.net_load_ff(&d, &lib, m, net), base * 3);
    }
}
