//! Quickstart: build a small two-phase latch design by hand, analyze
//! it, and print the report.
//!
//! ```sh
//! cargo run -p hb-bench --example quickstart
//! ```

use hb_cells::sc89;
use hb_clock::ClockSet;
use hb_netlist::{Design, PinDir};
use hb_units::{Time, Transition};
use hummingbird::{Analyzer, EdgeSpec, Spec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A library and an empty design.
    let lib = sc89();
    let mut design = Design::new("quickstart");
    lib.declare_into(&mut design)?;
    let top = design.add_module("top")?;

    // 2. Nets and ports.
    let net = |d: &mut Design, name: &str| d.add_net(top, name).expect("unique");
    let din = net(&mut design, "din");
    let phi1 = net(&mut design, "phi1");
    let phi2 = net(&mut design, "phi2");
    let l1q = net(&mut design, "l1q");
    let w1 = net(&mut design, "w1");
    let w2 = net(&mut design, "w2");
    let l2q = net(&mut design, "l2q");
    design.add_port(top, "din", PinDir::Input, din)?;
    design.add_port(top, "phi1", PinDir::Input, phi1)?;
    design.add_port(top, "phi2", PinDir::Input, phi2)?;
    design.add_port(top, "dout", PinDir::Output, l2q)?;

    // 3. Two transparent latches on opposite phases with logic between.
    let lat = design.leaf_by_name("DLATCH").expect("library cell");
    let inv = design.leaf_by_name("INV_X1").expect("library cell");
    let nand = design.leaf_by_name("NAND2_X1").expect("library cell");
    let l1 = design.add_leaf_instance(top, "l1", lat)?;
    design.connect(top, l1, "D", din)?;
    design.connect(top, l1, "G", phi1)?;
    design.connect(top, l1, "Q", l1q)?;
    let u1 = design.add_leaf_instance(top, "u1", inv)?;
    design.connect(top, u1, "A", l1q)?;
    design.connect(top, u1, "Y", w1)?;
    let u2 = design.add_leaf_instance(top, "u2", nand)?;
    design.connect(top, u2, "A", w1)?;
    design.connect(top, u2, "B", l1q)?;
    design.connect(top, u2, "Y", w2)?;
    let l2 = design.add_leaf_instance(top, "l2", lat)?;
    design.connect(top, l2, "D", w2)?;
    design.connect(top, l2, "G", phi2)?;
    design.connect(top, l2, "Q", l2q)?;
    design.set_top(top)?;
    design.validate()?;

    // 4. Two non-overlapping 25 MHz phases.
    let mut clocks = ClockSet::new();
    clocks.add_clock("phi1", Time::from_ns(40), Time::ZERO, Time::from_ns(16))?;
    clocks.add_clock(
        "phi2",
        Time::from_ns(40),
        Time::from_ns(20),
        Time::from_ns(36),
    )?;

    // 5. The boundary spec: which ports are clocks, when data arrives.
    let spec = Spec::new()
        .clock_port("phi1", "phi1")
        .clock_port("phi2", "phi2")
        .input_arrival(
            "din",
            EdgeSpec::new("phi1", Transition::Rise),
            Time::from_ns(1),
        );

    // 6. Analyze.
    let analyzer = Analyzer::new(&design, top, &lib, &clocks, spec)?;
    let report = analyzer.analyze();
    println!("{report}");
    println!("terminal slacks:");
    for t in report.terminal_slacks() {
        println!(
            "  {:<14} {:<8} pulse {}: {}",
            t.name,
            t.kind.to_string(),
            t.pulse,
            t.slack
        );
    }
    assert!(report.ok(), "this little pipeline meets 40 ns comfortably");
    Ok(())
}
