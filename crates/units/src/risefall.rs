use std::fmt;
use std::ops::{Index, IndexMut};

use crate::Time;

/// The direction of a signal transition.
///
/// The analyzer keeps rising and falling settling times separate
/// throughout (the paper adopts this from Bening, Alexander and Smith,
/// DAC'82), because CMOS gates routinely have asymmetric rise and fall
/// delays and because a transition inverts through inverting logic.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Transition {
    /// A low-to-high transition.
    Rise,
    /// A high-to-low transition.
    Fall,
}

impl Transition {
    /// Both transitions, in a fixed order.
    pub const BOTH: [Transition; 2] = [Transition::Rise, Transition::Fall];

    /// Returns the opposite transition.
    ///
    /// # Examples
    ///
    /// ```
    /// use hb_units::Transition;
    /// assert_eq!(Transition::Rise.inverted(), Transition::Fall);
    /// ```
    #[inline]
    pub fn inverted(self) -> Transition {
        match self {
            Transition::Rise => Transition::Fall,
            Transition::Fall => Transition::Rise,
        }
    }

    fn index(self) -> usize {
        match self {
            Transition::Rise => 0,
            Transition::Fall => 1,
        }
    }
}

impl fmt::Display for Transition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Transition::Rise => "rise",
            Transition::Fall => "fall",
        })
    }
}

/// A pair of values indexed by [`Transition`].
///
/// Most timing quantities in the analyzer come in rise/fall pairs: arc
/// delays, settling (ready) times, required times and slacks.
///
/// # Examples
///
/// ```
/// use hb_units::{RiseFall, Time, Transition};
///
/// let delay = RiseFall::new(Time::from_ps(300), Time::from_ps(420));
/// assert_eq!(delay[Transition::Rise], Time::from_ps(300));
/// assert_eq!(delay.swapped()[Transition::Rise], Time::from_ps(420));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RiseFall<T> {
    /// The value associated with a rising transition.
    pub rise: T,
    /// The value associated with a falling transition.
    pub fall: T,
}

impl<T> RiseFall<T> {
    /// Creates a pair from its rise and fall components.
    #[inline]
    pub fn new(rise: T, fall: T) -> RiseFall<T> {
        RiseFall { rise, fall }
    }

    /// Creates a pair with both components equal to `value`.
    #[inline]
    pub fn splat(value: T) -> RiseFall<T>
    where
        T: Clone,
    {
        RiseFall {
            rise: value.clone(),
            fall: value,
        }
    }

    /// Returns the pair with rise and fall exchanged.
    ///
    /// This is how a pair propagates through a negative-unate
    /// (inverting) timing arc.
    #[inline]
    pub fn swapped(self) -> RiseFall<T> {
        RiseFall {
            rise: self.fall,
            fall: self.rise,
        }
    }

    /// Applies `f` to both components.
    #[inline]
    pub fn map<U>(self, mut f: impl FnMut(T) -> U) -> RiseFall<U> {
        RiseFall {
            rise: f(self.rise),
            fall: f(self.fall),
        }
    }

    /// Combines two pairs component-wise.
    #[inline]
    pub fn zip_with<U, V>(self, other: RiseFall<U>, mut f: impl FnMut(T, U) -> V) -> RiseFall<V> {
        RiseFall {
            rise: f(self.rise, other.rise),
            fall: f(self.fall, other.fall),
        }
    }

    /// Iterates over `(transition, &value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Transition, &T)> {
        [
            (Transition::Rise, &self.rise),
            (Transition::Fall, &self.fall),
        ]
        .into_iter()
    }
}

impl RiseFall<Time> {
    /// A pair of zeros.
    pub const ZERO: RiseFall<Time> = RiseFall {
        rise: Time::ZERO,
        fall: Time::ZERO,
    };

    /// The later (worst-case, for max analysis) of the two components.
    #[inline]
    pub fn worst(self) -> Time {
        self.rise.max(self.fall)
    }

    /// The earlier (best-case) of the two components.
    #[inline]
    pub fn best(self) -> Time {
        self.rise.min(self.fall)
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, other: RiseFall<Time>) -> RiseFall<Time> {
        self.zip_with(other, Time::max)
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, other: RiseFall<Time>) -> RiseFall<Time> {
        self.zip_with(other, Time::min)
    }

    /// Component-wise saturating addition (sentinels absorb).
    #[inline]
    pub fn saturating_add(self, other: RiseFall<Time>) -> RiseFall<Time> {
        self.zip_with(other, Time::saturating_add)
    }
}

impl<T> Index<Transition> for RiseFall<T> {
    type Output = T;
    #[inline]
    fn index(&self, tr: Transition) -> &T {
        match tr.index() {
            0 => &self.rise,
            _ => &self.fall,
        }
    }
}

impl<T> IndexMut<Transition> for RiseFall<T> {
    #[inline]
    fn index_mut(&mut self, tr: Transition) -> &mut T {
        match tr.index() {
            0 => &mut self.rise,
            _ => &mut self.fall,
        }
    }
}

impl<T: fmt::Display> fmt::Display for RiseFall<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(r {}, f {})", self.rise, self.fall)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_and_inversion() {
        let mut p = RiseFall::new(1, 2);
        assert_eq!(p[Transition::Rise], 1);
        assert_eq!(p[Transition::Fall], 2);
        p[Transition::Rise] = 10;
        assert_eq!(p.rise, 10);
        assert_eq!(p.swapped(), RiseFall::new(2, 10));
        assert_eq!(Transition::Fall.inverted(), Transition::Rise);
        assert_eq!(Transition::Rise.inverted().inverted(), Transition::Rise);
    }

    #[test]
    fn map_zip_iter() {
        let p = RiseFall::new(3, 4);
        assert_eq!(p.map(|v| v * 2), RiseFall::new(6, 8));
        assert_eq!(
            p.zip_with(RiseFall::new(1, 1), |a, b| a - b),
            RiseFall::new(2, 3)
        );
        let collected: Vec<_> = p.iter().map(|(t, v)| (t, *v)).collect();
        assert_eq!(
            collected,
            vec![(Transition::Rise, 3), (Transition::Fall, 4)]
        );
        assert_eq!(RiseFall::splat(7), RiseFall::new(7, 7));
    }

    #[test]
    fn time_helpers() {
        let a = RiseFall::new(Time::from_ns(1), Time::from_ns(5));
        let b = RiseFall::new(Time::from_ns(2), Time::from_ns(3));
        assert_eq!(a.worst(), Time::from_ns(5));
        assert_eq!(a.best(), Time::from_ns(1));
        assert_eq!(a.max(b), RiseFall::new(Time::from_ns(2), Time::from_ns(5)));
        assert_eq!(a.min(b), RiseFall::new(Time::from_ns(1), Time::from_ns(3)));
        assert_eq!(
            a.saturating_add(b),
            RiseFall::new(Time::from_ns(3), Time::from_ns(8))
        );
        let inf = RiseFall::splat(Time::NEG_INF);
        assert_eq!(inf.saturating_add(b), inf);
    }

    #[test]
    fn display() {
        let a = RiseFall::new(Time::from_ns(1), Time::from_ps(500));
        assert_eq!(a.to_string(), "(r 1ns, f 0.500ns)");
        assert_eq!(Transition::Rise.to_string(), "rise");
    }
}
