//! Cell libraries and design↔library bindings.

use std::collections::HashMap;

use hb_netlist::{Design, InstId, LeafId, ModuleId, NetId, NetlistError, PinSlot};

use crate::cell::{Cell, CellId};
use crate::delay::WireLoad;

/// Net attribute rescaling the estimated capacitive load to a
/// percentage of its structural value (100 = unscaled). Consulted by
/// [`Binding::net_load_ff`]; written by ECO edits that model wiring
/// changes without touching connectivity.
pub const LOAD_SCALE_ATTR: &str = "hb.load_pct";

/// A named collection of [`Cell`]s plus a wire-load estimate.
///
/// A library owns the interface declarations of its cells. Declaring a
/// library into a design ([`Library::declare_into`]) registers every
/// interface as a leaf definition; [`Binding`] later resolves design
/// leaves back to cells for delay evaluation.
#[derive(Clone, Debug)]
pub struct Library {
    name: String,
    cells: Vec<Cell>,
    by_name: HashMap<String, CellId>,
    wire_load: WireLoad,
}

impl Library {
    /// Creates an empty library.
    pub fn new(name: impl Into<String>) -> Library {
        Library {
            name: name.into(),
            cells: Vec::new(),
            by_name: HashMap::new(),
            wire_load: WireLoad::default(),
        }
    }

    /// The library name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Overrides the wire-load estimate.
    pub fn set_wire_load(&mut self, wire_load: WireLoad) {
        self.wire_load = wire_load;
    }

    /// The wire-load estimate.
    pub fn wire_load(&self) -> WireLoad {
        self.wire_load
    }

    /// Adds a cell.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate cell name; libraries are authored statically.
    pub fn add_cell(&mut self, cell: Cell) -> CellId {
        let id = CellId(self.cells.len() as u32);
        let previous = self.by_name.insert(cell.name().to_owned(), id);
        assert!(previous.is_none(), "duplicate cell {:?}", cell.name());
        self.cells.push(cell);
        id
    }

    /// Returns a cell.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this library.
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.0 as usize]
    }

    /// Looks up a cell by name.
    pub fn cell_by_name(&self, name: &str) -> Option<CellId> {
        self.by_name.get(name).copied()
    }

    /// Iterates over `(id, cell)` pairs.
    pub fn cells(&self) -> impl Iterator<Item = (CellId, &Cell)> {
        self.cells
            .iter()
            .enumerate()
            .map(|(i, c)| (CellId(i as u32), c))
    }

    /// All drive variants of `family`, sorted by increasing drive.
    pub fn family_variants(&self, family: &str) -> Vec<CellId> {
        let mut v: Vec<CellId> = self
            .cells()
            .filter(|(_, c)| c.family() == family)
            .map(|(id, _)| id)
            .collect();
        v.sort_by_key(|id| self.cell(*id).drive());
        v
    }

    /// Returns a copy of the library with every propagation delay scaled
    /// to `pct` percent: combinational arc delays, synchronising-element
    /// `D_cx`/`D_dx` and output drivers. Set-up and hold requirements are
    /// design constraints, not delays, and stay fixed.
    ///
    /// This is the paper's interactive-mode delay adjustment: re-analyze
    /// the same design with derated (or sped-up) components.
    ///
    /// # Panics
    ///
    /// Panics if `pct` is zero.
    pub fn derated(&self, pct: u32) -> Library {
        assert!(pct > 0, "a zero derate would erase all delays");
        let scale_time = |t: hb_units::Time| {
            hb_units::Time::from_ps((t.as_ps() * i64::from(pct)).div_euclid(100))
        };
        let mut lib = Library::new(format!("{}@{}pct", self.name, pct));
        lib.set_wire_load(self.wire_load);
        for cell in &self.cells {
            let function = match cell.function() {
                crate::cell::Function::Combinational(arcs) => crate::cell::Function::Combinational(
                    arcs.iter()
                        .map(|a| crate::cell::TimingArc {
                            delay: a.delay.derated(pct),
                            ..*a
                        })
                        .collect(),
                ),
                crate::cell::Function::Sync(spec) => {
                    crate::cell::Function::Sync(crate::cell::SyncSpec {
                        d_cx: scale_time(spec.d_cx),
                        d_dx: scale_time(spec.d_dx),
                        output_delay: spec.output_delay.derated(pct),
                        ..*spec
                    })
                }
            };
            lib.add_cell(Cell::new(
                cell.interface().clone(),
                function,
                cell.input_cap_ff.clone(),
                cell.drive(),
                cell.family().to_owned(),
                cell.area(),
            ));
        }
        lib
    }

    /// Declares every cell interface into `design` as a leaf definition.
    ///
    /// # Errors
    ///
    /// Returns an error if any cell name collides with an existing leaf.
    pub fn declare_into(&self, design: &mut Design) -> Result<(), NetlistError> {
        for cell in &self.cells {
            design.declare_leaf(cell.interface().clone())?;
        }
        Ok(())
    }
}

/// A resolved mapping from a design's leaf definitions to library cells.
///
/// Leaves whose names are not in the library stay unmapped; the analyzer
/// reports them as modelling errors when they are actually instantiated.
#[derive(Clone, Debug)]
pub struct Binding {
    leaf_to_cell: Vec<Option<CellId>>,
}

impl Binding {
    /// Resolves every leaf of `design` against `library` by name.
    pub fn new(design: &Design, library: &Library) -> Binding {
        let leaf_to_cell = design
            .leaves()
            .map(|(_, def)| library.cell_by_name(def.name()))
            .collect();
        Binding { leaf_to_cell }
    }

    /// The cell bound to `leaf`, if any.
    pub fn cell_for_leaf(&self, leaf: LeafId) -> Option<CellId> {
        self.leaf_to_cell
            .get(leaf.as_raw() as usize)
            .copied()
            .flatten()
    }

    /// Convenience: the cell implementing `inst` in `module`, if the
    /// instance is a leaf instance bound to the library.
    pub fn cell_for_instance(
        &self,
        design: &Design,
        module: ModuleId,
        inst: InstId,
    ) -> Option<CellId> {
        match design.module(module).instance(inst).target() {
            hb_netlist::InstRef::Leaf(leaf) => self.cell_for_leaf(leaf),
            hb_netlist::InstRef::Module(_) => None,
        }
    }

    /// Estimates the total capacitive load on `net` in femtofarads:
    /// the sum of bound sink-pin capacitances plus the library wire-load
    /// estimate. Unbound sinks (e.g. module pins) contribute a default
    /// pin load so hierarchical boundaries are not free.
    ///
    /// A net carrying an `hb.load_pct` attribute has the estimate
    /// rescaled to that percentage (100 = unscaled). This is the ECO
    /// hook for modelling routing detours or buffering decisions made
    /// outside the netlist: the scaled load feeds the driving arcs'
    /// delay evaluation, so timing follows the annotation.
    pub fn net_load_ff(
        &self,
        design: &Design,
        library: &Library,
        module: ModuleId,
        net: NetId,
    ) -> i64 {
        const DEFAULT_PIN_FF: i64 = 4;
        let m = design.module(module);
        let mut load = 0i64;
        let mut fanout = 0usize;
        for ep in m.loads(net) {
            fanout += 1;
            match ep {
                hb_netlist::Endpoint::Pin { inst, slot, .. } => {
                    match self.cell_for_instance(design, module, inst) {
                        Some(cell) => load += library.cell(cell).pin_cap_ff(slot),
                        None => load += DEFAULT_PIN_FF,
                    }
                }
                hb_netlist::Endpoint::Port(_) => load += DEFAULT_PIN_FF,
            }
        }
        let total = load + library.wire_load().wire_cap_ff(fanout);
        match m.net(net).attr(LOAD_SCALE_ATTR).map(str::parse::<i64>) {
            Some(Ok(pct)) if pct > 0 => total * pct / 100,
            _ => total,
        }
    }

    /// The capacitance of one bound pin, with the default used for
    /// unbound interfaces.
    pub fn pin_cap_ff(&self, library: &Library, leaf: LeafId, slot: PinSlot) -> i64 {
        match self.cell_for_leaf(leaf) {
            Some(cell) => library.cell(cell).pin_cap_ff(slot),
            None => 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{DriveStrength, Function, TimingArc};
    use crate::delay::DelayModel;
    use hb_netlist::{LeafDef, PinDir};
    use hb_units::{RiseFall, Sense, Time};

    fn lib_with_inv_variants() -> Library {
        let mut lib = Library::new("test");
        for (name, drive) in [
            ("INV_X1", DriveStrength::X1),
            ("INV_X4", DriveStrength::X4),
            ("INV_X2", DriveStrength::X2),
        ] {
            let iface = LeafDef::new(name)
                .pin("A", PinDir::Input)
                .pin("Y", PinDir::Output);
            let arc = TimingArc {
                from: iface.pin_by_name("A").unwrap(),
                to: iface.pin_by_name("Y").unwrap(),
                sense: Sense::Negative,
                delay: DelayModel::new(RiseFall::splat(Time::from_ps(50)), RiseFall::splat(8)),
            };
            lib.add_cell(Cell::new(
                iface,
                Function::Combinational(vec![arc]),
                vec![4, 0],
                drive,
                "INV",
                2,
            ));
        }
        lib
    }

    #[test]
    fn lookup_and_variants() {
        let lib = lib_with_inv_variants();
        assert_eq!(lib.cells().count(), 3);
        let x1 = lib.cell_by_name("INV_X1").unwrap();
        assert_eq!(lib.cell(x1).name(), "INV_X1");
        let variants = lib.family_variants("INV");
        let drives: Vec<u8> = variants.iter().map(|id| lib.cell(*id).drive().0).collect();
        assert_eq!(drives, vec![1, 2, 4], "sorted by drive");
        assert!(lib.family_variants("NAND9").is_empty());
    }

    #[test]
    #[should_panic(expected = "duplicate cell")]
    fn duplicate_cell_panics() {
        let mut lib = lib_with_inv_variants();
        let iface = LeafDef::new("INV_X1").pin("A", PinDir::Input);
        lib.add_cell(Cell::new(
            iface,
            Function::Combinational(vec![]),
            vec![4],
            DriveStrength::X1,
            "INV",
            2,
        ));
    }

    #[test]
    fn binding_and_load_estimation() {
        let lib = lib_with_inv_variants();
        let mut d = Design::new("t");
        lib.declare_into(&mut d).unwrap();
        let m = d.add_module("top").unwrap();
        let inv = d.leaf_by_name("INV_X1").unwrap();
        let n = d.add_net(m, "n").unwrap();
        let u1 = d.add_leaf_instance(m, "u1", inv).unwrap();
        let u2 = d.add_leaf_instance(m, "u2", inv).unwrap();
        let u3 = d.add_leaf_instance(m, "u3", inv).unwrap();
        d.connect(m, u1, "Y", n).unwrap();
        d.connect(m, u2, "A", n).unwrap();
        d.connect(m, u3, "A", n).unwrap();

        let binding = Binding::new(&d, &lib);
        assert_eq!(binding.cell_for_leaf(inv), lib.cell_by_name("INV_X1"));
        assert_eq!(
            binding.cell_for_instance(&d, m, u1),
            lib.cell_by_name("INV_X1")
        );
        // 2 sinks × 4 fF pins + wire (2 + 3·2) = 16.
        assert_eq!(binding.net_load_ff(&d, &lib, m, n), 16);
    }

    #[test]
    fn unbound_leaves_use_default_cap() {
        let lib = lib_with_inv_variants();
        let mut d = Design::new("t");
        let foreign = d
            .declare_leaf(
                LeafDef::new("MYSTERY")
                    .pin("A", PinDir::Input)
                    .pin("Y", PinDir::Output),
            )
            .unwrap();
        let binding = Binding::new(&d, &lib);
        assert_eq!(binding.cell_for_leaf(foreign), None);
        assert_eq!(binding.pin_cap_ff(&lib, foreign, PinSlot::from_raw(0)), 4);
    }
}
