//! The shipped sample designs in `designs/` stay analyzable and
//! demonstrate what their comments claim.

use std::path::PathBuf;

fn design_path(name: &str) -> String {
    // crates/cli -> repo root.
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p.push("designs");
    p.push(name);
    p.to_string_lossy().into_owned()
}

fn run(args: &[&str]) -> (u8, String) {
    let mut buf = Vec::new();
    let code = hb_cli::run(args, &mut buf).expect("driver runs");
    (code, String::from_utf8(buf).expect("utf8"))
}

#[test]
fn two_phase_pipeline_borrows() {
    let path = design_path("two_phase_pipeline.hum");
    let (code, out) = run(&["analyze", &path]);
    assert_eq!(code, 0, "transparent model passes: {out}");
    let (code, out) = run(&["analyze", &path, "--edge-triggered"]);
    assert_eq!(code, 1, "edge-triggered baseline fails: {out}");
}

#[test]
fn multifrequency_design_analyzes() {
    let path = design_path("multifrequency.hum");
    let (code, out) = run(&["analyze", &path]);
    assert_eq!(code, 0, "{out}");
    let (_, passes) = run(&["passes", &path]);
    assert!(passes.contains("overall period 100ns"), "{passes}");
}

#[test]
fn skew_race_flagged_by_min_delay_checker() {
    let path = design_path("skew_race.hum");
    let (code, out) = run(&["analyze", &path]);
    assert_eq!(code, 0, "max-delay constraints are easy: {out}");
    assert!(!out.contains("min-delay violation"), "{out}");
    let (_, out) = run(&["analyze", &path, "--min-delays"]);
    assert!(out.contains("min-delay violation"), "{out}");
}

#[test]
fn sweep_works_on_shipped_designs() {
    let path = design_path("two_phase_pipeline.hum");
    let (code, out) = run(&["sweep", &path, "--scales", "60,100,200"]);
    assert_eq!(code, 0);
    assert_eq!(out.lines().count(), 4, "{out}");
}
