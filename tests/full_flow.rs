//! Whole-system flow: generate → serialize → re-parse → analyze →
//! annotate, plus flat-vs-hierarchical agreement.

use hb_cells::sc89;
use hb_io::{parse_hum, write_hum};
use hb_workloads::{fsm12, latch_pipeline};
use hummingbird::Analyzer;

#[test]
fn serialized_design_analyzes_identically() {
    let lib = sc89();
    let w = fsm12(&lib, true);
    let original = Analyzer::new(&w.design, w.module, &lib, &w.clocks, w.spec.clone())
        .expect("conforming workload")
        .analyze();

    let text = write_hum(&w.design, &w.clocks);
    let file = parse_hum(&text, &lib).expect("writer output re-parses");
    file.design.validate().expect("valid after round-trip");
    let top = file.design.top().expect("top preserved");
    let reparsed = Analyzer::new(&file.design, top, &lib, &file.clocks, w.spec.clone())
        .expect("round-tripped design conforms")
        .analyze();

    assert_eq!(original.ok(), reparsed.ok());
    assert_eq!(original.worst_slack(), reparsed.worst_slack());
    assert_eq!(
        original.prep_stats().requirements,
        reparsed.prep_stats().requirements
    );
}

#[test]
fn hierarchical_and_flat_analyses_agree_on_verdict() {
    let lib = sc89();
    let hier = fsm12(&lib, false);
    let report_hier = Analyzer::new(
        &hier.design,
        hier.module,
        &lib,
        &hier.clocks,
        hier.spec.clone(),
    )
    .expect("conforming workload")
    .analyze();

    // Flatten the hierarchy and re-analyze: the module abstraction is an
    // approximation of the flat network, so on a comfortable clock both
    // must agree.
    let flat_design = hier.design.flatten(hier.module).expect("flattenable");
    let flat_top = flat_design.top().expect("flatten sets top");
    let report_flat = Analyzer::new(
        &flat_design,
        flat_top,
        &lib,
        &hier.clocks,
        hier.spec.clone(),
    )
    .expect("flat design conforms")
    .analyze();

    assert!(report_hier.worst_slack().is_finite());
    assert!(report_flat.worst_slack().is_finite());
    assert_eq!(
        report_hier.ok(),
        report_flat.ok(),
        "hier {} vs flat {}",
        report_hier.worst_slack(),
        report_flat.worst_slack()
    );
}

#[test]
fn annotation_marks_slow_nets_in_the_database() {
    let lib = sc89();
    // Squeeze a latch pipeline until it fails, then flag the database.
    let mut w = latch_pipeline(&lib, 6, 8, 11, 10);
    let report = Analyzer::new(&w.design, w.module, &lib, &w.clocks, w.spec.clone())
        .expect("conforming workload")
        .analyze();
    assert!(!report.ok(), "10 ns is far too fast for six stages");
    assert!(!report.slow_nets().is_empty());
    assert!(!report.slow_paths().is_empty());
    report.annotate(&mut w.design);
    let module = w.design.module(w.module);
    let flagged = module
        .nets()
        .filter(|(_, n)| n.attr("hb.slow") == Some("1"))
        .count();
    assert_eq!(flagged, report.slow_nets().len());
}

#[test]
fn slow_paths_are_well_formed() {
    let lib = sc89();
    let w = latch_pipeline(&lib, 6, 8, 11, 10);
    let report = Analyzer::new(&w.design, w.module, &lib, &w.clocks, w.spec.clone())
        .expect("conforming workload")
        .analyze();
    for path in report.slow_paths() {
        assert!(path.slack <= hb_units::Time::ZERO);
        assert!(!path.steps.is_empty());
        assert!(path.steps.first().unwrap().through.is_none());
        for pair in path.steps.windows(2) {
            assert!(pair[0].time <= pair[1].time, "monotone arrivals");
            assert!(pair[1].through.is_some(), "steps name their instance");
        }
    }
    // Worst first.
    for pair in report.slow_paths().windows(2) {
        assert!(pair[0].slack <= pair[1].slack);
    }
}
