//! `stats` accuracy: every request — read-lock-served or write-path —
//! lands in the counters. This pins the fix for the historical
//! undercount where queries answered under the read lock never
//! incremented `requests`.

use std::thread;

use hb_cells::sc89;
use hb_io::Frame;
use hb_obs::parse_exposition;
use hb_server::{Client, Server, ServerOptions};
use hb_workloads::fsm12;

fn start_server() -> (
    std::net::SocketAddr,
    thread::JoinHandle<std::io::Result<()>>,
) {
    let server = Server::bind("127.0.0.1:0", sc89(), ServerOptions::default()).unwrap();
    let addr = server.local_addr().unwrap();
    let handle = thread::spawn(move || server.run());
    (addr, handle)
}

fn workload_text() -> String {
    let lib = sc89();
    let w = fsm12(&lib, true);
    hb_io::write_hum_with_timing(
        &w.design,
        &w.clocks,
        &hb_server::directives_from_spec(&w.spec),
    )
}

#[test]
fn every_request_is_counted() {
    let (addr, server) = start_server();
    let mut client = Client::connect(addr).unwrap();

    let reply = client
        .request(&Frame::new("load").with_payload(workload_text()))
        .unwrap();
    assert_eq!(reply.verb, "ok", "{:?}", reply.payload);
    assert_eq!(client.request(&Frame::new("analyze")).unwrap().verb, "ok");

    const READS: u64 = 5; // worst-paths on a settled analysis: read lock
    const WRITES: u64 = 3; // analyze re-runs: write lock
    for _ in 0..READS {
        let reply = client
            .request(&Frame::new("worst-paths").arg("k", 2))
            .unwrap();
        assert_eq!(reply.verb, "ok");
    }
    for _ in 0..WRITES {
        assert_eq!(client.request(&Frame::new("analyze")).unwrap().verb, "ok");
    }

    // The ledger: load + (1 + WRITES) analyzes on the write path, READS
    // worst-paths on the read path, plus the stats request itself —
    // counted before it is answered, so it sees itself.
    let stats = client.request(&Frame::new("stats")).unwrap();
    assert_eq!(stats.verb, "ok");
    let get = |key: &str| stats.get(key).unwrap().parse::<u64>().unwrap();
    assert_eq!(get("read_requests"), READS + 1);
    assert_eq!(get("write_requests"), 2 + WRITES);
    assert_eq!(
        get("requests"),
        get("read_requests") + get("write_requests")
    );

    // The exposition parses and agrees with `stats` per verb.
    let reply = client.request(&Frame::new("metrics")).unwrap();
    assert_eq!(reply.verb, "ok");
    assert_eq!(reply.get("format"), Some("prometheus-text"));
    let samples = parse_exposition(reply.payload.as_deref().unwrap()).unwrap();
    let sample = |series: &str| {
        samples
            .iter()
            .find(|(name, _)| name == series)
            .map(|(_, value)| *value)
    };
    assert_eq!(
        sample(r#"hb_requests_total{path="read",verb="worst-paths"}"#),
        Some(READS as f64)
    );
    assert_eq!(
        sample(r#"hb_requests_total{path="write",verb="analyze"}"#),
        Some(1.0 + WRITES as f64)
    );
    assert_eq!(
        sample(r#"hb_requests_total{path="write",verb="load"}"#),
        Some(1.0)
    );
    assert_eq!(
        sample(r#"hb_requests_total{path="read",verb="stats"}"#),
        Some(1.0)
    );
    assert_eq!(
        sample(r#"hb_requests_total{path="read",verb="metrics"}"#),
        Some(1.0)
    );
    // Transport-level series: one live connection (which is also the
    // peak), and the byte meters have seen traffic.
    assert_eq!(sample("hb_connections"), Some(1.0));
    assert_eq!(sample(r#"hb_connections{watermark="peak"}"#), Some(1.0));
    assert!(sample("hb_bytes_read_total").unwrap() > 0.0);
    assert!(sample("hb_bytes_written_total").unwrap() > 0.0);

    assert_eq!(client.request(&Frame::new("shutdown")).unwrap().verb, "ok");
    drop(client);
    server.join().unwrap().unwrap();
}
