//! Error paths across every hb-io surface: malformed `.hum` headers,
//! truncated BLIF, and the daemon protocol codec under both random and
//! hostile inputs. Each failure must be a structured [`ParseError`] or
//! [`ProtoError`] carrying a useful position — never a panic, never a
//! silent partial parse.

use std::io::BufReader;

use hb_cells::sc89;
use hb_io::{parse_blif, parse_hum, write_frame, Frame, FrameReader, ProtoError};
use hb_rng::SmallRng;

#[test]
fn malformed_hum_headers_report_the_line() {
    let lib = sc89();
    let cases: &[(&str, &str, usize)] = &[
        ("design\n", "design needs a name", 1),
        ("design d\nmodule\n", "module needs a name", 2),
        ("design d\nmodule a\nmodule b\n", "nested module", 3),
        ("design d\nend\n", "outside a module", 2),
        ("design d\nmodule t\nport sideways x\nend\n", "direction", 3),
        ("design d\nmodule t\n", "unterminated module", 0),
    ];
    for &(text, needle, line) in cases {
        let e = parse_hum(text, &lib).unwrap_err();
        assert!(
            e.message().contains(needle),
            "{text:?}: expected {needle:?} in {:?}",
            e.message()
        );
        assert_eq!(e.line(), line, "{text:?}: wrong line in {e}");
    }
}

#[test]
fn malformed_hum_clock_and_timing_lines() {
    let lib = sc89();
    let prefix = "design d\nmodule top\n  port in a\nend\ntop top\n";
    for bad in [
        "clock ck\n",
        "clock ck period banana rise 0ns fall 5ns\n",
        "clock ck period 10ns rise 0ns fall 5ns stretch 1ns\n",
        "clockport onlyaport\n",
        "arrive a ck sideways 1ns\n",
        "arrive a ck rise\n",
    ] {
        let text = format!("{prefix}{bad}");
        assert!(parse_hum(&text, &lib).is_err(), "{bad:?} must be rejected");
    }
    // The prefix alone is fine — failures above are the suffix's fault.
    assert!(parse_hum(prefix, &lib).is_ok());
}

#[test]
fn truncated_blif_is_rejected() {
    let lib = sc89();
    let e = parse_blif("", &lib).unwrap_err();
    assert!(e.message().contains("no .model"), "{e}");
    let e = parse_blif(".model t\n.inputs a\n.outputs y\n", &lib).unwrap_err();
    assert!(e.message().contains("unterminated model"), "{e}");
    let e = parse_blif(".model a\n.model b\n.end\n", &lib).unwrap_err();
    assert!(e.message().contains("nested .model"), "{e}");
    // A continuation backslash at end-of-input must not lose the line.
    let e = parse_blif(".model t\n.inputs a \\\n", &lib).unwrap_err();
    assert!(e.message().contains("unterminated"), "{e}");
}

/// Random frames survive an encode → decode round trip even when the
/// transport hands the decoder tiny buffers (frames split mid-header
/// and mid-payload).
#[test]
fn codec_round_trip_fuzz_with_split_reads() {
    let mut rng = SmallRng::seed_from_u64(0x1989_0625);
    let token = |rng: &mut SmallRng| -> String {
        const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_-.:";
        let len = rng.gen_range(1..12);
        (0..len)
            .map(|_| ALPHABET[rng.gen_range(0..ALPHABET.len())] as char)
            .collect()
    };
    for round in 0..50 {
        let mut frames = Vec::new();
        for _ in 0..rng.gen_range(1..8) {
            let mut frame = Frame::new(token(&mut rng));
            for _ in 0..rng.gen_range(0..4) {
                frame = frame.arg(token(&mut rng), token(&mut rng));
            }
            if rng.gen_bool(0.5) {
                // Payloads may hold anything printable, including the
                // header's own delimiters.
                let mut payload = String::new();
                for _ in 0..rng.gen_range(0..120) {
                    payload.push(match rng.gen_range(0..8) {
                        0 => ' ',
                        1 => '\n',
                        2 => '=',
                        3 => 'λ', // multi-byte UTF-8
                        _ => ALPHANUM(rng.gen_range(0..36)),
                    });
                }
                frame = frame.with_payload(payload);
            }
            frames.push(frame);
        }
        let mut wire = Vec::new();
        for frame in &frames {
            write_frame(&mut wire, frame).unwrap();
        }
        // A 3-byte transport buffer forces every split-read path.
        let cursor = std::io::Cursor::new(wire);
        let mut reader = FrameReader::new(BufReader::with_capacity(3, cursor));
        let mut decoded = Vec::new();
        while let Some(frame) = reader.read_frame().unwrap() {
            decoded.push(frame);
        }
        assert_eq!(decoded, frames, "round {round} mangled the frames");
    }
}

#[allow(non_snake_case)]
fn ALPHANUM(i: usize) -> char {
    (b"abcdefghijklmnopqrstuvwxyz0123456789"[i]) as char
}

fn decode_one(bytes: &[u8]) -> Result<Option<Frame>, ProtoError> {
    FrameReader::new(std::io::Cursor::new(bytes.to_vec())).read_frame()
}

#[test]
fn hostile_frames_fail_closed() {
    // Oversized header: rejected before the line is buffered whole.
    let mut huge = vec![b'x'; hb_io::proto::MAX_HEADER + 1];
    huge.push(b'\n');
    assert!(matches!(
        decode_one(&huge),
        Err(ProtoError::Oversized { what: "header", .. })
    ));
    // ...even with no newline at all (a peer streaming garbage forever
    // must not grow the buffer unboundedly).
    let unending = vec![b'x'; hb_io::proto::MAX_HEADER + 1];
    assert!(matches!(
        decode_one(&unending),
        Err(ProtoError::Oversized { what: "header", .. })
    ));

    // A 16 MiB+1 declared payload is refused without allocating it.
    let decl = format!("load payload={}\n", hb_io::proto::MAX_PAYLOAD + 1);
    assert!(matches!(
        decode_one(decl.as_bytes()),
        Err(ProtoError::Oversized {
            what: "payload",
            ..
        })
    ));

    // Embedded NUL: recoverable (the line was consumed), but rejected.
    let err = decode_one(b"sta\0ts\n").unwrap_err();
    assert!(matches!(err, ProtoError::Nul) && err.recoverable());
    let err = decode_one(b"load payload=3\na\0b\n").unwrap_err();
    assert!(matches!(err, ProtoError::Nul));

    // Truncations at every stage.
    assert!(matches!(decode_one(b"stats"), Err(ProtoError::Truncated)));
    assert!(matches!(
        decode_one(b"load payload=10\nabc"),
        Err(ProtoError::Truncated)
    ));
    // Declared length shorter than the actual body: the reader must
    // notice the missing terminator rather than resync mid-payload.
    let err = decode_one(b"load payload=2\nabcd\n").unwrap_err();
    assert!(matches!(err, ProtoError::Malformed(_)), "{err}");

    // Bad UTF-8 in header and payload.
    assert!(matches!(
        decode_one(b"st\xffats\n"),
        Err(ProtoError::Encoding)
    ));
    assert!(matches!(
        decode_one(b"load payload=2\n\xff\xfe\n"),
        Err(ProtoError::Encoding)
    ));

    // Arguments without `=` stay recoverable: the server answers with
    // a structured error and keeps the connection.
    let err = decode_one(b"slack node\n").unwrap_err();
    assert!(err.recoverable(), "{err}");
}

/// The fleet and replication verbs ride the same codec: hostile
/// `design=` keys, oversized `open` headers, and truncated replication
/// pages fail closed with the same classifications as any other frame.
#[test]
fn hostile_fleet_and_replication_frames() {
    // A design id with whitespace splits into a dangling token: the
    // codec rejects the line recoverably and the daemon answers with a
    // structured error instead of routing to a half-named session.
    let err = decode_one(b"open design=has space\n").unwrap_err();
    assert!(
        matches!(err, ProtoError::Malformed(_)) && err.recoverable(),
        "{err}"
    );

    // An *empty* id is the router's problem, not the codec's: the
    // frame decodes with the empty value intact so the server can
    // reject it as `usage` rather than the codec dropping the line.
    let frame = decode_one(b"open design=\n").unwrap().unwrap();
    assert_eq!(frame.verb, "open");
    assert_eq!(frame.get("design"), Some(""));

    // An `open` padded past the header bound is refused before the id
    // is ever buffered whole.
    let mut huge = b"open design=".to_vec();
    huge.resize(hb_io::proto::MAX_HEADER + 1, b'x');
    huge.push(b'\n');
    assert!(matches!(
        decode_one(&huge),
        Err(ProtoError::Oversized { what: "header", .. })
    ));

    // A replication page cut off mid-entry is a truncation, never a
    // silently short frame the standby could replay as-is.
    assert!(matches!(
        decode_one(b"entry expect=eco payload=50\nshort"),
        Err(ProtoError::Truncated)
    ));
    // ...and a cursor carrying bad UTF-8 is an encoding error.
    assert!(matches!(
        decode_one(b"repl-pull design=d epoch=\xff\n"),
        Err(ProtoError::Encoding)
    ));
}

/// A realistic daemon transcript over `text`: the fleet lifecycle —
/// open, load, query, replicate — with the design as a bulky payload
/// and a nested replication `entry` carrying a frame *as* a payload.
fn transcript(text: &str) -> Vec<Frame> {
    vec![
        Frame::new("hello"),
        Frame::new("open").arg("design", "soc_v2.rev-3"),
        Frame::new("load")
            .arg("format", "hum")
            .arg("design", "soc_v2.rev-3")
            .with_payload(text),
        Frame::new("analyze").arg("latch", "transparent"),
        Frame::new("slack").arg("node", "mid"),
        Frame::new("worst-paths").arg("k", 9),
        Frame::new("eco")
            .arg("op", "resize")
            .arg("inst", "a0")
            .arg("steps", 1),
        Frame::new("designs"),
        Frame::new("repl-state"),
        Frame::new("repl-pull")
            .arg("design", "soc_v2.rev-3")
            .arg("epoch", 0)
            .arg("since", 0),
        Frame::new("entry")
            .arg("expect", "ok")
            .with_payload(Frame::new("analyze").encode()),
        Frame::new("dump"),
        Frame::new("stats"),
        Frame::new("close").arg("design", "soc_v2.rev-3"),
        Frame::new("shutdown"),
    ]
}

/// The seeded fault matrix: every `io.*` fault point, alone and all
/// together, against two workload-sized transcripts. The invariants:
/// a faulted *writer* emits byte-identical wire (callers retry
/// `Interrupted` and loop short writes), and a faulted *reader*
/// decodes byte-identical frames — injected `WouldBlock`/`TimedOut`
/// surface as resumable errors, never as misclassified frame damage.
#[test]
fn faulted_transport_matrix_round_trips_transcripts() {
    use hb_fault::{Fault, FaultPlan, FaultStream};
    use std::io::Write as _;
    use std::time::Duration;

    let lib = sc89();
    let pipe = hb_workloads::random_pipeline(
        &lib,
        hb_workloads::PipelineParams {
            stages: 6,
            width: 8,
            gates_per_stage: 120,
            transparent: true,
            period_ns: 30,
            seed: 1203,
            imbalance_pct: 40,
        },
    );
    let fsm = hb_workloads::fsm12(&lib, true);
    let texts = [
        hb_io::write_hum_with_timing(&pipe.design, &pipe.clocks, &[]),
        hb_io::write_hum_with_timing(&fsm.design, &fsm.clocks, &[]),
    ];

    const POINTS: &[&str] = &[
        hb_fault::IO_READ_SHORT,
        hb_fault::IO_READ_ERR,
        hb_fault::IO_READ_STALL,
        hb_fault::IO_WRITE_SHORT,
        hb_fault::IO_WRITE_ERR,
        hb_fault::IO_WRITE_STALL,
    ];
    // Each single point plus the everything-at-once plan.
    let arms: Vec<Vec<&str>> = POINTS
        .iter()
        .map(|&p| vec![p])
        .chain(std::iter::once(POINTS.to_vec()))
        .collect();
    let plan_for = |seed: u64, arm: &[&str]| -> FaultPlan {
        let mut plan = FaultPlan::seeded(seed).with_stall(Duration::from_millis(1));
        for &point in arm {
            // Stalls are rare and budgeted to keep the matrix fast;
            // everything else fires often.
            let fault = if point.ends_with(".stall") {
                Fault::with_rate(2).budget(10)
            } else {
                Fault::with_rate(25)
            };
            plan = plan.armed(point, fault);
        }
        plan
    };

    for (t, text) in texts.iter().enumerate() {
        let frames = transcript(text);
        let mut clean_wire = Vec::new();
        for frame in &frames {
            write_frame(&mut clean_wire, frame).unwrap();
        }
        for seed in [0xDAC89u64, 11, 12] {
            for arm in &arms {
                let tag = format!("transcript {t}, seed {seed:#x}, arm {arm:?}");

                // Faulted writer → byte-identical wire. `write_all`
                // retries Interrupted and loops over short writes.
                let mut sink = FaultStream::new(std::io::empty(), Vec::new(), plan_for(seed, arm));
                for frame in &frames {
                    sink.write_all(frame.encode().as_bytes()).unwrap();
                }
                assert_eq!(
                    sink.into_inner().1,
                    clean_wire,
                    "{tag}: writer corrupted wire"
                );

                // Faulted reader → identical frames, resumably. Small
                // buffer capacity multiplies the split points.
                let cursor = std::io::Cursor::new(clean_wire.clone());
                let mut reader = FrameReader::new(BufReader::with_capacity(
                    256,
                    FaultStream::reader(cursor, plan_for(seed, arm)),
                ));
                let mut decoded = Vec::new();
                loop {
                    match reader.read_frame() {
                        Ok(Some(frame)) => decoded.push(frame),
                        Ok(None) => break,
                        Err(ProtoError::Io(e))
                            if matches!(
                                e.kind(),
                                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                            ) =>
                        {
                            continue; // injected; partial frame retained
                        }
                        Err(e) => panic!("{tag}: misclassified fault as {e}"),
                    }
                }
                assert!(!reader.mid_frame(), "{tag}: trailing partial frame");
                assert_eq!(decoded, frames, "{tag}: reader mangled frames");
            }
        }
    }
}
