//! Criterion version of the Table 1 reproduction: pre-processing and
//! analysis time per evaluation design.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hb_cells::sc89;
use hb_workloads::{alu, des_like, fsm12, Workload};
use hummingbird::Analyzer;

fn workloads() -> Vec<Workload> {
    let lib = sc89();
    vec![
        des_like(&lib, 1989),
        alu(&lib, 7),
        fsm12(&lib, true),
        fsm12(&lib, false),
    ]
}

fn bench_preprocessing(c: &mut Criterion) {
    let lib = sc89();
    let mut group = c.benchmark_group("table1/preprocessing");
    group.sample_size(10);
    for w in workloads() {
        group.bench_with_input(BenchmarkId::from_parameter(&w.name), &w, |b, w| {
            b.iter(|| {
                Analyzer::new(&w.design, w.module, &lib, &w.clocks, w.spec.clone())
                    .expect("conforming workload")
            })
        });
    }
    group.finish();
}

fn bench_analysis(c: &mut Criterion) {
    let lib = sc89();
    let mut group = c.benchmark_group("table1/analysis");
    group.sample_size(10);
    for w in workloads() {
        let analyzer = Analyzer::new(&w.design, w.module, &lib, &w.clocks, w.spec.clone())
            .expect("conforming workload");
        group.bench_with_input(
            BenchmarkId::from_parameter(&w.name),
            &analyzer,
            |b, a| b.iter(|| a.analyze()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_preprocessing, bench_analysis);
criterion_main!(benches);
