//! Block-oriented static timing analysis over combinational clusters.
//!
//! This crate implements the *combinational* half of the paper's
//! analysis: Hitchcock's block method (DAC'82), which the paper adopts
//! for slack computation because "speed is an important issue for a
//! system timing analyser to be used in an analysis-redesign loop":
//!
//! * [`TimingGraph`] — a net-level timing graph built from an
//!   `hb-netlist` module, an `hb-cells` binding and a library: one node
//!   per net, one weighted arc per cell timing arc (evaluated at the
//!   estimated net load). Synchronising elements contribute no
//!   combinational arcs; their pins are collected into [`SyncInst`]
//!   records for the system-level analyzer (`hummingbird`) to consume.
//!   Hierarchical (module) instances are abstracted into pin-to-pin
//!   arcs by recursive block analysis — the paper's "hierarchical"
//!   analysis mode (SM1H);
//! * [`analysis`] — forward ready-time propagation (paper equation 1),
//!   backward required-time propagation, slack formation (equation 2),
//!   and the minimum-delay variants used by the supplementary path
//!   constraints;
//! * [`clusters`](TimingGraph::clusters) — the paper's *clusters*:
//!   maximal connected networks of combinational logic, the unit at
//!   which analysis passes are planned;
//! * [`paths`] — critical-path extraction and the exhaustive
//!   path-enumeration baseline that the paper rejects on cost grounds
//!   (reproduced here for the ablation benchmark).
//!
//! # Examples
//!
//! ```
//! use hb_cells::{sc89, Binding};
//! use hb_netlist::Design;
//! use hb_sta::TimingGraph;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let lib = sc89();
//! let mut d = Design::new("demo");
//! lib.declare_into(&mut d)?;
//! let m = d.add_module("top")?;
//! let a = d.add_net(m, "a")?;
//! let y = d.add_net(m, "y")?;
//! d.add_port(m, "a", hb_netlist::PinDir::Input, a)?;
//! d.add_port(m, "y", hb_netlist::PinDir::Output, y)?;
//! let inv = d.leaf_by_name("INV_X1").expect("library cell");
//! let u = d.add_leaf_instance(m, "u", inv)?;
//! d.connect(m, u, "A", a)?;
//! d.connect(m, u, "Y", y)?;
//!
//! let binding = Binding::new(&d, &lib);
//! let graph = TimingGraph::build(&d, m, &binding, &lib)?;
//! assert_eq!(graph.arc_count(), 1);
//! # Ok(())
//! # }
//! ```

pub mod analysis;
mod error;
mod graph;
pub mod paths;
pub mod shard;

pub use error::StaError;
pub use graph::{Cluster, ClusterId, GraphArc, SyncInst, TimingGraph};
pub use shard::{ClusterShard, LocalArc, ShardedGraph};
