//! Reproduces the paper's §2/§4 motivation: analyses that cannot model
//! transparent latches (McWilliams, DAC'80) either reject working
//! designs or force the clock to slow down.
//!
//! A two-phase transparent-latch pipeline is analyzed under both latch
//! models across a period sweep; the crossover band — periods where the
//! transparent model passes and the edge-triggered model fails — is the
//! benefit of modelling transparency.

use hb_bench::table1_row_with;
use hb_cells::sc89;
use hb_workloads::latch_pipeline;
use hummingbird::{AnalysisOptions, LatchModel};

fn main() {
    let lib = sc89();
    println!("Transparent vs edge-triggered latch modelling");
    println!(
        "{:>10} {:>13} {:>15}",
        "period", "transparent", "edge-triggered"
    );
    let mut crossover = 0usize;
    for period_ns in [10i64, 14, 16, 20, 24, 30, 40, 60] {
        let w = latch_pipeline(&lib, 6, 8, 11, period_ns);
        let transparent = table1_row_with(&lib, &w, AnalysisOptions::default());
        let edge = table1_row_with(
            &lib,
            &w,
            AnalysisOptions {
                latch_model: LatchModel::EdgeTriggered,
                ..AnalysisOptions::default()
            },
        );
        if transparent.ok && !edge.ok {
            crossover += 1;
        }
        assert!(
            !edge.ok || transparent.ok,
            "transparent analysis subsumes the edge-triggered feasible set"
        );
        println!(
            "{:>8}ns {:>13} {:>15}",
            period_ns,
            if transparent.ok { "meets" } else { "fails" },
            if edge.ok { "meets" } else { "fails" }
        );
    }
    println!("\nperiods where only the transparent model closes timing: {crossover}");
}
