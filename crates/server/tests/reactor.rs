//! Reactor transport suite: the `poll(2)` event loop against its
//! blocking siblings.
//!
//! The load-bearing test is parity: one wire transcript — load,
//! analyze, ECO, single/multi-node slack, a batch frame, a malformed
//! header — is replayed through `serve_stream` and through the
//! reactor, and the reply streams must be byte-identical (after
//! masking the one volatile token, `seconds=`). Everything else here
//! exercises what only the reactor offers: request pipelining,
//! batched verbs, a thousand concurrent connections on one thread,
//! accept-side shedding, and the bounded per-connection buffer gauge.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread;

use hb_cells::sc89;
use hb_io::{Frame, FrameDecoder, FrameReader};
use hb_server::{serve_stream, Client, Server, ServerOptions};

/// Every net in the two-phase pipeline design — multi-node slack
/// targets.
const NETS: [&str; 15] = [
    "a0y", "a1y", "a2y", "a3y", "a4y", "a5y", "a6y", "a7y", "midq", "b0y", "b1y", "b2y", "b3y",
    "b4y", "dout",
];

fn design() -> String {
    std::fs::read_to_string("../../designs/two_phase_pipeline.hum").unwrap()
}

fn start_reactor(options: ServerOptions) -> (SocketAddr, thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind("127.0.0.1:0", sc89(), options).unwrap();
    let addr = server.local_addr().unwrap();
    let handle = thread::spawn(move || server.run_reactor());
    (addr, handle)
}

/// A loaded, analyzed session over the pipeline design.
fn warm_client(addr: SocketAddr) -> Client {
    let mut client = Client::connect(addr).unwrap();
    let reply = client
        .request(&Frame::new("load").with_payload(design()))
        .unwrap();
    assert_eq!(reply.verb, "ok", "{:?}", reply.payload);
    let reply = client.request(&Frame::new("analyze")).unwrap();
    assert_eq!(reply.verb, "ok", "{:?}", reply.payload);
    client
}

/// A `batch` frame wrapping the given sub-requests.
fn batch_of(subs: &[Frame]) -> Frame {
    let mut body = String::new();
    for sub in subs {
        body.push_str(&sub.encode());
    }
    Frame::new("batch").with_payload(body)
}

/// Masks the value of every ` seconds=` argument — the only volatile
/// token in any reply — so transcripts from different runs compare
/// byte-for-byte.
/// Parses a wire slack value (`-1.250ns`) to nanoseconds.
fn ns(s: &str) -> f64 {
    s.trim_end_matches("ns").parse().unwrap()
}

fn mask_seconds(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(pos) = rest.find(" seconds=") {
        out.push_str(&rest[..pos]);
        out.push_str(" seconds=X");
        let after = &rest[pos + " seconds=".len()..];
        let end = after.find([' ', '\n']).unwrap_or(after.len());
        rest = &after[end..];
    }
    out.push_str(rest);
    out
}

/// The parity satellite: the same wire transcript through the
/// blocking stream loop and through the reactor produces
/// byte-identical reply streams.
#[test]
fn reactor_replies_match_serve_stream_byte_for_byte() {
    let text = design();
    let subs = [
        Frame::new("hello"),
        Frame::new("slack").arg("node", "midq"),
        Frame::new("slack").arg("node", "a1y").arg("node", "dout"),
        Frame::new("worst-paths").arg("k", 2),
        Frame::new("dump"),
    ];
    let mut wire = Vec::new();
    for f in [
        Frame::new("hello"),
        Frame::new("load").with_payload(text),
        Frame::new("analyze"),
        Frame::new("slack").arg("node", "midq"),
        Frame::new("slack").arg("node", "mid"),
        Frame::new("eco")
            .arg("op", "resize")
            .arg("inst", "b0")
            .arg("steps", 1),
        Frame::new("analyze"),
        Frame::new("slack")
            .arg("node", "a3y")
            .arg("node", "b1y")
            .arg("node", "dout"),
        batch_of(&subs),
    ] {
        wire.extend_from_slice(f.encode().as_bytes());
    }
    // A recoverable protocol error mid-stream: both transports must
    // answer it and keep serving.
    wire.extend_from_slice(b"slack bogus\n");
    for f in [
        Frame::new("worst-paths").arg("k", 3),
        Frame::new("slack").arg("node", "nosuch"),
        Frame::new("dump"),
        Frame::new("shutdown"),
    ] {
        wire.extend_from_slice(f.encode().as_bytes());
    }

    let mut blocking = Vec::new();
    serve_stream(sc89(), std::io::Cursor::new(wire.clone()), &mut blocking).unwrap();

    let (addr, server) = start_reactor(ServerOptions::default());
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(&wire).unwrap();
    let mut reacted = Vec::new();
    stream.read_to_end(&mut reacted).unwrap();
    server.join().unwrap().unwrap();

    let blocking = mask_seconds(&String::from_utf8(blocking).unwrap());
    let reacted = mask_seconds(&String::from_utf8(reacted).unwrap());
    assert_eq!(blocking, reacted, "transports diverged");

    // Sanity: one reply per request, including the malformed line.
    let mut replies = FrameReader::new(std::io::Cursor::new(reacted.into_bytes()));
    let mut count = 0usize;
    while replies.read_frame().unwrap().is_some() {
        count += 1;
    }
    assert_eq!(count, 14);
}

/// Pipelining: a window of requests written in one burst comes back
/// as in-order replies identical to their sequential twins.
#[test]
fn pipelined_window_replies_in_order() {
    let (addr, server) = start_reactor(ServerOptions::default());
    let mut client = warm_client(addr);

    let sequential: Vec<Frame> = NETS
        .iter()
        .map(|net| {
            client
                .request(&Frame::new("slack").arg("node", *net))
                .unwrap()
        })
        .collect();

    let window: Vec<Frame> = (0..600)
        .map(|i| Frame::new("slack").arg("node", NETS[i % NETS.len()]))
        .collect();
    let replies = client.request_pipelined(&window).unwrap();
    assert_eq!(replies.len(), window.len());
    for (i, reply) in replies.iter().enumerate() {
        assert_eq!(reply, &sequential[i % NETS.len()], "reply {i} diverged");
    }

    client.request(&Frame::new("shutdown")).unwrap();
    server.join().unwrap().unwrap();
}

/// Batched slack: the multi-node form reports every node and a
/// `worst` equal to the minimum of the individual slacks.
#[test]
fn multi_node_slack_aggregates_individuals() {
    let (addr, server) = start_reactor(ServerOptions::default());
    let mut client = warm_client(addr);

    let mut multi = Frame::new("slack");
    for net in NETS {
        multi = multi.arg("node", net);
    }
    let reply = client.request(&multi).unwrap();
    assert_eq!(reply.verb, "ok", "{:?}", reply.payload);
    assert_eq!(reply.get("count"), Some(format!("{}", NETS.len()).as_str()));

    let body = reply.payload.clone().unwrap();
    let mut worst: Option<f64> = None;
    for net in NETS {
        let single = client
            .request(&Frame::new("slack").arg("node", net))
            .unwrap();
        let slack = single.get("slack").unwrap();
        let line = body
            .lines()
            .find(|l| l.starts_with(&format!("{net} ")))
            .unwrap_or_else(|| panic!("no line for {net}"));
        assert_eq!(
            line,
            format!("{net} {} {slack}", single.get("kind").unwrap()),
            "batched line diverged from the single-node reply"
        );
        let v = ns(slack);
        worst = Some(worst.map_or(v, |w: f64| w.min(v)));
    }
    let min = worst.unwrap();
    assert_eq!(
        ns(reply.get("worst").unwrap()),
        min,
        "worst= must be the minimum of the per-node slacks"
    );

    // An unknown node fails the whole multi-node request.
    let reply = client
        .request(&Frame::new("slack").arg("node", "a1y").arg("node", "nosuch"))
        .unwrap();
    assert_eq!(reply.verb, "error");
    assert_eq!(reply.get("code"), Some("unknown-node"));

    client.request(&Frame::new("shutdown")).unwrap();
    server.join().unwrap().unwrap();
}

/// The `batch` frame: N sub-requests in one payload come back as one
/// reply whose payload decodes into exactly the sub-replies the verbs
/// would earn individually.
#[test]
fn batch_frame_matches_individual_replies() {
    let (addr, server) = start_reactor(ServerOptions::default());
    let mut client = warm_client(addr);

    let mut subs = vec![Frame::new("hello"), Frame::new("worst-paths").arg("k", 2)];
    for net in NETS {
        subs.push(Frame::new("slack").arg("node", net));
    }
    subs.push(Frame::new("slack").arg("node", "nosuch")); // errors ride along

    let reply = client.request(&batch_of(&subs)).unwrap();
    assert_eq!(reply.verb, "ok", "{:?}", reply.payload);
    assert_eq!(reply.get("count"), Some(format!("{}", subs.len()).as_str()));
    assert_eq!(reply.get("errors"), Some("1"));

    let mut decoder = FrameDecoder::new();
    decoder.feed(reply.payload.clone().unwrap().as_bytes());
    let mut batched = Vec::new();
    while let Some(frame) = decoder.next_frame().unwrap() {
        batched.push(frame);
    }
    decoder.finish().unwrap();
    assert_eq!(batched.len(), subs.len());
    for (sub, got) in subs.iter().zip(&batched) {
        let want = client.request(sub).unwrap();
        assert_eq!(got, &want, "sub-reply for `{}` diverged", sub.verb);
    }

    // A mutating verb may not hide inside a batch.
    let reply = client.request(&batch_of(&[Frame::new("analyze")])).unwrap();
    assert_eq!(reply.verb, "error");
    assert_eq!(reply.get("code"), Some("usage"), "{:?}", reply.payload);

    client.request(&Frame::new("shutdown")).unwrap();
    server.join().unwrap().unwrap();
}

/// One reactor thread holds a thousand live connections and still
/// answers every one of them.
#[test]
fn thousand_concurrent_connections_on_one_thread() {
    let options = ServerOptions {
        max_connections: 1200,
        ..ServerOptions::default()
    };
    let (addr, server) = start_reactor(options);

    let mut clients: Vec<Client> = (0..1000)
        .map(|i| Client::connect(addr).unwrap_or_else(|e| panic!("connect {i}: {e}")))
        .collect();
    for (i, client) in clients.iter_mut().enumerate() {
        let reply = client.request(&Frame::new("hello")).unwrap();
        assert_eq!(reply.verb, "ok", "client {i}");
    }

    // The gauge sees them all at once.
    let reply = clients[0].request(&Frame::new("metrics")).unwrap();
    let exposition = reply.payload.unwrap();
    let live: i64 = exposition
        .lines()
        .find_map(|l| l.strip_prefix("hb_connections "))
        .expect("hb_connections in the exposition")
        .trim()
        .parse()
        .unwrap();
    assert!(live >= 1000, "gauge says {live} live connections");

    // Still responsive across the whole set after the burst.
    for client in clients.iter_mut().step_by(97) {
        assert_eq!(client.request(&Frame::new("hello")).unwrap().verb, "ok");
    }

    assert_eq!(
        clients[0].request(&Frame::new("shutdown")).unwrap().verb,
        "ok"
    );
    server.join().unwrap().unwrap();
}

/// Accept-side shedding: connections past the cap get the structured
/// `busy` frame and EOF, and a freed slot readmits new clients.
#[test]
fn over_cap_connections_are_shed_with_busy() {
    let options = ServerOptions {
        max_connections: 2,
        retry_after_ms: 7,
        ..ServerOptions::default()
    };
    let (addr, server) = start_reactor(options);

    let mut a = Client::connect(addr).unwrap();
    let mut b = Client::connect(addr).unwrap();
    assert_eq!(a.request(&Frame::new("hello")).unwrap().verb, "ok");
    assert_eq!(b.request(&Frame::new("hello")).unwrap().verb, "ok");

    let shed = TcpStream::connect(addr).unwrap();
    let mut replies = FrameReader::new(std::io::BufReader::new(shed));
    let reply = replies.read_frame().unwrap().expect("a shed reply");
    assert_eq!(reply.verb, "error");
    assert_eq!(reply.get("code"), Some("busy"));
    assert_eq!(reply.get("retry_after_ms"), Some("7"));
    assert!(replies.read_frame().unwrap().is_none(), "then EOF");

    // Freeing a slot readmits; the backoff client gets through.
    drop(b);
    let reply = Client::request_with_backoff(addr, &Frame::new("hello"), 8).unwrap();
    assert_eq!(reply.verb, "ok", "{:?}", reply.payload);

    assert_eq!(a.request(&Frame::new("shutdown")).unwrap().verb, "ok");
    server.join().unwrap().unwrap();
}

/// The buffer-bytes gauge satellite: sustained pipelined load settles
/// into a bounded per-connection footprint instead of growing with
/// request count.
#[test]
fn conn_buffers_reach_steady_state() {
    let (addr, server) = start_reactor(ServerOptions::default());
    let mut client = warm_client(addr);

    let window: Vec<Frame> = (0..100)
        .map(|i| Frame::new("slack").arg("node", NETS[i % NETS.len()]))
        .collect();
    let gauge = |client: &mut Client| -> (i64, i64) {
        let stats = client.request(&Frame::new("stats")).unwrap();
        (
            stats.get("conn_buffer_bytes").unwrap().parse().unwrap(),
            stats
                .get("conn_buffer_peak_bytes")
                .unwrap()
                .parse()
                .unwrap(),
        )
    };

    for _ in 0..3 {
        client.request_pipelined(&window).unwrap();
    }
    let (warm, _) = gauge(&mut client);
    for _ in 0..20 {
        client.request_pipelined(&window).unwrap();
    }
    let (settled, peak) = gauge(&mut client);

    assert!(warm > 0, "the gauge must see live buffers");
    assert!(
        settled <= warm + 16 * 1024,
        "buffers grew under steady load: {warm} -> {settled}"
    );
    assert!(peak >= settled);
    assert!(
        peak < 4 * 1024 * 1024,
        "per-connection memory unbounded: peak {peak}"
    );

    client.request(&Frame::new("shutdown")).unwrap();
    server.join().unwrap().unwrap();
}
