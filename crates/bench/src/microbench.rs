//! A minimal wall-clock micro-benchmark harness.
//!
//! Replaces the external `criterion` dependency for offline builds.
//! It is deliberately simple: a warm-up phase, a fixed number of timed
//! iterations, and median/mean reporting. Numbers are indicative, not
//! statistically rigorous — good enough for the coarse ablations the
//! benches document (orders of magnitude, scaling trends).

use std::hint::black_box;
use std::time::Instant;

/// The timing result of one benchmark case.
#[derive(Clone, Copy, Debug)]
pub struct Measurement {
    /// Median seconds per iteration.
    pub median: f64,
    /// Mean seconds per iteration.
    pub mean: f64,
    /// Number of timed iterations.
    pub iters: usize,
}

/// Times `f` over `iters` iterations after `warmup` untimed runs and
/// prints a `name: median … mean …` line. The closure's return value is
/// passed through [`black_box`] so the computation is not optimised
/// away.
pub fn bench<T>(name: &str, warmup: usize, iters: usize, mut f: impl FnMut() -> T) -> Measurement {
    assert!(iters > 0, "need at least one timed iteration");
    for _ in 0..warmup {
        black_box(f());
    }
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let start = Instant::now();
        black_box(f());
        samples.push(start.elapsed().as_secs_f64());
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    println!(
        "{name}: median {} mean {} ({iters} iters)",
        fmt_s(median),
        fmt_s(mean)
    );
    Measurement {
        median,
        mean,
        iters,
    }
}

/// Formats seconds with an adaptive unit (s/ms/µs/ns).
pub fn fmt_s(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3}s")
    } else if secs >= 1e-3 {
        format!("{:.3}ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3}µs", secs * 1e6)
    } else {
        format!("{:.1}ns", secs * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_plausible_times() {
        let m = bench("noop", 2, 5, || 1 + 1);
        assert_eq!(m.iters, 5);
        assert!(m.median >= 0.0 && m.mean >= 0.0);
        assert!(m.median < 1.0, "a no-op cannot take a second");
    }

    #[test]
    fn fmt_s_picks_units() {
        assert!(fmt_s(2.5).ends_with('s'));
        assert!(fmt_s(2.5e-3).ends_with("ms"));
        assert!(fmt_s(2.5e-6).ends_with("µs"));
        assert!(fmt_s(2.5e-9).ends_with("ns"));
    }
}
