//! Library cells: interfaces, functions and synchronising-element specs.

use std::fmt;

use hb_netlist::{LeafDef, PinSlot};
use hb_units::{Sense, Time};

use crate::delay::DelayModel;

/// Handle to a [`Cell`] within a [`crate::Library`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CellId(pub(crate) u32);

impl CellId {
    /// Returns the raw index.
    pub fn as_raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cell{}", self.0)
    }
}

/// The relative drive strength of a cell variant (X1, X2, X4…).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DriveStrength(pub u8);

impl DriveStrength {
    /// The baseline ×1 drive.
    pub const X1: DriveStrength = DriveStrength(1);
    /// Double drive.
    pub const X2: DriveStrength = DriveStrength(2);
    /// Quadruple drive.
    pub const X4: DriveStrength = DriveStrength(4);
}

impl fmt::Display for DriveStrength {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "X{}", self.0)
    }
}

/// One input-to-output timing arc of a combinational cell.
#[derive(Clone, Copy, Debug)]
pub struct TimingArc {
    /// Input pin slot.
    pub from: PinSlot,
    /// Output pin slot.
    pub to: PinSlot,
    /// Unateness of the arc.
    pub sense: Sense,
    /// Load-dependent delay of the arc.
    pub delay: DelayModel,
}

/// The kind of a synchronising element, per Section 5 of the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SyncKind {
    /// A trailing-edge-triggered latch (master–slave flip-flop): the
    /// trailing edge of each control pulse causes both input closure and
    /// output assertion.
    TrailingEdge,
    /// A level-sensitive ("transparent") latch: the leading edge causes
    /// output assertion, the trailing edge causes input closure, and data
    /// flows through during the pulse.
    Transparent,
    /// A clocked tristate driver — "modeled in the same way as
    /// transparent latches" (paper, end of Section 5).
    ClockedTristate,
}

impl SyncKind {
    /// Whether the element has a transparency window (its data-side
    /// offsets are adjustable by slack transfer).
    pub fn is_transparent(self) -> bool {
        matches!(self, SyncKind::Transparent | SyncKind::ClockedTristate)
    }
}

impl fmt::Display for SyncKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SyncKind::TrailingEdge => "trailing-edge latch",
            SyncKind::Transparent => "transparent latch",
            SyncKind::ClockedTristate => "clocked tristate",
        })
    }
}

/// The timing description of a synchronising element.
///
/// The generic model of the paper (Figure 2) has three logical terminals:
/// data input, control input and data output. `control_sense` captures
/// the monotonic-control assumption: with [`Sense::Positive`] the element
/// is enabled while its clock is high (the pulse *is* the clock pulse);
/// with [`Sense::Negative`] it is enabled while the clock is low.
#[derive(Clone, Copy, Debug)]
pub struct SyncSpec {
    /// Which kind of element this is.
    pub kind: SyncKind,
    /// The data-input pin slot.
    pub data: PinSlot,
    /// The control (clock/enable) pin slot.
    pub control: PinSlot,
    /// The data-output pin slot.
    pub output: PinSlot,
    /// An optional complementary output (the paper's *output-bar*
    /// terminal: "synchronising elements with further terminals … can be
    /// handled"). It asserts at the same times as the main output.
    pub output_bar: Option<PinSlot>,
    /// Required set-up time `D_setup`.
    pub setup: Time,
    /// Required hold time after input closure (used by the supplementary
    /// minimum-delay checks; the paper's core algorithms ignore it).
    pub hold: Time,
    /// Control-to-output delay `D_cx` (intrinsic; the load-dependent part
    /// comes from `output_delay`).
    pub d_cx: Time,
    /// Data-to-output delay `D_dx` (transparent kinds only; ignored for
    /// trailing-edge elements).
    pub d_dx: Time,
    /// Whether the element is enabled on the high (positive) or low
    /// (negative) phase of its controlling clock signal.
    pub control_sense: Sense,
    /// Load-dependent part of the output delay, added to `d_cx`/`d_dx`
    /// when driving a net.
    pub output_delay: DelayModel,
}

/// What a cell does.
#[derive(Clone, Debug)]
pub enum Function {
    /// Pure combinational logic with explicit pin-to-pin arcs.
    Combinational(Vec<TimingArc>),
    /// A synchronising element.
    Sync(SyncSpec),
}

/// A library cell: interface plus function plus physical parameters.
#[derive(Clone, Debug)]
pub struct Cell {
    pub(crate) interface: LeafDef,
    pub(crate) function: Function,
    pub(crate) input_cap_ff: Vec<i64>,
    pub(crate) drive: DriveStrength,
    pub(crate) family: String,
    pub(crate) area: u32,
}

impl Cell {
    /// Creates a cell.
    ///
    /// `input_cap_ff` must have one entry per interface pin (entries for
    /// output pins are ignored and conventionally zero).
    ///
    /// # Panics
    ///
    /// Panics if `input_cap_ff.len()` does not match the interface pin
    /// count.
    pub fn new(
        interface: LeafDef,
        function: Function,
        input_cap_ff: Vec<i64>,
        drive: DriveStrength,
        family: impl Into<String>,
        area: u32,
    ) -> Cell {
        assert_eq!(
            input_cap_ff.len(),
            interface.pin_count(),
            "one capacitance entry per pin"
        );
        Cell {
            interface,
            function,
            input_cap_ff,
            drive,
            family: family.into(),
            area,
        }
    }

    /// The cell name (e.g. `"NAND2_X1"`).
    pub fn name(&self) -> &str {
        self.interface.name()
    }

    /// The interface declaration.
    pub fn interface(&self) -> &LeafDef {
        &self.interface
    }

    /// The cell function.
    pub fn function(&self) -> &Function {
        &self.function
    }

    /// The capacitance presented by pin `slot`, in femtofarads.
    ///
    /// # Panics
    ///
    /// Panics if the slot is out of range.
    pub fn pin_cap_ff(&self, slot: PinSlot) -> i64 {
        self.input_cap_ff[slot.as_raw() as usize]
    }

    /// The drive strength of this variant.
    pub fn drive(&self) -> DriveStrength {
        self.drive
    }

    /// The family name shared by all drive variants (e.g. `"NAND2"`).
    pub fn family(&self) -> &str {
        &self.family
    }

    /// The cell area in layout units.
    pub fn area(&self) -> u32 {
        self.area
    }

    /// Returns the synchronising-element spec if this is a sync cell.
    pub fn sync_spec(&self) -> Option<&SyncSpec> {
        match &self.function {
            Function::Sync(spec) => Some(spec),
            Function::Combinational(_) => None,
        }
    }

    /// Returns the combinational timing arcs if this is a logic cell.
    pub fn arcs(&self) -> &[TimingArc] {
        match &self.function {
            Function::Combinational(arcs) => arcs,
            Function::Sync(_) => &[],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_netlist::PinDir;
    use hb_units::RiseFall;

    fn inv_cell() -> Cell {
        let iface = LeafDef::new("INV_X1")
            .pin("A", PinDir::Input)
            .pin("Y", PinDir::Output);
        let arc = TimingArc {
            from: iface.pin_by_name("A").unwrap(),
            to: iface.pin_by_name("Y").unwrap(),
            sense: Sense::Negative,
            delay: DelayModel::new(RiseFall::splat(Time::from_ps(60)), RiseFall::splat(5)),
        };
        Cell::new(
            iface,
            Function::Combinational(vec![arc]),
            vec![4, 0],
            DriveStrength::X1,
            "INV",
            2,
        )
    }

    #[test]
    fn accessors() {
        let c = inv_cell();
        assert_eq!(c.name(), "INV_X1");
        assert_eq!(c.family(), "INV");
        assert_eq!(c.drive(), DriveStrength::X1);
        assert_eq!(c.area(), 2);
        assert_eq!(c.arcs().len(), 1);
        assert!(c.sync_spec().is_none());
        assert_eq!(c.pin_cap_ff(c.interface().pin_by_name("A").unwrap()), 4);
    }

    #[test]
    #[should_panic(expected = "one capacitance entry per pin")]
    fn cap_table_must_match_pins() {
        let iface = LeafDef::new("X").pin("A", PinDir::Input);
        let _ = Cell::new(
            iface,
            Function::Combinational(vec![]),
            vec![],
            DriveStrength::X1,
            "X",
            1,
        );
    }

    #[test]
    fn sync_kind_queries() {
        assert!(SyncKind::Transparent.is_transparent());
        assert!(SyncKind::ClockedTristate.is_transparent());
        assert!(!SyncKind::TrailingEdge.is_transparent());
        assert_eq!(SyncKind::Transparent.to_string(), "transparent latch");
    }

    #[test]
    fn display_types() {
        assert_eq!(DriveStrength::X4.to_string(), "X4");
        assert_eq!(CellId(3).to_string(), "cell3");
    }
}
