//! Fuzz suite for the nonblocking [`FrameDecoder`]: the reactor feeds
//! it whatever the kernel hands over, so frames arrive split at
//! arbitrary byte boundaries, glued back-to-back, or hostile. The
//! decoder must produce the exact frame sequence regardless of the
//! feed schedule, classify garbage the same way the blocking reader
//! does, and never panic.

use hb_io::proto::{MAX_HEADER, MAX_PAYLOAD};
use hb_io::{Frame, FrameDecoder, FrameReader, ProtoError};
use hb_rng::SmallRng;

/// A deterministic mixed workload: empty frames, args, payloads of
/// awkward sizes (0, 1, around the decoder's compaction threshold).
fn corpus() -> Vec<Frame> {
    let mut frames = vec![
        Frame::new("hello"),
        Frame::new("slack").arg("node", "a1y").arg("node", "dout"),
        Frame::new("load").with_payload(""),
        Frame::new("eco")
            .arg("op", "resize")
            .arg("inst", "b0")
            .arg("steps", 1),
        // Fleet and replication verbs, including a nested `entry`
        // whose payload is itself an encoded frame (the replication
        // stream's on-wire shape).
        Frame::new("open").arg("design", "soc_v2.rev-3"),
        Frame::new("repl-pull")
            .arg("design", "default")
            .arg("epoch", 4)
            .arg("since", 17),
        Frame::new("entry")
            .arg("expect", "error")
            .with_payload(Frame::new("load").with_payload("design broken\n").encode()),
        Frame::new("close").arg("design", "soc_v2.rev-3"),
    ];
    for size in [1usize, 63, 64, 65, 4095, 4096, 8192, 20_000] {
        frames.push(
            Frame::new("load")
                .arg("tag", size)
                .with_payload("x".repeat(size)),
        );
    }
    frames
}

fn wire_of(frames: &[Frame]) -> Vec<u8> {
    let mut wire = Vec::new();
    for f in frames {
        wire.extend_from_slice(f.encode().as_bytes());
    }
    wire
}

/// Decodes everything currently decodable, asserting no errors.
fn drain(decoder: &mut FrameDecoder, out: &mut Vec<Frame>) {
    while let Some(frame) = decoder.next_frame().expect("clean corpus") {
        out.push(frame);
    }
}

/// Every single byte boundary: feeding `wire[..i]` then `wire[i..]`
/// yields the identical frame sequence — no split can lose progress.
#[test]
fn every_split_boundary_round_trips() {
    let frames = corpus();
    // Keep the quadratic sweep affordable: the small frames cover the
    // header/payload boundaries, one mid-size payload covers the rest.
    let small: Vec<Frame> = frames
        .iter()
        .filter(|f| f.payload.as_ref().is_none_or(|p| p.len() <= 128))
        .cloned()
        .collect();
    let wire = wire_of(&small);
    for split in 0..=wire.len() {
        let mut decoder = FrameDecoder::new();
        let mut got = Vec::new();
        decoder.feed(&wire[..split]);
        drain(&mut decoder, &mut got);
        decoder.feed(&wire[split..]);
        drain(&mut decoder, &mut got);
        decoder.finish().expect("no partial frame at the end");
        assert_eq!(got, small, "split at byte {split} diverged");
    }
}

/// Seeded chaos: the full corpus (pipelined back-to-back, shuffled
/// order) fed in random-size slices — including empty feeds and
/// single bytes — always decodes to the exact sequence.
#[test]
fn random_feed_schedules_decode_identically() {
    for seed in [0xDAC89u64, 1, 2, 3] {
        let mut rng = SmallRng::seed_from_u64(seed);
        for round in 0..50 {
            // A shuffled multi-copy of the corpus, glued end to end.
            let mut frames = Vec::new();
            let corpus = corpus();
            for _ in 0..3 {
                for f in &corpus {
                    if rng.gen_bool(0.7) {
                        frames.push(f.clone());
                    }
                }
            }
            let wire = wire_of(&frames);
            let mut decoder = FrameDecoder::new();
            let mut got = Vec::new();
            let mut fed = 0usize;
            while fed < wire.len() {
                let n = match rng.gen_range(0..10) {
                    0 => 0,                                      // spurious empty feed
                    1 => 1,                                      // single byte
                    2..=5 => rng.gen_range(1..64),               // small slices
                    _ => rng.gen_range(1..wire.len() - fed + 1), // big gulps
                };
                let n = n.min(wire.len() - fed);
                decoder.feed(&wire[fed..fed + n]);
                fed += n;
                if rng.gen_bool(0.5) {
                    drain(&mut decoder, &mut got);
                }
            }
            drain(&mut decoder, &mut got);
            decoder
                .finish()
                .unwrap_or_else(|e| panic!("seed {seed:#x} round {round}: {e}"));
            assert_eq!(got, frames, "seed {seed:#x} round {round} diverged");
        }
    }
}

/// The decoder classifies hostile inputs exactly like the blocking
/// [`FrameReader`], whatever the feed schedule: fatal errors stay
/// fatal, recoverable ones leave the buffer aligned on the next
/// frame.
#[test]
fn hostile_inputs_classify_like_the_blocking_reader() {
    let oversized_header = format!("verb {}\n", "k=v ".repeat(MAX_HEADER / 4));
    let hostile: Vec<Vec<u8>> = vec![
        b"no_newline_and_garbage \xff\xfe\n".to_vec(), // bad UTF-8
        b"nul\0byte\n".to_vec(),                       // NUL in header
        b"arg without equals\n".to_vec(),              // malformed arg
        b"\n".to_vec(),                                // empty header
        format!("load payload={}\n", MAX_PAYLOAD + 1).into_bytes(), // oversized payload
        oversized_header.into_bytes(),                 // oversized header
        b"load payload=5\nab\xffcd".to_vec(),          // payload bad UTF-8
        b"load payload=2\nab?".to_vec(),               // missing terminator
        b"load payload=2\na\0\n".to_vec(),             // NUL in payload
        b"open design=has space\n".to_vec(),           // fleet id with whitespace
        b"entry expect=eco payload=50\nshort".to_vec(), // truncated replication page
        {
            // An `open` padded past the header bound.
            let mut huge = b"open design=".to_vec();
            huge.resize(MAX_HEADER + 1, b'x');
            huge.push(b'\n');
            huge
        },
    ];
    let mut rng = SmallRng::seed_from_u64(0xF00D);
    for case in &hostile {
        // Reference classification from the blocking reader.
        let mut reader = FrameReader::new(std::io::Cursor::new(case.clone()));
        let want = reader.read_frame().expect_err("hostile by construction");

        // The decoder must agree for any feed schedule.
        for _ in 0..20 {
            let mut decoder = FrameDecoder::new();
            let mut fed = 0usize;
            let got = 'decode: {
                while fed < case.len() {
                    let n = rng.gen_range(1..case.len() + 1).min(case.len() - fed);
                    decoder.feed(&case[fed..fed + n]);
                    fed += n;
                    match decoder.next_frame() {
                        Ok(Some(f)) => panic!("hostile input decoded: {f:?}"),
                        Ok(None) => {}
                        Err(e) => break 'decode e,
                    }
                }
                // Undetectable before EOF (e.g. a truncated payload).
                decoder.finish().expect_err("hostile by construction")
            };
            assert_eq!(
                std::mem::discriminant(&got),
                std::mem::discriminant(&want),
                "{case:?}: decoder said `{got}`, reader said `{want}`"
            );
        }
    }

    // After a recoverable rejection the very next frame decodes.
    let mut decoder = FrameDecoder::new();
    decoder.feed(b"bogus arg\nhello\n");
    assert!(matches!(
        decoder.next_frame(),
        Err(ProtoError::Malformed(_))
    ));
    let frame = decoder.next_frame().unwrap().expect("aligned on `hello`");
    assert_eq!(frame.verb, "hello");
    decoder.finish().unwrap();
}
