//! Property-based tests for the unit primitives.

use hb_units::{MinMax, RiseFall, Sense, Time};
use proptest::prelude::*;

/// Finite times well inside the sentinel head-room.
fn finite_time() -> impl Strategy<Value = Time> {
    (-1_000_000_000i64..1_000_000_000).prop_map(Time::from_ps)
}

fn positive_time() -> impl Strategy<Value = Time> {
    (1i64..1_000_000_000).prop_map(Time::from_ps)
}

proptest! {
    #[test]
    fn rem_euclid_is_in_range(t in finite_time(), m in positive_time()) {
        let r = t.rem_euclid(m);
        prop_assert!(Time::ZERO <= r && r < m);
        // Congruence: r == t (mod m)
        prop_assert_eq!((t - r).rem_euclid(m), Time::ZERO);
    }

    #[test]
    fn rem_euclid_end_is_in_half_open_end_range(t in finite_time(), m in positive_time()) {
        let r = t.rem_euclid_end(m);
        prop_assert!(Time::ZERO < r && r <= m);
        prop_assert_eq!((t - r).rem_euclid(m), Time::ZERO);
    }

    #[test]
    fn display_parse_roundtrip(t in finite_time()) {
        let parsed: Time = t.to_string().parse().unwrap();
        prop_assert_eq!(parsed, t);
    }

    #[test]
    fn saturating_add_matches_plain_add_when_finite(a in finite_time(), b in finite_time()) {
        prop_assert_eq!(a.saturating_add(b), a + b);
        prop_assert_eq!(a.saturating_sub(b), a - b);
    }

    #[test]
    fn sentinels_absorb(a in finite_time()) {
        prop_assert_eq!(Time::NEG_INF.saturating_add(a), Time::NEG_INF);
        prop_assert_eq!(Time::INF.saturating_add(a), Time::INF);
        prop_assert_eq!(a.saturating_sub(Time::INF), Time::NEG_INF);
    }

    #[test]
    fn gcd_divides_both(a in positive_time(), b in positive_time()) {
        let g = a.gcd(b);
        prop_assert!(g > Time::ZERO);
        prop_assert_eq!(a % g, Time::ZERO);
        prop_assert_eq!(b % g, Time::ZERO);
    }

    #[test]
    fn lcm_is_common_multiple(a in (1i64..100_000).prop_map(Time::from_ps),
                              b in (1i64..100_000).prop_map(Time::from_ps)) {
        let l = a.lcm(b);
        prop_assert_eq!(l % a, Time::ZERO);
        prop_assert_eq!(l % b, Time::ZERO);
        prop_assert!(l <= Time::from_ps(a.as_ps() * b.as_ps()));
    }

    #[test]
    fn sense_composition_associative(
        s1 in prop_oneof![Just(Sense::Positive), Just(Sense::Negative), Just(Sense::NonUnate)],
        s2 in prop_oneof![Just(Sense::Positive), Just(Sense::Negative), Just(Sense::NonUnate)],
        s3 in prop_oneof![Just(Sense::Positive), Just(Sense::Negative), Just(Sense::NonUnate)],
    ) {
        prop_assert_eq!(s1.then(s2).then(s3), s1.then(s2.then(s3)));
    }

    #[test]
    fn propagate_is_monotone_in_input(
        r1 in finite_time(), f1 in finite_time(),
        bump in (0i64..1_000_000).prop_map(Time::from_ps),
        dr in (0i64..1_000_000).prop_map(Time::from_ps),
        df in (0i64..1_000_000).prop_map(Time::from_ps),
        s in prop_oneof![Just(Sense::Positive), Just(Sense::Negative), Just(Sense::NonUnate)],
    ) {
        // Increasing an input arrival can never decrease an output arrival.
        let input = RiseFall::new(r1, f1);
        let later = RiseFall::new(r1 + bump, f1 + bump);
        let delay = RiseFall::new(dr, df);
        let out1 = s.propagate(input, delay);
        let out2 = s.propagate(later, delay);
        prop_assert!(out2.rise >= out1.rise);
        prop_assert!(out2.fall >= out1.fall);
    }

    #[test]
    fn minmax_widen_contains_both(a1 in finite_time(), a2 in finite_time(),
                                  b1 in finite_time(), b2 in finite_time()) {
        let a = MinMax::new(a1.min(a2), a1.max(a2));
        let b = MinMax::new(b1.min(b2), b1.max(b2));
        let w = a.widen(b);
        prop_assert!(w.min <= a.min && w.min <= b.min);
        prop_assert!(w.max >= a.max && w.max >= b.max);
        prop_assert!(w.is_ordered());
    }
}
