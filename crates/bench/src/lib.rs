//! Shared harness utilities for regenerating the paper's tables and
//! figures.
//!
//! Each evaluation artifact of the DAC'89 paper has a runnable binary in
//! this crate (`cargo run -p hb-bench --bin <name> --release`):
//!
//! | Binary | Paper artifact |
//! |--------|----------------|
//! | `table1` | Table 1 — run times for DES / ALU / SM1F / SM1H |
//! | `figure1` | Figure 1 — four-phase time-multiplexed logic |
//! | `figure3` | Figure 3 / Section 5 — transparent-latch offsets |
//! | `figure4` | Figure 4 — clock-edge graph and break-open choice |
//! | `iteration_sweep` | §8 — iteration count vs clock speed |
//! | `latch_baseline` | §2/§4 — transparent vs edge-triggered modelling |
//!
//! Micro-benchmarks (`cargo bench -p hb-bench`) cover the same
//! workloads plus the ablations (block method vs path enumeration,
//! minimal pass cover vs naive); they use the dependency-free
//! [`microbench`] harness so offline builds work. The `perf_summary`
//! binary emits `BENCH_perf.json` for tracking the perf curve across
//! PRs.

use std::time::Instant;

pub mod microbench;

use hb_cells::Library;
use hb_workloads::Workload;
use hummingbird::{AnalysisOptions, Analyzer, TimingReport};

/// One row of the Table 1 reproduction.
#[derive(Clone, Debug)]
pub struct Table1Row {
    /// The workload name.
    pub example: String,
    /// Leaf-cell instances.
    pub cells: usize,
    /// Nets (hierarchically deduplicated).
    pub nets: usize,
    /// Pre-processing wall-clock seconds (graph + clusters + pass plan).
    pub prep_seconds: f64,
    /// Algorithm 1 wall-clock seconds.
    pub analysis_seconds: f64,
    /// Whether the design met timing (informational; the paper reports
    /// run times only).
    pub ok: bool,
    /// Maximum settling times per node (pass count).
    pub max_passes: usize,
}

/// Runs pre-processing and Algorithm 1 on a workload and measures both
/// phases, mirroring the paper's Table 1 columns.
///
/// # Panics
///
/// Panics if the workload violates the analyzer's structural
/// assumptions — benchmark workloads are constructed to conform.
pub fn table1_row(library: &Library, workload: &Workload) -> Table1Row {
    table1_row_with(library, workload, AnalysisOptions::default())
}

/// [`table1_row`] with explicit analysis options (for baselines).
pub fn table1_row_with(
    library: &Library,
    workload: &Workload,
    options: AnalysisOptions,
) -> Table1Row {
    let stats = workload.stats();
    let analyzer = Analyzer::with_options(
        &workload.design,
        workload.module,
        library,
        &workload.clocks,
        workload.spec.clone(),
        options,
    )
    .expect("benchmark workloads satisfy the analyzer's assumptions");
    let start = Instant::now();
    let report = analyzer.analyze();
    let analysis_seconds = start.elapsed().as_secs_f64();
    Table1Row {
        example: workload.name.clone(),
        cells: stats.cells,
        nets: stats.nets,
        prep_seconds: analyzer.prep_seconds(),
        analysis_seconds,
        ok: report.ok(),
        max_passes: report.prep_stats().max_cluster_passes,
    }
}

/// Formats rows in the style of the paper's Table 1.
pub fn format_table1(rows: &[Table1Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<10} {:>7} {:>7} {:>12} {:>10} {:>7} {:>6}\n",
        "Example", "Cells", "Nets", "Pre-proc(s)", "Anal.(s)", "Passes", "OK"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<10} {:>7} {:>7} {:>12.4} {:>10.4} {:>7} {:>6}\n",
            r.example,
            r.cells,
            r.nets,
            r.prep_seconds,
            r.analysis_seconds,
            r.max_passes,
            if r.ok { "yes" } else { "no" }
        ));
    }
    out
}

/// Convenience: prepare and run a workload, returning the report.
///
/// # Panics
///
/// As [`table1_row`].
pub fn analyze_workload(library: &Library, workload: &Workload) -> TimingReport {
    Analyzer::new(
        &workload.design,
        workload.module,
        library,
        &workload.clocks,
        workload.spec.clone(),
    )
    .expect("benchmark workloads satisfy the analyzer's assumptions")
    .analyze()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_cells::sc89;
    use hb_workloads::fsm12;

    #[test]
    fn table1_row_measures_both_phases() {
        let lib = sc89();
        let w = fsm12(&lib, true);
        let row = table1_row(&lib, &w);
        assert_eq!(row.example, "SM1F");
        assert!(row.cells > 200);
        assert!(row.prep_seconds >= 0.0 && row.analysis_seconds >= 0.0);
        assert!(row.max_passes >= 1);
        let text = format_table1(&[row]);
        assert!(text.contains("SM1F"));
        assert!(text.lines().count() == 2);
    }
}
