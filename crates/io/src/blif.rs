//! A mapped-BLIF subset (SIS-era `.gate`/`.mlatch` netlists).
//!
//! Supported directives:
//!
//! ```text
//! .model <name>
//! .inputs <net>...
//! .outputs <net>...
//! .gate <cell> <pin>=<net>...
//! .mlatch <cell> <pin>=<net>... <control-net> [<init>]
//! .subckt <model> <port>=<net>...
//! .end
//! ```
//!
//! Lines ending in `\` continue on the next line; `#` starts a comment.
//! The first `.model` is the top model (BLIF convention). `.mlatch`
//! control nets bind to the library cell's control pin; the optional
//! init value is accepted and ignored (timing analysis does not use
//! initial state).

use std::fmt::Write as _;

use hb_cells::Library;
use hb_netlist::{Design, InstRef, ModuleId, NetId, PinDir};

use crate::error::ParseError;

/// Parses a mapped-BLIF document against a cell library.
///
/// # Errors
///
/// Returns a [`ParseError`] for unknown directives, cells, models or
/// pins, and for structural violations (duplicate names).
pub fn parse_blif(text: &str, library: &Library) -> Result<Design, ParseError> {
    let mut design = Design::new("blif");
    library
        .declare_into(&mut design)
        .map_err(|e| ParseError::new(0, e.to_string()))?;

    // Join continuation lines, remembering original line numbers.
    let mut logical: Vec<(usize, String)> = Vec::new();
    let mut pending: Option<(usize, String)> = None;
    for (index, raw) in text.lines().enumerate() {
        let lineno = index + 1;
        let line = match raw.find('#') {
            Some(pos) => &raw[..pos],
            None => raw,
        };
        let (content, continued) = match line.trim_end().strip_suffix('\\') {
            Some(stripped) => (stripped, true),
            None => (line.trim_end(), false),
        };
        match pending.take() {
            Some((start, mut acc)) => {
                acc.push(' ');
                acc.push_str(content);
                if continued {
                    pending = Some((start, acc));
                } else {
                    logical.push((start, acc));
                }
            }
            None => {
                if continued {
                    pending = Some((lineno, content.to_owned()));
                } else if !content.trim().is_empty() {
                    logical.push((lineno, content.to_owned()));
                }
            }
        }
    }
    if let Some((start, acc)) = pending {
        logical.push((start, acc));
    }

    let mut current: Option<ModuleId> = None;
    let mut first_model: Option<ModuleId> = None;
    let mut inst_counter = 0usize;

    for (lineno, line) in logical {
        let mut tokens = line.split_whitespace();
        let Some(directive) = tokens.next() else {
            continue;
        };
        let err = |msg: String| ParseError::new(lineno, msg);
        match directive {
            ".model" => {
                if current.is_some() {
                    return Err(err("nested .model (missing .end?)".into()));
                }
                let name = tokens
                    .next()
                    .ok_or_else(|| err(".model needs a name".into()))?;
                let id = design.add_module(name).map_err(|e| err(e.to_string()))?;
                first_model.get_or_insert(id);
                current = Some(id);
            }
            ".end" => {
                if current.take().is_none() {
                    return Err(err(".end outside a model".into()));
                }
            }
            ".inputs" | ".outputs" => {
                let module = current.ok_or_else(|| err("directive outside a model".into()))?;
                let dir = if directive == ".inputs" {
                    PinDir::Input
                } else {
                    PinDir::Output
                };
                for name in tokens {
                    let net = net_or_new(&mut design, module, name).map_err(&err)?;
                    design
                        .add_port(module, name, dir, net)
                        .map_err(|e| err(e.to_string()))?;
                }
            }
            ".gate" | ".mlatch" => {
                let module = current.ok_or_else(|| err("directive outside a model".into()))?;
                let cell_name = tokens
                    .next()
                    .ok_or_else(|| err(format!("{directive} needs a cell name")))?;
                let leaf = design
                    .leaf_by_name(cell_name)
                    .ok_or_else(|| err(format!("unknown cell {cell_name:?}")))?;
                inst_counter += 1;
                let inst = design
                    .add_leaf_instance(module, format!("g{inst_counter}_{cell_name}"), leaf)
                    .map_err(|e| err(e.to_string()))?;
                let mut extras: Vec<&str> = Vec::new();
                for token in tokens {
                    match token.split_once('=') {
                        Some((pin, net_name)) => {
                            let net = net_or_new(&mut design, module, net_name).map_err(&err)?;
                            design
                                .connect(module, inst, pin, net)
                                .map_err(|e| err(e.to_string()))?;
                        }
                        None => extras.push(token),
                    }
                }
                if directive == ".mlatch" {
                    // extras: <control-net> [<init>]
                    let control_net_name = extras
                        .first()
                        .ok_or_else(|| err(".mlatch needs a control net".into()))?;
                    let cell = library
                        .cell_by_name(cell_name)
                        .expect("leaf came from this library");
                    let spec = library
                        .cell(cell)
                        .sync_spec()
                        .ok_or_else(|| err(format!("{cell_name:?} is not a latch cell")))?;
                    let control_pin = library
                        .cell(cell)
                        .interface()
                        .pin_def(spec.control)
                        .name()
                        .to_owned();
                    let net = net_or_new(&mut design, module, control_net_name).map_err(&err)?;
                    design
                        .connect(module, inst, &control_pin, net)
                        .map_err(|e| err(e.to_string()))?;
                    if extras.len() > 2 {
                        return Err(err(format!(
                            "unexpected tokens after .mlatch init: {:?}",
                            &extras[2..]
                        )));
                    }
                } else if !extras.is_empty() {
                    return Err(err(format!("expected pin=net, got {:?}", extras[0])));
                }
            }
            ".subckt" => {
                let module = current.ok_or_else(|| err("directive outside a model".into()))?;
                let child_name = tokens
                    .next()
                    .ok_or_else(|| err(".subckt needs a model name".into()))?;
                let child = design
                    .module_by_name(child_name)
                    .ok_or_else(|| err(format!("unknown model {child_name:?}")))?;
                inst_counter += 1;
                let inst = design
                    .add_module_instance(module, format!("x{inst_counter}_{child_name}"), child)
                    .map_err(|e| err(e.to_string()))?;
                for token in tokens {
                    let (pin, net_name) = token
                        .split_once('=')
                        .ok_or_else(|| err(format!("expected port=net, got {token:?}")))?;
                    let net = net_or_new(&mut design, module, net_name).map_err(&err)?;
                    design
                        .connect(module, inst, pin, net)
                        .map_err(|e| err(e.to_string()))?;
                }
            }
            other => return Err(err(format!("unsupported BLIF directive {other:?}"))),
        }
    }
    if current.is_some() {
        return Err(ParseError::new(0, "unterminated model (missing .end)"));
    }
    let top = first_model.ok_or_else(|| ParseError::new(0, "no .model in input"))?;
    design
        .set_top(top)
        .map_err(|e| ParseError::new(0, e.to_string()))?;
    Ok(design)
}

fn net_or_new(design: &mut Design, module: ModuleId, name: &str) -> Result<NetId, String> {
    if let Some(net) = design.module(module).net_by_name(name) {
        return Ok(net);
    }
    design.add_net(module, name).map_err(|e| e.to_string())
}

/// Serializes a design to mapped BLIF. The top model is emitted first
/// (BLIF convention); `library` distinguishes `.gate` from `.mlatch`
/// instances and names the control pin.
pub fn write_blif(design: &Design, library: &Library) -> String {
    let mut out = String::new();
    let mut order: Vec<ModuleId> = Vec::new();
    if let Some(top) = design.top() {
        order.push(top);
    }
    for (id, _) in design.modules() {
        if Some(id) != design.top() {
            order.push(id);
        }
    }
    for id in order {
        let module = design.module(id);
        let _ = writeln!(out, ".model {}", module.name());
        // BLIF identifies ports with their nets, so ports are emitted
        // under their *net* names (a port bound to a differently named
        // net is renamed — the structure survives, the alias does not).
        let ins: Vec<&str> = module
            .ports()
            .filter(|(_, p)| p.dir() == PinDir::Input)
            .map(|(_, p)| module.net(p.net()).name())
            .collect();
        if !ins.is_empty() {
            let _ = writeln!(out, ".inputs {}", ins.join(" "));
        }
        let outs: Vec<&str> = module
            .ports()
            .filter(|(_, p)| p.dir() == PinDir::Output)
            .map(|(_, p)| module.net(p.net()).name())
            .collect();
        if !outs.is_empty() {
            let _ = writeln!(out, ".outputs {}", outs.join(" "));
        }
        for (inst_id, inst) in module.instances() {
            match inst.target() {
                InstRef::Leaf(leaf) => {
                    let cell_name = design.leaf(leaf).name();
                    let sync = library
                        .cell_by_name(cell_name)
                        .and_then(|c| library.cell(c).sync_spec().map(|s| (c, s.control)));
                    match sync {
                        Some((_, control_slot)) => {
                            let mut line = format!(".mlatch {cell_name}");
                            let mut control_net = None;
                            for (slot, net) in inst.conns() {
                                if slot == control_slot {
                                    control_net = Some(module.net(net).name());
                                } else {
                                    let _ = write!(
                                        line,
                                        " {}={}",
                                        design.pin_name(id, inst_id, slot),
                                        module.net(net).name()
                                    );
                                }
                            }
                            if let Some(c) = control_net {
                                let _ = write!(line, " {c} 2");
                            }
                            let _ = writeln!(out, "{line}");
                        }
                        None => {
                            let mut line = format!(".gate {cell_name}");
                            for (slot, net) in inst.conns() {
                                let _ = write!(
                                    line,
                                    " {}={}",
                                    design.pin_name(id, inst_id, slot),
                                    module.net(net).name()
                                );
                            }
                            let _ = writeln!(out, "{line}");
                        }
                    }
                }
                InstRef::Module(child) => {
                    let child_module = design.module(child);
                    let mut line = format!(".subckt {}", child_module.name());
                    for (slot, net) in inst.conns() {
                        // Match the child's BLIF port identity: its net
                        // name (see the `.inputs`/`.outputs` comment).
                        let child_port =
                            child_module.port(hb_netlist::PortId::from_raw(slot.as_raw()));
                        let _ = write!(
                            line,
                            " {}={}",
                            child_module.net(child_port.net()).name(),
                            module.net(net).name()
                        );
                    }
                    let _ = writeln!(out, "{line}");
                }
            }
        }
        let _ = writeln!(out, ".end");
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_cells::sc89;

    const SAMPLE: &str = "\
# mapped by a SIS-era flow
.model top
.inputs a ck
.outputs y
.gate INV_X1 A=a Y=w
.gate NAND2_X1 A=w \\
  B=a Y=v
.mlatch DFF D=v Q=y ck 2
.end
";

    #[test]
    fn parse_sample() {
        let lib = sc89();
        let design = parse_blif(SAMPLE, &lib).unwrap();
        design.validate().unwrap();
        let top = design.top().unwrap();
        let m = design.module(top);
        assert_eq!(m.instance_count(), 3);
        // The latch control pin was bound to `ck`.
        let latch = m.instance_by_name("g3_DFF").unwrap();
        let slot = design.pin_slot(top, latch, "CK").unwrap();
        let net = m.instance(latch).conn(slot).unwrap();
        assert_eq!(m.net(net).name(), "ck");
    }

    #[test]
    fn roundtrip() {
        let lib = sc89();
        let design = parse_blif(SAMPLE, &lib).unwrap();
        let text = write_blif(&design, &lib);
        assert!(text.contains(".mlatch DFF"));
        let again = parse_blif(&text, &lib).unwrap();
        again.validate().unwrap();
        assert_eq!(
            again.design_stats_for_test(),
            design.design_stats_for_test()
        );
    }

    // Small helper so the roundtrip assertion reads cleanly.
    trait StatsExt {
        fn design_stats_for_test(&self) -> (usize, usize);
    }
    impl StatsExt for Design {
        fn design_stats_for_test(&self) -> (usize, usize) {
            let s = self.stats(self.top().unwrap());
            (s.cells, s.nets)
        }
    }

    #[test]
    fn subckt_hierarchy() {
        let lib = sc89();
        let text = "\
.model top
.inputs a
.outputs y
.subckt pair a=a y=y
.end
.model pair
.inputs a
.outputs y
.gate INV_X1 A=a Y=m
.gate INV_X1 A=m Y=y
.end
";
        // `pair` is defined after `top`: BLIF allows forward references,
        // but this subset requires definition-before-use, so reverse the
        // models.
        let reordered = text.split("\n.model").collect::<Vec<_>>().join("\n.model");
        let _ = reordered;
        let forward = parse_blif(text, &lib);
        assert!(
            forward.is_err(),
            "forward reference rejected with a clear error"
        );
        let swapped = "\
.model pair
.inputs a
.outputs y
.gate INV_X1 A=a Y=m
.gate INV_X1 A=m Y=y
.end
.model top
.inputs a
.outputs y
.subckt pair a=a y=y
.end
";
        let design = parse_blif(swapped, &lib).unwrap();
        design.validate().unwrap();
        // Top is the FIRST model: `pair`.
        assert_eq!(design.module(design.top().unwrap()).name(), "pair");
    }

    #[test]
    fn errors() {
        let lib = sc89();
        assert!(parse_blif("", &lib)
            .unwrap_err()
            .message()
            .contains("no .model"));
        let e = parse_blif(".model t\n.gate NOPE A=a\n.end\n", &lib).unwrap_err();
        assert_eq!(e.line(), 2);
        let e = parse_blif(".model t\n.mlatch INV_X1 A=a ck\n.end\n", &lib).unwrap_err();
        assert!(e.message().contains("not a latch"));
        let e = parse_blif(".model t\n.wires a b\n.end\n", &lib).unwrap_err();
        assert!(e.message().contains("unsupported"));
        let e = parse_blif(".model t\n", &lib).unwrap_err();
        assert!(e.message().contains("unterminated"));
    }
}
