//! Modules and their contents: instances, nets and boundary ports.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

use crate::ids::{InstId, LeafId, ModuleId, NetId, PinSlot, PortId};
use crate::leaf::PinDir;

/// What an [`Instance`] instantiates: a primitive cell or another module.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum InstRef {
    /// A primitive component described by a [`crate::LeafDef`].
    Leaf(LeafId),
    /// A child module (hierarchy).
    Module(ModuleId),
}

/// One endpoint of a net.
///
/// The resolved pin direction is stored alongside the structural reference
/// so that driver/load queries need no interface lookups.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// A pin of an instance inside the module.
    Pin {
        /// The instance.
        inst: InstId,
        /// The pin slot within the instance's interface.
        slot: PinSlot,
        /// The direction of that pin, as seen by the component.
        dir: PinDir,
    },
    /// A boundary port of the module itself.
    Port(PortId),
}

/// An instantiation of a leaf cell or child module.
///
/// Names and pin tables are boxed (not growable): at the million-cell
/// scale the arena's per-element overhead is what bounds the resident
/// set, and neither field ever grows after creation.
#[derive(Clone, Debug)]
pub struct Instance {
    pub(crate) name: Box<str>,
    pub(crate) target: InstRef,
    pub(crate) conns: Box<[Option<NetId>]>,
    pub(crate) attrs: BTreeMap<String, String>,
}

impl Instance {
    /// The instance name, unique within its module.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// What this instance instantiates.
    pub fn target(&self) -> InstRef {
        self.target
    }

    /// The net bound to pin `slot`, if any.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range for the instance's interface.
    pub fn conn(&self, slot: PinSlot) -> Option<NetId> {
        self.conns[slot.idx()]
    }

    /// Iterates over `(slot, net)` pairs for connected pins.
    pub fn conns(&self) -> impl Iterator<Item = (PinSlot, NetId)> + '_ {
        self.conns
            .iter()
            .enumerate()
            .filter_map(|(i, n)| n.map(|net| (PinSlot::from_raw(i as u32), net)))
    }

    /// The number of pin slots in the instance's interface.
    pub fn pin_count(&self) -> usize {
        self.conns.len()
    }

    /// Reads a string attribute (annotation), if set.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs.get(key).map(String::as_str)
    }

    /// Iterates over all attributes in key order.
    pub fn attrs(&self) -> impl Iterator<Item = (&str, &str)> {
        self.attrs.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }
}

/// A wire connecting endpoints within one module.
#[derive(Clone, Debug)]
pub struct Net {
    pub(crate) name: Box<str>,
    pub(crate) endpoints: Vec<Endpoint>,
    pub(crate) attrs: BTreeMap<String, String>,
}

impl Net {
    /// The net name, unique within its module.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All endpoints attached to the net.
    pub fn endpoints(&self) -> &[Endpoint] {
        &self.endpoints
    }

    /// Reads a string attribute (annotation), if set.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs.get(key).map(String::as_str)
    }
}

/// A boundary port of a module.
#[derive(Clone, Debug)]
pub struct Port {
    pub(crate) name: String,
    pub(crate) dir: PinDir,
    pub(crate) net: NetId,
}

impl Port {
    /// The port name, unique within its module.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The port direction, from the module's point of view.
    pub fn dir(&self) -> PinDir {
        self.dir
    }

    /// The internal net bound to the port.
    pub fn net(&self) -> NetId {
        self.net
    }
}

/// A named collection of instances, nets and boundary ports.
///
/// Modules are created and mutated through [`crate::Design`]; this type
/// exposes the read API.
#[derive(Clone, Debug)]
pub struct Module {
    pub(crate) name: String,
    pub(crate) insts: Vec<Instance>,
    pub(crate) nets: Vec<Net>,
    pub(crate) ports: Vec<Port>,
    pub(crate) inst_by_name: HashMap<String, InstId>,
    pub(crate) net_by_name: HashMap<String, NetId>,
    pub(crate) port_by_name: HashMap<String, PortId>,
    pub(crate) attrs: BTreeMap<String, String>,
}

impl Module {
    pub(crate) fn new(name: String) -> Module {
        Module {
            name,
            insts: Vec::new(),
            nets: Vec::new(),
            ports: Vec::new(),
            inst_by_name: HashMap::new(),
            net_by_name: HashMap::new(),
            port_by_name: HashMap::new(),
            attrs: BTreeMap::new(),
        }
    }

    /// The module name, unique within its design.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns the instance with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this module.
    pub fn instance(&self, id: InstId) -> &Instance {
        &self.insts[id.idx()]
    }

    /// Returns the net with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this module.
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.idx()]
    }

    /// Returns the port with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this module.
    pub fn port(&self, id: PortId) -> &Port {
        &self.ports[id.idx()]
    }

    /// Iterates over `(id, instance)` pairs in creation order.
    pub fn instances(&self) -> impl Iterator<Item = (InstId, &Instance)> {
        self.insts
            .iter()
            .enumerate()
            .map(|(i, inst)| (InstId::from_raw(i as u32), inst))
    }

    /// Iterates over `(id, net)` pairs in creation order.
    pub fn nets(&self) -> impl Iterator<Item = (NetId, &Net)> {
        self.nets
            .iter()
            .enumerate()
            .map(|(i, net)| (NetId::from_raw(i as u32), net))
    }

    /// Iterates over `(id, port)` pairs in creation order.
    pub fn ports(&self) -> impl Iterator<Item = (PortId, &Port)> {
        self.ports
            .iter()
            .enumerate()
            .map(|(i, p)| (PortId::from_raw(i as u32), p))
    }

    /// Looks up an instance by name.
    pub fn instance_by_name(&self, name: &str) -> Option<InstId> {
        self.inst_by_name.get(name).copied()
    }

    /// Looks up a net by name.
    pub fn net_by_name(&self, name: &str) -> Option<NetId> {
        self.net_by_name.get(name).copied()
    }

    /// Looks up a port by name.
    pub fn port_by_name(&self, name: &str) -> Option<PortId> {
        self.port_by_name.get(name).copied()
    }

    /// The number of instances.
    pub fn instance_count(&self) -> usize {
        self.insts.len()
    }

    /// The number of nets.
    pub fn net_count(&self) -> usize {
        self.nets.len()
    }

    /// The endpoint that drives `net`: an instance output pin or a module
    /// input port. `None` for undriven nets (a validation error, but
    /// queries stay total).
    pub fn driver(&self, net: NetId) -> Option<Endpoint> {
        self.nets[net.idx()].endpoints.iter().copied().find(|ep| {
            match ep {
                Endpoint::Pin { dir, .. } => *dir == PinDir::Output,
                // A module *input* port sources data into the module.
                Endpoint::Port(p) => self.ports[p.idx()].dir == PinDir::Input,
            }
        })
    }

    /// Iterates over the endpoints that *load* `net` (everything except
    /// drivers).
    pub fn loads(&self, net: NetId) -> impl Iterator<Item = Endpoint> + '_ {
        self.nets[net.idx()]
            .endpoints
            .iter()
            .copied()
            .filter(move |ep| match ep {
                Endpoint::Pin { dir, .. } => *dir == PinDir::Input,
                Endpoint::Port(p) => self.ports[p.idx()].dir == PinDir::Output,
            })
    }

    /// The number of load endpoints on `net` — the fanout used by the
    /// delay estimator.
    pub fn fanout(&self, net: NetId) -> usize {
        self.loads(net).count()
    }

    /// Reads a string attribute (annotation), if set.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs.get(key).map(String::as_str)
    }

    /// Sets a string attribute (annotation); returns the previous value.
    ///
    /// Attributes stand in for OCT "flags": the original program could flag
    /// slow paths in the database for later viewing in VEM.
    pub fn set_attr(&mut self, key: impl Into<String>, value: impl Into<String>) -> Option<String> {
        self.attrs.insert(key.into(), value.into())
    }

    /// Sets an attribute on an instance; returns the previous value.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this module.
    pub fn set_instance_attr(
        &mut self,
        inst: InstId,
        key: impl Into<String>,
        value: impl Into<String>,
    ) -> Option<String> {
        self.insts[inst.idx()]
            .attrs
            .insert(key.into(), value.into())
    }

    /// Sets an attribute on a net; returns the previous value.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this module.
    pub fn set_net_attr(
        &mut self,
        net: NetId,
        key: impl Into<String>,
        value: impl Into<String>,
    ) -> Option<String> {
        self.nets[net.idx()].attrs.insert(key.into(), value.into())
    }
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "module {} ({} instances, {} nets, {} ports)",
            self.name,
            self.insts.len(),
            self.nets.len(),
            self.ports.len()
        )
    }
}
