//! Algorithm-level benchmarks: slack-transfer iteration cost vs clock
//! speed (Section 8: run times "depend upon the specified clock
//! speeds"), and constraint generation (Algorithm 2) on top of
//! Algorithm 1.

use hb_bench::microbench::bench;
use hb_cells::sc89;
use hb_workloads::latch_pipeline;
use hummingbird::Analyzer;

fn main() {
    let lib = sc89();
    for period_ns in [10i64, 14, 20] {
        let w = latch_pipeline(&lib, 6, 8, 11, period_ns);
        let analyzer = Analyzer::new(&w.design, w.module, &lib, &w.clocks, w.spec.clone())
            .expect("conforming workload");
        bench(
            &format!("algorithm1/clock_sweep/{period_ns}"),
            2,
            10,
            || analyzer.analyze(),
        );
    }

    let w = latch_pipeline(&lib, 6, 8, 11, 14);
    let analyzer = Analyzer::new(&w.design, w.module, &lib, &w.clocks, w.spec.clone())
        .expect("conforming workload");
    bench("algorithm2/constraints/latch_pipeline_14ns", 2, 10, || {
        analyzer.generate_constraints()
    });
}
