//! The event-loop transport: one thread, one `poll(2)` loop, every
//! connection — the c10k path.
//!
//! The thread-per-connection server in [`net`](crate::net) spends a
//! stack, a scheduler slot and two context switches on every client;
//! at tens of thousands of mostly idle connections that bookkeeping
//! *is* the workload. The reactor inverts the shape: all sockets are
//! nonblocking, a single loop polls them for readiness, and each
//! connection is a small state machine — a [`FrameDecoder`] on the
//! read side, a reply queue on the write side — dispatched into the
//! very same [`Session`](crate::Session) handlers behind the very same
//! lock, journal and panic recovery as the threaded path
//! ([`handle_with_deadline`]). Replies are therefore identical by
//! construction; the parity suite holds the two transports
//! byte-for-byte against each other.
//!
//! Pipelining falls out of the design: a readiness event feeds
//! whatever arrived into the decoder, and every complete frame in the
//! buffer is dispatched and answered in order before the loop moves
//! on — N requests, one syscall round trip. Backpressure is the dual:
//! a connection whose reply queue passes [`WRITE_HIGH_WATER`] stops
//! being polled for reads until the queue drains, so a peer that
//! pipelines without reading cannot balloon the daemon.
//!
//! The deadline semantics carry over from the threaded transport: a
//! started frame must complete within `frame_deadline` (anti-
//! slowloris), a silent connection is reaped at `idle_timeout`, a
//! peer that stops reading its replies is cut off after
//! `write_timeout`, and connections past `max_connections` are shed
//! at accept with `busy retry_after_ms=N`. Fault injection hooks the
//! same `IO_READ_*`/`IO_WRITE_*` points as
//! [`FaultStream`](hb_fault::FaultStream), so the chaos suite drives
//! this loop with the same seeded matrix.
//!
//! Per-connection memory is bounded and measured: the decoder buffer
//! is capped by the protocol limits, the reply queue by the high-water
//! mark plus one frame, and both report into the
//! `hb_conn_buffer_bytes` gauge surfaced by `stats`.

use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::Ordering;
use std::time::Instant;

use hb_fault::{
    FaultPlan, IO_READ_ERR, IO_READ_SHORT, IO_READ_STALL, IO_WRITE_ERR, IO_WRITE_SHORT,
    IO_WRITE_STALL,
};
use hb_io::{Frame, FrameDecoder};

use crate::net::{handle_with_deadline, Server, Shared};
use crate::sys::{self, PollFd, POLLERR, POLLHUP, POLLIN, POLLNVAL, POLLOUT};

/// Read granularity. One readiness event reads at most
/// [`READ_BUDGET`] of these before yielding to the rest of the loop.
const READ_CHUNK: usize = 64 * 1024;

/// Chunks one readiness event may read before other connections get a
/// turn — fairness under a firehose peer.
const READ_BUDGET: usize = 4;

/// Reply-queue depth past which a connection stops being polled for
/// reads until the queue drains. Bounds per-connection memory against
/// a peer that pipelines requests without reading replies.
const WRITE_HIGH_WATER: usize = 256 * 1024;

/// Reply-queue capacity retained after a full drain. One oversized
/// reply (a `dump` of a big design) must not pin its buffer forever.
const OUT_RETAIN: usize = 16 * 1024;

/// One connection's state machine.
struct Conn {
    stream: TcpStream,
    fd: i32,
    /// Incremental request decoder; owns the read buffer.
    decoder: FrameDecoder,
    /// Encoded replies not yet written; `out_start..` is pending.
    out: Vec<u8>,
    out_start: usize,
    /// Last byte-level activity, for the idle reaper.
    idle_since: Instant,
    /// When the currently-partial frame started arriving.
    frame_started: Option<Instant>,
    /// When the pending output first failed to make progress.
    write_stalled: Option<Instant>,
    /// Flush pending output, then close (fatal error or shutdown).
    closing: bool,
    /// Alternates injected read-error kinds, like `FaultStream`.
    flip: bool,
    /// Bytes currently contributed to the buffer gauge.
    reported: usize,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        let fd = stream.as_raw_fd();
        Conn {
            stream,
            fd,
            decoder: FrameDecoder::new(),
            out: Vec::new(),
            out_start: 0,
            idle_since: Instant::now(),
            frame_started: None,
            write_stalled: None,
            closing: false,
            flip: false,
            reported: 0,
        }
    }

    fn pending_out(&self) -> usize {
        self.out.len() - self.out_start
    }

    /// Queues one encoded reply.
    fn push_reply(&mut self, reply: &Frame) {
        self.out.push_str_bytes(&reply.encode());
    }

    /// One nonblocking read into `chunk`, under the same injection
    /// points as [`FaultStream`](hb_fault::FaultStream) — the reactor
    /// cannot wrap its socket in one (the wrapper would own the fd
    /// registered with `poll`), so it applies the plan inline.
    fn read_once(&mut self, plan: &FaultPlan, chunk: &mut [u8]) -> io::Result<usize> {
        if plan.fires(IO_READ_STALL) {
            std::thread::sleep(plan.stall());
        }
        if plan.fires(IO_READ_ERR) {
            self.flip = !self.flip;
            let kind = if self.flip {
                io::ErrorKind::Interrupted
            } else {
                io::ErrorKind::WouldBlock
            };
            return Err(io::Error::new(kind, "injected fault: io.read.err"));
        }
        let want = if plan.fires(IO_READ_SHORT) && chunk.len() > 1 {
            1
        } else {
            chunk.len()
        };
        (&self.stream).read(&mut chunk[..want])
    }

    /// One nonblocking write of the pending output.
    fn write_once(&mut self, plan: &FaultPlan) -> io::Result<usize> {
        if plan.fires(IO_WRITE_STALL) {
            std::thread::sleep(plan.stall());
        }
        if plan.fires(IO_WRITE_ERR) {
            return Err(io::Error::new(
                io::ErrorKind::Interrupted,
                "injected fault: io.write.err",
            ));
        }
        let buf = &self.out[self.out_start..];
        let want = if plan.fires(IO_WRITE_SHORT) && buf.len() > 1 {
            1
        } else {
            buf.len()
        };
        let n = (&self.stream).write(&buf[..want])?;
        self.out_start += n;
        if self.out_start == self.out.len() {
            self.out.clear();
            self.out_start = 0;
            self.out.shrink_to(OUT_RETAIN);
        }
        Ok(n)
    }

    /// The bytes this connection holds in reusable buffers right now.
    fn buffer_bytes(&self) -> usize {
        self.decoder.buffer_capacity() + self.out.capacity()
    }
}

/// `Vec<u8>` append without the `io::Write` ceremony.
trait PushStr {
    fn push_str_bytes(&mut self, s: &str);
}

impl PushStr for Vec<u8> {
    fn push_str_bytes(&mut self, s: &str) {
        self.extend_from_slice(s.as_bytes());
    }
}

/// What the deadline sweep decided for one connection.
enum Sweep {
    Keep,
    /// Queue a timeout error, flush, then close.
    CutSlowFrame,
    Close,
}

struct Reactor {
    server: Server,
    /// Connection slots; `None` is free (indices are stable because
    /// poll interest is rebuilt every iteration anyway).
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    live: usize,
    /// Scratch read buffer shared by every connection.
    chunk: Vec<u8>,
    /// Set by a successful `shutdown` request: stop accepting and
    /// reading, flush every queued reply, then return.
    draining: bool,
    /// The replication control plane, when this daemon replicates: a
    /// nonblocking state machine whose in-flight exchange socket joins
    /// the poll set — no dedicated sync thread, no blocking client.
    node: Option<crate::replica::NodeDriver>,
}

impl Server {
    /// Serves connections on the single-threaded `poll(2)` event loop
    /// until a client requests `shutdown`, then flushes every queued
    /// reply and returns. The session, journal, metrics and deadline
    /// semantics are shared with [`Server::run`]; only the transport
    /// differs.
    ///
    /// # Errors
    ///
    /// Propagates listener or `poll` failures; per-connection errors
    /// only close that connection.
    pub fn run_reactor(self) -> io::Result<()> {
        hb_obs::arm();
        crate::replica::refresh_node(&self.shared);
        let node = crate::replica::NodeDriver::new(&self.shared);
        self.listener.set_nonblocking(true)?;
        // Budget descriptors for the configured cap (each connection
        // is exactly one fd) plus slack for the listener, stdio and
        // whatever the embedding process holds.
        let want = self.shared.options.max_connections as u64 + 64;
        let _ = sys::raise_nofile_limit(want);
        Reactor {
            server: self,
            conns: Vec::new(),
            free: Vec::new(),
            live: 0,
            chunk: vec![0u8; READ_CHUNK],
            draining: false,
            node,
        }
        .run()
    }
}

impl Reactor {
    fn shared(&self) -> &Shared {
        &self.server.shared
    }

    fn run(mut self) -> io::Result<()> {
        let grain = self.shared().options.poll_grain();
        let mut pollfds: Vec<PollFd> = Vec::new();
        let mut slots: Vec<usize> = Vec::new();
        loop {
            pollfds.clear();
            slots.clear();
            let poll_listener = !self.draining;
            if poll_listener {
                pollfds.push(PollFd::new(self.server.listener.as_raw_fd(), POLLIN));
            }
            for (slot, conn) in self.conns.iter().enumerate() {
                let Some(c) = conn else { continue };
                let mut events = 0i16;
                if c.pending_out() > 0 {
                    events |= POLLOUT;
                }
                if !c.closing && c.pending_out() < WRITE_HIGH_WATER {
                    events |= POLLIN;
                }
                pollfds.push(PollFd::new(c.fd, events));
                slots.push(slot);
            }
            if self.draining && self.live == 0 {
                return Ok(());
            }
            // The node driver's exchange fd joins the set (its revents
            // are not inspected — tick() advances nonblocking either
            // way; the fd is here so bytes wake the loop early), and
            // its next-round deadline caps the poll timeout.
            let mut timeout = grain;
            if let Some(node) = &self.node {
                if let Some(fd) = node.pollfd() {
                    pollfds.push(fd);
                }
                if let Some(hint) = node.timeout_hint(Instant::now()) {
                    timeout = timeout.min(hint.max(std::time::Duration::from_millis(1)));
                }
            }
            match sys::poll(&mut pollfds, timeout) {
                Ok(_) => {}
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
            if let Some(node) = &mut self.node {
                node.tick(&self.server.shared, Instant::now());
            }
            let base = usize::from(poll_listener);
            if poll_listener && pollfds[0].revents != 0 {
                self.accept_ready();
            }
            for (i, &slot) in slots.iter().enumerate() {
                let revents = pollfds[base + i].revents;
                if revents == 0 || self.conns[slot].is_none() {
                    continue;
                }
                if revents & (POLLERR | POLLNVAL) != 0 {
                    self.close(slot);
                    continue;
                }
                if revents & POLLOUT != 0 {
                    self.write_ready(slot);
                }
                if self.conns[slot].is_some() && revents & (POLLIN | POLLHUP) != 0 {
                    self.read_ready(slot);
                }
            }
            self.sweep();
        }
    }

    /// Drains the accept queue, registering or shedding each pending
    /// connection.
    fn accept_ready(&mut self) {
        loop {
            let stream = match self.server.listener.accept() {
                Ok((stream, _)) => stream,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            };
            if self.live >= self.shared().options.max_connections {
                self.shed(stream);
                continue;
            }
            let _ = stream.set_nodelay(true);
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            let conn = Conn::new(stream);
            let slot = match self.free.pop() {
                Some(slot) => slot,
                None => {
                    self.conns.push(None);
                    self.conns.len() - 1
                }
            };
            self.conns[slot] = Some(conn);
            self.live += 1;
            self.shared().metrics.conns.add(1);
            self.shared().active.store(self.live, Ordering::Release);
        }
    }

    /// Overload shedding, nonblocking flavour: one write attempt of
    /// the structured `busy` frame (a fresh socket's empty send buffer
    /// always takes these few bytes), then close.
    fn shed(&self, stream: TcpStream) {
        self.shared().metrics.shed.inc();
        let options = &self.shared().options;
        let reply = Frame::new("error")
            .arg("code", "busy")
            .arg("retry_after_ms", options.retry_after_ms)
            .with_payload("connection limit reached; retry shortly");
        let _ = stream.set_nonblocking(true);
        let _ = (&stream).write(reply.encode().as_bytes());
        let _ = stream.shutdown(Shutdown::Both);
    }

    /// Reads whatever the socket has (up to the fairness budget),
    /// then decodes and dispatches every complete frame.
    fn read_ready(&mut self, slot: usize) {
        let plan = self.shared().options.faults.clone();
        let mut eof = false;
        for _ in 0..READ_BUDGET {
            let conn = self.conns[slot].as_mut().expect("checked by caller");
            let mut chunk = std::mem::take(&mut self.chunk);
            let outcome = conn.read_once(&plan, &mut chunk);
            match outcome {
                Ok(0) => {
                    self.chunk = chunk;
                    eof = true;
                    break;
                }
                Ok(n) => {
                    conn.decoder.feed(&chunk[..n]);
                    conn.idle_since = Instant::now();
                    self.chunk = chunk;
                    self.shared().metrics.bytes_in.add(n as u64);
                    if n < READ_CHUNK {
                        break; // drained the socket
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {
                    self.chunk = chunk;
                    continue;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    self.chunk = chunk;
                    break;
                }
                Err(_) => {
                    self.chunk = chunk;
                    self.close(slot);
                    return;
                }
            }
        }
        self.process(slot);
        if eof {
            if let Some(conn) = self.conns[slot].as_mut() {
                if let Err(e) = conn.decoder.finish() {
                    // Mirror the blocking loop: EOF inside a frame is
                    // answered with a structured proto error before
                    // the close.
                    let reply = Frame::new("error")
                        .arg("code", "proto")
                        .with_payload(e.to_string());
                    conn.push_reply(&reply);
                    conn.closing = true;
                    self.write_ready(slot);
                } else if conn.pending_out() == 0 {
                    self.close(slot);
                } else {
                    conn.closing = true;
                }
            }
        }
    }

    /// Decodes and dispatches every complete frame the connection has
    /// buffered, stopping at the backpressure mark. Called after reads
    /// and after a below-high-water drain (frames decoded under
    /// backpressure wait in the decoder, not on the socket).
    fn process(&mut self, slot: usize) {
        loop {
            let conn = match self.conns[slot].as_mut() {
                Some(c) if !c.closing && c.pending_out() < WRITE_HIGH_WATER => c,
                _ => break,
            };
            match conn.decoder.next_frame() {
                Ok(Some(req)) => {
                    conn.idle_since = Instant::now();
                    let stop = req.verb == "shutdown";
                    let reply = handle_with_deadline(self.shared(), &req);
                    let conn = self.conns[slot].as_mut().expect("still present");
                    conn.push_reply(&reply);
                    if stop && reply.verb == "ok" {
                        self.shared().shutdown.store(true, Ordering::Release);
                        self.draining = true;
                        let conn = self.conns[slot].as_mut().expect("still present");
                        conn.closing = true;
                        break;
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    let reply = Frame::new("error")
                        .arg("code", "proto")
                        .with_payload(e.to_string());
                    conn.push_reply(&reply);
                    if !e.recoverable() {
                        conn.closing = true;
                        break;
                    }
                }
            }
        }
        if let Some(conn) = self.conns[slot].as_mut() {
            // The frame clock runs while a partial frame is buffered.
            if conn.decoder.mid_frame() {
                if conn.frame_started.is_none() {
                    conn.frame_started = Some(Instant::now());
                }
            } else {
                conn.frame_started = None;
            }
            if conn.pending_out() > 0 {
                // Opportunistic flush: most replies go out here, in
                // the same loop turn as the request — no extra poll
                // round trip on the hot path.
                self.write_ready(slot);
            }
        }
    }

    /// Flushes as much pending output as the socket takes.
    fn write_ready(&mut self, slot: usize) {
        let plan = self.shared().options.faults.clone();
        let was_blocked = {
            let conn = self.conns[slot].as_ref().expect("checked by caller");
            conn.pending_out() >= WRITE_HIGH_WATER
        };
        loop {
            let conn = self.conns[slot].as_mut().expect("checked by caller");
            if conn.pending_out() == 0 {
                conn.write_stalled = None;
                break;
            }
            match conn.write_once(&plan) {
                Ok(0) => {
                    self.close(slot);
                    return;
                }
                Ok(n) => {
                    conn.write_stalled = None;
                    self.shared().metrics.bytes_out.add(n as u64);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if conn.write_stalled.is_none() {
                        conn.write_stalled = Some(Instant::now());
                    }
                    break;
                }
                Err(_) => {
                    self.close(slot);
                    return;
                }
            }
        }
        let conn = self.conns[slot].as_mut().expect("survived the loop");
        if conn.pending_out() == 0 && conn.closing {
            self.close(slot);
            return;
        }
        // Dropping below the high-water mark resumes decoding of
        // frames that arrived during backpressure.
        let conn = self.conns[slot].as_ref().expect("survived the loop");
        if was_blocked && conn.pending_out() < WRITE_HIGH_WATER {
            self.process(slot);
        }
    }

    /// Enforces the frame, idle and write deadlines, drives draining,
    /// and refreshes the buffer gauge.
    fn sweep(&mut self) {
        let options = self.shared().options.clone();
        let now = Instant::now();
        for slot in 0..self.conns.len() {
            let decision = {
                let Some(conn) = self.conns[slot].as_mut() else {
                    continue;
                };
                // Keep the buffer gauge current while we are here.
                let bytes = conn.buffer_bytes();
                if bytes != conn.reported {
                    let delta = bytes as i64 - conn.reported as i64;
                    conn.reported = bytes;
                    self.server.shared.metrics.buffer_bytes.add(delta);
                }
                if self.draining {
                    conn.closing = true;
                    if conn.pending_out() == 0 {
                        Sweep::Close
                    } else {
                        Sweep::Keep
                    }
                } else if conn
                    .write_stalled
                    .is_some_and(|since| now - since >= options.write_timeout)
                {
                    Sweep::Close
                } else if conn.closing {
                    if conn.pending_out() == 0 {
                        Sweep::Close
                    } else {
                        Sweep::Keep
                    }
                } else if conn
                    .frame_started
                    .is_some_and(|started| now - started >= options.frame_deadline)
                {
                    Sweep::CutSlowFrame
                } else if conn.frame_started.is_none()
                    && now - conn.idle_since >= options.idle_timeout
                {
                    Sweep::Close
                } else {
                    Sweep::Keep
                }
            };
            match decision {
                Sweep::Keep => {}
                Sweep::Close => self.close(slot),
                Sweep::CutSlowFrame => {
                    let conn = self.conns[slot].as_mut().expect("present above");
                    let reply = Frame::new("error")
                        .arg("code", "timeout")
                        .with_payload("frame deadline exceeded: request arrived too slowly");
                    conn.push_reply(&reply);
                    conn.closing = true;
                    self.write_ready(slot);
                }
            }
        }
    }

    fn close(&mut self, slot: usize) {
        if let Some(conn) = self.conns[slot].take() {
            self.server
                .shared
                .metrics
                .buffer_bytes
                .sub(conn.reported as i64);
            self.server.shared.metrics.conns.sub(1);
            self.live -= 1;
            self.server
                .shared
                .active
                .store(self.live, Ordering::Release);
            let _ = conn.stream.shutdown(Shutdown::Both);
            self.free.push(slot);
        }
    }
}
