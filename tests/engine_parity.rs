//! The sharded parallel slack engine must be bit-identical to the
//! dense sequential reference engine — at any thread count.
//!
//! All timing values are integer picoseconds and every merge is an
//! exact max/min, so there is no tolerance here: worst slack, every
//! terminal slack, every per-net slack, every traced slow path and
//! every generated constraint must match exactly.

use hb_cells::sc89;
use hb_workloads::{
    alu, fsm12, generate, random_pipeline, GenKind, GenParams, PipelineParams, Workload,
};
use hummingbird::{AnalysisOptions, Analyzer, EngineKind, TimingReport};

fn workloads(lib: &hb_cells::Library) -> Vec<Workload> {
    vec![
        fsm12(lib, true),
        alu(lib, 7),
        random_pipeline(
            lib,
            PipelineParams {
                stages: 4,
                width: 8,
                gates_per_stage: 60,
                transparent: true,
                period_ns: 14,
                seed: 21,
                imbalance_pct: 30,
            },
        ),
    ]
}

fn run(w: &Workload, lib: &hb_cells::Library, options: AnalysisOptions) -> TimingReport {
    Analyzer::with_options(&w.design, w.module, lib, &w.clocks, w.spec.clone(), options)
        .expect("conforming workload")
        .generate_constraints()
}

fn assert_identical(w: &Workload, a: &TimingReport, b: &TimingReport, what: &str) {
    assert_eq!(a.ok(), b.ok(), "{}: ok() differs ({what})", w.name);
    assert_eq!(
        a.worst_slack(),
        b.worst_slack(),
        "{}: worst slack differs ({what})",
        w.name
    );
    let (ta, tb) = (a.terminal_slacks(), b.terminal_slacks());
    assert_eq!(ta.len(), tb.len(), "{}: terminal count ({what})", w.name);
    for (x, y) in ta.iter().zip(tb) {
        assert_eq!(x.kind, y.kind, "{}: terminal kind ({what})", w.name);
        assert_eq!(x.name, y.name, "{}: terminal name ({what})", w.name);
        assert_eq!(
            x.slack, y.slack,
            "{}: slack at {} {:?} ({what})",
            w.name, x.name, x.kind
        );
    }
    let module = w.design.module(w.module);
    for (net, _) in module.nets() {
        assert_eq!(
            a.net_slack(net),
            b.net_slack(net),
            "{}: net slack at net {net} ({what})",
            w.name
        );
    }
    assert_eq!(
        a.slow_nets(),
        b.slow_nets(),
        "{}: slow nets ({what})",
        w.name
    );
    assert_eq!(
        a.slow_paths().len(),
        b.slow_paths().len(),
        "{}: slow path count ({what})",
        w.name
    );
    for (p, q) in a.slow_paths().iter().zip(b.slow_paths()) {
        assert_eq!(p.slack, q.slack, "{}: path slack ({what})", w.name);
        assert_eq!(p.endpoint, q.endpoint, "{}: path endpoint ({what})", w.name);
        assert_eq!(
            p.steps.len(),
            q.steps.len(),
            "{}: path steps ({what})",
            w.name
        );
        for (s, t) in p.steps.iter().zip(&q.steps) {
            assert_eq!(
                (&s.net, &s.through, s.time),
                (&t.net, &t.through, t.time),
                "{}: path step ({what})",
                w.name
            );
        }
    }
    let (ca, cb) = (
        a.constraints().expect("constraints generated"),
        b.constraints().expect("constraints generated"),
    );
    assert_eq!(
        ca.pass_starts(),
        cb.pass_starts(),
        "{}: passes ({what})",
        w.name
    );
    for p in 0..ca.pass_count() {
        for (net, _) in module.nets() {
            assert_eq!(
                ca.ready_in_pass(p, net),
                cb.ready_in_pass(p, net),
                "{}: ready pass {p} net {net} ({what})",
                w.name
            );
            assert_eq!(
                ca.required_in_pass(p, net),
                cb.required_in_pass(p, net),
                "{}: required pass {p} net {net} ({what})",
                w.name
            );
        }
    }
}

/// The property the whole engine rests on: sharded evaluation at 1, 2
/// and 8 threads reproduces the reference engine's output bit for bit.
#[test]
fn sharded_engine_matches_reference_at_any_thread_count() {
    let lib = sc89();
    for w in workloads(&lib) {
        let reference = run(
            &w,
            &lib,
            AnalysisOptions {
                engine: EngineKind::Reference,
                ..AnalysisOptions::default()
            },
        );
        for threads in [1usize, 2, 8] {
            let sharded = run(
                &w,
                &lib,
                AnalysisOptions {
                    engine: EngineKind::Sharded,
                    threads,
                    ..AnalysisOptions::default()
                },
            );
            assert_identical(&w, &sharded, &reference, &format!("{threads} threads"));
        }
    }
}

/// The same bit-for-bit property on at-scale generated designs: a
/// 10k-cell design of each family gets the full comparison (every net,
/// path and constraint), and a 50k-cell design gets the report-level
/// comparison, at 1, 2 and 8 threads.
#[test]
fn sharded_engine_matches_reference_on_generated_designs() {
    let lib = sc89();
    for kind in [GenKind::Pipeline, GenKind::Sbox, GenKind::Sram] {
        let w = generate(&lib, &GenParams::new(kind, 10_000, 11));
        let reference = run(
            &w,
            &lib,
            AnalysisOptions {
                engine: EngineKind::Reference,
                ..AnalysisOptions::default()
            },
        );
        for threads in [1usize, 2, 8] {
            let sharded = run(
                &w,
                &lib,
                AnalysisOptions {
                    engine: EngineKind::Sharded,
                    threads,
                    ..AnalysisOptions::default()
                },
            );
            assert_identical(&w, &sharded, &reference, &format!("{threads} threads"));
        }
    }
    // At 50k the per-net full sweep is too slow for a default test run;
    // compare the report surface only.
    let w = generate(&lib, &GenParams::new(GenKind::Sram, 50_000, 11));
    let reference = run(
        &w,
        &lib,
        AnalysisOptions {
            engine: EngineKind::Reference,
            ..AnalysisOptions::default()
        },
    );
    for threads in [1usize, 2, 8] {
        let sharded = run(
            &w,
            &lib,
            AnalysisOptions {
                engine: EngineKind::Sharded,
                threads,
                ..AnalysisOptions::default()
            },
        );
        assert_eq!(sharded.ok(), reference.ok(), "50k: ok at {threads} threads");
        assert_eq!(
            sharded.worst_slack(),
            reference.worst_slack(),
            "50k: worst slack at {threads} threads"
        );
        let (ta, tb) = (sharded.terminal_slacks(), reference.terminal_slacks());
        assert_eq!(
            ta.len(),
            tb.len(),
            "50k: terminal count at {threads} threads"
        );
        for (x, y) in ta.iter().zip(tb) {
            assert_eq!(
                (&x.name, x.kind, x.slack),
                (&y.name, y.kind, y.slack),
                "50k: terminal at {threads} threads"
            );
        }
    }
}

/// The incremental cache must never change results: a second analyze()
/// on the same analyzer (warm cache inside each call, fresh cache
/// across calls) returns identical reports, and the sharded engine
/// reports non-trivial reuse on workloads whose offsets settle.
#[test]
fn repeated_analysis_is_deterministic_and_reuses_clean_clusters() {
    let lib = sc89();
    let w = fsm12(&lib, true);
    let analyzer = Analyzer::new(&w.design, w.module, &lib, &w.clocks, w.spec.clone())
        .expect("conforming workload");
    let first = analyzer.analyze();
    let second = analyzer.analyze();
    assert_eq!(first.worst_slack(), second.worst_slack());
    assert_eq!(first.ok(), second.ok());
    let stats = first.engine_stats();
    assert!(
        stats.items_scheduled > 0,
        "sharded engine should schedule work items"
    );
    assert_eq!(stats.items_scheduled, second.engine_stats().items_scheduled);
    assert_eq!(stats.items_reused, second.engine_stats().items_reused);
}
