//! Leaf-cell interface declarations.
//!
//! A [`LeafDef`] describes the *interface* of a primitive component — its
//! named, directed pins — without saying anything about function or
//! timing. Function and timing live in the `hb-cells` library crate, which
//! registers one `LeafDef` per library cell; the database only needs
//! enough structure to normalize connectivity.

use std::collections::HashMap;
use std::fmt;

use crate::ids::PinSlot;

/// The direction of a pin or port.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PinDir {
    /// Data flows into the component.
    Input,
    /// Data flows out of the component.
    Output,
}

impl PinDir {
    /// Returns the opposite direction (an output port of a module is an
    /// input endpoint from the parent's point of view, and vice versa).
    #[inline]
    pub fn flipped(self) -> PinDir {
        match self {
            PinDir::Input => PinDir::Output,
            PinDir::Output => PinDir::Input,
        }
    }
}

impl fmt::Display for PinDir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PinDir::Input => "input",
            PinDir::Output => "output",
        })
    }
}

/// One named, directed pin of a leaf interface.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PinDef {
    name: String,
    dir: PinDir,
}

impl PinDef {
    /// Creates a pin definition.
    pub fn new(name: impl Into<String>, dir: PinDir) -> PinDef {
        PinDef {
            name: name.into(),
            dir,
        }
    }

    /// The pin name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The pin direction.
    pub fn dir(&self) -> PinDir {
        self.dir
    }
}

/// The interface of a primitive (leaf) component.
///
/// Built with a fluent API and registered into a design with
/// [`crate::Design::declare_leaf`].
///
/// # Examples
///
/// ```
/// use hb_netlist::{LeafDef, PinDir};
///
/// let nand = LeafDef::new("NAND2")
///     .pin("A", PinDir::Input)
///     .pin("B", PinDir::Input)
///     .pin("Y", PinDir::Output);
/// assert_eq!(nand.pins().count(), 3);
/// assert_eq!(nand.pin_by_name("Y").map(|s| s.as_raw()), Some(2));
/// ```
#[derive(Clone, Debug)]
pub struct LeafDef {
    name: String,
    pins: Vec<PinDef>,
    by_name: HashMap<String, PinSlot>,
}

impl LeafDef {
    /// Creates an empty interface with the given cell name.
    pub fn new(name: impl Into<String>) -> LeafDef {
        LeafDef {
            name: name.into(),
            pins: Vec::new(),
            by_name: HashMap::new(),
        }
    }

    /// Adds a pin, consuming and returning the definition for chaining.
    ///
    /// # Panics
    ///
    /// Panics if a pin with the same name already exists; interfaces are
    /// authored statically and a duplicate is a programming error.
    pub fn pin(mut self, name: impl Into<String>, dir: PinDir) -> LeafDef {
        let name = name.into();
        let slot = PinSlot(self.pins.len() as u32);
        let previous = self.by_name.insert(name.clone(), slot);
        assert!(
            previous.is_none(),
            "duplicate pin {name:?} on leaf {:?}",
            self.name
        );
        self.pins.push(PinDef::new(name, dir));
        self
    }

    /// The cell name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The number of pins.
    pub fn pin_count(&self) -> usize {
        self.pins.len()
    }

    /// Iterates over `(slot, definition)` pairs in declaration order.
    pub fn pins(&self) -> impl Iterator<Item = (PinSlot, &PinDef)> {
        self.pins
            .iter()
            .enumerate()
            .map(|(i, p)| (PinSlot(i as u32), p))
    }

    /// Looks up a pin slot by name.
    pub fn pin_by_name(&self, name: &str) -> Option<PinSlot> {
        self.by_name.get(name).copied()
    }

    /// Returns the definition of the pin in `slot`.
    ///
    /// # Panics
    ///
    /// Panics if the slot is out of range for this interface.
    pub fn pin_def(&self, slot: PinSlot) -> &PinDef {
        &self.pins[slot.idx()]
    }

    /// Returns the slots of all input pins.
    pub fn input_slots(&self) -> impl Iterator<Item = PinSlot> + '_ {
        self.pins()
            .filter(|(_, p)| p.dir() == PinDir::Input)
            .map(|(s, _)| s)
    }

    /// Returns the slots of all output pins.
    pub fn output_slots(&self) -> impl Iterator<Item = PinSlot> + '_ {
        self.pins()
            .filter(|(_, p)| p.dir() == PinDir::Output)
            .map(|(s, _)| s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let def = LeafDef::new("AOI21")
            .pin("A", PinDir::Input)
            .pin("B", PinDir::Input)
            .pin("C", PinDir::Input)
            .pin("Y", PinDir::Output);
        assert_eq!(def.name(), "AOI21");
        assert_eq!(def.pin_count(), 4);
        assert_eq!(def.pin_by_name("C"), Some(PinSlot(2)));
        assert_eq!(def.pin_by_name("Z"), None);
        assert_eq!(def.pin_def(PinSlot(3)).dir(), PinDir::Output);
        assert_eq!(def.input_slots().count(), 3);
        assert_eq!(def.output_slots().collect::<Vec<_>>(), vec![PinSlot(3)]);
    }

    #[test]
    #[should_panic(expected = "duplicate pin")]
    fn duplicate_pin_panics() {
        let _ = LeafDef::new("X")
            .pin("A", PinDir::Input)
            .pin("A", PinDir::Output);
    }

    #[test]
    fn dir_flip() {
        assert_eq!(PinDir::Input.flipped(), PinDir::Output);
        assert_eq!(PinDir::Output.flipped(), PinDir::Input);
        assert_eq!(PinDir::Input.to_string(), "input");
    }
}
