//! The synchronising-element analysis model (paper Section 5).
//!
//! Each synchronising element is analyzed through one [`Replica`] per
//! control pulse within the overall period (an element clocked at `n×`
//! the overall frequency becomes `n` parallel replicas — paper
//! Section 4). A replica carries the paper's *terminal offsets* in their
//! simplified form (Figure 2b):
//!
//! * `O_cc = 0` (fixed lower bound on the closure control time);
//! * `O_dc = −D_setup` (fixed lower bound on input closure);
//! * `O_ac` — assertion control time, lower-bounded by the control-path
//!   delay; held at that bound (asserting as early as the control
//!   allows);
//! * `O_dx` / `O_zd` — the adjustable data-side pair, coupled for
//!   transparent latches by `O_zd = W + O_dx + D_dx` (Figure 3) and
//!   pinned to zero for trailing-edge elements.
//!
//! The *effective* output assertion offset is `max(O_xc, O_zd)` (plus the
//! load-dependent output delay) and the effective input closure offset is
//! `min(O_dc, O_dx)`. Slack transfer moves the `(O_dx, O_zd)` pair within
//! the transparency window; trailing-edge elements have a zero-width
//! window and never move — which is exactly why they decouple adjacent
//! clusters.

use hb_cells::SyncKind;
use hb_clock::EdgeId;
use hb_netlist::{InstId, NetId};
use hb_units::Time;

/// One per-pulse analysis replica of a synchronising element.
#[derive(Clone, Debug)]
pub struct Replica {
    /// The instance this replica models.
    pub inst: InstId,
    /// Index into the timing graph's sync list.
    pub sync_index: usize,
    /// Which control pulse of the overall period this replica owns.
    pub pulse_index: u32,
    /// The element kind.
    pub kind: SyncKind,
    /// The ideal output assertion edge (leading edge for transparent
    /// kinds, trailing edge for edge-triggered ones).
    pub assert_edge: EdgeId,
    /// The ideal input closure edge (always the trailing edge).
    pub close_edge: EdgeId,
    /// The net at the data input.
    pub data_net: NetId,
    /// The net at the output, when connected.
    pub output_net: Option<NetId>,
    /// The net at the complementary output (output-bar), when present.
    pub output_bar_net: Option<NetId>,
    width: Time,
    setup: Time,
    hold: Time,
    d_cx: Time,
    d_dx: Time,
    cdel: Time,
    out_extra: Time,
    transparent: bool,
    o_ac: Time,
    o_dx: Time,
}

/// The constructor parameters that are pure element timing (everything
/// except the structural bindings).
#[derive(Clone, Copy, Debug)]
pub struct ReplicaTiming {
    /// Control pulse width `W`.
    pub width: Time,
    /// Set-up time `D_setup`.
    pub setup: Time,
    /// Hold time after input closure (supplementary checks only).
    pub hold: Time,
    /// Control-to-output delay `D_cx`.
    pub d_cx: Time,
    /// Data-to-output delay `D_dx` (transparent kinds).
    pub d_dx: Time,
    /// Control-path delay from the clock source (lower bound on `O_ac`).
    pub cdel: Time,
    /// Load-dependent output delay added to every assertion.
    pub out_extra: Time,
}

impl Replica {
    /// Creates a replica with the paper's initial offsets: `O_ac` at its
    /// control-path lower bound and, for transparent kinds, the data pair
    /// at the *late* end of the window (`O_zd = W`, i.e. behaving like a
    /// trailing-edge latch until slack transfer moves it).
    ///
    /// `transparent` selects the analysis model: pass `false` to force
    /// the McWilliams-style edge-triggered baseline even for transparent
    /// cells.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        inst: InstId,
        sync_index: usize,
        pulse_index: u32,
        kind: SyncKind,
        assert_edge: EdgeId,
        close_edge: EdgeId,
        data_net: NetId,
        output_net: Option<NetId>,
        timing: ReplicaTiming,
        transparent: bool,
    ) -> Replica {
        Replica {
            inst,
            sync_index,
            pulse_index,
            kind,
            assert_edge,
            close_edge,
            data_net,
            output_net,
            output_bar_net: None,
            width: timing.width,
            setup: timing.setup,
            hold: timing.hold,
            d_cx: timing.d_cx,
            d_dx: timing.d_dx,
            cdel: timing.cdel,
            out_extra: timing.out_extra,
            transparent,
            o_ac: timing.cdel,
            o_dx: if transparent {
                -timing.d_dx
            } else {
                Time::ZERO
            },
        }
    }

    /// Attaches a complementary (output-bar) net: it asserts at the same
    /// offsets as the main output.
    pub fn with_output_bar(mut self, net: NetId) -> Replica {
        self.output_bar_net = Some(net);
        self
    }

    /// Whether this replica has an adjustable transparency window.
    pub fn is_transparent(&self) -> bool {
        self.transparent
    }

    /// The control-path delay from the clock source (the lower bound on
    /// `O_ac`, and the skew term of the supplementary checks).
    pub fn cdel(&self) -> Time {
        self.cdel
    }

    /// The element's hold requirement (supplementary checks only).
    pub fn hold(&self) -> Time {
        self.hold
    }

    /// The control pulse width `W`.
    pub fn width(&self) -> Time {
        self.width
    }

    /// The current `O_dx` offset (input closure implied by the output
    /// assertion requirement, relative to the ideal closure time).
    pub fn o_dx(&self) -> Time {
        self.o_dx
    }

    /// The current `O_zd` offset (output assertion implied by input
    /// timing, relative to the ideal assertion time):
    /// `O_zd = W + O_dx + D_dx` for transparent kinds, zero otherwise.
    pub fn o_zd(&self) -> Time {
        if self.transparent {
            self.width + self.o_dx + self.d_dx
        } else {
            Time::ZERO
        }
    }

    /// The assertion-control offset `O_xc = O_ac + D_cx`.
    pub fn o_xc(&self) -> Time {
        self.o_ac + self.d_cx
    }

    /// The effective output assertion offset relative to the ideal
    /// assertion time: `max(O_xc, O_zd)` plus the load-dependent output
    /// delay.
    pub fn output_assert_offset(&self) -> Time {
        self.o_xc().max(self.o_zd()) + self.out_extra
    }

    /// The effective input closure offset relative to the ideal closure
    /// time: `min(O_dc, O_dx)` with `O_dc = −D_setup`.
    pub fn input_close_offset(&self) -> Time {
        (-self.setup).min(if self.transparent {
            self.o_dx
        } else {
            Time::ZERO
        })
    }

    /// The maximum amount by which the data pair may still be decreased
    /// (moved earlier): the element constraint `O_zd ≥ 0`.
    pub fn forward_room(&self) -> Time {
        if self.transparent {
            self.o_zd()
        } else {
            Time::ZERO
        }
    }

    /// The maximum amount by which the data pair may still be increased
    /// (moved later): the element constraint `O_dx ≤ −D_dx`
    /// (equivalently `O_zd ≤ W`).
    pub fn backward_room(&self) -> Time {
        if self.transparent {
            -self.d_dx - self.o_dx
        } else {
            Time::ZERO
        }
    }

    /// Decreases `O_dx` (and the derived `O_zd`) by
    /// `min(amount, forward_room)`, returning the amount actually moved.
    /// Non-positive requests move nothing.
    pub fn transfer_forward(&mut self, amount: Time) -> Time {
        let moved = amount.min(self.forward_room()).max(Time::ZERO);
        self.o_dx -= moved;
        moved
    }

    /// Increases `O_dx` (and the derived `O_zd`) by
    /// `min(amount, backward_room)`, returning the amount actually moved.
    /// Non-positive requests move nothing.
    pub fn transfer_backward(&mut self, amount: Time) -> Time {
        let moved = amount.min(self.backward_room()).max(Time::ZERO);
        self.o_dx += moved;
        moved
    }

    /// The element timing constants, for engines (the symbolic
    /// parametric analysis) that rebuild the offset model out-of-place.
    pub(crate) fn timing(&self) -> ReplicaTiming {
        ReplicaTiming {
            width: self.width,
            setup: self.setup,
            hold: self.hold,
            d_cx: self.d_cx,
            d_dx: self.d_dx,
            cdel: self.cdel,
            out_extra: self.out_extra,
        }
    }

    /// Resets the data pair to the initial (late) position.
    pub fn reset_offsets(&mut self) {
        self.o_ac = self.cdel;
        self.o_dx = if self.transparent {
            -self.d_dx
        } else {
            Time::ZERO
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timing(
        width_ns: i64,
        setup_ps: i64,
        d_cx_ps: i64,
        d_dx_ps: i64,
        cdel_ps: i64,
    ) -> ReplicaTiming {
        ReplicaTiming {
            width: Time::from_ns(width_ns),
            setup: Time::from_ps(setup_ps),
            hold: Time::from_ps(100),
            d_cx: Time::from_ps(d_cx_ps),
            d_dx: Time::from_ps(d_dx_ps),
            cdel: Time::from_ps(cdel_ps),
            out_extra: Time::ZERO,
        }
    }

    fn replica(t: ReplicaTiming, transparent: bool) -> Replica {
        Replica::new(
            InstId::from_raw(0),
            0,
            0,
            if transparent {
                SyncKind::Transparent
            } else {
                SyncKind::TrailingEdge
            },
            EdgeId::from_raw(0),
            EdgeId::from_raw(1),
            NetId::from_raw(0),
            Some(NetId::from_raw(1)),
            t,
            transparent,
        )
    }

    /// The worked example of Section 5 / Figure 3: a transparent latch
    /// with no internal delays, a 20 ns control pulse, output asserted
    /// 5 ns after the pulse begins, and a 2 ns clock-to-control delay.
    #[test]
    fn figure3_worked_example() {
        let mut r = replica(timing(20, 0, 0, 0, 2_000), true);
        // Move the pair so that O_zd = 5 ns: from the initial O_zd = W,
        // transfer (W − 5) forward.
        let moved = r.transfer_forward(Time::from_ns(15));
        assert_eq!(moved, Time::from_ns(15));
        assert_eq!(r.o_zd(), Time::from_ns(5));
        assert_eq!(r.o_dx(), Time::from_ns(-15));
        assert_eq!(r.o_xc(), Time::from_ns(2));
        // Output asserts at max(O_xc, O_zd) = 5 ns after the leading edge.
        assert_eq!(r.output_assert_offset(), Time::from_ns(5));
        // Input closes 15 ns before the trailing edge.
        assert_eq!(r.input_close_offset(), Time::from_ns(-15));
    }

    #[test]
    fn trailing_edge_constraints() {
        // Edge-triggered: O_dx = O_zd = 0, input closes at −setup,
        // output asserts at O_ac + D_cx.
        let mut r = replica(timing(10, 300, 450, 0, 100), false);
        assert_eq!(r.o_zd(), Time::ZERO);
        assert_eq!(r.input_close_offset(), Time::from_ps(-300));
        assert_eq!(r.output_assert_offset(), Time::from_ps(550));
        assert_eq!(r.forward_room(), Time::ZERO);
        assert_eq!(r.backward_room(), Time::ZERO);
        assert_eq!(r.transfer_forward(Time::from_ns(1)), Time::ZERO);
        assert_eq!(r.transfer_backward(Time::from_ns(1)), Time::ZERO);
        assert!(!r.is_transparent());
    }

    #[test]
    fn transparent_window_bounds() {
        let mut r = replica(timing(20, 250, 400, 350, 0), true);
        // Initial: late end of the window.
        assert_eq!(r.o_zd(), r.width());
        assert_eq!(r.backward_room(), Time::ZERO);
        assert_eq!(r.forward_room(), Time::from_ns(20));
        // Walk to the early end.
        let moved = r.transfer_forward(Time::from_ns(100));
        assert_eq!(moved, Time::from_ns(20), "clamped to the window");
        assert_eq!(r.o_zd(), Time::ZERO);
        assert_eq!(r.forward_room(), Time::ZERO);
        assert_eq!(r.backward_room(), Time::from_ns(20));
        // O_zd never leaves [0, W].
        r.transfer_backward(Time::from_ns(7));
        assert_eq!(r.o_zd(), Time::from_ns(7));
        assert!(r.o_zd() >= Time::ZERO && r.o_zd() <= r.width());
    }

    #[test]
    fn negative_requests_move_nothing() {
        let mut r = replica(timing(20, 0, 0, 0, 0), true);
        assert_eq!(r.transfer_forward(Time::from_ns(-3)), Time::ZERO);
        assert_eq!(r.transfer_backward(Time::from_ns(-3)), Time::ZERO);
        assert_eq!(r.o_zd(), r.width());
    }

    #[test]
    fn setup_dominates_when_pair_is_late() {
        // With O_dx = −D_dx = −350 ps and setup 250 ps, the effective
        // closure is min(−250, −350) = −350 ps (pessimistic-safe).
        let r = replica(timing(20, 250, 400, 350, 0), true);
        assert_eq!(r.input_close_offset(), Time::from_ps(-350));
    }

    #[test]
    fn control_path_floors_assertion() {
        // A slow control path keeps the output from asserting early even
        // when the data pair is at the leading edge.
        let mut r = replica(timing(20, 0, 400, 0, 3_000), true);
        r.transfer_forward(Time::from_ns(100));
        assert_eq!(r.o_zd(), Time::ZERO);
        assert_eq!(r.output_assert_offset(), Time::from_ps(3_400));
    }

    #[test]
    fn reset_restores_initial_position() {
        let mut r = replica(timing(20, 0, 0, 0, 0), true);
        r.transfer_forward(Time::from_ns(9));
        r.reset_offsets();
        assert_eq!(r.o_zd(), r.width());
    }

    #[test]
    fn output_load_adds_to_assertion() {
        let mut t = timing(10, 0, 100, 0, 0);
        t.out_extra = Time::from_ps(70);
        let r = replica(t, false);
        assert_eq!(r.output_assert_offset(), Time::from_ps(170));
    }
}
