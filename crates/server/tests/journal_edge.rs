//! Journal boundary behaviour: compaction triggers strictly *past*
//! [`Journal::MAX_ENTRIES`] (never at it), and a compacted journal
//! replays to the exact state the raw history produced.

use hb_cells::sc89;
use hb_io::Frame;
use hb_server::{Journal, Session};

fn design_text() -> String {
    "design edge\n\
     module top\n\
     \x20 port in din clk\n\
     \x20 port out dout\n\
     \x20 inst g0 BUF_X1 A=din Y=n0\n\
     \x20 inst g1 INV_X1 A=n0 Y=n1\n\
     \x20 inst cap DFF D=n1 CK=clk Q=dout\n\
     end\n\
     top top\n\
     clock clk period 10ns rise 0ns fall 5ns\n\
     clockport clk clk\n\
     arrive din clk rise 1ns\n"
        .to_owned()
}

/// Handles `req` and journals it the way the transports do.
fn step(session: &mut Session, journal: &mut Journal, req: &Frame) {
    let reply = session.handle(req);
    assert_eq!(reply.verb, "ok", "{:?}", reply.payload);
    journal.record(req, &reply, session);
}

/// Scale ECOs alternating up/down so the journal grows without the
/// design drifting monotonically.
fn eco(i: usize) -> Frame {
    Frame::new("eco")
        .arg("op", "scale-net")
        .arg("net", if i.is_multiple_of(2) { "n0" } else { "n1" })
        .arg("percent", if i.is_multiple_of(2) { 110 } else { 91 })
}

#[test]
fn no_compaction_at_exactly_max_entries() {
    let mut session = Session::new(sc89());
    let mut journal = Journal::new();
    step(
        &mut session,
        &mut journal,
        &Frame::new("load").with_payload(design_text()),
    );
    let epoch_after_load = journal.epoch();

    // Fill to the bound exactly: 1 load + (MAX_ENTRIES - 1) ECOs.
    for i in 0..Journal::MAX_ENTRIES - 1 {
        step(&mut session, &mut journal, &eco(i));
    }
    assert_eq!(journal.len(), Journal::MAX_ENTRIES, "exactly at the bound");
    assert_eq!(
        journal.epoch(),
        epoch_after_load,
        "no compaction at the bound itself"
    );
    assert_eq!(journal.fingerprint(), Some(session.fingerprint()));

    // One entry more tips it over: the history collapses to the
    // snapshot (load + re-analysis) and the epoch moves.
    step(&mut session, &mut journal, &eco(Journal::MAX_ENTRIES));
    assert!(
        journal.len() <= 2,
        "compaction left {} entries",
        journal.len()
    );
    assert_eq!(
        journal.epoch(),
        epoch_after_load + 1,
        "compaction bumps the epoch"
    );
    assert_eq!(journal.fingerprint(), Some(session.fingerprint()));
}

#[test]
fn replay_after_compaction_rebuilds_the_exact_state() {
    let mut session = Session::new(sc89());
    let mut journal = Journal::new();
    step(
        &mut session,
        &mut journal,
        &Frame::new("load").with_payload(design_text()),
    );
    step(&mut session, &mut journal, &Frame::new("analyze"));
    for i in 0..Journal::MAX_ENTRIES + 3 {
        step(&mut session, &mut journal, &eco(i));
    }
    assert!(journal.len() < Journal::MAX_ENTRIES, "must have compacted");

    // `replay` verifies the fingerprint internally; a clean return
    // already proves the compacted history rebuilds the recorded
    // state. Cross-check the visible surfaces anyway.
    let mut rebuilt = journal.replay(sc89(), None).expect("compacted replay");
    assert_eq!(rebuilt.fingerprint(), session.fingerprint());
    for req in [
        Frame::new("analyze"),
        Frame::new("worst-paths").arg("k", 5),
        Frame::new("dump"),
    ] {
        let want = session.handle(&req);
        let got = rebuilt.handle(&req);
        assert_eq!(got.payload, want.payload, "`{}` payload diverged", req.verb);
        for key in ["ok", "worst", "period"] {
            assert_eq!(got.get(key), want.get(key), "`{}` {key} diverged", req.verb);
        }
    }
}

/// A fresh successful `load` starts history over (and bumps the epoch
/// so replication cursors notice); a failed one does neither.
#[test]
fn load_clears_history_and_bumps_the_epoch() {
    let mut session = Session::new(sc89());
    let mut journal = Journal::new();
    step(
        &mut session,
        &mut journal,
        &Frame::new("load").with_payload(design_text()),
    );
    for i in 0..5 {
        step(&mut session, &mut journal, &eco(i));
    }
    assert_eq!(journal.len(), 6);
    let epoch = journal.epoch();

    let req = Frame::new("load").with_payload(design_text());
    let reply = session.handle(&req);
    assert_eq!(reply.verb, "ok");
    journal.record(&req, &reply, &session);
    assert_eq!(journal.len(), 1, "a fresh load starts history over");
    assert_eq!(journal.epoch(), epoch + 1);

    // A load that fails to parse is still recorded (it is a mutating
    // verb whose failure must replay identically) but does not clear
    // the good history before it.
    let req = Frame::new("load").with_payload("design broken\n".to_owned());
    let reply = session.handle(&req);
    assert_eq!(reply.verb, "error");
    journal.record(&req, &reply, &session);
    assert_eq!(journal.len(), 2, "failed load appends");
    assert_eq!(journal.epoch(), epoch + 1, "failed load keeps the epoch");
    let rebuilt = journal
        .replay(sc89(), None)
        .expect("replay with failed load");
    assert_eq!(rebuilt.fingerprint(), session.fingerprint());
}
