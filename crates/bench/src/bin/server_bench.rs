//! Daemon-mode benchmark: queries/sec and request latency through the
//! `hummingbird serve` TCP loop, plus the cost of a warm ECO
//! re-analysis against a cold one-shot analysis of the same design.
//!
//! Runs an in-process server on a loopback socket, drives it with the
//! blocking [`Client`], and writes `BENCH_server.json`. Run with
//! `cargo run --release -p hb-bench --bin server_bench`.

use std::fmt::Write as _;
use std::time::Instant;

use hb_cells::{sc89, Binding, Library};
use hb_io::Frame;
use hb_netlist::InstRef;
use hb_server::{directives_from_spec, Client, Server, ServerOptions};
use hb_workloads::{des_like, random_pipeline, PipelineParams, Workload};

const COLD_ITERS: usize = 5;
const SLACK_ITERS: usize = 200;
const ECO_ITERS: usize = 40;

struct Latencies(Vec<f64>);

impl Latencies {
    fn measure(n: usize, mut f: impl FnMut()) -> Latencies {
        let mut samples = Vec::with_capacity(n);
        for _ in 0..n {
            let start = Instant::now();
            f();
            samples.push(start.elapsed().as_secs_f64());
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        Latencies(samples)
    }

    fn p50(&self) -> f64 {
        self.0[self.0.len() / 2]
    }

    fn p99(&self) -> f64 {
        self.0[(self.0.len() * 99 / 100).min(self.0.len() - 1)]
    }

    fn qps(&self) -> f64 {
        self.0.len() as f64 / self.0.iter().sum::<f64>()
    }
}

/// The first leaf instance with drive headroom — the resize target.
fn resizable_instance(w: &Workload, lib: &Library) -> String {
    let binding = Binding::new(&w.design, lib);
    let module = w.design.module(w.module);
    for (_, inst) in module.instances() {
        let InstRef::Leaf(leaf) = inst.target() else {
            continue;
        };
        let Some(cell) = binding.cell_for_leaf(leaf) else {
            continue;
        };
        let variants = lib.family_variants(lib.cell(cell).family());
        let pos = variants.iter().position(|&v| v == cell).expect("bound");
        if pos + 1 < variants.len() {
            return inst.name().to_owned();
        }
    }
    panic!("workload has no resizable instance");
}

fn expect_ok(reply: &Frame, what: &str) {
    assert_eq!(
        reply.verb,
        "ok",
        "{what} failed: {:?}",
        reply.payload.as_deref().unwrap_or("")
    );
}

fn main() {
    let lib = sc89();
    let workloads = [
        random_pipeline(
            &lib,
            PipelineParams {
                stages: 6,
                width: 16,
                gates_per_stage: 600,
                transparent: true,
                period_ns: 30,
                seed: 1203,
                imbalance_pct: 40,
            },
        ),
        des_like(&lib, 1989),
    ];

    let server =
        Server::bind("127.0.0.1:0", lib.clone(), ServerOptions::default()).expect("bind loopback");
    let addr = server.local_addr().expect("bound address");
    let daemon = std::thread::spawn(move || server.run());
    let mut client = Client::connect(addr).expect("connect");
    let mut request = |frame: &Frame| client.request(frame).expect("daemon reply");

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"available_parallelism\": {cores},");
    let _ = writeln!(json, "  \"transport\": \"tcp-loopback\",");
    json.push_str("  \"workloads\": [\n");

    for (wi, w) in workloads.iter().enumerate() {
        let text =
            hb_io::write_hum_with_timing(&w.design, &w.clocks, &directives_from_spec(&w.spec));
        let cells = w.stats().cells;
        let inst = resizable_instance(w, &lib);
        let probe_net = w
            .design
            .module(w.module)
            .nets()
            .next()
            .expect("nets")
            .1
            .name()
            .to_owned();

        // Cold analysis: a fresh load resets the resident cache, so
        // each timed analyze sweeps every cluster from scratch.
        let cold = Latencies::measure(COLD_ITERS, || {
            expect_ok(
                &request(&Frame::new("load").with_payload(text.clone())),
                "load",
            );
            expect_ok(&request(&Frame::new("analyze")), "cold analyze");
        });

        // Settled-analysis slack queries: the server's read path.
        let slack_req = Frame::new("slack").arg("node", probe_net.clone());
        let slack = Latencies::measure(SLACK_ITERS, || {
            expect_ok(&request(&slack_req), "slack");
        });

        // Warm ECOs: alternate the resize direction so the design keeps
        // changing; every request re-analyzes through the warm cache.
        let mut reused = 0u64;
        let mut swept = 0u64;
        let mut step = 1i64;
        let eco = Latencies::measure(ECO_ITERS, || {
            let reply = request(
                &Frame::new("eco")
                    .arg("op", "resize")
                    .arg("inst", inst.clone())
                    .arg("steps", step),
            );
            expect_ok(&reply, "eco");
            reused = reply.get("items_reused").unwrap().parse().expect("count");
            swept = reply.get("items_swept").unwrap().parse().expect("count");
            step = -step;
        });

        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"workload\": \"{}\",", w.name);
        let _ = writeln!(json, "      \"cells\": {cells},");
        let _ = writeln!(
            json,
            "      \"cold_analyze_seconds_p50\": {:.6},",
            cold.p50()
        );
        let _ = writeln!(json, "      \"slack_query\": {{");
        let _ = writeln!(json, "        \"requests\": {SLACK_ITERS},");
        let _ = writeln!(json, "        \"queries_per_second\": {:.1},", slack.qps());
        let _ = writeln!(json, "        \"p50_ms\": {:.4},", slack.p50() * 1e3);
        let _ = writeln!(json, "        \"p99_ms\": {:.4}", slack.p99() * 1e3);
        let _ = writeln!(json, "      }},");
        let _ = writeln!(json, "      \"eco_resize\": {{");
        let _ = writeln!(json, "        \"requests\": {ECO_ITERS},");
        let _ = writeln!(json, "        \"queries_per_second\": {:.1},", eco.qps());
        let _ = writeln!(json, "        \"p50_ms\": {:.4},", eco.p50() * 1e3);
        let _ = writeln!(json, "        \"p99_ms\": {:.4},", eco.p99() * 1e3);
        let _ = writeln!(json, "        \"items_reused_last\": {reused},");
        let _ = writeln!(json, "        \"items_swept_last\": {swept},");
        let _ = writeln!(
            json,
            "        \"warm_eco_speedup_vs_cold_analyze\": {:.3}",
            cold.p50() / eco.p50()
        );
        let _ = writeln!(json, "      }}");
        let _ = writeln!(
            json,
            "    }}{}",
            if wi + 1 < workloads.len() { "," } else { "" }
        );
        eprintln!(
            "{}: cold {:.1} ms | slack p50 {:.3} ms ({:.0}/s) | eco p50 {:.1} ms, \
             {}/{} sweeps reused",
            w.name,
            cold.p50() * 1e3,
            slack.p50() * 1e3,
            slack.qps(),
            eco.p50() * 1e3,
            reused,
            reused + swept
        );
    }
    json.push_str("  ]\n}\n");

    expect_ok(&request(&Frame::new("shutdown")), "shutdown");
    daemon.join().expect("server thread").expect("server exit");

    std::fs::write("BENCH_server.json", &json).expect("write BENCH_server.json");
    println!("{json}");
}
