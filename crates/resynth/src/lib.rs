//! The analysis/redesign loop — Algorithm 3 of the paper.
//!
//! ```text
//! Synthesise initial area-optimised combinational logic modules.
//! Until all paths are fast enough:
//!     Perform timing analysis to identify all paths that are too slow;
//!     Provide input data ready times and output required times for all
//!     combinational logic modules traversed by paths that are too slow;
//!     Select one such module and speed up slow paths.
//! ```
//!
//! The paper delegates "speed up slow paths" to the timing-optimization
//! program of Singh et al. (ICCAD'88). This crate implements the classic
//! minimal speed-up operators that such a program applies, driven by the
//! ready/required constraints that Algorithm 2 generates:
//!
//! * **gate resizing** — retarget an instance to a higher-drive variant
//!   of the same cell family ([`hb_netlist::Design::replace_instance_ref`]);
//! * **load isolation** — when the driver is already at maximum drive,
//!   insert a buffer and move the *non-critical* sinks (those whose
//!   required-minus-ready budget can absorb the buffer delay) onto it,
//!   unloading the critical net.
//!
//! Each outer iteration re-runs the full analysis, exactly as the
//! analysis-redesign loop of the original system round-tripped through
//! OCT.
//!
//! # Examples
//!
//! ```no_run
//! use hb_cells::sc89;
//! use hb_clock::ClockSet;
//! use hb_resynth::{optimize, ResynthOptions};
//! # fn get_design() -> (hb_netlist::Design, hb_netlist::ModuleId, ClockSet, hummingbird::Spec) { unimplemented!() }
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let lib = sc89();
//! let (mut design, module, clocks, spec) = get_design();
//! let outcome = optimize(&mut design, module, &lib, &clocks, &spec, ResynthOptions::default())?;
//! println!("met timing: {} after {} edits", outcome.met, outcome.edits);
//! # Ok(())
//! # }
//! ```

mod eco;

pub use eco::{apply_eco, EcoError, EcoOp, EcoOutcome};

use hb_cells::{Binding, Library};
use hb_clock::ClockSet;
use hb_netlist::{Design, Endpoint, InstId, InstRef, ModuleId, NetId};
use hb_units::Time;
use hummingbird::{AnalyzeError, Analyzer, Spec, TimingConstraints};

/// Tuning for the redesign loop.
#[derive(Clone, Copy, Debug)]
pub struct ResynthOptions {
    /// Maximum analysis/redesign iterations.
    pub max_iterations: usize,
    /// Maximum edits applied per iteration (between re-analyses).
    pub max_edits_per_iteration: usize,
    /// Estimated delay cost of an inserted isolation buffer, used to
    /// decide which sinks can afford to move behind one.
    pub buffer_cost: Time,
}

impl Default for ResynthOptions {
    fn default() -> ResynthOptions {
        ResynthOptions {
            max_iterations: 24,
            max_edits_per_iteration: 16,
            buffer_cost: Time::from_ps(400),
        }
    }
}

/// The result of a redesign run.
#[derive(Clone, Debug, Default)]
pub struct ResynthOutcome {
    /// Whether all paths ended fast enough.
    pub met: bool,
    /// Analysis/redesign iterations performed.
    pub iterations: usize,
    /// Total structural edits applied (resizes plus buffer insertions).
    pub edits: usize,
    /// Gate resizes applied.
    pub resizes: usize,
    /// Isolation buffers inserted.
    pub buffers: usize,
    /// The worst terminal slack after each analysis (first entry is the
    /// initial design).
    pub worst_slack_history: Vec<Time>,
    /// Total cell area before the loop ran.
    pub area_before: u64,
    /// Total cell area after the loop ran — the price paid for speed
    /// (the paper's premise: logic is initially *area*-optimised, and
    /// the redesign loop spends area to meet timing).
    pub area_after: u64,
}

/// Runs the analysis/redesign loop on `module` until timing is met, no
/// further edit applies, or the iteration cap is reached.
///
/// # Errors
///
/// Propagates analyzer preparation failures (structural assumption
/// violations, bad specs). The design is left in its most-optimised
/// state even when timing is not met.
pub fn optimize(
    design: &mut Design,
    module: ModuleId,
    library: &Library,
    clocks: &ClockSet,
    spec: &Spec,
    options: ResynthOptions,
) -> Result<ResynthOutcome, AnalyzeError> {
    let mut outcome = ResynthOutcome {
        area_before: total_area(design, module, library),
        ..ResynthOutcome::default()
    };
    for _ in 0..options.max_iterations {
        outcome.iterations += 1;
        let report = {
            let analyzer = Analyzer::new(design, module, library, clocks, spec.clone())?;
            analyzer.generate_constraints()
        };
        outcome.worst_slack_history.push(report.worst_slack());
        if report.ok() {
            outcome.met = true;
            outcome.area_after = total_area(design, module, library);
            return Ok(outcome);
        }
        let constraints = report.constraints().expect("generated above");

        // Slow nets, most negative first — the per-net budgets Algorithm 2
        // settled.
        let mut slow: Vec<(Time, NetId)> = design
            .module(module)
            .nets()
            .filter_map(|(id, _)| {
                let s = constraints.net_slack(id)?;
                (s <= Time::ZERO).then_some((s, id))
            })
            .collect();
        slow.sort();

        let mut edits_this_round = 0;
        for &(_, net) in &slow {
            if edits_this_round >= options.max_edits_per_iteration {
                break;
            }
            let driver = match design.module(module).driver(net) {
                Some(Endpoint::Pin { inst, .. }) => inst,
                _ => continue, // driven by a port: nothing to resize
            };
            if try_resize(design, module, driver, library) {
                outcome.resizes += 1;
                edits_this_round += 1;
                continue;
            }
            if try_isolate(
                design,
                module,
                net,
                library,
                constraints,
                options.buffer_cost,
            ) {
                outcome.buffers += 1;
                edits_this_round += 1;
            }
        }
        outcome.edits += edits_this_round;
        if edits_this_round == 0 {
            // No applicable edit: the loop cannot make progress.
            outcome.area_after = total_area(design, module, library);
            return Ok(outcome);
        }
    }
    // Cap reached: record the final state.
    let report = {
        let analyzer = Analyzer::new(design, module, library, clocks, spec.clone())?;
        analyzer.analyze()
    };
    outcome.worst_slack_history.push(report.worst_slack());
    outcome.met = report.ok();
    outcome.area_after = total_area(design, module, library);
    Ok(outcome)
}

/// Sums the area of every library-bound leaf instance in `module`.
fn total_area(design: &Design, module: ModuleId, library: &Library) -> u64 {
    let binding = Binding::new(design, library);
    design
        .module(module)
        .instances()
        .filter_map(|(id, _)| binding.cell_for_instance(design, module, id))
        .map(|cell| u64::from(library.cell(cell).area()))
        .sum()
}

/// Retargets `inst` to the next-larger drive variant of its family.
/// Returns `false` when the instance is not a library cell or is already
/// at maximum drive.
fn try_resize(design: &mut Design, module: ModuleId, inst: InstId, library: &Library) -> bool {
    let leaf = match design.module(module).instance(inst).target() {
        InstRef::Leaf(l) => l,
        InstRef::Module(_) => return false,
    };
    let binding = Binding::new(design, library);
    let Some(cell_id) = binding.cell_for_leaf(leaf) else {
        return false;
    };
    let cell = library.cell(cell_id);
    let variants = library.family_variants(cell.family());
    let position = variants.iter().position(|&v| v == cell_id).unwrap_or(0);
    for &bigger in &variants[position + 1..] {
        let name = library.cell(bigger).name();
        let Some(new_leaf) = design.leaf_by_name(name) else {
            continue;
        };
        if design.replace_instance_ref(module, inst, new_leaf).is_ok() {
            return true;
        }
    }
    false
}

/// Inserts an isolation buffer on `net` and moves every sink that can
/// afford `buffer_cost` of extra delay onto it. Returns `false` when no
/// sink can move (all critical) or fewer than two sinks exist.
fn try_isolate(
    design: &mut Design,
    module: ModuleId,
    net: NetId,
    library: &Library,
    constraints: &TimingConstraints,
    buffer_cost: Time,
) -> bool {
    let loads: Vec<(InstId, hb_netlist::PinSlot)> = design
        .module(module)
        .loads(net)
        .filter_map(|ep| match ep {
            Endpoint::Pin { inst, slot, .. } => Some((inst, slot)),
            Endpoint::Port(_) => None,
        })
        .collect();
    if loads.len() < 2 {
        return false;
    }
    // A sink can move if every net its instance drives has enough
    // settled budget to absorb the buffer.
    let mut movable: Vec<(InstId, hb_netlist::PinSlot)> = Vec::new();
    for &(inst, slot) in &loads {
        let mut budget = Time::INF;
        for (_, out_net) in design.module(module).instance(inst).conns() {
            if let Some(Endpoint::Pin { inst: d, .. }) = design.module(module).driver(out_net) {
                if d == inst {
                    if let Some(s) = constraints.net_slack(out_net) {
                        budget = budget.min(s);
                    }
                }
            }
        }
        if budget.is_finite() && budget > buffer_cost {
            movable.push((inst, slot));
        }
    }
    if movable.is_empty() || movable.len() == loads.len() {
        // Nothing movable, or everything is uncritical (buffering would
        // not help the critical sink because there is none).
        return false;
    }
    let Some(buf_leaf) = design.leaf_by_name("BUF_X4").or_else(|| {
        library
            .family_variants("BUF")
            .last()
            .and_then(|&c| design.leaf_by_name(library.cell(c).name()))
    }) else {
        return false;
    };
    let net_name = design.module(module).net(net).name().to_owned();
    let new_net = match design.add_net(module, format!("{net_name}__iso")) {
        Ok(n) => n,
        Err(_) => return false, // already isolated once
    };
    let buf = design
        .add_leaf_instance(module, format!("{net_name}__isobuf"), buf_leaf)
        .expect("name is fresh with the net");
    design
        .connect(module, buf, "A", net)
        .expect("library buffer has pin A");
    design
        .connect(module, buf, "Y", new_net)
        .expect("library buffer has pin Y");
    for (inst, slot) in movable {
        design.connect_slot(module, inst, slot, new_net);
    }
    true
}

#[cfg(test)]
mod tests {
    pub(super) fn probe_initial() {
        let lib = sc89();
        let (design, module, clocks, spec) = heavy_fanout_design();
        let a = Analyzer::new(&design, module, &lib, &clocks, spec).unwrap();
        let r = a.analyze();
        eprintln!("initial worst slack: {} (ok={})", r.worst_slack(), r.ok());
    }

    use super::*;
    use hb_cells::sc89;
    use hb_units::Transition;
    use hummingbird::EdgeSpec;

    /// A flop-to-flop stage whose middle inverter drives a heavy fanout:
    /// resizing (and possibly buffering) must rescue it at a period that
    /// the X1 drive misses.
    fn heavy_fanout_design() -> (Design, ModuleId, ClockSet, Spec) {
        let lib = sc89();
        let mut d = Design::new("rs");
        lib.declare_into(&mut d).unwrap();
        let m = d.add_module("top").unwrap();
        let ck = d.add_net(m, "ck").unwrap();
        d.add_port(m, "ck", hb_netlist::PinDir::Input, ck).unwrap();
        let input = d.add_net(m, "in").unwrap();
        d.add_port(m, "in", hb_netlist::PinDir::Input, input)
            .unwrap();
        let inv = d.leaf_by_name("INV_X1").unwrap();
        let dff = d.leaf_by_name("DFF").unwrap();

        let q0 = d.add_net(m, "q0").unwrap();
        let ff0 = d.add_leaf_instance(m, "ff0", dff).unwrap();
        d.connect(m, ff0, "D", input).unwrap();
        d.connect(m, ff0, "CK", ck).unwrap();
        d.connect(m, ff0, "Q", q0).unwrap();

        // A 4-deep chain where every stage also drives 12 side loads.
        let mut prev = q0;
        for stage in 0..4 {
            let next = d.add_net(m, format!("c{stage}")).unwrap();
            let u = d.add_leaf_instance(m, format!("drv{stage}"), inv).unwrap();
            d.connect(m, u, "A", prev).unwrap();
            d.connect(m, u, "Y", next).unwrap();
            for k in 0..12 {
                let side = d.add_net(m, format!("side{stage}_{k}")).unwrap();
                let s = d
                    .add_leaf_instance(m, format!("load{stage}_{k}"), inv)
                    .unwrap();
                d.connect(m, s, "A", next).unwrap();
                d.connect(m, s, "Y", side).unwrap();
                // Terminate each side branch in a flop so it is observed.
                let sq = d.add_net(m, format!("sideq{stage}_{k}")).unwrap();
                let sf = d
                    .add_leaf_instance(m, format!("sideff{stage}_{k}"), dff)
                    .unwrap();
                d.connect(m, sf, "D", side).unwrap();
                d.connect(m, sf, "CK", ck).unwrap();
                d.connect(m, sf, "Q", sq).unwrap();
            }
            prev = next;
        }
        let qn = d.add_net(m, "qn").unwrap();
        let ffn = d.add_leaf_instance(m, "ffn", dff).unwrap();
        d.connect(m, ffn, "D", prev).unwrap();
        d.connect(m, ffn, "CK", ck).unwrap();
        d.connect(m, ffn, "Q", qn).unwrap();
        d.set_top(m).unwrap();

        let mut clocks = ClockSet::new();
        clocks
            .add_clock("ck", Time::from_ps(2_900), Time::ZERO, Time::from_ps(1_450))
            .unwrap();
        let spec = Spec::new().clock_port("ck", "ck").input_arrival(
            "in",
            EdgeSpec::new("ck", Transition::Rise),
            Time::ZERO,
        );
        (d, m, clocks, spec)
    }

    #[test]
    fn loop_fixes_heavy_fanout() {
        let lib = sc89();
        let (mut design, module, clocks, spec) = heavy_fanout_design();
        // Confirm the initial design fails.
        {
            let a = Analyzer::new(&design, module, &lib, &clocks, spec.clone()).unwrap();
            assert!(!a.analyze().ok(), "X1 drive into 13 loads must miss 2.9 ns");
        }
        let outcome = optimize(
            &mut design,
            module,
            &lib,
            &clocks,
            &spec,
            ResynthOptions::default(),
        )
        .unwrap();
        assert!(outcome.met, "redesign must close timing: {outcome:?}");
        assert!(outcome.resizes > 0, "expected at least one resize");
        assert!(
            outcome.area_after > outcome.area_before,
            "speed is bought with area: {outcome:?}"
        );
        assert!(outcome.edits >= outcome.resizes);
        // Slack history is non-trivial and ends no worse than it began.
        let first = outcome.worst_slack_history.first().unwrap();
        let last = outcome.worst_slack_history.last().unwrap();
        assert!(last > first, "timing improved: {outcome:?}");
        design.validate().unwrap();
    }

    #[test]
    fn loop_reports_failure_when_hopeless() {
        // A single inverter cannot meet a 100 ps clock no matter the
        // drive: the loop must terminate and report failure.
        let lib = sc89();
        let mut d = Design::new("hopeless");
        lib.declare_into(&mut d).unwrap();
        let m = d.add_module("top").unwrap();
        let ck = d.add_net(m, "ck").unwrap();
        let input = d.add_net(m, "in").unwrap();
        let w = d.add_net(m, "w").unwrap();
        let q = d.add_net(m, "q").unwrap();
        d.add_port(m, "ck", hb_netlist::PinDir::Input, ck).unwrap();
        d.add_port(m, "in", hb_netlist::PinDir::Input, input)
            .unwrap();
        d.add_port(m, "q", hb_netlist::PinDir::Output, q).unwrap();
        let inv = d.leaf_by_name("INV_X1").unwrap();
        let dff = d.leaf_by_name("DFF").unwrap();
        let u = d.add_leaf_instance(m, "u", inv).unwrap();
        d.connect(m, u, "A", input).unwrap();
        d.connect(m, u, "Y", w).unwrap();
        let ff = d.add_leaf_instance(m, "ff", dff).unwrap();
        d.connect(m, ff, "D", w).unwrap();
        d.connect(m, ff, "CK", ck).unwrap();
        d.connect(m, ff, "Q", q).unwrap();
        d.set_top(m).unwrap();
        let mut clocks = ClockSet::new();
        clocks
            .add_clock("ck", Time::from_ps(100), Time::ZERO, Time::from_ps(50))
            .unwrap();
        let spec = Spec::new().clock_port("ck", "ck").input_arrival(
            "in",
            EdgeSpec::new("ck", Transition::Rise),
            Time::ZERO,
        );

        let outcome = optimize(&mut d, m, &lib, &clocks, &spec, ResynthOptions::default()).unwrap();
        assert!(!outcome.met);
        assert!(outcome.iterations <= ResynthOptions::default().max_iterations);
        d.validate().unwrap();
    }
}

#[cfg(test)]
mod probe {
    use super::tests::*;
    #[test]
    #[ignore]
    fn print_initial_slack() {
        probe_initial();
    }
}
