//! Enumeration of all clock edges within one overall period.

use std::collections::HashMap;
use std::fmt;

use hb_units::{Sense, Time, Transition};

use crate::clock::{ClockId, ClockSet};

/// Handle to one clock-generator edge occurrence within the overall
/// period.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub(crate) u32);

impl EdgeId {
    /// Creates an id from a raw index.
    ///
    /// Intended for test fixtures and serialization layers that mirror a
    /// timeline's own numbering; a fabricated id panics on first use
    /// against the wrong timeline.
    pub fn from_raw(index: u32) -> EdgeId {
        EdgeId(index)
    }

    /// Returns the raw index (the rank of the edge in time order).
    pub fn as_raw(self) -> u32 {
        self.0
    }

    pub(crate) fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// One edge occurrence: which clock, which direction, and when (within
/// `[0, overall_period)`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClockEdge {
    /// The clock that produces the edge.
    pub clock: ClockId,
    /// Rising or falling.
    pub polarity: Transition,
    /// The time of the edge within the overall period.
    pub time: Time,
}

impl fmt::Display for ClockEdge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} @ {}", self.clock, self.polarity, self.time)
    }
}

/// One control pulse as seen by a synchronising element: a leading edge
/// (output assertion in the ideal system for transparent latches), a
/// trailing edge (input closure), and the pulse width.
///
/// An element clocked at `n×` the overall frequency sees `n` pulses per
/// overall period; the paper represents such an element by `n` parallel
/// replicas, one per pulse.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Pulse {
    /// The pulse index within the overall period, `0..n`.
    pub index: u32,
    /// The edge that starts the enabled window.
    pub lead: EdgeId,
    /// The edge that ends the enabled window.
    pub trail: EdgeId,
    /// The window width.
    pub width: Time,
}

/// All clock edges of a [`ClockSet`] within one overall period, sorted by
/// time.
#[derive(Clone, Debug)]
pub struct Timeline {
    overall: Time,
    edges: Vec<ClockEdge>,
    by_key: HashMap<(ClockId, Transition, Time), EdgeId>,
    /// Pulses per clock for the enabled-high phase, indexed by clock.
    pulses_high: Vec<Vec<Pulse>>,
    /// Pulses per clock for the enabled-low phase.
    pulses_low: Vec<Vec<Pulse>>,
}

impl Timeline {
    pub(crate) fn build(set: &ClockSet) -> Timeline {
        let overall = set.overall_period();
        let mut edges = Vec::new();
        for (id, clock) in set.clocks() {
            let n = overall / clock.period();
            for k in 0..n {
                for (polarity, offset) in [
                    (Transition::Rise, clock.rise()),
                    (Transition::Fall, clock.fall()),
                ] {
                    edges.push(ClockEdge {
                        clock: id,
                        polarity,
                        time: (offset + clock.period() * k).rem_euclid(overall),
                    });
                }
            }
        }
        edges.sort_by_key(|e| (e.time, e.clock, e.polarity));
        let by_key = edges
            .iter()
            .enumerate()
            .map(|(i, e)| ((e.clock, e.polarity, e.time), EdgeId(i as u32)))
            .collect();
        let mut timeline = Timeline {
            overall,
            edges,
            by_key,
            pulses_high: Vec::new(),
            pulses_low: Vec::new(),
        };
        for (id, clock) in set.clocks() {
            debug_assert_eq!(id.idx(), timeline.pulses_high.len());
            let n = overall / clock.period();
            let mut high = Vec::with_capacity(n as usize);
            let mut low = Vec::with_capacity(n as usize);
            for k in 0..n {
                let rise_t = (clock.rise() + clock.period() * k).rem_euclid(overall);
                let fall_after_rise = (rise_t + clock.high_width()).rem_euclid(overall);
                high.push(Pulse {
                    index: k as u32,
                    lead: timeline
                        .find_edge(id, Transition::Rise, rise_t)
                        .expect("rise edge exists"),
                    trail: timeline
                        .find_edge(id, Transition::Fall, fall_after_rise)
                        .expect("fall edge exists"),
                    width: clock.high_width(),
                });
                let fall_t = (clock.fall() + clock.period() * k).rem_euclid(overall);
                let rise_after_fall = (fall_t + clock.low_width()).rem_euclid(overall);
                low.push(Pulse {
                    index: k as u32,
                    lead: timeline
                        .find_edge(id, Transition::Fall, fall_t)
                        .expect("fall edge exists"),
                    trail: timeline
                        .find_edge(id, Transition::Rise, rise_after_fall)
                        .expect("rise edge exists"),
                    width: clock.low_width(),
                });
            }
            timeline.pulses_high.push(high);
            timeline.pulses_low.push(low);
        }
        timeline
    }

    /// The overall period (LCM of all clock periods).
    pub fn overall_period(&self) -> Time {
        self.overall
    }

    /// Iterates over `(id, edge)` pairs in time order.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, &ClockEdge)> {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, e)| (EdgeId(i as u32), e))
    }

    /// The number of edges in one overall period.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Returns an edge.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this timeline.
    pub fn edge(&self, id: EdgeId) -> &ClockEdge {
        &self.edges[id.idx()]
    }

    /// The time of an edge, within `[0, overall_period)`.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this timeline.
    pub fn edge_time(&self, id: EdgeId) -> Time {
        self.edges[id.idx()].time
    }

    /// Finds the edge of `clock` with the given polarity at time `time`
    /// (normalized into the overall period).
    pub fn find_edge(&self, clock: ClockId, polarity: Transition, time: Time) -> Option<EdgeId> {
        self.by_key
            .get(&(clock, polarity, time.rem_euclid(self.overall)))
            .copied()
    }

    /// The control pulses of `clock` for an element whose control is
    /// enabled while the clock is high ([`Sense::Positive`]) or low
    /// ([`Sense::Negative`]).
    ///
    /// # Panics
    ///
    /// Panics on [`Sense::NonUnate`]: the paper's assumptions require
    /// every control signal to be a monotonic function of its clock.
    pub fn pulses(&self, clock: ClockId, control_sense: Sense) -> &[Pulse] {
        match control_sense {
            Sense::Positive => &self.pulses_high[clock.idx()],
            Sense::Negative => &self.pulses_low[clock.idx()],
            Sense::NonUnate => {
                panic!("control signals must be monotonic functions of one clock")
            }
        }
    }

    /// The ideal path constraint `D_p` between an assertion edge and a
    /// closure edge: the elapsed time from the assertion to the *very
    /// next* occurrence of the closure edge, in `(0, overall_period]`.
    ///
    /// For a path launched and captured by the same edge this yields
    /// exactly one overall period (the paper's special case b in
    /// Section 4).
    pub fn ideal_constraint(&self, assert_edge: EdgeId, close_edge: EdgeId) -> Time {
        (self.edge_time(close_edge) - self.edge_time(assert_edge)).rem_euclid_end(self.overall)
    }
}

impl fmt::Display for Timeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "timeline (overall period {}):", self.overall)?;
        for (id, edge) in self.edges() {
            writeln!(f, "  {id}: {edge}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ClockSet;

    fn two_phase() -> ClockSet {
        let mut set = ClockSet::new();
        set.add_clock("phi1", Time::from_ns(100), Time::ZERO, Time::from_ns(40))
            .unwrap();
        set.add_clock(
            "phi2",
            Time::from_ns(100),
            Time::from_ns(50),
            Time::from_ns(90),
        )
        .unwrap();
        set
    }

    #[test]
    fn edges_are_sorted() {
        let set = two_phase();
        let tl = set.timeline();
        let times: Vec<i64> = tl.edges().map(|(_, e)| e.time.as_ps()).collect();
        assert_eq!(times, vec![0, 40_000, 50_000, 90_000]);
        let mut sorted = times.clone();
        sorted.sort();
        assert_eq!(times, sorted);
    }

    #[test]
    fn multirate_replication() {
        let mut set = ClockSet::new();
        let slow = set
            .add_clock("slow", Time::from_ns(100), Time::ZERO, Time::from_ns(50))
            .unwrap();
        let fast = set
            .add_clock(
                "fast",
                Time::from_ns(25),
                Time::from_ns(5),
                Time::from_ns(15),
            )
            .unwrap();
        let tl = set.timeline();
        assert_eq!(tl.overall_period(), Time::from_ns(100));
        // fast contributes 4 pulses -> 8 edges; slow contributes 2.
        assert_eq!(tl.edge_count(), 10);
        assert_eq!(tl.pulses(fast, Sense::Positive).len(), 4);
        assert_eq!(tl.pulses(slow, Sense::Positive).len(), 1);
        let p1 = tl.pulses(fast, Sense::Positive)[1];
        assert_eq!(tl.edge_time(p1.lead), Time::from_ns(30));
        assert_eq!(tl.edge_time(p1.trail), Time::from_ns(40));
        assert_eq!(p1.width, Time::from_ns(10));
    }

    #[test]
    fn low_phase_pulses_wrap() {
        let set = two_phase();
        let tl = set.timeline();
        let phi1 = ClockId(0);
        let low = tl.pulses(phi1, Sense::Negative);
        assert_eq!(low.len(), 1);
        // Low window: 40 ns .. 100 ns (wraps to next rise at 0 = 100).
        assert_eq!(tl.edge_time(low[0].lead), Time::from_ns(40));
        assert_eq!(tl.edge_time(low[0].trail), Time::ZERO);
        assert_eq!(low[0].width, Time::from_ns(60));
    }

    #[test]
    fn ideal_constraints() {
        let set = two_phase();
        let tl = set.timeline();
        let phi1_rise = tl
            .find_edge(ClockId(0), Transition::Rise, Time::ZERO)
            .unwrap();
        let phi2_fall = tl
            .find_edge(ClockId(1), Transition::Fall, Time::from_ns(90))
            .unwrap();
        // Leading phi1 edge to next phi2 trailing edge: 90 ns.
        assert_eq!(tl.ideal_constraint(phi1_rise, phi2_fall), Time::from_ns(90));
        // Reverse direction wraps: 10 ns.
        assert_eq!(tl.ideal_constraint(phi2_fall, phi1_rise), Time::from_ns(10));
        // Same edge: exactly one overall period.
        assert_eq!(
            tl.ideal_constraint(phi1_rise, phi1_rise),
            Time::from_ns(100)
        );
    }

    #[test]
    fn find_edge_normalizes() {
        let set = two_phase();
        let tl = set.timeline();
        let e = tl.find_edge(ClockId(0), Transition::Rise, Time::from_ns(100));
        assert!(e.is_some(), "time is taken modulo the overall period");
        assert_eq!(
            tl.find_edge(ClockId(0), Transition::Rise, Time::from_ns(1)),
            None
        );
    }

    #[test]
    #[should_panic(expected = "monotonic")]
    fn non_unate_control_panics() {
        let set = two_phase();
        let tl = set.timeline();
        let _ = tl.pulses(ClockId(0), Sense::NonUnate);
    }

    #[test]
    fn display_lists_edges() {
        let set = two_phase();
        let tl = set.timeline();
        let text = tl.to_string();
        assert!(text.contains("overall period 100ns"));
        assert!(text.contains("e0"));
    }
}
