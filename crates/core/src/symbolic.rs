//! Parametric (what-if) slack analysis: slack as a piecewise-linear
//! function of the base clock period.
//!
//! Every quantity the numeric engine manipulates is either a *cell
//! constant* (arc delays, setup/hold, control-path delays, boundary
//! offsets) or a *clock-derived time* (edge positions, pulse widths,
//! pass-window positions) — and every clock-derived time scales
//! *linearly* when the whole waveform set is stretched. So instead of
//! re-running the sweeps per candidate period, this module runs the
//! multi-pass analysis **once** with arrival/required times represented
//! as affine expressions `a + b·t` in a grid parameter `t`, mirroring
//! the numeric engine operation for operation:
//!
//! * the scaling lattice: with `g = gcd(overall period, edge times)`,
//!   any uniform scale that keeps the waveforms integral maps the
//!   overall period `T₀` to `stride·k` where `stride = T₀/g` and
//!   `k ∈ [1, k_max]` (nominal at `k = g`). Pass planning is scale
//!   invariant (every planning decision is an order comparison of
//!   quantities that scale together), so the nominal `(cluster, pass)`
//!   schedule is reused verbatim;
//! * affine closure: max/min of two affine functions is affine on each
//!   side of their crossing. Each comparison is *decided* on the
//!   current parameter region; when the outcome is not uniform the
//!   region is split at the switch point and the remainder re-queued.
//!   Integer division (Algorithm 1's partial transfers) splits the
//!   region into residue classes so that the floored quotient is again
//!   affine;
//! * the result is a [`ParametricSlack`]: a partition of a served
//!   period window `[stride·k_lo, stride·k_max]` into regions, each
//!   carrying exact affine slack expressions for every terminal and
//!   net. Evaluating them at a concrete grid period is
//!   **bit-identical** to a cold numeric analysis at that period, and
//!   the minimum feasible period drops out of the breakpoint structure
//!   with no further sweeps.
//!
//! Carving is *budgeted and nominal-anchored*. Feasible stretches of
//! the grid settle in a handful of wide regions, while infeasible
//! stretches force the full transfer schedule and fragment into
//! residue classes — so carving cost tracks how much infeasible ground
//! must be covered, and the served domain is whatever contiguous run
//! of grid points around the nominal period fits the integer work
//! budgets: a cheap top-feasibility probe decides between a full
//! top-down carve (max-heap on the span's largest multiplier, stopping
//! once the nominal period and the sharp feasibility boundary are
//! interior to the covered suffix) and a narrow anchor window, after
//! which the domain floor is pushed down in widening chunks until the
//! point just below the minimum feasible period is served. Queries
//! outside the served domain are refused rather than answered
//! approximately, and expensive designs shrink their domain rather
//! than failing the build or going quadratic.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};
use std::fmt;
use std::rc::Rc;
use std::sync::OnceLock;

use hb_netlist::NetId;
use hb_obs::{Counter, Histogram};
use hb_sta::ClusterId;
use hb_units::{RiseFall, Sense, Time};

use crate::analysis::Prepared;
use crate::engine::WorkItem;
use crate::report::TerminalKind;
use crate::sync::Replica;

/// Work budget for the main top-down carve, in item-evaluations (one
/// unit = one `(cluster, pass)` item visited by one symbolic slack
/// view). Exhausting a budget shrinks the served domain rather than
/// failing the build.
const CARVE_WORK: u64 = 3_000_000;

/// Additional budget for the nominal anchor window, entered when the
/// top-down carve could not connect the window top to the nominal
/// period (the final singleton run at the nominal point itself is
/// budget-exempt, so a table is always produced).
const ANCHOR_WORK: u64 = 600_000;

/// Grid points above the nominal period carved in anchor mode.
const ANCHOR_SPAN: i64 = 63;

/// Additional budget for the downward extension walking the domain
/// floor in widening chunks until the feasibility boundary is interior
/// to the served domain.
const PROBE_WORK: u64 = 1_200_000;

/// Largest downward-extension chunk, bounding how far past the
/// feasibility boundary a single chunk can overshoot.
const CHUNK_CAP: i64 = 1_024;

/// Hard cap on stored regions — a memory guard (each region stores a
/// slack expression per net), not a failure mode: carving simply stops
/// and the served domain shrinks.
const REGION_CAP: usize = 4_096;

/// Largest number of grid points in the analysis window. Designs whose
/// scaling lattice is finer than this get a window ending at `k_max`
/// rather than starting at `k = 1`.
const POINT_CAP: i64 = 1 << 20;

/// The largest representable overall period, mirroring the clock-set
/// builder's cap (`Time::from_us(1000)`).
const MAX_OVERALL_PS: i64 = 1_000_000_000;

struct SymObs {
    build: Histogram,
    builds: Counter,
    regions: Counter,
}

fn sym_obs() -> &'static SymObs {
    static OBS: OnceLock<SymObs> = OnceLock::new();
    OBS.get_or_init(|| {
        let g = hb_obs::global();
        SymObs {
            build: g.histogram(
                "hb_symbolic_build_nanoseconds",
                "wall time of one parametric (symbolic) slack build",
            ),
            builds: g.counter(
                "hb_symbolic_builds_total",
                "parametric slack builds completed",
            ),
            regions: g.counter(
                "hb_symbolic_regions_total",
                "parameter regions produced across all parametric builds",
            ),
        }
    })
}

// ---------------------------------------------------------------------------
// Affine expressions and symbolic times
// ---------------------------------------------------------------------------

/// An affine time expression: `a + b·t` picoseconds, `t` the grid
/// parameter of the enclosing region.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct Aff {
    a: i64,
    b: i64,
}

impl Aff {
    const ZERO: Aff = Aff { a: 0, b: 0 };

    /// A constant expression.
    fn cst(ps: i64) -> Aff {
        Aff { a: ps, b: 0 }
    }

    /// The value at parameter `t`.
    fn eval(self, t: i64) -> i64 {
        self.a + self.b * t
    }
}

impl std::ops::Add for Aff {
    type Output = Aff;
    fn add(self, rhs: Aff) -> Aff {
        Aff {
            a: self.a + rhs.a,
            b: self.b + rhs.b,
        }
    }
}

impl std::ops::Sub for Aff {
    type Output = Aff;
    fn sub(self, rhs: Aff) -> Aff {
        Aff {
            a: self.a - rhs.a,
            b: self.b - rhs.b,
        }
    }
}

/// A symbolic time: the two saturation sentinels are kept out-of-band
/// so finite arithmetic stays exact affine arithmetic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Sym {
    NegInf,
    Fin(Aff),
    Inf,
}

/// Mirror of [`Time::saturating_add`] with a constant right-hand side.
fn sadd(x: Sym, c: Time) -> Sym {
    if matches!(x, Sym::NegInf) || c <= Time::NEG_INF {
        return Sym::NegInf;
    }
    if matches!(x, Sym::Inf) || c >= Time::INF {
        return Sym::Inf;
    }
    let Sym::Fin(f) = x else { unreachable!() };
    Sym::Fin(f + Aff::cst(c.as_ps()))
}

/// Mirror of [`Time::saturating_sub`] with a constant right-hand side.
fn ssub_const(x: Sym, c: Time) -> Sym {
    if c >= Time::INF {
        return Sym::NegInf;
    }
    if c <= Time::NEG_INF {
        return Sym::Inf;
    }
    match x {
        Sym::Inf => Sym::Inf,
        Sym::NegInf => Sym::NegInf,
        Sym::Fin(f) => Sym::Fin(f - Aff::cst(c.as_ps())),
    }
}

/// Mirror of [`Time::saturating_sub`] between two symbolic times.
fn ssub(x: Sym, y: Sym) -> Sym {
    match y {
        Sym::Inf => Sym::NegInf,
        Sym::NegInf => Sym::Inf,
        Sym::Fin(g) => match x {
            Sym::Inf => Sym::Inf,
            Sym::NegInf => Sym::NegInf,
            Sym::Fin(f) => Sym::Fin(f - g),
        },
    }
}

/// The concrete time of a symbolic time at parameter `t`.
fn eval_sym(s: Sym, t: i64) -> Time {
    match s {
        Sym::NegInf => Time::NEG_INF,
        Sym::Inf => Time::INF,
        Sym::Fin(f) => Time::from_ps(f.eval(t)),
    }
}

// ---------------------------------------------------------------------------
// Parameter regions and the decision context
// ---------------------------------------------------------------------------

/// A contiguous arithmetic progression of grid points: the multipliers
/// `k = r + m·t` for `t ∈ [t_lo, t_hi]` (period `= stride·k`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Span {
    r: i64,
    m: i64,
    t_lo: i64,
    t_hi: i64,
}

/// Raised when an integer division forces a residue-class split: the
/// current region has been re-queued in finer pieces and the analysis
/// of this region must be abandoned.
struct Restart;

/// The decision context of one region run: the (shrinking) parameter
/// span plus the queue that receives split-off remainders.
struct Ctx<'w> {
    /// Grid granularity: every clock-derived time is `u·g` ps nominal.
    g: i64,
    span: Span,
    deferred: &'w mut Vec<Span>,
}

impl Ctx<'_> {
    /// Lifts a clock-derived (lattice) time to its affine form:
    /// `q = u·g` nominal becomes `u·k = u·r + u·m·t`.
    fn lin(&self, q: Time) -> Aff {
        let ps = q.as_ps();
        debug_assert_eq!(ps % self.g, 0, "time {ps} ps is off the clock lattice");
        let u = ps / self.g;
        Aff {
            a: u * self.span.r,
            b: u * self.span.m,
        }
    }

    /// Decides a threshold predicate of the affine value `d` uniformly
    /// over the span: if the predicate flips inside the span, the span
    /// is split at the (unique, by monotonicity) switch point and the
    /// far side deferred.
    fn holds(&mut self, d: Aff, pred: impl Fn(i64) -> bool) -> bool {
        let (lo, hi) = (self.span.t_lo, self.span.t_hi);
        let first = pred(d.eval(lo));
        if lo == hi || pred(d.eval(hi)) == first {
            return first;
        }
        let (mut good, mut bad) = (lo, hi);
        while bad - good > 1 {
            let mid = good + (bad - good) / 2;
            if pred(d.eval(mid)) == first {
                good = mid;
            } else {
                bad = mid;
            }
        }
        self.deferred.push(Span {
            t_lo: bad,
            ..self.span
        });
        self.span.t_hi = good;
        first
    }

    fn ge_zero(&mut self, d: Aff) -> bool {
        self.holds(d, |v| v >= 0)
    }

    fn gt_zero(&mut self, d: Aff) -> bool {
        self.holds(d, |v| v > 0)
    }

    fn le_zero(&mut self, d: Aff) -> bool {
        self.holds(d, |v| v <= 0)
    }

    /// Mirror of `Time::max` on finite values.
    fn max_aff(&mut self, x: Aff, y: Aff) -> Aff {
        if x == y {
            return x;
        }
        if self.ge_zero(x - y) {
            x
        } else {
            y
        }
    }

    /// Mirror of `Time::min` on finite values.
    fn min_aff(&mut self, x: Aff, y: Aff) -> Aff {
        if x == y {
            return x;
        }
        if self.le_zero(x - y) {
            x
        } else {
            y
        }
    }

    /// Mirror of `Time::max` (value-wise) on symbolic times.
    fn smax(&mut self, x: Sym, y: Sym) -> Sym {
        match (x, y) {
            (Sym::Inf, _) | (_, Sym::Inf) => Sym::Inf,
            (Sym::NegInf, o) | (o, Sym::NegInf) => o,
            (Sym::Fin(a), Sym::Fin(b)) => {
                if a == b || self.ge_zero(a - b) {
                    x
                } else {
                    y
                }
            }
        }
    }

    /// Mirror of `Time::min` (value-wise) on symbolic times.
    fn smin(&mut self, x: Sym, y: Sym) -> Sym {
        match (x, y) {
            (Sym::NegInf, _) | (_, Sym::NegInf) => Sym::NegInf,
            (Sym::Inf, o) | (o, Sym::Inf) => o,
            (Sym::Fin(a), Sym::Fin(b)) => {
                if a == b || self.le_zero(a - b) {
                    x
                } else {
                    y
                }
            }
        }
    }

    /// Mirror of [`Sense::propagate`].
    fn propagate(
        &mut self,
        sense: Sense,
        input: RiseFall<Sym>,
        delay: RiseFall<Time>,
    ) -> RiseFall<Sym> {
        match sense {
            Sense::Positive => {
                RiseFall::new(sadd(input.rise, delay.rise), sadd(input.fall, delay.fall))
            }
            Sense::Negative => {
                let sw = input.swapped();
                RiseFall::new(sadd(sw.rise, delay.rise), sadd(sw.fall, delay.fall))
            }
            Sense::NonUnate => {
                let w = self.smax(input.rise, input.fall);
                RiseFall::new(sadd(w, delay.rise), sadd(w, delay.fall))
            }
        }
    }

    /// Mirror of `hb_sta::analysis::required_backward`.
    fn required_backward(
        &mut self,
        sense: Sense,
        req_out: RiseFall<Sym>,
        delay: RiseFall<Time>,
    ) -> RiseFall<Sym> {
        let minus = RiseFall::new(
            ssub_const(req_out.rise, delay.rise),
            ssub_const(req_out.fall, delay.fall),
        );
        match sense {
            Sense::Positive => minus,
            Sense::Negative => minus.swapped(),
            Sense::NonUnate => RiseFall::splat(self.smin(minus.rise, minus.fall)),
        }
    }

    /// Mirror of `RiseFall::worst`.
    fn worst(&mut self, rf: RiseFall<Sym>) -> Sym {
        self.smax(rf.rise, rf.fall)
    }

    /// Mirror of `scalar_slack(required ⊖ ready)`.
    fn scalar_slack(&mut self, req: RiseFall<Sym>, rdy: RiseFall<Sym>) -> Sym {
        let r = ssub(req.rise, rdy.rise);
        let f = ssub(req.fall, rdy.fall);
        self.smin(r, f)
    }

    /// Mirror of the algorithms' `s > ZERO && s.is_finite()` gate,
    /// returning the finite expression when it passes.
    fn positive_fin(&mut self, s: Sym) -> Option<Aff> {
        match s {
            Sym::NegInf | Sym::Inf => None,
            Sym::Fin(f) => self.gt_zero(f).then_some(f),
        }
    }

    /// Mirror of truncating `Time / i64` for a value known positive on
    /// the span (so truncation equals floor). When the quotient is not
    /// affine on the span, the span is split into `d` residue classes
    /// (on each of which it is) and the run restarts.
    fn div_pos(&mut self, x: Aff, d: i64) -> Result<Aff, Restart> {
        debug_assert!(d >= 2);
        if x.b % d == 0 {
            return Ok(Aff {
                a: x.a.div_euclid(d),
                b: x.b / d,
            });
        }
        let span = self.span;
        if span.t_lo == span.t_hi {
            return Ok(Aff::cst(x.eval(span.t_lo).div_euclid(d)));
        }
        for off in 0..d {
            let t0 = span.t_lo + off;
            if t0 > span.t_hi {
                break;
            }
            self.deferred.push(Span {
                r: span.r + span.m * t0,
                m: span.m * d,
                t_lo: 0,
                t_hi: (span.t_hi - t0) / d,
            });
        }
        Err(Restart)
    }
}

// ---------------------------------------------------------------------------
// Symbolic replica offsets (mirror of `Replica`'s offset algebra)
// ---------------------------------------------------------------------------

/// The movable-offset model of one replica with the pulse width lifted
/// to an affine expression (widths scale with the clocks) and `O_dx`
/// free to become affine through partial transfers.
struct SymReplica {
    transparent: bool,
    width: Aff,
    setup: i64,
    d_dx: i64,
    /// `O_xc = O_ac + D_cx` — constant: `O_ac` never moves under
    /// Algorithm 1 and the control-path delay does not scale.
    o_xc: i64,
    out_extra: i64,
    o_dx: Aff,
}

impl SymReplica {
    fn new(ctx: &Ctx<'_>, r: &Replica) -> SymReplica {
        let t = r.timing();
        SymReplica {
            transparent: r.is_transparent(),
            width: ctx.lin(t.width),
            setup: t.setup.as_ps(),
            d_dx: t.d_dx.as_ps(),
            o_xc: (t.cdel + t.d_cx).as_ps(),
            out_extra: t.out_extra.as_ps(),
            o_dx: if r.is_transparent() {
                Aff::cst(-t.d_dx.as_ps())
            } else {
                Aff::ZERO
            },
        }
    }

    fn o_zd(&self) -> Aff {
        if self.transparent {
            self.width + self.o_dx + Aff::cst(self.d_dx)
        } else {
            Aff::ZERO
        }
    }

    fn output_assert_offset(&self, ctx: &mut Ctx<'_>) -> Aff {
        let m = ctx.max_aff(Aff::cst(self.o_xc), self.o_zd());
        m + Aff::cst(self.out_extra)
    }

    fn input_close_offset(&self, ctx: &mut Ctx<'_>) -> Aff {
        let alt = if self.transparent {
            self.o_dx
        } else {
            Aff::ZERO
        };
        ctx.min_aff(Aff::cst(-self.setup), alt)
    }

    fn forward_room(&self) -> Aff {
        if self.transparent {
            self.o_zd()
        } else {
            Aff::ZERO
        }
    }

    fn backward_room(&self) -> Aff {
        if self.transparent {
            Aff::cst(-self.d_dx) - self.o_dx
        } else {
            Aff::ZERO
        }
    }

    fn transfer_forward(&mut self, ctx: &mut Ctx<'_>, amount: Aff) -> Aff {
        let clamped = ctx.min_aff(amount, self.forward_room());
        let moved = ctx.max_aff(clamped, Aff::ZERO);
        self.o_dx = self.o_dx - moved;
        moved
    }

    fn transfer_backward(&mut self, ctx: &mut Ctx<'_>, amount: Aff) -> Aff {
        let clamped = ctx.min_aff(amount, self.backward_room());
        let moved = ctx.max_aff(clamped, Aff::ZERO);
        self.o_dx = self.o_dx + moved;
        moved
    }
}

// ---------------------------------------------------------------------------
// Symbolic sweeps over the nominal `(cluster, pass)` schedule
// ---------------------------------------------------------------------------

struct SymTables {
    ready: Vec<RiseFall<Sym>>,
    required: Vec<RiseFall<Sym>>,
}

/// Memo of swept tables per `(cluster, pass)` pair, keyed by the
/// dynamic seed signature — the symbolic twin of `SlackCache`. Entries
/// stay valid as the span shrinks (an affine identity on a region
/// restricts to any subregion).
type Memo = HashMap<(u32, u32), (Vec<Aff>, Rc<SymTables>)>;

/// Mirror of `Engine::signature`.
fn item_signature(ctx: &Ctx<'_>, item: &WorkItem, offs: &[(Aff, Aff)]) -> Vec<Aff> {
    let mut sig =
        Vec::with_capacity(item.ready_replica_seeds.len() + item.close_replica_seeds.len());
    for s in &item.ready_replica_seeds {
        sig.push(ctx.lin(s.base) + offs[s.k as usize].0);
    }
    for s in &item.close_replica_seeds {
        sig.push(ctx.lin(s.base) + offs[s.k as usize].1);
    }
    sig
}

/// Mirror of `Engine::compute_item`: seed and sweep one shard.
fn compute_item(
    ctx: &mut Ctx<'_>,
    prep: &Prepared<'_>,
    item: &WorkItem,
    offs: &[(Aff, Aff)],
) -> SymTables {
    let shard = prep.engine.sharded.shard(ClusterId::from_raw(item.cluster));
    let n = shard.len();

    let mut ready = vec![RiseFall::splat(Sym::NegInf); n];
    for s in &item.ready_replica_seeds {
        let at = Sym::Fin(ctx.lin(s.base) + offs[s.k as usize].0);
        let merged = rf_max(ctx, ready[s.local as usize], RiseFall::splat(at));
        ready[s.local as usize] = merged;
    }
    for s in &item.ready_pi_seeds {
        let off = prep.pis[s.k as usize].offset;
        let at = Sym::Fin(ctx.lin(s.at - off) + Aff::cst(off.as_ps()));
        let merged = rf_max(ctx, ready[s.local as usize], RiseFall::splat(at));
        ready[s.local as usize] = merged;
    }
    // Forward sweep, mirroring `ClusterShard::sweep_ready_max`.
    for u in 0..n {
        let at = ready[u];
        if matches!(at.rise, Sym::NegInf) && matches!(at.fall, Sym::NegInf) {
            continue;
        }
        for arc in shard.fanout(u) {
            let out = ctx.propagate(arc.sense, at, arc.delay_max);
            let merged = rf_max(ctx, ready[arc.to as usize], out);
            ready[arc.to as usize] = merged;
        }
    }

    let mut required = vec![RiseFall::splat(Sym::Inf); n];
    for s in &item.close_replica_seeds {
        let at = Sym::Fin(ctx.lin(s.base) + offs[s.k as usize].1);
        let merged = rf_min(ctx, required[s.local as usize], RiseFall::splat(at));
        required[s.local as usize] = merged;
    }
    for s in &item.close_po_seeds {
        let off = prep.pos[s.k as usize].offset;
        let at = Sym::Fin(ctx.lin(s.at - off) + Aff::cst(off.as_ps()));
        let merged = rf_min(ctx, required[s.local as usize], RiseFall::splat(at));
        required[s.local as usize] = merged;
    }
    // Backward sweep, mirroring `ClusterShard::sweep_required`.
    for v in (0..n).rev() {
        let req_out = required[v];
        if matches!(req_out.rise, Sym::Inf) && matches!(req_out.fall, Sym::Inf) {
            continue;
        }
        for arc in shard.fanin(v) {
            let req_in = ctx.required_backward(arc.sense, req_out, arc.delay_max);
            let merged = rf_min(ctx, required[arc.from as usize], req_in);
            required[arc.from as usize] = merged;
        }
    }

    SymTables { ready, required }
}

fn rf_max(ctx: &mut Ctx<'_>, x: RiseFall<Sym>, y: RiseFall<Sym>) -> RiseFall<Sym> {
    let rise = ctx.smax(x.rise, y.rise);
    let fall = ctx.smax(x.fall, y.fall);
    RiseFall::new(rise, fall)
}

fn rf_min(ctx: &mut Ctx<'_>, x: RiseFall<Sym>, y: RiseFall<Sym>) -> RiseFall<Sym> {
    let rise = ctx.smin(x.rise, y.rise);
    let fall = ctx.smin(x.fall, y.fall);
    RiseFall::new(rise, fall)
}

/// One full multi-pass evaluation: the symbolic `SlackView`.
struct SymView {
    items: Vec<Rc<SymTables>>,
    replica_in: Vec<Sym>,
    replica_out: Vec<Sym>,
    pi_slack: Vec<Sym>,
    po_slack: Vec<Sym>,
}

/// Mirror of `Prepared::compute_slacks_sharded` (net slacks deferred —
/// they never steer Algorithm 1's control flow, so they are assembled
/// once from the final view instead of every cycle).
fn compute_view(
    ctx: &mut Ctx<'_>,
    prep: &Prepared<'_>,
    reps: &[SymReplica],
    memo: &mut Memo,
    work: &mut u64,
) -> SymView {
    *work += prep.engine.items.len() as u64 + 1;
    let mut offs: Vec<(Aff, Aff)> = Vec::with_capacity(reps.len());
    for r in reps {
        let assert = r.output_assert_offset(ctx);
        let close = r.input_close_offset(ctx);
        offs.push((assert, close));
    }

    let mut items: Vec<Rc<SymTables>> = Vec::with_capacity(prep.engine.items.len());
    for item in &prep.engine.items {
        let sig = item_signature(ctx, item, &offs);
        let key = (item.cluster, item.pass as u32);
        let hit = memo
            .get(&key)
            .and_then(|(s, t)| (s == &sig).then(|| t.clone()));
        let tables = match hit {
            Some(t) => t,
            None => {
                let t = Rc::new(compute_item(ctx, prep, item, &offs));
                memo.insert(key, (sig, t.clone()));
                t
            }
        };
        items.push(tables);
    }

    let mut view = SymView {
        items,
        replica_in: vec![Sym::Inf; reps.len()],
        replica_out: vec![Sym::Inf; reps.len()],
        pi_slack: vec![Sym::Inf; prep.pis.len()],
        po_slack: vec![Sym::Inf; prep.pos.len()],
    };
    for (i, item) in prep.engine.items.iter().enumerate() {
        let t = view.items[i].clone();
        for s in &item.close_replica_seeds {
            let k = s.k as usize;
            let close = Sym::Fin(ctx.lin(s.base) + offs[k].1);
            let arrive = ctx.worst(t.ready[s.local as usize]);
            let sl = ssub(close, arrive);
            view.replica_in[k] = ctx.smin(view.replica_in[k], sl);
        }
        for s in &item.ready_replica_seeds {
            let k = s.k as usize;
            let l = s.local as usize;
            let sl = ctx.scalar_slack(t.required[l], t.ready[l]);
            view.replica_out[k] = ctx.smin(view.replica_out[k], sl);
        }
        for s in &item.ready_pi_seeds {
            let k = s.k as usize;
            let l = s.local as usize;
            let sl = ctx.scalar_slack(t.required[l], t.ready[l]);
            view.pi_slack[k] = ctx.smin(view.pi_slack[k], sl);
        }
        for s in &item.close_po_seeds {
            let k = s.k as usize;
            let off = prep.pos[k].offset;
            let close = Sym::Fin(ctx.lin(s.at - off) + Aff::cst(off.as_ps()));
            let arrive = ctx.worst(t.ready[s.local as usize]);
            let sl = ssub(close, arrive);
            view.po_slack[k] = ctx.smin(view.po_slack[k], sl);
        }
    }
    view
}

/// Mirror of `SlackView::all_positive`, short-circuiting in the same
/// terminal order.
fn all_positive(ctx: &mut Ctx<'_>, view: &SymView) -> bool {
    let chain = view
        .replica_in
        .iter()
        .chain(&view.replica_out)
        .chain(&view.pi_slack)
        .chain(&view.po_slack);
    for &s in chain {
        let positive = match s {
            Sym::NegInf => false,
            Sym::Inf => true,
            Sym::Fin(f) => ctx.gt_zero(f),
        };
        if !positive {
            return false;
        }
    }
    true
}

/// Mirror of the per-item net-slack assembly of
/// `compute_slacks_sharded`, run once on the final view.
fn net_slacks(ctx: &mut Ctx<'_>, prep: &Prepared<'_>, view: &SymView) -> Vec<Sym> {
    let mut out = vec![Sym::Inf; prep.graph.node_count()];
    for (i, item) in prep.engine.items.iter().enumerate() {
        let t = &view.items[i];
        let shard = prep.engine.sharded.shard(ClusterId::from_raw(item.cluster));
        for (l, &net) in shard.nets().iter().enumerate() {
            let s = ctx.scalar_slack(t.required[l], t.ready[l]);
            let slot = out[net.as_raw() as usize];
            out[net.as_raw() as usize] = ctx.smin(slot, s);
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Algorithm 1, mirrored over one parameter region
// ---------------------------------------------------------------------------

/// The settled slack expressions of one parameter region.
#[derive(Clone, Debug)]
struct RegionSlack {
    span: Span,
    net_slack: Vec<Sym>,
    replica_in: Vec<Sym>,
    replica_out: Vec<Sym>,
    pi_slack: Vec<Sym>,
    po_slack: Vec<Sym>,
}

/// Runs the symbolic Algorithm 1 over `span`. Returns `None` when a
/// residue-class split restarted the region (its refinement is already
/// queued on `deferred`); otherwise the surviving (possibly shrunk)
/// region with its settled expressions.
fn run_region(
    prep: &Prepared<'_>,
    g: i64,
    span: Span,
    deferred: &mut Vec<Span>,
    work: &mut u64,
) -> Option<RegionSlack> {
    let mut ctx = Ctx { g, span, deferred };
    let mut reps: Vec<SymReplica> = prep
        .replicas
        .iter()
        .map(|r| SymReplica::new(&ctx, r))
        .collect();
    let cap = prep.options.max_cycles;
    let divisor = prep.options.partial_divisor.max(2);
    let mut memo: Memo = HashMap::new();
    let mut forward_cycles = 0usize;
    let mut backward_cycles = 0usize;

    let view = 'done: {
        // Iteration 1: complete forward slack transfer to a fixpoint.
        loop {
            let view = compute_view(&mut ctx, prep, &reps, &mut memo, work);
            if all_positive(&mut ctx, &view) {
                break 'done view;
            }
            let mut any = false;
            for (k, rep) in reps.iter_mut().enumerate() {
                if let Some(n_x) = ctx.positive_fin(view.replica_in[k]) {
                    let moved = rep.transfer_forward(&mut ctx, n_x);
                    if ctx.gt_zero(moved) {
                        any = true;
                    }
                }
            }
            if !any {
                break;
            }
            forward_cycles += 1;
            if forward_cycles >= cap {
                break;
            }
        }

        // Iteration 2: complete backward slack transfer to a fixpoint.
        loop {
            let view = compute_view(&mut ctx, prep, &reps, &mut memo, work);
            if all_positive(&mut ctx, &view) {
                break 'done view;
            }
            let mut any = false;
            for (k, rep) in reps.iter_mut().enumerate() {
                if let Some(n_y) = ctx.positive_fin(view.replica_out[k]) {
                    let moved = rep.transfer_backward(&mut ctx, n_y);
                    if ctx.gt_zero(moved) {
                        any = true;
                    }
                }
            }
            if !any {
                break;
            }
            backward_cycles += 1;
            if backward_cycles >= cap {
                break;
            }
        }

        // Iteration 3: partial forward transfers, once per backward
        // cycle made.
        for _ in 0..backward_cycles {
            let view = compute_view(&mut ctx, prep, &reps, &mut memo, work);
            let mut any = false;
            for (k, rep) in reps.iter_mut().enumerate() {
                if let Some(n_x) = ctx.positive_fin(view.replica_in[k]) {
                    let Ok(part) = ctx.div_pos(n_x, divisor) else {
                        return None;
                    };
                    let moved = rep.transfer_forward(&mut ctx, part);
                    if ctx.gt_zero(moved) {
                        any = true;
                    }
                }
            }
            if !any {
                break;
            }
        }

        // Iteration 4: partial backward transfers, once per forward
        // cycle made.
        for _ in 0..forward_cycles {
            let view = compute_view(&mut ctx, prep, &reps, &mut memo, work);
            let mut any = false;
            for (k, rep) in reps.iter_mut().enumerate() {
                if let Some(n_y) = ctx.positive_fin(view.replica_out[k]) {
                    let Ok(part) = ctx.div_pos(n_y, divisor) else {
                        return None;
                    };
                    let moved = rep.transfer_backward(&mut ctx, part);
                    if ctx.gt_zero(moved) {
                        any = true;
                    }
                }
            }
            if !any {
                break;
            }
        }

        // Final step: settle all slacks.
        compute_view(&mut ctx, prep, &reps, &mut memo, work)
    };

    let net_slack = net_slacks(&mut ctx, prep, &view);
    // Record the span only after every decision has shrunk it.
    let span = ctx.span;
    Some(RegionSlack {
        span,
        net_slack,
        replica_in: view.replica_in,
        replica_out: view.replica_out,
        pi_slack: view.pi_slack,
        po_slack: view.po_slack,
    })
}

// ---------------------------------------------------------------------------
// The public parametric table
// ---------------------------------------------------------------------------

/// A period query outside the parametric table's domain.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PeriodError {
    /// The period is not a multiple of the parametric grid stride.
    OffGrid {
        /// The requested period.
        period: Time,
        /// The grid stride: valid periods are its multiples.
        stride: Time,
    },
    /// The period falls outside the analysed domain.
    OutOfRange {
        /// The requested period.
        period: Time,
        /// The smallest analysed period.
        lo: Time,
        /// The largest analysed period.
        hi: Time,
    },
}

impl fmt::Display for PeriodError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PeriodError::OffGrid { period, stride } => write!(
                f,
                "period {} ps is not a multiple of the parametric stride {} ps",
                period.as_ps(),
                stride.as_ps()
            ),
            PeriodError::OutOfRange { period, lo, hi } => write!(
                f,
                "period {} ps is outside the analysed domain [{}, {}] ps",
                period.as_ps(),
                lo.as_ps(),
                hi.as_ps()
            ),
        }
    }
}

impl std::error::Error for PeriodError {}

/// One terminal of the parametric table, in the exact order
/// `TimingReport::terminal_slacks` reports them.
#[derive(Clone, Debug)]
pub struct ParametricTerminal {
    /// The terminal kind.
    pub kind: TerminalKind,
    /// The instance or port name.
    pub name: String,
    /// The control pulse index (0 for boundary terminals).
    pub pulse: u32,
}

/// Which per-region slack vector a terminal reads.
#[derive(Clone, Copy, Debug)]
enum Slot {
    ReplicaIn(usize),
    ReplicaOut(usize),
    Pi(usize),
    Po(usize),
}

/// The result of one symbolic analysis: per-terminal and per-net slack
/// as an exact piecewise-linear function of the overall clock period.
///
/// The domain is the *period grid*: multiples of [`stride`] from
/// `stride·k_lo` up to `stride·k_max` (the nominal period always sits
/// inside the domain, and the feasibility boundary is interior to it
/// whenever one exists). Evaluations at grid periods are bit-identical
/// to cold numeric analyses of the correspondingly scaled clock set;
/// queries outside the served domain are refused with [`PeriodError`].
///
/// [`stride`]: ParametricSlack::stride
#[derive(Clone, Debug)]
pub struct ParametricSlack {
    stride: i64,
    nominal_k: i64,
    k_lo: i64,
    k_max: i64,
    node_count: usize,
    terminals: Vec<ParametricTerminal>,
    slots: Vec<Slot>,
    regions: Vec<RegionSlack>,
}

impl ParametricSlack {
    /// The period grid stride: valid what-if periods are its positive
    /// multiples.
    pub fn stride(&self) -> Time {
        Time::from_ps(self.stride)
    }

    /// The nominal overall period the table was built at.
    pub fn nominal_period(&self) -> Time {
        Time::from_ps(self.stride * self.nominal_k)
    }

    /// The analysed period domain `[lo, hi]` (inclusive, on-grid).
    pub fn domain(&self) -> (Time, Time) {
        (
            Time::from_ps(self.stride * self.k_lo),
            Time::from_ps(self.stride * self.k_max),
        )
    }

    /// The number of linear regions in the piecewise table.
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// The terminals, in report order.
    pub fn terminals(&self) -> &[ParametricTerminal] {
        &self.terminals
    }

    /// Snaps an arbitrary period to the nearest grid point within the
    /// domain (round half up).
    pub fn snap(&self, period: Time) -> Time {
        let p = period.as_ps();
        let k = (p + self.stride / 2)
            .div_euclid(self.stride)
            .clamp(self.k_lo, self.k_max);
        Time::from_ps(k * self.stride)
    }

    fn locate(&self, period: Time) -> Result<(usize, i64), PeriodError> {
        let p = period.as_ps();
        if p % self.stride != 0 {
            return Err(PeriodError::OffGrid {
                period,
                stride: Time::from_ps(self.stride),
            });
        }
        let k = p / self.stride;
        if !(self.k_lo..=self.k_max).contains(&k) {
            let (lo, hi) = self.domain();
            return Err(PeriodError::OutOfRange { period, lo, hi });
        }
        for (i, reg) in self.regions.iter().enumerate() {
            let s = reg.span;
            if k - s.r >= 0 && (k - s.r) % s.m == 0 {
                let t = (k - s.r) / s.m;
                if t >= s.t_lo && t <= s.t_hi {
                    return Ok((i, t));
                }
            }
        }
        panic!("parametric regions do not cover grid point k = {k}");
    }

    fn terminal_chain(reg: &RegionSlack) -> impl Iterator<Item = &Sym> {
        reg.replica_in
            .iter()
            .chain(&reg.replica_out)
            .chain(&reg.pi_slack)
            .chain(&reg.po_slack)
    }

    /// The worst terminal slack at the given grid period — exactly
    /// `TimingReport::worst_slack` of a cold analysis there.
    pub fn worst_at(&self, period: Time) -> Result<Time, PeriodError> {
        let (i, t) = self.locate(period)?;
        let reg = &self.regions[i];
        let mut w = Time::INF;
        for &s in Self::terminal_chain(reg) {
            w = w.min(eval_sym(s, t));
        }
        Ok(w)
    }

    /// Whether every terminal slack is strictly positive at the given
    /// grid period — exactly `TimingReport::ok` of a cold analysis.
    pub fn ok_at(&self, period: Time) -> Result<bool, PeriodError> {
        let (i, t) = self.locate(period)?;
        let reg = &self.regions[i];
        Ok(Self::terminal_chain(reg).all(|&s| eval_sym(s, t) > Time::ZERO))
    }

    /// The slack of one terminal (by index into [`terminals`]) at the
    /// given grid period.
    ///
    /// [`terminals`]: ParametricSlack::terminals
    pub fn terminal_slack_at(&self, period: Time, idx: usize) -> Result<Time, PeriodError> {
        let (i, t) = self.locate(period)?;
        let reg = &self.regions[i];
        Ok(eval_sym(self.slot_sym(reg, self.slots[idx]), t))
    }

    /// Every terminal slack at the given grid period, in report order.
    pub fn terminal_slacks_at(&self, period: Time) -> Result<Vec<Time>, PeriodError> {
        let (i, t) = self.locate(period)?;
        let reg = &self.regions[i];
        Ok(self
            .slots
            .iter()
            .map(|&slot| eval_sym(self.slot_sym(reg, slot), t))
            .collect())
    }

    /// The minimum slack of one net at the given grid period — exactly
    /// `TimingReport::net_slack` of a cold analysis.
    pub fn net_slack_at(&self, period: Time, net: NetId) -> Result<Time, PeriodError> {
        let (i, t) = self.locate(period)?;
        let raw = net.as_raw() as usize;
        assert!(raw < self.node_count, "net index out of range");
        Ok(eval_sym(self.regions[i].net_slack[raw], t))
    }

    fn slot_sym(&self, reg: &RegionSlack, slot: Slot) -> Sym {
        match slot {
            Slot::ReplicaIn(k) => reg.replica_in[k],
            Slot::ReplicaOut(k) => reg.replica_out[k],
            Slot::Pi(k) => reg.pi_slack[k],
            Slot::Po(k) => reg.po_slack[k],
        }
    }

    /// The smallest grid period in the served domain at which every
    /// terminal slack is strictly positive, solved directly from the
    /// piecewise-linear breakpoints — no sweeps, no search.
    pub fn min_feasible_period(&self) -> Option<Time> {
        self.regions
            .iter()
            .filter_map(|reg| region_min_feasible_k(reg, self.k_lo, self.k_max))
            .min()
            .map(|k| Time::from_ps(k * self.stride))
    }
}

/// The smallest grid multiplier `k ∈ [k_floor, k_ceil]` inside `reg`
/// at which every terminal slack is strictly positive, by intersecting
/// the half-lines `a + b·t > 0` of the region's affine expressions.
fn region_min_feasible_k(reg: &RegionSlack, k_floor: i64, k_ceil: i64) -> Option<i64> {
    let span = reg.span;
    let mut lo = span.t_lo.max(div_ceil_i(k_floor - span.r, span.m));
    let mut hi = span.t_hi.min(div_floor_i(k_ceil - span.r, span.m));
    if lo > hi {
        return None;
    }
    for &s in ParametricSlack::terminal_chain(reg) {
        match s {
            Sym::Inf => {}
            Sym::NegInf => return None,
            Sym::Fin(f) => {
                // Solve a + b·t > 0 over integers.
                if f.b == 0 {
                    if f.a <= 0 {
                        return None;
                    }
                } else if f.b > 0 {
                    lo = lo.max(div_ceil_i(1 - f.a, f.b));
                } else {
                    hi = hi.min(div_floor_i(f.a - 1, -f.b));
                }
            }
        }
        if lo > hi {
            return None;
        }
    }
    Some(span.r + span.m * lo)
}

/// Floor division for positive divisors.
fn div_floor_i(a: i64, b: i64) -> i64 {
    debug_assert!(b > 0);
    a.div_euclid(b)
}

/// Ceiling division for positive divisors.
fn div_ceil_i(a: i64, b: i64) -> i64 {
    debug_assert!(b > 0);
    -((-a).div_euclid(b))
}

// ---------------------------------------------------------------------------
// The driver
// ---------------------------------------------------------------------------

/// Carve-worklist entry: a max-heap keyed on the span's largest grid
/// multiplier, with a full-identity tiebreak so rebuilds pop spans in a
/// reproducible order.
struct Carve(Span);

impl Carve {
    fn key(&self) -> (i64, i64, i64, i64) {
        let s = self.0;
        (s.r + s.m * s.t_hi, s.r, s.m, s.t_lo)
    }
}

impl PartialEq for Carve {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}

impl Eq for Carve {}

impl PartialOrd for Carve {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Carve {
    fn cmp(&self, other: &Self) -> Ordering {
        self.key().cmp(&other.key())
    }
}

/// Shared state of the carving phases: the coverage bitmap over the
/// analysis window, the settled regions, and the cumulative work spent.
struct CarveState {
    floor_k: i64,
    k_cap: i64,
    covered: Vec<bool>,
    regions: Vec<RegionSlack>,
    /// Smallest covered multiplier (anywhere in the window) with every
    /// terminal slack positive.
    m_k: Option<i64>,
    /// Lowest multiplier of the contiguously covered suffix ending at
    /// `k_cap` (`k_cap + 1` when the top is uncovered).
    suffix_lo: i64,
    work: u64,
    scratch: Vec<Span>,
}

impl CarveState {
    fn covered_at(&self, k: i64) -> bool {
        self.covered[(k - self.floor_k) as usize]
    }

    /// Records a settled region: coverage, the running minimum feasible
    /// multiplier, and the top-suffix pointer.
    fn mark(&mut self, region: &RegionSlack) {
        let s = region.span;
        for t in s.t_lo..=s.t_hi {
            let k = s.r + s.m * t;
            debug_assert!((self.floor_k..=self.k_cap).contains(&k));
            self.covered[(k - self.floor_k) as usize] = true;
        }
        if let Some(k) = region_min_feasible_k(region, self.floor_k, self.k_cap) {
            self.m_k = Some(self.m_k.map_or(k, |b| b.min(k)));
        }
        while self.suffix_lo > self.floor_k && self.covered_at(self.suffix_lo - 1) {
            self.suffix_lo -= 1;
        }
    }

    /// Runs one singleton region (which can neither split nor restart)
    /// regardless of budget.
    fn run_singleton(&mut self, prep: &Prepared<'_>, g_ps: i64, k: i64) {
        let span = Span {
            r: k,
            m: 1,
            t_lo: 0,
            t_hi: 0,
        };
        self.scratch.clear();
        let mut scratch = std::mem::take(&mut self.scratch);
        let region = run_region(prep, g_ps, span, &mut scratch, &mut self.work)
            .expect("singleton regions cannot restart");
        debug_assert!(scratch.is_empty(), "singleton regions cannot split");
        self.scratch = scratch;
        self.mark(&region);
        self.regions.push(region);
    }

    /// Carves `[lo_k, hi_k]` largest-multiplier-first until the window
    /// is fully carved, `stop` holds, cumulative work reaches `limit`,
    /// or the region cap is hit.
    fn carve_window(
        &mut self,
        prep: &Prepared<'_>,
        g_ps: i64,
        lo_k: i64,
        hi_k: i64,
        limit: u64,
        mut stop: impl FnMut(&CarveState) -> bool,
    ) {
        let mut heap: BinaryHeap<Carve> = BinaryHeap::new();
        heap.push(Carve(Span {
            r: 0,
            m: 1,
            t_lo: lo_k,
            t_hi: hi_k,
        }));
        let mut deferred = std::mem::take(&mut self.scratch);
        while let Some(Carve(span)) = heap.pop() {
            if span.t_lo > span.t_hi {
                continue;
            }
            if stop(self) || self.work >= limit || self.regions.len() >= REGION_CAP {
                break;
            }
            deferred.clear();
            let region = run_region(prep, g_ps, span, &mut deferred, &mut self.work);
            heap.extend(deferred.drain(..).map(Carve));
            if let Some(region) = region {
                self.mark(&region);
                self.regions.push(region);
            }
        }
        deferred.clear();
        self.scratch = deferred;
    }

    /// Lowest multiplier of the contiguously covered run containing
    /// `anchor` (which must be covered).
    fn run_lo(&self, anchor: i64) -> i64 {
        debug_assert!(self.covered_at(anchor));
        let mut k = anchor;
        while k > self.floor_k && self.covered_at(k - 1) {
            k -= 1;
        }
        k
    }

    /// Highest multiplier of the contiguously covered run containing
    /// `anchor` (which must be covered).
    fn run_hi(&self, anchor: i64) -> i64 {
        debug_assert!(self.covered_at(anchor));
        let mut k = anchor;
        while k < self.k_cap && self.covered_at(k + 1) {
            k += 1;
        }
        k
    }
}

/// Builds the full parametric slack table from a prepared analysis.
pub(crate) fn parametric(prep: &Prepared<'_>) -> Result<ParametricSlack, String> {
    let obs = sym_obs();
    let _span = obs.build.span();

    let timeline = &prep.timeline;
    let overall = timeline.overall_period();
    let mut g = overall;
    for (id, _) in timeline.edges() {
        let t = timeline.edge_time(id);
        if t > Time::ZERO {
            g = g.gcd(t);
        }
    }
    let g_ps = g.as_ps();
    debug_assert!(g_ps > 0);
    let stride = overall.as_ps() / g_ps;
    let nominal_k = g_ps;
    // Scan up to 4× the nominal period (or the clock builder's overall
    // cap, whichever is smaller) — comfortably past any min-period or
    // sweep question while keeping the region count bounded. Designs
    // with pathologically fine lattices are additionally clipped to the
    // analysis window around the nominal point.
    let k_max = (4 * g_ps)
        .min(MAX_OVERALL_PS / stride)
        .min(nominal_k + POINT_CAP / 2)
        .max(nominal_k);

    // Every clock-derived seed position must sit on the `g` lattice;
    // the construction guarantees it, but a violation here would
    // silently break the parametrization, so verify once up front.
    let on_lattice = |t: Time| t.as_ps() % g_ps == 0;
    for item in &prep.engine.items {
        for s in &item.ready_replica_seeds {
            if !on_lattice(s.base) {
                return Err(format!(
                    "assert seed base {} ps off lattice",
                    s.base.as_ps()
                ));
            }
        }
        for s in &item.close_replica_seeds {
            if !on_lattice(s.base) {
                return Err(format!("close seed base {} ps off lattice", s.base.as_ps()));
            }
        }
        for s in &item.ready_pi_seeds {
            let base = s.at - prep.pis[s.k as usize].offset;
            if !on_lattice(base) {
                return Err(format!("input seed base {} ps off lattice", base.as_ps()));
            }
        }
        for s in &item.close_po_seeds {
            let base = s.at - prep.pos[s.k as usize].offset;
            if !on_lattice(base) {
                return Err(format!("output seed base {} ps off lattice", base.as_ps()));
            }
        }
    }
    for r in &prep.replicas {
        if !on_lattice(r.width()) {
            return Err(format!("pulse width {} ps off lattice", r.width().as_ps()));
        }
    }

    // The carve is budgeted and nominal-anchored: the served domain is
    // whatever contiguous run of grid points around the nominal period
    // the work budgets manage to cover, so an expensive design shrinks
    // its domain instead of failing the build or going quadratic.
    let k_cap = k_max;
    let floor_k = (k_cap - (POINT_CAP - 1)).max(1);
    let window = (k_cap - floor_k + 1) as usize;
    let mut st = CarveState {
        floor_k,
        k_cap,
        covered: vec![false; window],
        regions: Vec::new(),
        m_k: None,
        suffix_lo: k_cap + 1,
        work: 0,
        scratch: Vec::new(),
    };

    // Phase A: probe the window top. Designs that are feasible there
    // settle in wide regions all the way down to the feasibility
    // boundary, so the full top-down carve is worth attempting; designs
    // that are infeasible even at the top (every grid point forces the
    // full transfer schedule) get a narrow window instead.
    st.run_singleton(prep, g_ps, k_cap);
    let top_feasible = st.m_k.is_some();

    // Phase B: top-down carve of the whole window, stopping early once
    // the nominal period and the sharp feasibility boundary are both
    // interior to the contiguously covered suffix.
    if top_feasible && k_cap > floor_k {
        st.carve_window(prep, g_ps, floor_k, k_cap - 1, CARVE_WORK, |st| {
            st.m_k
                .is_some_and(|m| st.suffix_lo <= (m - 1).min(nominal_k))
        });
    }

    // Phase C: when the top-down carve did not connect the top to the
    // nominal period, carve a small anchor window just above it. The
    // final singleton guarantees the nominal point itself is always
    // served.
    if st.suffix_lo > nominal_k {
        let top_c = (nominal_k + ANCHOR_SPAN).min(k_cap);
        let limit = st.work.saturating_add(ANCHOR_WORK);
        st.carve_window(prep, g_ps, nominal_k, top_c, limit, |_| false);
        if !st.covered_at(nominal_k) {
            st.run_singleton(prep, g_ps, nominal_k);
        }
    }

    // The served domain: the contiguous covered run around nominal.
    let mut k_lo = st.run_lo(nominal_k);
    let k_max = st.run_hi(nominal_k);
    let min_in = |st: &CarveState, k_lo: i64| {
        st.regions
            .iter()
            .filter_map(|reg| region_min_feasible_k(reg, k_lo, k_max))
            .min()
    };
    let mut m_k = min_in(&st, k_lo);

    // Phase D: extend the domain floor downward in widening chunks
    // until the point just below the minimum feasible period is served
    // (and hence known infeasible — the boundary is sharp), the window
    // floor is reached, or the budget runs out.
    let limit = st.work.saturating_add(PROBE_WORK);
    let mut chunk = 64i64;
    while k_lo > floor_k
        && m_k.is_none_or(|m| k_lo >= m)
        && st.work < limit
        && st.regions.len() < REGION_CAP
    {
        let lo_w = (k_lo - chunk).max(floor_k);
        st.carve_window(prep, g_ps, lo_w, k_lo - 1, limit, |_| false);
        let new_lo = st.run_lo(k_lo);
        if new_lo == k_lo {
            break; // no progress: the chunk's top point did not settle
        }
        k_lo = new_lo;
        m_k = min_in(&st, k_lo);
        chunk = (chunk * 2).min(CHUNK_CAP);
    }

    // Regions that do not intersect the served domain answer no query.
    let mut regions = st.regions;
    regions.retain(|reg| {
        reg.span.r + reg.span.m * reg.span.t_hi >= k_lo
            && reg.span.r + reg.span.m * reg.span.t_lo <= k_max
    });

    obs.builds.inc();
    obs.regions.add(regions.len() as u64);

    let module = prep.design.module(prep.module);
    let mut terminals = Vec::new();
    let mut slots = Vec::new();
    for (k, r) in prep.replicas.iter().enumerate() {
        terminals.push(ParametricTerminal {
            kind: TerminalKind::SyncInput,
            name: module.instance(r.inst).name().to_owned(),
            pulse: r.pulse_index,
        });
        slots.push(Slot::ReplicaIn(k));
        if r.output_net.is_some() {
            terminals.push(ParametricTerminal {
                kind: TerminalKind::SyncOutput,
                name: module.instance(r.inst).name().to_owned(),
                pulse: r.pulse_index,
            });
            slots.push(Slot::ReplicaOut(k));
        }
    }
    for (k, pi) in prep.pis.iter().enumerate() {
        terminals.push(ParametricTerminal {
            kind: TerminalKind::PrimaryInput,
            name: pi.port.clone(),
            pulse: 0,
        });
        slots.push(Slot::Pi(k));
    }
    for (k, po) in prep.pos.iter().enumerate() {
        terminals.push(ParametricTerminal {
            kind: TerminalKind::PrimaryOutput,
            name: po.port.clone(),
            pulse: 0,
        });
        slots.push(Slot::Po(k));
    }

    Ok(ParametricSlack {
        stride,
        nominal_k,
        k_lo,
        k_max,
        node_count: prep.graph.node_count(),
        terminals,
        slots,
        regions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_cells::{
        Cell, DelayModel, DriveStrength, Function, Library, SyncKind, SyncSpec, TimingArc, WireLoad,
    };
    use hb_clock::ClockSet;
    use hb_netlist::{Design, LeafDef, ModuleId, PinDir};
    use hb_units::Transition;

    use crate::{Analyzer, Spec};

    // --- Ctx machinery -----------------------------------------------------

    fn span(r: i64, m: i64, t_lo: i64, t_hi: i64) -> Span {
        Span { r, m, t_lo, t_hi }
    }

    #[test]
    fn holds_is_uniform_without_a_flip() {
        let mut deferred = Vec::new();
        let mut ctx = Ctx {
            g: 1,
            span: span(0, 1, 1, 100),
            deferred: &mut deferred,
        };
        assert!(ctx.ge_zero(Aff { a: 0, b: 1 }));
        assert!(ctx.le_zero(Aff { a: -200, b: 1 }));
        assert!(ctx.deferred.is_empty());
        assert_eq!(ctx.span, span(0, 1, 1, 100));
    }

    #[test]
    fn holds_splits_at_the_switch_point() {
        let mut deferred = Vec::new();
        let mut ctx = Ctx {
            g: 1,
            span: span(0, 1, 1, 100),
            deferred: &mut deferred,
        };
        // value = t − 50: negative on [1, 49], non-negative on [50, 100].
        assert!(!ctx.ge_zero(Aff { a: -50, b: 1 }));
        assert_eq!(ctx.span, span(0, 1, 1, 49));
        assert_eq!(*ctx.deferred, vec![span(0, 1, 50, 100)]);
        // A repeat decision on the shrunk span is uniform.
        assert!(!ctx.ge_zero(Aff { a: -50, b: 1 }));
        assert_eq!(ctx.deferred.len(), 1);
    }

    #[test]
    fn div_pos_is_exact_when_divisible_and_splits_otherwise() {
        let mut deferred = Vec::new();
        let mut ctx = Ctx {
            g: 1,
            span: span(0, 1, 0, 10),
            deferred: &mut deferred,
        };
        let q = ctx.div_pos(Aff { a: 3, b: 4 }, 2).ok().unwrap();
        assert_eq!(q, Aff { a: 1, b: 2 });
        assert!(ctx.deferred.is_empty());

        assert!(ctx.div_pos(Aff { a: 1, b: 1 }, 2).is_err());
        assert_eq!(
            *ctx.deferred,
            vec![span(0, 2, 0, 5), span(1, 2, 0, 4)],
            "residue classes must partition the span"
        );

        // A single-point span folds to a constant instead of splitting.
        deferred.clear();
        let mut ctx = Ctx {
            g: 1,
            span: span(0, 1, 7, 7),
            deferred: &mut deferred,
        };
        let q = ctx.div_pos(Aff { a: 1, b: 1 }, 2).ok().unwrap();
        assert_eq!(q, Aff::cst(4));
        assert!(deferred.is_empty());
    }

    #[test]
    fn symbolic_min_max_mirror_sentinels() {
        let mut deferred = Vec::new();
        let mut ctx = Ctx {
            g: 1,
            span: span(0, 1, 1, 10),
            deferred: &mut deferred,
        };
        let f = Sym::Fin(Aff { a: 5, b: 0 });
        assert_eq!(ctx.smax(Sym::NegInf, f), f);
        assert_eq!(ctx.smax(Sym::Inf, f), Sym::Inf);
        assert_eq!(ctx.smin(Sym::Inf, f), f);
        assert_eq!(ctx.smin(Sym::NegInf, f), Sym::NegInf);
        assert_eq!(ssub(f, Sym::NegInf), Sym::Inf);
        assert_eq!(ssub(f, Sym::Inf), Sym::NegInf);
        assert_eq!(sadd(Sym::NegInf, Time::from_ps(3)), Sym::NegInf);
    }

    #[test]
    fn integer_interval_helpers() {
        assert_eq!(div_ceil_i(7, 2), 4);
        assert_eq!(div_ceil_i(-7, 2), -3);
        assert_eq!(div_floor_i(7, 2), 3);
        assert_eq!(div_floor_i(-7, 2), -4);
    }

    // --- fixtures ----------------------------------------------------------

    /// A zero-capacitance library with exact delays: `DEL{n}` buffers,
    /// a `NEG7` inverting buffer, a `MIX3` non-unate buffer, `JOIN2`,
    /// and ideal FF / transparent-latch elements.
    fn fixture_lib() -> Library {
        let mut lib = Library::new("symfix");
        lib.set_wire_load(WireLoad::new(0, 0));
        let buf = |lib: &mut Library, name: &str, sense: Sense, ns: i64| {
            let iface = LeafDef::new(name)
                .pin("A", PinDir::Input)
                .pin("Y", PinDir::Output);
            let arc = TimingArc {
                from: iface.pin_by_name("A").unwrap(),
                to: iface.pin_by_name("Y").unwrap(),
                sense,
                delay: DelayModel::symmetric(Time::from_ns(ns), 0),
            };
            lib.add_cell(Cell::new(
                iface,
                Function::Combinational(vec![arc]),
                vec![0, 0],
                DriveStrength::X1,
                name,
                1,
            ));
        };
        for n in [5, 15, 25] {
            buf(&mut lib, &format!("DEL{n}"), Sense::Positive, n);
        }
        buf(&mut lib, "NEG7", Sense::Negative, 7);
        buf(&mut lib, "MIX3", Sense::NonUnate, 3);

        let iface = LeafDef::new("JOIN2")
            .pin("A", PinDir::Input)
            .pin("B", PinDir::Input)
            .pin("Y", PinDir::Output);
        let arcs = ["A", "B"]
            .iter()
            .map(|p| TimingArc {
                from: iface.pin_by_name(p).unwrap(),
                to: iface.pin_by_name("Y").unwrap(),
                sense: Sense::Positive,
                delay: DelayModel::symmetric(Time::from_ns(1), 0),
            })
            .collect();
        lib.add_cell(Cell::new(
            iface,
            Function::Combinational(arcs),
            vec![0, 0, 0],
            DriveStrength::X1,
            "JOIN2",
            1,
        ));

        for (name, kind, sense) in [
            ("FF", SyncKind::TrailingEdge, Sense::Negative),
            ("LAT", SyncKind::Transparent, Sense::Positive),
        ] {
            let iface = LeafDef::new(name)
                .pin("D", PinDir::Input)
                .pin("C", PinDir::Input)
                .pin("Q", PinDir::Output);
            let spec = SyncSpec {
                kind,
                data: iface.pin_by_name("D").unwrap(),
                control: iface.pin_by_name("C").unwrap(),
                output: iface.pin_by_name("Q").unwrap(),
                output_bar: None,
                setup: Time::ZERO,
                hold: Time::from_ps(500),
                d_cx: Time::ZERO,
                d_dx: Time::ZERO,
                control_sense: sense,
                output_delay: DelayModel::zero(),
            };
            lib.add_cell(Cell::new(
                iface,
                Function::Sync(spec),
                vec![0, 0, 0],
                DriveStrength::X1,
                name,
                4,
            ));
        }
        lib
    }

    struct Fixture {
        design: Design,
        module: ModuleId,
        nets: Vec<NetId>,
    }

    impl Fixture {
        fn new(lib: &Library) -> Fixture {
            let mut design = Design::new("symtest");
            lib.declare_into(&mut design).unwrap();
            let module = design.add_module("top").unwrap();
            design.set_top(module).unwrap();
            Fixture {
                design,
                module,
                nets: Vec::new(),
            }
        }

        fn net(&mut self, name: &str) -> NetId {
            let n = self.design.add_net(self.module, name).unwrap();
            self.nets.push(n);
            n
        }

        fn input(&mut self, name: &str) -> NetId {
            let n = self.net(name);
            self.design
                .add_port(self.module, name, PinDir::Input, n)
                .unwrap();
            n
        }

        fn output(&mut self, name: &str) -> NetId {
            let n = self.net(name);
            self.design
                .add_port(self.module, name, PinDir::Output, n)
                .unwrap();
            n
        }

        fn inst(&mut self, name: &str, cell: &str, conns: &[(&str, NetId)]) {
            let leaf = self.design.leaf_by_name(cell).unwrap();
            let id = self
                .design
                .add_leaf_instance(self.module, name, leaf)
                .unwrap();
            for (pin, net) in conns {
                self.design.connect(self.module, id, pin, *net).unwrap();
            }
        }
    }

    /// Two-phase transparent-latch pipeline with negative and non-unate
    /// side arcs:
    /// `in → LAT(c1) → {DEL25, NEG7} → JOIN2 → MIX3 → LAT(c2) → DEL15
    /// → FF(c1) → out`. Nominal clocks: c1 = 40 ns (high 0..20 ns),
    /// c2 = 40 ns (high 20..30 ns) ⇒ g = 10 000, stride = 4 ps.
    fn latch_pipeline() -> Fixture {
        let lib = fixture_lib();
        let mut f = Fixture::new(&lib);
        let input = f.input("in");
        let c1 = f.input("c1");
        let c2 = f.input("c2");
        let n1 = f.net("n1");
        let n2 = f.net("n2");
        let n3 = f.net("n3");
        let n4 = f.net("n4");
        let n5 = f.net("n5");
        let n6 = f.net("n6");
        let n7 = f.net("n7");
        let out = f.output("out");
        f.inst("l1", "LAT", &[("D", input), ("C", c1), ("Q", n1)]);
        f.inst("d25", "DEL25", &[("A", n1), ("Y", n2)]);
        f.inst("g7", "NEG7", &[("A", n1), ("Y", n3)]);
        f.inst("j1", "JOIN2", &[("A", n2), ("B", n3), ("Y", n4)]);
        f.inst("m3", "MIX3", &[("A", n4), ("Y", n5)]);
        f.inst("l2", "LAT", &[("D", n5), ("C", c2), ("Q", n6)]);
        f.inst("d15", "DEL15", &[("A", n6), ("Y", n7)]);
        f.inst("f1", "FF", &[("D", n7), ("C", c1), ("Q", out)]);
        f
    }

    fn pipeline_spec() -> Spec {
        Spec::new()
            .clock_port("c1", "c1")
            .clock_port("c2", "c2")
            .output_required(
                "out",
                crate::EdgeSpec::new("c1", Transition::Rise),
                Time::ZERO,
            )
    }

    /// The latch-pipeline clock set scaled to grid point `k`
    /// (nominal at k = 10 000; stride 4 ps).
    fn pipeline_clocks(k: i64) -> ClockSet {
        let mut cs = ClockSet::new();
        cs.add_clock("c1", Time::from_ps(4 * k), Time::ZERO, Time::from_ps(2 * k))
            .unwrap();
        cs.add_clock(
            "c2",
            Time::from_ps(4 * k),
            Time::from_ps(2 * k),
            Time::from_ps(3 * k),
        )
        .unwrap();
        cs
    }

    // --- parity ------------------------------------------------------------

    /// The core contract: at every probed grid point, the symbolic
    /// table evaluates bit-identically to a cold numeric analysis of
    /// the correspondingly scaled clock set — terminal slacks, worst
    /// slack, feasibility, and every net slack.
    #[test]
    fn parity_with_cold_numeric_runs_at_region_boundaries() {
        let lib = fixture_lib();
        let f = latch_pipeline();
        let nominal = pipeline_clocks(10_000);
        let analyzer = Analyzer::new(&f.design, f.module, &lib, &nominal, pipeline_spec()).unwrap();
        let param = analyzer.parametric().unwrap();
        assert_eq!(param.stride(), Time::from_ps(4));
        assert_eq!(param.nominal_period(), Time::from_ns(40));
        assert!(param.region_count() >= 1);

        // Probe every region's boundary grid points plus fixed spots.
        let mut ks: Vec<i64> = vec![
            param.k_lo,
            param.k_lo + 1,
            9_999,
            10_000,
            10_001,
            param.k_max,
        ];
        for reg in &param.regions {
            ks.push(reg.span.r + reg.span.m * reg.span.t_lo);
            ks.push(reg.span.r + reg.span.m * reg.span.t_hi);
            if reg.span.t_hi > reg.span.t_lo {
                ks.push(reg.span.r + reg.span.m * (reg.span.t_lo + 1));
            }
        }
        // A retained region may straddle the served floor; only probe
        // in-domain points.
        ks.retain(|&k| (param.k_lo..=param.k_max).contains(&k));
        ks.sort_unstable();
        ks.dedup();
        // Keep the test fast if splitting ever produces many regions.
        while ks.len() > 400 {
            let step = ks.len().div_ceil(400);
            ks = ks.into_iter().step_by(step).collect();
        }

        for &k in &ks {
            let period = Time::from_ps(4 * k);
            let clocks = pipeline_clocks(k);
            let cold = Analyzer::new(&f.design, f.module, &lib, &clocks, pipeline_spec()).unwrap();
            let report = cold.analyze();

            assert_eq!(
                param.worst_at(period).unwrap(),
                report.worst_slack(),
                "worst slack diverges at k = {k}"
            );
            assert_eq!(
                param.ok_at(period).unwrap(),
                report.ok(),
                "feasibility diverges at k = {k}"
            );
            let sym = param.terminal_slacks_at(period).unwrap();
            let num = report.terminal_slacks();
            assert_eq!(sym.len(), num.len());
            for (i, (s, n)) in sym.iter().zip(num).enumerate() {
                assert_eq!(param.terminals()[i].name, n.name);
                assert_eq!(param.terminals()[i].kind, n.kind);
                assert_eq!(*s, n.slack, "terminal {} slack diverges at k = {k}", n.name);
            }
            for &net in &f.nets {
                assert_eq!(
                    param.net_slack_at(period, net).unwrap(),
                    report.net_slack(net),
                    "net slack diverges at k = {k}"
                );
            }
        }
    }

    /// `min_feasible_period` must agree with an exhaustive grid scan of
    /// `ok_at` — and with cold numeric runs at the boundary.
    #[test]
    fn min_feasible_period_matches_grid_scan_and_numeric_boundary() {
        let lib = fixture_lib();
        let f = latch_pipeline();
        let nominal = pipeline_clocks(10_000);
        let analyzer = Analyzer::new(&f.design, f.module, &lib, &nominal, pipeline_spec()).unwrap();
        let param = analyzer.parametric().unwrap();

        // Exhaustive scan over the served domain (also proves the
        // regions cover it: locate() panics on any uncovered point).
        let mut scan_min = None;
        for k in param.k_lo..=param.k_max {
            if param.ok_at(Time::from_ps(4 * k)).unwrap() {
                scan_min = Some(Time::from_ps(4 * k));
                break;
            }
        }
        assert_eq!(param.min_feasible_period(), scan_min);
        // The nominal period is always served, and the boundary is
        // interior to the domain (sharpness is checkable below).
        assert!(param.k_lo <= 10_000 && param.k_max >= 10_000);

        let min = param.min_feasible_period().expect("fixture is feasible");
        let kmin = min.as_ps() / 4;
        assert!(kmin > param.k_lo, "boundary must be interior to the domain");
        let ok = Analyzer::new(
            &f.design,
            f.module,
            &lib,
            &pipeline_clocks(kmin),
            pipeline_spec(),
        )
        .unwrap()
        .analyze();
        assert!(ok.ok(), "numeric run at the min period must be feasible");
        if kmin > 1 {
            let bad = Analyzer::new(
                &f.design,
                f.module,
                &lib,
                &pipeline_clocks(kmin - 1),
                pipeline_spec(),
            )
            .unwrap()
            .analyze();
            assert!(!bad.ok(), "one grid step below must be infeasible");
        }
    }

    #[test]
    fn period_queries_reject_off_grid_and_out_of_range() {
        let lib = fixture_lib();
        let f = latch_pipeline();
        let nominal = pipeline_clocks(10_000);
        let analyzer = Analyzer::new(&f.design, f.module, &lib, &nominal, pipeline_spec()).unwrap();
        let param = analyzer.parametric().unwrap();

        assert!(matches!(
            param.worst_at(Time::from_ps(41)),
            Err(PeriodError::OffGrid { .. })
        ));
        assert!(matches!(
            param.worst_at(Time::ZERO),
            Err(PeriodError::OutOfRange { .. })
        ));
        let (lo, hi) = param.domain();
        assert!(param.worst_at(lo).is_ok());
        assert!(param.worst_at(hi).is_ok());
        assert!(matches!(
            param.worst_at(hi + param.stride()),
            Err(PeriodError::OutOfRange { .. })
        ));
        // Snapping lands on-grid and inside the domain.
        let snapped = param.snap(lo + Time::from_ps(1));
        assert_eq!(snapped, lo, "just past the floor rounds back down");
        assert!(param.worst_at(snapped).is_ok());
        let snapped = param.snap(lo + Time::from_ps(3));
        assert_eq!(snapped, lo + param.stride(), "round half up");
        assert_eq!(param.snap(Time::ZERO), lo);
        assert_eq!(param.snap(hi + Time::from_ns(1)), hi);
    }
}
