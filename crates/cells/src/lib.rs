//! Standard-cell library and empirical delay estimation.
//!
//! The paper draws a sharp line between *component propagation-delay
//! estimation* and *system timing analysis*, precisely so that different
//! delay estimators can be combined. This crate is the delay-estimation
//! side of that line:
//!
//! * [`Cell`] — a library cell: an interface (pins), a [`Function`]
//!   (combinational timing arcs, or a synchronising element description),
//!   per-input-pin capacitances, an area and a drive strength;
//! * [`DelayModel`] — the empirical expression the paper alludes to
//!   ("delay evaluation expressions that take into account the connected
//!   loads"): `delay = intrinsic + slope × C_load`, kept separately for
//!   rising and falling output transitions and as a `[min, max]` interval;
//! * [`Library`] — a named collection of cells with a [`WireLoad`]
//!   estimate, able to declare its interfaces into an `hb-netlist`
//!   [`Design`](hb_netlist::Design) and to resolve instances back to
//!   cells through a [`Binding`];
//! * [`sc89`] — the built-in library, a late-1980s-flavoured static CMOS
//!   standard-cell set with X1/X2/X4 drive variants, edge-triggered and
//!   transparent latches, and clocked tristate drivers.
//!
//! # Examples
//!
//! ```
//! use hb_cells::{sc89, Binding};
//! use hb_netlist::Design;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let lib = sc89();
//! let mut design = Design::new("chip");
//! lib.declare_into(&mut design)?;
//! let m = design.add_module("top")?;
//! let inv = design.leaf_by_name("INV_X1").expect("declared by the library");
//! let u = design.add_leaf_instance(m, "u0", inv)?;
//! # let _ = u;
//! let binding = Binding::new(&design, &lib);
//! assert!(binding.cell_for_leaf(inv).is_some());
//! # Ok(())
//! # }
//! ```

mod cell;
mod delay;
mod library;
mod sc89;

pub use cell::{Cell, CellId, DriveStrength, Function, SyncKind, SyncSpec, TimingArc};
pub use delay::{DelayModel, WireLoad};
pub use library::{Binding, Library, LOAD_SCALE_ATTR};
pub use sc89::sc89;
