#![allow(dead_code)]

//! Shared fixtures for the analyzer scenario tests: an "exact" library
//! whose cells have load-independent delays, so every scenario's
//! arithmetic can be checked by hand.

use hb_cells::{
    Cell, DelayModel, DriveStrength, Function, Library, SyncKind, SyncSpec, TimingArc, WireLoad,
};
use hb_netlist::{Design, LeafDef, ModuleId, NetId, PinDir};
use hb_units::{Sense, Time};

/// Builds a library with:
///
/// * `DEL{n}` — a buffer with exactly `n` ns of delay (min delay `n/2`),
///   one per entry in `delays_ns`;
/// * `JOIN2` — a two-input positive-unate gate with 1 ns of delay;
/// * `FF` — an ideal rising-edge flip-flop (trailing-edge element on the
///   clock-low pulse), zero setup, 500 ps hold;
/// * `LAT` — an ideal transparent latch, active while its clock is high;
/// * `LATN` — the active-low variant.
///
/// All pin capacitances and wire loads are zero, so delays are exact.
pub fn exact_lib(delays_ns: &[i64]) -> Library {
    let mut lib = Library::new("exact");
    lib.set_wire_load(WireLoad::new(0, 0));

    let mut sorted: Vec<i64> = delays_ns.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    for d in sorted {
        let iface = LeafDef::new(format!("DEL{d}"))
            .pin("A", PinDir::Input)
            .pin("Y", PinDir::Output);
        let arc = TimingArc {
            from: iface.pin_by_name("A").unwrap(),
            to: iface.pin_by_name("Y").unwrap(),
            sense: Sense::Positive,
            delay: DelayModel::symmetric(Time::from_ns(d), 0),
        };
        lib.add_cell(Cell::new(
            iface,
            Function::Combinational(vec![arc]),
            vec![0, 0],
            DriveStrength::X1,
            format!("DEL{d}"),
            1,
        ));
    }

    let iface = LeafDef::new("JOIN2")
        .pin("A", PinDir::Input)
        .pin("B", PinDir::Input)
        .pin("Y", PinDir::Output);
    let arcs = ["A", "B"]
        .iter()
        .map(|p| TimingArc {
            from: iface.pin_by_name(p).unwrap(),
            to: iface.pin_by_name("Y").unwrap(),
            sense: Sense::Positive,
            delay: DelayModel::symmetric(Time::from_ns(1), 0),
        })
        .collect();
    lib.add_cell(Cell::new(
        iface,
        Function::Combinational(arcs),
        vec![0, 0, 0],
        DriveStrength::X1,
        "JOIN2",
        1,
    ));

    for (name, kind, sense) in [
        ("FF", SyncKind::TrailingEdge, Sense::Negative),
        ("LAT", SyncKind::Transparent, Sense::Positive),
        ("LATN", SyncKind::Transparent, Sense::Negative),
    ] {
        let iface = LeafDef::new(name)
            .pin("D", PinDir::Input)
            .pin("C", PinDir::Input)
            .pin("Q", PinDir::Output);
        let spec = SyncSpec {
            kind,
            data: iface.pin_by_name("D").unwrap(),
            control: iface.pin_by_name("C").unwrap(),
            output: iface.pin_by_name("Q").unwrap(),
            output_bar: None,
            setup: Time::ZERO,
            hold: Time::from_ps(500),
            d_cx: Time::ZERO,
            d_dx: Time::ZERO,
            control_sense: sense,
            output_delay: DelayModel::zero(),
        };
        lib.add_cell(Cell::new(
            iface,
            Function::Sync(spec),
            vec![0, 0, 0],
            DriveStrength::X1,
            name,
            4,
        ));
    }
    lib
}

/// A design under construction with convenience helpers.
pub struct Builder {
    pub design: Design,
    pub module: ModuleId,
    counter: usize,
}

impl Builder {
    pub fn new(lib: &Library) -> Builder {
        let mut design = Design::new("scenario");
        lib.declare_into(&mut design).unwrap();
        let module = design.add_module("top").unwrap();
        design.set_top(module).unwrap();
        Builder {
            design,
            module,
            counter: 0,
        }
    }

    pub fn net(&mut self, name: &str) -> NetId {
        self.design.add_net(self.module, name).unwrap()
    }

    pub fn input(&mut self, name: &str) -> NetId {
        let n = self.net(name);
        self.design
            .add_port(self.module, name, PinDir::Input, n)
            .unwrap();
        n
    }

    pub fn output(&mut self, name: &str) -> NetId {
        let n = self.net(name);
        self.design
            .add_port(self.module, name, PinDir::Output, n)
            .unwrap();
        n
    }

    /// Instantiates `cell` and connects the named pins.
    pub fn inst(&mut self, cell: &str, conns: &[(&str, NetId)]) -> String {
        self.counter += 1;
        let name = format!("u{}_{}", self.counter, cell.to_lowercase());
        let leaf = self
            .design
            .leaf_by_name(cell)
            .unwrap_or_else(|| panic!("cell {cell} not in library"));
        let id = self
            .design
            .add_leaf_instance(self.module, name.clone(), leaf)
            .unwrap();
        for (pin, net) in conns {
            self.design.connect(self.module, id, pin, *net).unwrap();
        }
        name
    }

    /// A chain of `DEL` cells realizing the given delays, from `from` to
    /// `to`. Returns the total delay.
    pub fn delay_chain(&mut self, from: NetId, to: NetId, delays_ns: &[i64]) -> Time {
        assert!(!delays_ns.is_empty());
        let mut prev = from;
        for (i, &d) in delays_ns.iter().enumerate() {
            let next = if i + 1 == delays_ns.len() {
                to
            } else {
                self.counter += 1;
                let c = self.counter;
                self.net(&format!("chain{c}"))
            };
            self.inst(&format!("DEL{d}"), &[("A", prev), ("Y", next)]);
            prev = next;
        }
        Time::from_ns(delays_ns.iter().sum())
    }
}
