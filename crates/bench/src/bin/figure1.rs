//! Reproduces **Figure 1** of the paper: logic with latches controlled
//! by four different clock phases, "time multiplexed within each
//! overall clock period". Shows that the gate's cluster needs exactly
//! two analysis passes (two settling times per node), and where the
//! period is broken open for each.

use hb_cells::sc89;
use hb_workloads::figure1;
use hummingbird::Analyzer;

fn main() {
    let lib = sc89();
    let w = figure1(&lib);
    let analyzer = Analyzer::new(&w.design, w.module, &lib, &w.clocks, w.spec.clone())
        .expect("figure-1 circuit conforms");
    let stats = analyzer.prep_stats();
    println!("Figure 1 — four-phase time-multiplexed logic");
    println!("  clusters with sources/sinks : {}", stats.active_clusters);
    println!("  ordering requirements       : {}", stats.requirements);
    println!(
        "  max settling times per node : {}",
        stats.max_cluster_passes
    );
    println!("  global analysis windows     : {}", stats.global_passes);
    for (i, start) in analyzer.pass_starts().iter().enumerate() {
        println!("  pass {i}: clock period broken open at {start}");
    }
    let report = analyzer.analyze();
    println!("\n{report}");
    assert_eq!(
        stats.max_cluster_passes, 2,
        "the paper's claim: this cluster needs two passes"
    );
}
