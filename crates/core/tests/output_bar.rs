//! The "further terminals" extension: output-bar (QN) on synchronising
//! elements, analyzed with real sc89 cells.

use hb_cells::sc89;
use hb_clock::ClockSet;
use hb_netlist::{Design, ModuleId, PinDir};
use hb_units::{Time, Transition};
use hummingbird::{Analyzer, EdgeSpec, Spec, TerminalKind};

/// `in -> DFFQN -> {Q -> short chain -> DFF, QN -> long chain -> DFF}`.
fn dffqn_design(q_chain: usize, qn_chain: usize) -> (Design, ModuleId, ClockSet, Spec) {
    let lib = sc89();
    let mut d = Design::new("qn");
    lib.declare_into(&mut d).unwrap();
    let m = d.add_module("top").unwrap();
    let ck = d.add_net(m, "ck").unwrap();
    let input = d.add_net(m, "in").unwrap();
    d.add_port(m, "ck", PinDir::Input, ck).unwrap();
    d.add_port(m, "in", PinDir::Input, input).unwrap();
    let dffqn = d.leaf_by_name("DFFQN").unwrap();
    let dff = d.leaf_by_name("DFF").unwrap();
    let buf = d.leaf_by_name("BUF_X1").unwrap();

    let q = d.add_net(m, "q").unwrap();
    let qn = d.add_net(m, "qn").unwrap();
    let src = d.add_leaf_instance(m, "src", dffqn).unwrap();
    d.connect(m, src, "D", input).unwrap();
    d.connect(m, src, "CK", ck).unwrap();
    d.connect(m, src, "Q", q).unwrap();
    d.connect(m, src, "QN", qn).unwrap();

    let chain = |d: &mut Design, from, len: usize, tag: &str| {
        let mut prev = from;
        for i in 0..len {
            let next = d.add_net(m, format!("{tag}{i}")).unwrap();
            let u = d.add_leaf_instance(m, format!("u_{tag}{i}"), buf).unwrap();
            d.connect(m, u, "A", prev).unwrap();
            d.connect(m, u, "Y", next).unwrap();
            prev = next;
        }
        prev
    };
    let q_end = chain(&mut d, q, q_chain, "cq");
    let qn_end = chain(&mut d, qn, qn_chain, "cn");
    for (name, net) in [("capq", q_end), ("capn", qn_end)] {
        let out = d.add_net(m, format!("{name}_q")).unwrap();
        let ff = d.add_leaf_instance(m, name, dff).unwrap();
        d.connect(m, ff, "D", net).unwrap();
        d.connect(m, ff, "CK", ck).unwrap();
        d.connect(m, ff, "Q", out).unwrap();
    }
    d.set_top(m).unwrap();

    let mut clocks = ClockSet::new();
    clocks
        .add_clock("ck", Time::from_ns(6), Time::ZERO, Time::from_ns(3))
        .unwrap();
    let spec = Spec::new().clock_port("ck", "ck").input_arrival(
        "in",
        EdgeSpec::new("ck", Transition::Rise),
        Time::ZERO,
    );
    (d, m, clocks, spec)
}

#[test]
fn qn_paths_are_timed() {
    let lib = sc89();
    // Short on both: meets.
    let (d, m, clocks, spec) = dffqn_design(2, 2);
    let report = Analyzer::new(&d, m, &lib, &clocks, spec).unwrap().analyze();
    assert!(report.ok(), "{report}");

    // Long QN chain: the violation must be found *through the bar
    // output*, even though Q's path is fine.
    let (d, m, clocks, spec) = dffqn_design(2, 40);
    let report = Analyzer::new(&d, m, &lib, &clocks, spec).unwrap().analyze();
    assert!(!report.ok(), "{report}");
    let path = &report.slow_paths()[0];
    assert_eq!(path.endpoint, "capn", "the QN-side capture flop fails");
    assert_eq!(path.steps.first().unwrap().net, "qn", "path starts at QN");
}

#[test]
fn qn_source_terminal_reports_worst_of_both_outputs() {
    let lib = sc89();
    let (d, m, clocks, spec) = dffqn_design(2, 10);
    let report = Analyzer::new(&d, m, &lib, &clocks, spec).unwrap().analyze();
    let src_out = report
        .terminal_slacks()
        .iter()
        .find(|t| t.kind == TerminalKind::SyncOutput && t.name == "src")
        .expect("source flop has an output terminal");
    // The QN chain is longer, so the merged output slack must equal the
    // capn input slack (the QN side), not the relaxed Q side.
    let capn_in = report
        .terminal_slacks()
        .iter()
        .find(|t| t.kind == TerminalKind::SyncInput && t.name == "capn")
        .expect("capn input");
    assert_eq!(src_out.slack, capn_in.slack);
}
