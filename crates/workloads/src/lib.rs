//! Deterministic synthetic benchmark designs for the hummingbird
//! reproduction.
//!
//! The original paper evaluates Hummingbird on four Berkeley Synthesis
//! System designs (Table 1): **DES**, a complete data-encryption chip of
//! 3681 standard cells; **ALU**, a 899-cell portion of a CPU; and
//! **SM1F**/**SM1H**, a 12-bit finite state machine in flattened and
//! hierarchical form. Those netlists are not available, so this crate
//! generates *seeded, deterministic* synthetic equivalents matched in
//! cell count, logic depth, clustering structure and clocking style —
//! run-time scaling (which is what Table 1 reports) depends on exactly
//! those properties, not on the specific Boolean functions.
//!
//! Every generator returns a self-contained [`Workload`]: design, top
//! module, clock set and boundary spec, ready to hand to
//! [`hummingbird::Analyzer`].
//!
//! # Examples
//!
//! ```
//! use hb_cells::sc89;
//! use hummingbird::Analyzer;
//!
//! let lib = sc89();
//! let w = hb_workloads::fsm12(&lib, true);
//! let analyzer = Analyzer::new(&w.design, w.module, &lib, &w.clocks, w.spec.clone()).unwrap();
//! let report = analyzer.analyze();
//! println!("{report}");
//! ```

mod build;
mod designs;
mod gen;

pub use build::NetlistBuilder;
pub use designs::{
    alu, counter, des_like, figure1, fsm12, latch_pipeline, random_pipeline, PipelineParams,
    Workload,
};
pub use gen::{generate, GenKind, GenParams, MIN_GEN_CELLS};
