//! Deterministic fault injection for chaos testing.
//!
//! Production code is sprinkled with *named fault points* — places
//! where an I/O operation, a sweep, or a session mutation can be made
//! to fail on purpose. A [`FaultPlan`] decides, deterministically from
//! an [`hb_rng`] seed, which checks of which points fire. The empty
//! plan ([`FaultPlan::none`]) is the production configuration: every
//! check is a single `Option` test on an unshared pointer, so the
//! hooks cost nothing when disarmed and need no `#[cfg]` gating —
//! the chaos suite exercises the *same* binary the daemon ships.
//!
//! Three ways faults reach the code under test:
//!
//! * [`FaultStream`] wraps any `Read`/`Write` pair and injects short
//!   reads/writes, [`ErrorKind::Interrupted`]/[`ErrorKind::WouldBlock`]
//!   errors, and bounded stalls (see [`stream`]);
//! * explicit plans threaded through constructors (`hb-server`'s
//!   `ServerOptions::faults`, `Session::with_faults`);
//! * the process-global plan ([`install_global`]) for hooks too deep
//!   to thread a plan into (the sharded engine's sweep loop).
//!
//! Every decision is reproducible: a plan seeded with the same value
//! and armed with the same points fires on exactly the same checks.
//!
//! [`ErrorKind::Interrupted`]: std::io::ErrorKind::Interrupted
//! [`ErrorKind::WouldBlock`]: std::io::ErrorKind::WouldBlock

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

use hb_rng::SmallRng;

mod stream;

pub use stream::FaultStream;

/// Short read: `read` hands back at most a few bytes per call.
pub const IO_READ_SHORT: &str = "io.read.short";
/// Read error: `read` fails with `Interrupted` or `WouldBlock`.
pub const IO_READ_ERR: &str = "io.read.err";
/// Read stall: `read` sleeps the plan's bounded stall first.
pub const IO_READ_STALL: &str = "io.read.stall";
/// Short write: `write` accepts at most a few bytes per call.
pub const IO_WRITE_SHORT: &str = "io.write.short";
/// Write error: `write` fails with `Interrupted`.
pub const IO_WRITE_ERR: &str = "io.write.err";
/// Write stall: `write` sleeps the plan's bounded stall first.
pub const IO_WRITE_STALL: &str = "io.write.stall";
/// The sharded engine panics at the top of a sweep evaluation
/// (checked against the *global* plan; see [`install_global`]).
pub const ENGINE_SWEEP_PANIC: &str = "engine.sweep.panic";
/// The session panics mid-`load`, after the design was installed.
pub const SESSION_LOAD_PANIC: &str = "session.load.panic";
/// The session panics mid-`eco`, after the design was mutated but
/// before it was re-analyzed — the worst case for state consistency.
pub const SESSION_ECO_PANIC: &str = "session.eco.panic";
/// The server transport skips its `catch_unwind` so an injected panic
/// escapes, kills the worker thread and genuinely poisons the session
/// lock — exercising the poison-recovery path rather than the
/// panic-isolation path.
pub const NET_UNWIND_ESCAPE: &str = "net.unwind.escape";
/// The replication control plane is cut: the node drops every
/// outbound replication exchange (sync, probe, gossip, vote request)
/// and rejects every inbound `repl-state`/`repl-pull`/`vote`, while
/// ordinary client verbs keep flowing. Armed at runtime with
/// [`FaultPlan::arm`] / healed with [`FaultPlan::disarm`], this
/// simulates a network partition isolating the node from its peers —
/// the zombie-primary scenario — without killing its process.
pub const REPL_LINK_DROP: &str = "repl.link.drop";

/// How one armed fault point behaves across successive checks.
#[derive(Clone, Copy, Debug)]
pub struct Fault {
    /// Checks to let pass before the point may fire.
    pub skip: u32,
    /// Maximum number of fires (`u32::MAX` = unlimited).
    pub budget: u32,
    /// Fire probability per eligible check, in percent (100 = always).
    /// Probabilities draw from the plan's seeded generator, so the
    /// fire pattern is a pure function of the seed.
    pub rate_pct: u8,
}

impl Fault {
    /// Fires on every check, forever.
    pub fn always() -> Fault {
        Fault {
            skip: 0,
            budget: u32::MAX,
            rate_pct: 100,
        }
    }

    /// Fires exactly once, on the first check.
    pub fn once() -> Fault {
        Fault {
            skip: 0,
            budget: 1,
            rate_pct: 100,
        }
    }

    /// Fires exactly once, on the `n`-th check (1-based).
    pub fn nth(n: u32) -> Fault {
        Fault {
            skip: n.saturating_sub(1),
            budget: 1,
            rate_pct: 100,
        }
    }

    /// Fires on roughly `pct` percent of checks, seeded-deterministic.
    pub fn with_rate(pct: u8) -> Fault {
        Fault {
            skip: 0,
            budget: u32::MAX,
            rate_pct: pct.min(100),
        }
    }

    /// Caps the total number of fires (builder style).
    pub fn budget(mut self, budget: u32) -> Fault {
        self.budget = budget;
        self
    }
}

#[derive(Clone)]
struct PointState {
    fault: Fault,
    checks: u64,
    fired: u64,
}

struct Inner {
    points: Mutex<HashMap<String, PointState>>,
    rng: Mutex<SmallRng>,
    stall: Duration,
}

/// A seeded, shareable fault schedule. Cloning is cheap (`Arc`), and
/// every clone shares the same counters, so a plan handed to a server
/// and inspected by a test observes one consistent fire history.
#[derive(Clone, Default)]
pub struct FaultPlan {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => write!(f, "FaultPlan::none"),
            Some(inner) => {
                let points = lock(&inner.points);
                let names: Vec<&str> = points.keys().map(String::as_str).collect();
                write!(f, "FaultPlan{names:?}")
            }
        }
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl FaultPlan {
    /// The disarmed plan: every check is a no-op. This is the default
    /// everywhere a plan is accepted.
    pub fn none() -> FaultPlan {
        FaultPlan { inner: None }
    }

    /// An armed plan with no points yet; arm them with
    /// [`FaultPlan::armed`]. `seed` drives every probabilistic
    /// decision the plan will ever make.
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan {
            inner: Some(Arc::new(Inner {
                points: Mutex::new(HashMap::new()),
                rng: Mutex::new(SmallRng::seed_from_u64(seed)),
                stall: Duration::from_millis(20),
            })),
        }
    }

    /// Arms `point` with `fault` (builder style).
    ///
    /// # Panics
    ///
    /// Panics when called on the disarmed plan — arming order must be
    /// explicit about the seed.
    pub fn armed(self, point: &str, fault: Fault) -> FaultPlan {
        let inner = self.inner.as_ref().expect("arm a seeded plan");
        lock(&inner.points).insert(
            point.to_owned(),
            PointState {
                fault,
                checks: 0,
                fired: 0,
            },
        );
        self
    }

    /// Arms `point` with `fault` at runtime, through a shared plan.
    /// Unlike the builder-style [`FaultPlan::armed`], this mutates the
    /// plan in place, so every clone — including one already threaded
    /// into a running server — sees the point fire from the next
    /// check on. Chaos tests use this to *start* a partition
    /// mid-flight ([`REPL_LINK_DROP`]) and [`FaultPlan::disarm`] to
    /// heal it.
    ///
    /// # Panics
    ///
    /// Panics when called on the disarmed plan, like [`FaultPlan::armed`].
    pub fn arm(&self, point: &str, fault: Fault) {
        let inner = self.inner.as_ref().expect("arm a seeded plan");
        lock(&inner.points).insert(
            point.to_owned(),
            PointState {
                fault,
                checks: 0,
                fired: 0,
            },
        );
    }

    /// Disarms `point` at runtime: subsequent checks no longer fire,
    /// on this plan and every clone of it. Returns how many times the
    /// point had fired. No-op (returning 0) when the point was never
    /// armed or the plan is disarmed.
    pub fn disarm(&self, point: &str) -> u64 {
        self.inner.as_ref().map_or(0, |inner| {
            lock(&inner.points).remove(point).map_or(0, |s| s.fired)
        })
    }

    /// Overrides the bounded stall duration used by the `*.stall`
    /// points (builder style; no-op on the disarmed plan).
    pub fn with_stall(mut self, stall: Duration) -> FaultPlan {
        if let Some(inner) = self.inner.take() {
            // Plans are built before they are shared; a sole owner can
            // rewrite the stall in place, a shared one gets a copy.
            let inner = match Arc::try_unwrap(inner) {
                Ok(mut sole) => {
                    sole.stall = stall;
                    sole
                }
                Err(shared) => Inner {
                    points: Mutex::new(lock(&shared.points).clone()),
                    rng: Mutex::new(lock(&shared.rng).clone()),
                    stall,
                },
            };
            self.inner = Some(Arc::new(inner));
        }
        self
    }

    /// Whether any point is (or ever was) armed. The disarmed plan
    /// short-circuits every check through this.
    pub fn is_armed(&self) -> bool {
        self.inner.is_some()
    }

    /// The bounded stall duration for `*.stall` points.
    pub fn stall(&self) -> Duration {
        self.inner
            .as_ref()
            .map_or(Duration::ZERO, |inner| inner.stall)
    }

    /// Whether `point` fires on this check. Counts the check either
    /// way; deterministic in the seed and the check sequence.
    pub fn fires(&self, point: &str) -> bool {
        let Some(inner) = &self.inner else {
            return false;
        };
        let mut points = lock(&inner.points);
        let Some(state) = points.get_mut(point) else {
            return false;
        };
        state.checks += 1;
        if state.checks <= u64::from(state.fault.skip)
            || state.fired >= u64::from(state.fault.budget)
        {
            return false;
        }
        let fire = state.fault.rate_pct >= 100 || {
            let roll = lock(&inner.rng).gen_range(0..100);
            roll < usize::from(state.fault.rate_pct)
        };
        if fire {
            state.fired += 1;
            hb_obs::global()
                .counter_with(
                    "hb_fault_fired_total",
                    "injected fault-point firings, by point",
                    &[("point", point)],
                )
                .inc();
        }
        fire
    }

    /// Panics with `injected fault: {point}` when `point` fires.
    pub fn maybe_panic(&self, point: &str) {
        if self.fires(point) {
            panic!("injected fault: {point}");
        }
    }

    /// How many times `point` has fired so far.
    pub fn fired(&self, point: &str) -> u64 {
        self.inner.as_ref().map_or(0, |inner| {
            lock(&inner.points).get(point).map_or(0, |s| s.fired)
        })
    }

    /// How many times `point` has been checked so far.
    pub fn checked(&self, point: &str) -> u64 {
        self.inner.as_ref().map_or(0, |inner| {
            lock(&inner.points).get(point).map_or(0, |s| s.checks)
        })
    }
}

/// `true` iff a global plan with at least one armed point is
/// installed; lets [`global_fires`] stay a single relaxed load in
/// production.
static GLOBAL_ARMED: AtomicBool = AtomicBool::new(false);
static GLOBAL: Mutex<FaultPlan> = Mutex::new(FaultPlan { inner: None });

/// Installs `plan` as the process-global plan consulted by hooks too
/// deep to thread a plan into (e.g. [`ENGINE_SWEEP_PANIC`] inside the
/// sharded sweep engine). Install [`FaultPlan::none`] to disarm.
/// Intended for chaos tests only; tests sharing a process must
/// serialise around it.
pub fn install_global(plan: FaultPlan) {
    let armed = plan.is_armed();
    *lock(&GLOBAL) = plan;
    GLOBAL_ARMED.store(armed, Ordering::Release);
}

/// Whether `point` fires on the process-global plan. Compiles down to
/// one relaxed atomic load when nothing is installed.
pub fn global_fires(point: &str) -> bool {
    if !GLOBAL_ARMED.load(Ordering::Acquire) {
        return false;
    }
    let plan = lock(&GLOBAL).clone();
    plan.fires(point)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_plan_never_fires() {
        let plan = FaultPlan::none();
        assert!(!plan.is_armed());
        for _ in 0..100 {
            assert!(!plan.fires(IO_READ_ERR));
        }
        assert_eq!(plan.fired(IO_READ_ERR), 0);
    }

    #[test]
    fn nth_and_budget_schedules() {
        let plan = FaultPlan::seeded(7).armed("p", Fault::nth(3));
        assert!(!plan.fires("p"));
        assert!(!plan.fires("p"));
        assert!(plan.fires("p"));
        assert!(!plan.fires("p"), "budget of one is spent");
        assert_eq!(plan.fired("p"), 1);
        assert_eq!(plan.checked("p"), 4);

        let plan = FaultPlan::seeded(7).armed("q", Fault::always().budget(2));
        assert_eq!((0..10).filter(|_| plan.fires("q")).count(), 2);
    }

    #[test]
    fn rates_are_seed_deterministic() {
        let pattern = |seed: u64| -> Vec<bool> {
            let plan = FaultPlan::seeded(seed).armed("r", Fault::with_rate(30));
            (0..200).map(|_| plan.fires("r")).collect()
        };
        assert_eq!(pattern(11), pattern(11), "same seed, same fires");
        assert_ne!(pattern(11), pattern(12), "different seed differs");
        let fires = pattern(11).iter().filter(|&&b| b).count();
        assert!((30..90).contains(&fires), "rate ~30%: {fires}/200");
    }

    #[test]
    fn clones_share_counters() {
        let plan = FaultPlan::seeded(5).armed("s", Fault::always());
        let clone = plan.clone();
        assert!(clone.fires("s"));
        assert_eq!(plan.fired("s"), 1);
    }

    #[test]
    fn runtime_arm_and_disarm_reach_every_clone() {
        let plan = FaultPlan::seeded(9);
        let server_side = plan.clone();
        assert!(!server_side.fires(REPL_LINK_DROP), "not armed yet");
        plan.arm(REPL_LINK_DROP, Fault::always());
        assert!(server_side.fires(REPL_LINK_DROP), "partition starts");
        assert!(server_side.fires(REPL_LINK_DROP));
        assert_eq!(plan.disarm(REPL_LINK_DROP), 2, "heal reports fires");
        assert!(!server_side.fires(REPL_LINK_DROP), "partition healed");
        assert_eq!(plan.disarm(REPL_LINK_DROP), 0, "disarm is idempotent");
    }

    #[test]
    fn global_plan_round_trips() {
        assert!(!global_fires("t"));
        install_global(FaultPlan::seeded(1).armed("t", Fault::once()));
        assert!(global_fires("t"));
        assert!(!global_fires("t"));
        install_global(FaultPlan::none());
        assert!(!global_fires("t"));
    }
}
