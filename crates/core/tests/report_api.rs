//! Report-surface tests: Display output, histograms, constraint
//! accessors.

mod common;

use common::{exact_lib, Builder};
use hb_clock::ClockSet;
use hb_units::{Time, Transition};
use hummingbird::{Analyzer, EdgeSpec, Spec, TerminalKind};

/// Three parallel chains of different lengths into three capture flops.
fn fan(delays: &[i64], period_ns: i64) -> (Builder, ClockSet, Spec) {
    let all: Vec<i64> = delays.to_vec();
    let lib = exact_lib(&all);
    let mut b = Builder::new(&lib);
    let input = b.input("in");
    let ck = b.input("ck");
    for (i, &d) in delays.iter().enumerate() {
        let mid = b.net(&format!("mid{i}"));
        b.delay_chain(input, mid, &[d]);
        let q = b.output(&format!("q{i}"));
        b.inst("FF", &[("D", mid), ("C", ck), ("Q", q)]);
    }
    let mut clocks = ClockSet::new();
    clocks
        .add_clock(
            "ck",
            Time::from_ns(period_ns),
            Time::ZERO,
            Time::from_ns(period_ns / 2),
        )
        .unwrap();
    let spec = Spec::new().clock_port("ck", "ck").input_arrival(
        "in",
        EdgeSpec::new("ck", Transition::Rise),
        Time::ZERO,
    );
    (b, clocks, spec)
}

#[test]
fn histogram_buckets_cover_all_terminals() {
    let (b, clocks, spec) = fan(&[2, 5, 9], 10);
    let lib = exact_lib(&[2, 5, 9]);
    let report = Analyzer::new(&b.design, b.module, &lib, &clocks, spec)
        .unwrap()
        .analyze();
    let hist = report.slack_histogram(Time::from_ns(2), 8);
    assert_eq!(hist.len(), 8);
    let total: usize = hist.iter().map(|(_, n)| n).sum();
    let finite = report
        .terminal_slacks()
        .iter()
        .filter(|t| t.slack.is_finite())
        .count();
    assert_eq!(total, finite, "every finite terminal lands in a bucket");
    // Slacks are 1, 5, 8 ns (period − delay) for the three flop inputs,
    // plus the PI terminal at min = 1 ns: first bucket [0, 2) holds the
    // 1 ns pair.
    assert_eq!(hist[0].0, Time::ZERO);
    assert_eq!(hist[0].1, 2);
}

#[test]
fn histogram_clamps_outliers_into_last_bucket() {
    let (b, clocks, spec) = fan(&[2, 5, 9], 10);
    let lib = exact_lib(&[2, 5, 9]);
    let report = Analyzer::new(&b.design, b.module, &lib, &clocks, spec)
        .unwrap()
        .analyze();
    let hist = report.slack_histogram(Time::from_ns(1), 2);
    let total: usize = hist.iter().map(|(_, n)| n).sum();
    assert_eq!(total, 4, "outliers clamp rather than vanish");
    assert!(hist[1].1 >= 2);
}

#[test]
#[should_panic(expected = "bucket width must be positive")]
fn histogram_rejects_zero_bucket() {
    let (b, clocks, spec) = fan(&[2], 10);
    let lib = exact_lib(&[2]);
    let report = Analyzer::new(&b.design, b.module, &lib, &clocks, spec)
        .unwrap()
        .analyze();
    let _ = report.slack_histogram(Time::ZERO, 4);
}

#[test]
fn display_summarizes_verdict_and_iterations() {
    let (b, clocks, spec) = fan(&[2, 5, 12], 10);
    let lib = exact_lib(&[2, 5, 12]);
    let report = Analyzer::new(&b.design, b.module, &lib, &clocks, spec)
        .unwrap()
        .analyze();
    let text = report.to_string();
    assert!(text.contains("VIOLATED"), "{text}");
    assert!(text.contains("worst slack -2ns"), "{text}");
    assert!(text.contains("passes:"), "{text}");
    assert!(text.contains("algorithm 1:"), "{text}");
    assert!(text.contains("slow path"), "{text}");
}

#[test]
fn constraints_accessors_are_consistent() {
    let (b, clocks, spec) = fan(&[2, 5, 9], 20);
    let lib = exact_lib(&[2, 5, 9]);
    let report = Analyzer::new(&b.design, b.module, &lib, &clocks, spec)
        .unwrap()
        .generate_constraints();
    let constraints = report.constraints().expect("generated");
    assert_eq!(constraints.pass_count(), 1);
    assert_eq!(constraints.pass_starts().len(), 1);
    let module = b.design.module(b.module);
    for name in ["mid0", "mid1", "mid2", "in"] {
        let net = module.net_by_name(name).unwrap();
        let per_pass = constraints
            .ready_in_pass(0, net)
            .expect("reached in pass 0");
        let merged = constraints.ready_at(net).expect("reached");
        assert_eq!(per_pass.worst(), merged, "{name}");
        let slack = constraints.net_slack(net).expect("both sides known");
        assert!(slack > Time::ZERO, "{name} is fast at 20 ns");
    }
    // An unconstrained net (flop output) has ready (seeded by the flop)
    // but may lack a required time; net_slack is then None.
    let q0 = module.net_by_name("q0").unwrap();
    assert!(constraints.required_at(q0).is_none());
    assert!(constraints.net_slack(q0).is_none());
}

#[test]
fn terminal_kinds_enumerate_the_boundary() {
    let (b, clocks, spec) = fan(&[2, 5], 10);
    let lib = exact_lib(&[2, 5]);
    let report = Analyzer::new(&b.design, b.module, &lib, &clocks, spec)
        .unwrap()
        .analyze();
    let count = |k: TerminalKind| {
        report
            .terminal_slacks()
            .iter()
            .filter(|t| t.kind == k)
            .count()
    };
    assert_eq!(count(TerminalKind::SyncInput), 2);
    assert_eq!(count(TerminalKind::SyncOutput), 2);
    assert_eq!(count(TerminalKind::PrimaryInput), 1);
    assert_eq!(
        count(TerminalKind::PrimaryOutput),
        0,
        "no required times set"
    );
    assert_eq!(TerminalKind::SyncInput.to_string(), "sync input");
}

/// Algorithm 2's guarantee (paper, problem statement ii): for nodes NOT
/// on too-slow paths, the generated ready time precedes the generated
/// required time — re-synthesis honouring them cannot create new
/// violations.
#[test]
fn algorithm2_times_are_ordered_off_the_slow_paths() {
    // One failing chain (12 > 10) among passing ones.
    let (b, clocks, spec) = fan(&[2, 5, 12], 10);
    let lib = exact_lib(&[2, 5, 12]);
    let report = Analyzer::new(&b.design, b.module, &lib, &clocks, spec)
        .unwrap()
        .generate_constraints();
    assert!(!report.ok());
    let constraints = report.constraints().expect("generated");
    let module = b.design.module(b.module);
    let slow: std::collections::HashSet<_> = report.slow_nets().iter().copied().collect();
    let mut checked = 0;
    for (net, n) in module.nets() {
        if slow.contains(&net) {
            continue;
        }
        if let Some(slack) = constraints.net_slack(net) {
            assert!(
                slack >= Time::ZERO,
                "net {} off the slow paths must keep ready <= required (slack {slack})",
                n.name()
            );
            checked += 1;
        }
    }
    assert!(checked >= 2, "the passing chains are checked");
    // And on the slow path the settled budget is negative.
    let mid2 = module.net_by_name("mid2").unwrap();
    assert!(slow.contains(&mid2));
    assert!(constraints.net_slack(mid2).unwrap() < Time::ZERO);
}
