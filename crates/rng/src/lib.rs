//! A small vendored pseudo-random number generator.
//!
//! Workload generators only need *seeded, deterministic* randomness —
//! cryptographic quality is irrelevant and an external dependency is a
//! liability for offline builds. This crate provides a SplitMix64
//! seeder feeding a xoshiro256** core, with the handful of sampling
//! helpers the generators actually use. The output stream for a given
//! seed is stable and part of each workload's identity: changing it
//! changes generated netlists, so treat any alteration as a breaking
//! change.

/// The SplitMix64 step: the recommended way to expand a single `u64`
/// seed into generator state with good avalanche behaviour.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Folds `value` into a running 64-bit hash with SplitMix64 avalanche
/// mixing. Not cryptographic; used for structural fingerprints (shard
/// content, protocol fuzzing) where only collision resistance against
/// accidental equality matters. The output for a given input sequence
/// is stable and must stay so: cached-state fingerprints depend on it.
pub fn mix64(acc: u64, value: u64) -> u64 {
    let mut state = acc
        .rotate_left(29)
        .wrapping_add(value.wrapping_mul(0x2545_f491_4f6c_dd1d));
    splitmix64(&mut state)
}

/// A seeded deterministic generator (xoshiro256**).
///
/// Named after the `rand` type it replaces so call sites read the same;
/// the API is the small subset the workload builders use.
#[derive(Clone, Debug)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    /// Creates a generator whose state is expanded from `seed` via
    /// SplitMix64 (never all-zero, so the core cannot get stuck).
    pub fn seed_from_u64(seed: u64) -> SmallRng {
        let mut sm = seed;
        SmallRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `usize` in `lo..hi` (debiased by rejection sampling).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range(&mut self, range: std::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "gen_range called with empty range");
        let span = (range.end - range.start) as u64;
        // Rejection zone: the largest multiple of `span` that fits in
        // u64; values above it would bias the low residues.
        let zone = u64::MAX - u64::MAX % span;
        loop {
            let v = self.next_u64();
            if v < zone {
                return range.start + (v % span) as usize;
            }
        }
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        // Compare against a 53-bit uniform in [0, 1): exact for the
        // probabilities the generators use (multiples of small powers
        // of two and decimals well above 2^-53 resolution).
        let v = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        v < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| c.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_in_bounds_and_covers() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(3..13);
            assert!((3..13).contains(&v));
            seen[v - 3] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
    }

    #[test]
    fn gen_bool_extremes_and_balance() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..100 {
            assert!(rng.gen_bool(1.0));
            assert!(!rng.gen_bool(0.0));
        }
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_500..5_500).contains(&heads), "p=0.5 balance: {heads}");
    }

    #[test]
    fn zero_seed_is_fine() {
        let mut rng = SmallRng::seed_from_u64(0);
        let outs: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert!(outs.iter().any(|&v| v != 0));
    }
}
