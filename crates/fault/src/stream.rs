//! Fault-injecting wrappers over arbitrary byte streams.
//!
//! [`FaultStream`] sits between a codec and its transport and makes
//! the transport misbehave on the plan's schedule: reads come back
//! short, fail with [`ErrorKind::Interrupted`] or
//! [`ErrorKind::WouldBlock`], or stall for a bounded duration; writes
//! likewise. Everything a real TCP stream can do on a bad day, on
//! demand and reproducibly — which is exactly what a resumable frame
//! decoder has to shrug off.

use std::io::{self, ErrorKind, Read, Write};
use std::thread;

use crate::{
    FaultPlan, IO_READ_ERR, IO_READ_SHORT, IO_READ_STALL, IO_WRITE_ERR, IO_WRITE_SHORT,
    IO_WRITE_STALL,
};

/// A `Read`/`Write` pair whose operations fail on the plan's schedule.
/// With the disarmed plan it is a transparent pass-through.
pub struct FaultStream<R, W> {
    reader: R,
    writer: W,
    plan: FaultPlan,
    /// Alternates the injected read error between `Interrupted` (which
    /// robust readers retry internally) and `WouldBlock` (which
    /// resumable readers must surface without losing partial frames).
    flip: bool,
}

impl<R> FaultStream<R, io::Sink> {
    /// Wraps only a reader; writes go to [`io::sink`].
    pub fn reader(reader: R, plan: FaultPlan) -> FaultStream<R, io::Sink> {
        FaultStream::new(reader, io::sink(), plan)
    }
}

impl<R, W> FaultStream<R, W> {
    /// Wraps a reader/writer pair under `plan`.
    pub fn new(reader: R, writer: W, plan: FaultPlan) -> FaultStream<R, W> {
        FaultStream {
            reader,
            writer,
            plan,
            flip: false,
        }
    }

    /// Unwraps the underlying pair.
    pub fn into_inner(self) -> (R, W) {
        (self.reader, self.writer)
    }

    /// The plan driving this stream (shared counters).
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }
}

impl<R: Read, W> Read for FaultStream<R, W> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.plan.fires(IO_READ_STALL) {
            thread::sleep(self.plan.stall());
        }
        if self.plan.fires(IO_READ_ERR) {
            self.flip = !self.flip;
            let kind = if self.flip {
                ErrorKind::Interrupted
            } else {
                ErrorKind::WouldBlock
            };
            return Err(io::Error::new(kind, "injected fault: io.read.err"));
        }
        if self.plan.fires(IO_READ_SHORT) && buf.len() > 1 {
            return self.reader.read(&mut buf[..1]);
        }
        self.reader.read(buf)
    }
}

impl<R, W: Write> Write for FaultStream<R, W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.plan.fires(IO_WRITE_STALL) {
            thread::sleep(self.plan.stall());
        }
        if self.plan.fires(IO_WRITE_ERR) {
            return Err(io::Error::new(
                ErrorKind::Interrupted,
                "injected fault: io.write.err",
            ));
        }
        if self.plan.fires(IO_WRITE_SHORT) && buf.len() > 1 {
            return self.writer.write(&buf[..1]);
        }
        self.writer.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.writer.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Fault;
    use std::io::Cursor;

    #[test]
    fn passthrough_when_disarmed() {
        let mut s = FaultStream::new(
            Cursor::new(b"hello".to_vec()),
            Vec::new(),
            FaultPlan::none(),
        );
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        assert_eq!(out, "hello");
        s.write_all(b"world").unwrap();
        assert_eq!(s.into_inner().1, b"world");
    }

    #[test]
    fn short_reads_still_deliver_everything() {
        let plan = FaultPlan::seeded(3).armed(IO_READ_SHORT, Fault::always());
        let mut s = FaultStream::reader(Cursor::new(b"abcdef".to_vec()), plan);
        let mut out = Vec::new();
        s.read_to_end(&mut out).unwrap();
        assert_eq!(out, b"abcdef");
        assert!(s.plan().fired(IO_READ_SHORT) >= 6, "one byte per read");
    }

    #[test]
    fn injected_errors_alternate_kinds() {
        let plan = FaultPlan::seeded(9).armed(IO_READ_ERR, Fault::always());
        let mut s = FaultStream::reader(Cursor::new(b"x".to_vec()), plan);
        let mut buf = [0u8; 4];
        let kinds: Vec<ErrorKind> = (0..4)
            .map(|_| s.read(&mut buf).unwrap_err().kind())
            .collect();
        assert!(kinds.contains(&ErrorKind::Interrupted));
        assert!(kinds.contains(&ErrorKind::WouldBlock));
    }

    #[test]
    fn write_faults_are_survivable_by_write_all() {
        // `write_all` retries Interrupted and loops over short writes,
        // so even a heavily faulted stream delivers intact bytes.
        let plan = FaultPlan::seeded(4)
            .armed(IO_WRITE_SHORT, Fault::with_rate(60))
            .armed(IO_WRITE_ERR, Fault::with_rate(30).budget(50));
        let mut s = FaultStream::new(io::empty(), Vec::new(), plan);
        let payload = vec![0xabu8; 4096];
        let mut written = 0usize;
        while written < payload.len() {
            match s.write(&payload[written..]) {
                Ok(n) => written += n,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => panic!("unexpected write error: {e}"),
            }
        }
        assert_eq!(s.into_inner().1, payload);
    }
}
