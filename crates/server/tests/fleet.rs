//! The multi-tenant fleet end to end: `design=` routing, the
//! `open`/`close`/`designs` management verbs, tenant isolation, and
//! LRU eviction under both bounds (`max_designs`, `mem_budget`) with
//! transparent journal reload.

use std::collections::HashMap;
use std::thread;

use hb_cells::sc89;
use hb_io::Frame;
use hb_server::{Client, Server, ServerOptions, DEFAULT_DESIGN, MAX_DESIGN_ID, MAX_LOAD_BYTES};
use hb_workloads::{generate, GenKind, GenParams};

fn start_server(
    options: ServerOptions,
) -> (
    std::net::SocketAddr,
    thread::JoinHandle<std::io::Result<()>>,
) {
    let server = Server::bind("127.0.0.1:0", sc89(), options).unwrap();
    let addr = server.local_addr().unwrap();
    let handle = thread::spawn(move || server.run());
    (addr, handle)
}

/// A tiny self-contained design whose module name doubles as its
/// identity, so every tenant's dump and fingerprint differ.
fn design_text(name: &str) -> String {
    format!(
        "design {name}\n\
         module top\n\
         \x20 port in din clk\n\
         \x20 port out dout\n\
         \x20 inst g0 BUF_X1 A=din Y=n0\n\
         \x20 inst g1 INV_X1 A=n0 Y=n1\n\
         \x20 inst g2 XOR2_X1 A=n1 B=din Y=n2\n\
         \x20 inst cap DFF D=n2 CK=clk Q=dout\n\
         end\n\
         top top\n\
         clock clk period 10ns rise 0ns fall 5ns\n\
         clockport clk clk\n\
         arrive din clk rise 1ns\n"
    )
}

/// One line of a `designs` reply payload, parsed.
#[derive(Debug)]
struct DesignLine {
    resident: bool,
    bytes: usize,
    fp: String,
}

fn parse_designs(reply: &Frame) -> HashMap<String, DesignLine> {
    assert_eq!(reply.verb, "ok", "{:?}", reply.payload);
    reply
        .payload
        .as_deref()
        .unwrap_or("")
        .lines()
        .map(|line| {
            let mut parts = line.split_whitespace();
            let id = parts.next().unwrap().to_owned();
            let mut kv: HashMap<&str, &str> = parts.map(|p| p.split_once('=').unwrap()).collect();
            let line = DesignLine {
                resident: kv.remove("resident") == Some("1"),
                bytes: kv.remove("bytes").unwrap().parse().unwrap(),
                fp: kv.remove("fp").unwrap().to_owned(),
            };
            (id, line)
        })
        .collect()
}

#[test]
fn open_close_designs_lifecycle_and_isolation() {
    let (addr, server) = start_server(ServerOptions::default());
    let mut client = Client::connect(addr).unwrap();

    // Open two tenants; re-opening is idempotent.
    let reply = client
        .request(&Frame::new("open").arg("design", "a"))
        .unwrap();
    assert_eq!(reply.verb, "ok", "{:?}", reply.payload);
    assert_eq!(reply.get("created"), Some("1"));
    let reply = client
        .request(&Frame::new("open").arg("design", "b"))
        .unwrap();
    assert_eq!(reply.get("created"), Some("1"));
    let reply = client
        .request(&Frame::new("open").arg("design", "a"))
        .unwrap();
    assert_eq!(reply.get("created"), Some("0"));

    // Load different designs into each; the default stays empty.
    for id in ["a", "b"] {
        let reply = client
            .request(
                &Frame::new("load")
                    .arg("design", id)
                    .with_payload(design_text(id)),
            )
            .unwrap();
        assert_eq!(reply.verb, "ok", "{:?}", reply.payload);
        let reply = client
            .request(&Frame::new("analyze").arg("design", id))
            .unwrap();
        assert_eq!(reply.verb, "ok");
    }

    // Isolation: each tenant's stats and dump are its own.
    let stats_a = client
        .request(&Frame::new("stats").arg("design", "a"))
        .unwrap();
    assert_eq!(stats_a.get("design"), Some("a"));
    assert_eq!(stats_a.get("loads"), Some("1"));
    let dump_a = client
        .request(&Frame::new("dump").arg("design", "a"))
        .unwrap();
    let dump_b = client
        .request(&Frame::new("dump").arg("design", "b"))
        .unwrap();
    assert_ne!(dump_a.payload, dump_b.payload, "tenants must not share");
    // A request without design= still routes to the (empty) default.
    let reply = client.request(&Frame::new("dump")).unwrap();
    assert_eq!(reply.get("code"), Some("no-design"));

    // The table lists every design with its accounting.
    let reply = client.request(&Frame::new("designs")).unwrap();
    assert_eq!(reply.get("count"), Some("3"));
    let table = parse_designs(&reply);
    assert!(table.contains_key(DEFAULT_DESIGN));
    assert!(table["a"].resident && table["b"].resident);
    assert!(table["a"].bytes > table[DEFAULT_DESIGN].bytes);
    assert_ne!(table["a"].fp, "-", "a mutated design has a fingerprint");

    // Close: b goes away, the default is not closeable.
    let reply = client
        .request(&Frame::new("close").arg("design", "b"))
        .unwrap();
    assert_eq!(reply.verb, "ok");
    let reply = client
        .request(&Frame::new("stats").arg("design", "b"))
        .unwrap();
    assert_eq!(reply.get("code"), Some("unknown-design"));
    let reply = client
        .request(&Frame::new("close").arg("design", "b"))
        .unwrap();
    assert_eq!(reply.get("code"), Some("unknown-design"));
    let reply = client
        .request(&Frame::new("close").arg("design", DEFAULT_DESIGN))
        .unwrap();
    assert_eq!(reply.get("code"), Some("usage"));

    // a survived its sibling's close.
    let reply = client
        .request(&Frame::new("dump").arg("design", "a"))
        .unwrap();
    assert_eq!(reply.payload, dump_a.payload);

    client.request(&Frame::new("shutdown")).unwrap();
    server.join().unwrap().unwrap();
}

#[test]
fn hostile_and_unknown_design_ids_get_structured_errors() {
    let (addr, server) = start_server(ServerOptions::default());
    let mut client = Client::connect(addr).unwrap();

    // Routing to a design nobody opened: structured error, connection
    // survives.
    let reply = client
        .request(&Frame::new("analyze").arg("design", "nope"))
        .unwrap();
    assert_eq!(reply.verb, "error");
    assert_eq!(reply.get("code"), Some("unknown-design"));

    // Hostile ids are rejected at `open`, with the id sanitised in the
    // error payload rather than echoed raw. (Ids with whitespace,
    // NULs, or nothing at all cannot even be encoded as header tokens
    // — those raw-socket cases live in hb-io's error_paths suite.)
    for bad in ["semi;colon", "slash/id", &"x".repeat(MAX_DESIGN_ID + 1)] {
        let reply = client
            .request(&Frame::new("open").arg("design", bad))
            .unwrap();
        assert_eq!(reply.verb, "error", "id {bad:?}");
        assert_eq!(reply.get("code"), Some("usage"), "id {bad:?}");
    }
    // Dots, dashes, underscores are all fine.
    let reply = client
        .request(&Frame::new("open").arg("design", "soc_v2.rev-3"))
        .unwrap();
    assert_eq!(reply.verb, "ok", "{:?}", reply.payload);

    let reply = client.request(&Frame::new("hello")).unwrap();
    assert_eq!(reply.verb, "ok");
    client.request(&Frame::new("shutdown")).unwrap();
    server.join().unwrap().unwrap();
}

/// The acceptance bound: under a 64-design storm with a small memory
/// budget, the resident set's combined footprint stays inside the
/// budget (the LRU tail is evicted), and an evicted design answers its
/// next request transparently — same dump, same fingerprint — via
/// journal reload.
#[test]
fn lru_eviction_respects_mem_budget_and_reloads_transparently() {
    const STORM: usize = 64;
    const BUDGET: usize = 24 * 1024;
    let options = ServerOptions {
        mem_budget: BUDGET,
        max_designs: STORM + 1,
        ..ServerOptions::default()
    };
    let (addr, server) = start_server(options);
    let mut client = Client::connect(addr).unwrap();

    for i in 0..STORM {
        let id = format!("d{i}");
        let reply = client
            .request(&Frame::new("open").arg("design", &id))
            .unwrap();
        assert_eq!(reply.verb, "ok");
        let reply = client
            .request(
                &Frame::new("load")
                    .arg("design", &id)
                    .with_payload(design_text(&id)),
            )
            .unwrap();
        assert_eq!(reply.verb, "ok", "{:?}", reply.payload);
        let reply = client
            .request(&Frame::new("analyze").arg("design", &id))
            .unwrap();
        assert_eq!(reply.verb, "ok");
    }

    let reply = client.request(&Frame::new("designs")).unwrap();
    assert_eq!(reply.get("count"), Some(format!("{}", STORM + 1).as_str()));
    let table = parse_designs(&reply);
    let resident_bytes: usize = table.values().filter(|l| l.resident).map(|l| l.bytes).sum();
    assert!(
        resident_bytes <= BUDGET,
        "resident set {resident_bytes}B exceeds the {BUDGET}B budget"
    );
    let evicted = table.values().filter(|l| !l.resident).count();
    assert!(evicted > 0, "a 64-design storm must evict something");
    // d0 is the coldest tenant; the storm must have evicted it.
    assert!(!table["d0"].resident, "LRU must evict the coldest design");
    let fp_before = table["d0"].fp.clone();
    assert_ne!(fp_before, "-");

    // The evictions were observed by the metrics layer.
    let metrics = client.request(&Frame::new("metrics")).unwrap();
    let body = metrics.payload.unwrap_or_default();
    let evictions: u64 = body
        .lines()
        .find_map(|l| l.strip_prefix("hb_evictions_total "))
        .expect("hb_evictions_total exported")
        .trim()
        .parse()
        .unwrap();
    assert!(evictions as usize >= evicted);

    // Touching the evicted design reloads it from its journal — the
    // reply is built from a session replay whose fingerprint is
    // verified against the journal's, so a non-error answer here *is*
    // the exactness proof.
    let reply = client
        .request(&Frame::new("dump").arg("design", "d0"))
        .unwrap();
    assert_eq!(reply.verb, "ok", "{:?}", reply.payload);
    assert!(reply.payload.unwrap().contains("design d0"));
    let reply = client
        .request(&Frame::new("slack").arg("design", "d0").arg("node", "n1"))
        .unwrap();
    assert_eq!(reply.verb, "ok", "{:?}", reply.payload);

    // The reload preserved the journal fingerprint verbatim.
    let table = parse_designs(&client.request(&Frame::new("designs")).unwrap());
    assert_eq!(table["d0"].fp, fp_before, "reload changed the fingerprint");

    client.request(&Frame::new("shutdown")).unwrap();
    server.join().unwrap().unwrap();
}

/// A generated 100k-cell tenant in a budgeted fleet: its `.hum` text
/// fits the load cap, its accounted footprint stays inside a stated
/// bound (and inside the budget), and after the LRU evicts it in
/// favour of small tenants, a journal replay reproduces the identical
/// fingerprint.
#[test]
fn big_generated_tenant_survives_eviction_with_identical_fingerprint() {
    const CELLS: usize = 100_000;
    const BUDGET: usize = 48 * 1024 * 1024;
    // approx_resident_bytes is a stable formula over cell/net counts;
    // at 100k cells (and ~100k nets) it lands between these bounds.
    const BYTES_LOW: usize = 20 * 1024 * 1024;
    const BYTES_HIGH: usize = 40 * 1024 * 1024;

    let lib = sc89();
    let w = generate(&lib, &GenParams::new(GenKind::Sram, CELLS, 1));
    let text = w.to_hum();
    assert!(
        text.len() <= MAX_LOAD_BYTES,
        "compact naming keeps a 100k-cell .hum ({} bytes) under the {MAX_LOAD_BYTES}-byte load cap",
        text.len()
    );

    let options = ServerOptions {
        mem_budget: BUDGET,
        max_designs: 2,
        ..ServerOptions::default()
    };
    let (addr, server) = start_server(options);
    let mut client = Client::connect(addr).unwrap();

    let reply = client
        .request(&Frame::new("open").arg("design", "big"))
        .unwrap();
    assert_eq!(reply.verb, "ok", "{:?}", reply.payload);
    let reply = client
        .request(
            &Frame::new("load")
                .arg("design", "big")
                .with_payload(text.clone()),
        )
        .unwrap();
    assert_eq!(reply.verb, "ok", "{:?}", reply.payload);
    let reply = client
        .request(&Frame::new("analyze").arg("design", "big"))
        .unwrap();
    assert_eq!(reply.verb, "ok", "{:?}", reply.payload);

    let table = parse_designs(&client.request(&Frame::new("designs")).unwrap());
    assert!(table["big"].resident);
    let bytes = table["big"].bytes;
    assert!(
        (BYTES_LOW..=BYTES_HIGH).contains(&bytes),
        "100k-cell session accounts {bytes} bytes, outside [{BYTES_LOW}, {BYTES_HIGH}]"
    );
    assert!(bytes <= BUDGET, "the big tenant must fit the budget alone");
    let fp_before = table["big"].fp.clone();
    assert_ne!(fp_before, "-");

    // The observability gauge agrees with the fleet table: everything
    // resident is the big tenant plus near-empty sessions.
    let metrics = client.request(&Frame::new("metrics")).unwrap();
    let gauge: usize = metrics
        .payload
        .unwrap_or_default()
        .lines()
        .find_map(|l| l.strip_prefix("hb_session_bytes "))
        .expect("hb_session_bytes exported")
        .trim()
        .parse()
        .unwrap();
    assert!(
        gauge >= bytes && gauge <= bytes + 64 * 1024,
        "hb_session_bytes {gauge} strays from the fleet table's {bytes}"
    );

    // Two small tenants push the big one off the 2-session LRU.
    for id in ["s0", "s1"] {
        client
            .request(&Frame::new("open").arg("design", id))
            .unwrap();
        let reply = client
            .request(
                &Frame::new("load")
                    .arg("design", id)
                    .with_payload(design_text(id)),
            )
            .unwrap();
        assert_eq!(reply.verb, "ok", "{:?}", reply.payload);
    }
    let table = parse_designs(&client.request(&Frame::new("designs")).unwrap());
    assert!(!table["big"].resident, "the big tenant must be evicted");
    assert_eq!(table["big"].fp, fp_before, "eviction must not lose state");

    // Touching it replays the journal; the replayed session must carry
    // the identical fingerprint and answer with the identical design.
    let reply = client
        .request(&Frame::new("stats").arg("design", "big"))
        .unwrap();
    assert_eq!(reply.verb, "ok", "{:?}", reply.payload);
    assert_eq!(reply.get("design"), Some("gen_sram"));
    let table = parse_designs(&client.request(&Frame::new("designs")).unwrap());
    assert!(table["big"].resident, "a touched design is resident again");
    assert_eq!(table["big"].fp, fp_before, "replay changed the fingerprint");
    assert_eq!(table["big"].bytes, bytes, "replay changed the footprint");

    client.request(&Frame::new("shutdown")).unwrap();
    server.join().unwrap().unwrap();
}

/// `max_designs` alone (no byte budget) also bounds the resident set.
#[test]
fn max_designs_bounds_the_resident_set() {
    let options = ServerOptions {
        max_designs: 2,
        ..ServerOptions::default()
    };
    let (addr, server) = start_server(options);
    let mut client = Client::connect(addr).unwrap();

    for id in ["a", "b", "c", "d"] {
        client
            .request(&Frame::new("open").arg("design", id))
            .unwrap();
        let reply = client
            .request(
                &Frame::new("load")
                    .arg("design", id)
                    .with_payload(design_text(id)),
            )
            .unwrap();
        assert_eq!(reply.verb, "ok");
    }
    let reply = client.request(&Frame::new("designs")).unwrap();
    let live: usize = reply.get("live").unwrap().parse().unwrap();
    assert!(live <= 2, "resident set {live} exceeds max_designs=2");
    assert_eq!(reply.get("count"), Some("5"), "evicted designs stay open");

    // Every design still answers, resident or not.
    for id in ["a", "b", "c", "d"] {
        let reply = client
            .request(&Frame::new("stats").arg("design", id))
            .unwrap();
        assert_eq!(reply.verb, "ok", "{id}: {:?}", reply.payload);
        assert_eq!(reply.get("design"), Some(id));
    }

    client.request(&Frame::new("shutdown")).unwrap();
    server.join().unwrap().unwrap();
}
