#!/usr/bin/env bash
# Repository gate: formatting, lints, and the full test suite.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test -q"
cargo test -q

echo "== all checks passed"
