//! Property-style tests of the block-analysis engine on random
//! generated networks, driven by a seeded deterministic generator.

use hb_cells::{sc89, Binding};
use hb_netlist::{Design, ModuleId, NetId, PinDir};
use hb_rng::SmallRng;
use hb_sta::analysis::{
    propagate_ready_max, propagate_ready_min, propagate_required, slack_table, table,
};
use hb_sta::paths::{critical_path, enumerate_max_arrival};
use hb_sta::TimingGraph;
use hb_units::{RiseFall, Time, Transition};

const CASES: u64 = 64;

/// Builds a random DAG of library gates over `n` levels; returns the
/// design and the input net.
fn random_dag(gate_picks: &[u8], fan_picks: &[u8]) -> (Design, ModuleId, NetId) {
    let lib = sc89();
    let mut d = Design::new("p");
    lib.declare_into(&mut d).unwrap();
    let m = d.add_module("top").unwrap();
    let a = d.add_net(m, "a").unwrap();
    d.add_port(m, "a", PinDir::Input, a).unwrap();
    let cells = ["INV_X1", "BUF_X1", "NAND2_X1", "NOR2_X1", "XOR2_X1"];
    let mut pool = vec![a];
    for (i, (&g, &f)) in gate_picks.iter().zip(fan_picks).enumerate() {
        let cell = cells[g as usize % cells.len()];
        let leaf = d.leaf_by_name(cell).unwrap();
        let y = d.add_net(m, format!("w{i}")).unwrap();
        let u = d.add_leaf_instance(m, format!("u{i}"), leaf).unwrap();
        let in1 = pool[f as usize % pool.len()];
        d.connect(m, u, "A", in1).unwrap();
        if d.leaf(leaf).pin_by_name("B").is_some() {
            let in2 = pool[(f as usize / 2) % pool.len()];
            d.connect(m, u, "B", in2).unwrap();
        }
        d.connect(m, u, "Y", y).unwrap();
        pool.push(y);
    }
    d.set_top(m).unwrap();
    (d, m, a)
}

fn random_picks(rng: &mut SmallRng, lo: usize, hi: usize) -> (Vec<u8>, Vec<u8>) {
    let n = rng.gen_range(lo..hi);
    let gates = (0..n).map(|_| rng.gen_range(0..256) as u8).collect();
    let fans = (0..n).map(|_| rng.gen_range(0..256) as u8).collect();
    (gates, fans)
}

/// The block method and exhaustive enumeration agree exactly.
#[test]
fn block_equals_enumeration() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x4001 + case);
        let (gates, fans) = random_picks(&mut rng, 1, 24);
        let (d, m, a) = random_dag(&gates, &fans);
        let lib = sc89();
        let binding = Binding::new(&d, &lib);
        let g = TimingGraph::build(&d, m, &binding, &lib).unwrap();

        let mut block = table(&g, Time::NEG_INF);
        block[a.as_raw() as usize] = RiseFall::ZERO;
        propagate_ready_max(&g, &mut block);
        let (enumerated, stats) = enumerate_max_arrival(&g, &[(a, RiseFall::ZERO)], u64::MAX / 2);
        assert!(!stats.truncated);
        assert_eq!(enumerated, block);
    }
}

/// Minimum arrivals never exceed maximum arrivals on reached nets.
#[test]
fn min_arrival_below_max() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x4002 + case);
        let (gates, fans) = random_picks(&mut rng, 1, 24);
        let (d, m, a) = random_dag(&gates, &fans);
        let lib = sc89();
        let binding = Binding::new(&d, &lib);
        let g = TimingGraph::build(&d, m, &binding, &lib).unwrap();

        let mut rmax = table(&g, Time::NEG_INF);
        let mut rmin = table(&g, Time::INF);
        rmax[a.as_raw() as usize] = RiseFall::ZERO;
        rmin[a.as_raw() as usize] = RiseFall::ZERO;
        propagate_ready_max(&g, &mut rmax);
        propagate_ready_min(&g, &mut rmin);
        for i in 0..g.node_count() {
            for tr in Transition::BOTH {
                if rmax[i][tr].is_finite() {
                    assert!(rmin[i][tr] <= rmax[i][tr]);
                }
            }
        }
    }
}

/// Every critical path is explainable: monotone arrivals, endpoints
/// consistent, and the block-method invariant that the path slack is
/// constant along a critical path.
#[test]
fn critical_paths_are_consistent() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x4003 + case);
        let (gates, fans) = random_picks(&mut rng, 2, 24);
        let (d, m, a) = random_dag(&gates, &fans);
        let lib = sc89();
        let binding = Binding::new(&d, &lib);
        let g = TimingGraph::build(&d, m, &binding, &lib).unwrap();

        let mut ready = table(&g, Time::NEG_INF);
        ready[a.as_raw() as usize] = RiseFall::ZERO;
        propagate_ready_max(&g, &mut ready);

        // Pick the globally worst (net, transition) as the endpoint.
        let mut worst = (a, Transition::Rise, Time::NEG_INF);
        for (id, _) in d.module(m).nets() {
            for tr in Transition::BOTH {
                let t = ready[id.as_raw() as usize][tr];
                if t.is_finite() && t > worst.2 {
                    worst = (id, tr, t);
                }
            }
        }
        if !worst.2.is_finite() {
            continue;
        }
        let path = critical_path(&g, &ready, worst.0, worst.1).expect("reached");
        assert_eq!(path.source(), a, "worst path originates at the only seed");
        assert_eq!(path.sink(), worst.0);
        assert_eq!(path.delay(), worst.2);
        for pair in path.steps.windows(2) {
            assert!(pair[0].time <= pair[1].time);
        }

        // Slack constancy along the critical path when the endpoint is
        // required exactly at its arrival.
        let mut required = table(&g, Time::INF);
        required[worst.0.as_raw() as usize] = RiseFall::splat(worst.2);
        propagate_required(&g, &mut required);
        let slacks = slack_table(&ready, &required);
        for step in &path.steps {
            let s = slacks[step.net.as_raw() as usize][step.transition];
            assert_eq!(s, Time::ZERO, "critical path has zero slack throughout");
        }
    }
}
