//! The `serve`, `query` and `flow` subcommands: the thin shell around
//! [`hb_server`].
//!
//! ```text
//! hummingbird serve [--listen ADDR] [--stdio] [--reactor]
//!                   [--library FILE] [--max-conns N]
//!                   [--max-designs N] [--mem-budget BYTES]
//!                   [--standby-of ADDR] [--peers ADDR,ADDR,...]
//! hummingbird query ADDR [--design ID] [--timeout MS]
//!                        <request> [args...] [key=value...]
//! hummingbird query ADDR [--design ID] --pipeline [FILE]
//! hummingbird flow ADDR FILE [--designs N] [--ecos K] [--jobs C]
//!                            [--library FILE]
//!
//! requests:
//!   load FILE                 send a .hum (or .blif) design to the daemon
//!   analyze | constraints     (re-)run the analysis on the resident design
//!   slack NODE [NODE...]      slack at nets or synchronizer instances;
//!                             several nodes batch into one request
//!   worst-paths [K]           the K slowest paths (default 5)
//!   min-period                smallest feasible clock period, solved from
//!                             the resident parametric (symbolic) table
//!   slack-at period=P [node=N]  slack at an arbitrary period, evaluated
//!                             from the parametric table (no re-analysis)
//!   period-sweep lo=A hi=B step=S  feasibility/worst-slack table across
//!                             a period range, one frame
//!   eco resize INST [STEPS]   retarget an instance's drive strength
//!   eco scale-net NET PCT     scale a net's load to PCT percent
//!   open ID | close ID        open or close a design slot in the fleet
//!   designs                   list open designs (residency, journal, fp)
//!   metrics                   Prometheus-style text exposition of the
//!                             daemon's counters and histograms
//!   dump | stats | shutdown
//! ```
//!
//! `serve` prints `listening on IP:PORT` once the socket is bound (bind
//! port 0 for an ephemeral port), then blocks until a client sends
//! `shutdown`. With `--reactor` the daemon serves every connection from
//! one `poll(2)` event loop instead of a thread per connection — the
//! c10k transport, with identical replies. `--max-designs` and
//! `--mem-budget` bound the resident session fleet (LRU eviction,
//! transparent journal reload); `--standby-of ADDR` runs this daemon
//! as a warm standby replicating the primary at ADDR, promoting itself
//! when the primary dies. `--peers` names the other cluster members:
//! promotion then requires a ranked majority vote (fencing terms keep
//! a partitioned ex-primary from accepting writes), and standbys can
//! chain off other standbys.
//!
//! `query --design ID` routes the request to one design of a
//! multi-tenant daemon; `--timeout MS` bounds the whole request for
//! scripted flows (a slow daemon becomes exit code 3, not a hang).
//!
//! `query --pipeline` reads one request per line from FILE (stdin when
//! absent; blank lines and `#` comments skipped), writes them down the
//! connection in pipelined windows, and prints the replies in order —
//! N requests for one round trip. Any trailing `key=value` words on a
//! `query` are passed through verbatim as request arguments — e.g.
//! `clock=ck:20:0:10` when loading a BLIF netlist.
//!
//! `flow` is the batch driver mirroring a synthesis loop: for each of
//! `--designs N` concurrent flows it opens its own design, loads FILE,
//! generates constraints, applies `--ecos K` engineering changes, and
//! prints a slack / worst-paths report bundle per design — in design
//! order, whatever `--jobs` interleaving served them. It doubles as
//! the fleet load generator for `server_bench`.

use std::io::Write;
use std::time::Duration;

use hb_io::Frame;
use hb_server::{serve_stream, Client, Server, ServerOptions};

use crate::{load_library, CliError};

const SERVE_USAGE: &str = "usage: hummingbird serve [--listen ADDR] [--stdio] [--reactor] \
[--library LIB.txt] [--max-conns N] [--max-designs N] [--mem-budget BYTES] [--standby-of ADDR] \
[--peers ADDR,ADDR,...]";
const QUERY_USAGE: &str = "usage: hummingbird query ADDR [--design ID] [--timeout MS] \
<load FILE | analyze | constraints | slack NODE [NODE...] | worst-paths [K] | \
min-period | slack-at period=P [node=N] | period-sweep lo=A hi=B step=S | \
eco resize INST [STEPS] | eco scale-net NET PCT | open ID | close ID | designs | \
dump | stats | metrics | shutdown> \
[key=value...]\n       hummingbird query ADDR [--design ID] --pipeline [FILE]";
const FLOW_USAGE: &str = "usage: hummingbird flow ADDR DESIGN.hum \
[--designs N] [--ecos K] [--jobs C] [--library LIB.txt]";

/// Frames per pipelined window: enough to amortise the round trip,
/// small enough that neither side's socket buffer fills with requests
/// while replies wait unread (which would deadlock both peers).
const PIPELINE_WINDOW: usize = 128;

/// `hummingbird serve`: bind, announce, block until `shutdown`.
pub fn run_serve(args: &[&str], out: &mut impl Write) -> Result<u8, CliError> {
    let mut listen = "127.0.0.1:0".to_owned();
    let mut stdio = false;
    let mut reactor = false;
    let mut library = None;
    let mut options = ServerOptions::default();
    let mut it = args.iter();
    while let Some(&arg) = it.next() {
        match arg {
            "--listen" => {
                listen = it
                    .next()
                    .ok_or_else(|| CliError::usage("--listen needs a value"))?
                    .to_string();
            }
            "--stdio" => stdio = true,
            "--reactor" => reactor = true,
            "--library" => library = it.next().map(|s| s.to_string()),
            "--max-conns" => {
                options.max_connections = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n > 0)
                    .ok_or_else(|| CliError::usage("--max-conns needs a positive count"))?;
            }
            "--max-designs" => {
                options.max_designs = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n > 0)
                    .ok_or_else(|| CliError::usage("--max-designs needs a positive count"))?;
            }
            "--mem-budget" => {
                options.mem_budget = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| CliError::usage("--mem-budget needs a byte count"))?;
            }
            "--standby-of" => {
                options.standby_of = Some(
                    it.next()
                        .ok_or_else(|| CliError::usage("--standby-of needs an address"))?
                        .to_string(),
                );
            }
            "--peers" => {
                options.peers = it
                    .next()
                    .ok_or_else(|| CliError::usage("--peers needs a comma-separated address list"))?
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(str::to_owned)
                    .collect();
            }
            other => {
                return Err(CliError::usage(format!(
                    "unexpected argument {other:?}\n{SERVE_USAGE}"
                )))
            }
        }
    }
    let library = load_library(library.as_deref())?;

    if stdio {
        // The TCP server arms in `run`; the stdio daemon arms here so
        // `query metrics` histograms carry data in both modes.
        hb_obs::arm();
        let stdin = std::io::stdin();
        serve_stream(library, stdin.lock(), out)
            .map_err(|e| CliError::io(format!("serve --stdio: {e}")))?;
        return Ok(0);
    }

    let server = Server::bind(&listen, library, options)
        .map_err(|e| CliError::io(format!("cannot bind {listen}: {e}")))?;
    let addr = server
        .local_addr()
        .map_err(|e| CliError::io(format!("serve: {e}")))?;
    // Announce before blocking so wrappers can scrape the port.
    writeln!(out, "listening on {addr}").map_err(|e| CliError::io(e.to_string()))?;
    out.flush().map_err(|e| CliError::io(e.to_string()))?;
    if reactor {
        server.run_reactor()
    } else {
        server.run()
    }
    .map_err(|e| CliError::io(format!("serve: {e}")))?;
    writeln!(out, "shutdown complete").map_err(|e| CliError::io(e.to_string()))?;
    Ok(0)
}

/// `hummingbird query`: one request, one reply, one exit code.
pub fn run_query(args: &[&str], out: &mut impl Write) -> Result<u8, CliError> {
    let (addr, mut rest) = args
        .split_first()
        .ok_or_else(|| CliError::usage(QUERY_USAGE))?;
    // Leading flags, before the request word.
    let mut design: Option<&str> = None;
    let mut timeout: Option<Duration> = None;
    loop {
        match rest.first().copied() {
            Some("--design") => {
                design = Some(
                    rest.get(1)
                        .copied()
                        .ok_or_else(|| CliError::usage("--design needs an id"))?,
                );
                rest = &rest[2..];
            }
            Some("--timeout") => {
                let ms: u64 = rest
                    .get(1)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n > 0)
                    .ok_or_else(|| CliError::usage("--timeout needs milliseconds"))?;
                timeout = Some(Duration::from_millis(ms));
                rest = &rest[2..];
            }
            _ => break,
        }
    }
    let (&cmd, rest) = rest
        .split_first()
        .ok_or_else(|| CliError::usage(QUERY_USAGE))?;
    if cmd == "--pipeline" {
        return run_query_pipeline(addr, rest.first().copied(), design, out);
    }
    let mut request = build_request(cmd, rest)?;
    if let Some(design) = design {
        request = request.arg("design", design);
    }

    let reply = match timeout {
        // A deadline means exactly one attempt: scripted flows want a
        // bounded answer, not a retry loop stretching past it.
        Some(timeout) => {
            let mut client =
                Client::connect(*addr).map_err(|e| CliError::io(format!("{addr}: {e}")))?;
            client
                .set_timeout(Some(timeout))
                .map_err(|e| CliError::io(format!("{addr}: {e}")))?;
            client
                .request(&request)
                .map_err(|e| CliError::io(format!("{addr}: {e}")))?
        }
        // Overload-aware: a daemon at its connection cap (or holding
        // the session lock past its deadline) answers `busy
        // retry_after_ms=N`; retry with backoff instead of failing the
        // first shed.
        None => Client::request_with_backoff(*addr, &request, 5)
            .map_err(|e| CliError::io(format!("{addr}: {e}")))?,
    };

    print_reply(&reply, out)?;

    if reply.verb == "error" {
        let code = reply.get("code").unwrap_or("unknown");
        return Err(CliError::analysis(format!(
            "daemon refused {cmd:?}: {code}"
        )));
    }
    // Analysis-bearing replies carry the one-shot driver's verdict.
    Ok(match reply.get("ok") {
        Some("0") => 1,
        _ => 0,
    })
}

/// `hummingbird query ADDR --pipeline [FILE]`: one request per line,
/// written down the connection in pipelined windows, replies printed
/// in order. Exit code 1 if any reply was an error or a failed-timing
/// verdict.
fn run_query_pipeline(
    addr: &str,
    file: Option<&str>,
    design: Option<&str>,
    out: &mut impl Write,
) -> Result<u8, CliError> {
    let text = match file {
        Some(path) => std::fs::read_to_string(path)
            .map_err(|e| CliError::io(format!("cannot read {path}: {e}")))?,
        None => std::io::read_to_string(std::io::stdin())
            .map_err(|e| CliError::io(format!("cannot read stdin: {e}")))?,
    };
    let mut requests = Vec::new();
    for line in text.lines() {
        let words: Vec<&str> = line.split_whitespace().collect();
        match words.split_first() {
            None => continue,
            Some((cmd, _)) if cmd.starts_with('#') => continue,
            Some((cmd, rest)) => {
                let mut request = build_request(cmd, rest)?;
                if let Some(design) = design {
                    request = request.arg("design", design);
                }
                requests.push(request);
            }
        }
    }
    if requests.is_empty() {
        return Err(CliError::usage("query --pipeline: no requests to send"));
    }

    let mut client = Client::connect(addr).map_err(|e| CliError::io(format!("{addr}: {e}")))?;
    let mut code = 0u8;
    for window in requests.chunks(PIPELINE_WINDOW) {
        let replies = client
            .request_pipelined(window)
            .map_err(|e| CliError::io(format!("{addr}: {e}")))?;
        for reply in &replies {
            print_reply(reply, out)?;
            if reply.verb == "error" || reply.get("ok") == Some("0") {
                code = 1;
            }
        }
    }
    Ok(code)
}

/// `hummingbird flow`: N concurrent design flows against one daemon —
/// the multi-tenant batch driver and fleet load generator.
pub fn run_flow(args: &[&str], out: &mut impl Write) -> Result<u8, CliError> {
    let (addr, rest) = args
        .split_first()
        .ok_or_else(|| CliError::usage(FLOW_USAGE))?;
    let (&file, rest) = rest
        .split_first()
        .ok_or_else(|| CliError::usage(FLOW_USAGE))?;
    let mut designs = 4usize;
    let mut ecos = 4usize;
    let mut jobs = 0usize;
    let mut library = None;
    let mut it = rest.iter();
    while let Some(&arg) = it.next() {
        let mut count = |name: &str| -> Result<usize, CliError> {
            it.next()
                .and_then(|s| s.parse().ok())
                .filter(|&n| n > 0)
                .ok_or_else(|| CliError::usage(format!("{name} needs a positive count")))
        };
        match arg {
            "--designs" => designs = count("--designs")?,
            "--ecos" => ecos = count("--ecos")?,
            "--jobs" => jobs = count("--jobs")?,
            "--library" => library = it.next().map(|s| s.to_string()),
            other => {
                return Err(CliError::usage(format!(
                    "unexpected argument {other:?}\n{FLOW_USAGE}"
                )))
            }
        }
    }
    let jobs = if jobs == 0 { designs.min(8) } else { jobs };
    let library = load_library(library.as_deref())?;
    let text = std::fs::read_to_string(file)
        .map_err(|e| CliError::io(format!("cannot read {file}: {e}")))?;
    // Parse locally once: the ECO loop and the slack bundle target
    // real nets of this design, picked deterministically.
    let parsed =
        hb_io::parse_hum(&text, &library).map_err(|e| CliError::parse(format!("{file}: {e}")))?;
    let top = parsed
        .design
        .top()
        .ok_or_else(|| CliError::parse("the design has no `top` directive"))?;
    let nets: Vec<String> = parsed
        .design
        .module(top)
        .nets()
        .map(|(_, n)| n.name().to_owned())
        .collect();
    if nets.is_empty() {
        return Err(CliError::analysis("the design has no nets to flow over"));
    }

    // One worker per job, striding the design list; every worker keeps
    // its own connection, so `--jobs` is also the concurrency the
    // daemon sees.
    let outcomes: Vec<FlowOutcome> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for job in 0..jobs.min(designs) {
            let text = &text;
            let nets = &nets;
            handles.push(scope.spawn(move || {
                let mut mine = Vec::new();
                for i in (job..designs).step_by(jobs) {
                    mine.push((i, run_one_flow(addr, i, text, nets, ecos)));
                }
                mine
            }));
        }
        let mut all: Vec<(usize, FlowOutcome)> = handles
            .into_iter()
            .flat_map(|h| h.join().expect("flow worker panicked"))
            .collect();
        all.sort_by_key(|(i, _)| *i);
        all.into_iter().map(|(_, outcome)| outcome).collect()
    });

    let io = |e: std::io::Error| CliError::io(format!("write failed: {e}"));
    let mut code = 0u8;
    for (i, outcome) in outcomes.iter().enumerate() {
        match outcome {
            Ok((bundle, met)) => {
                write!(out, "{bundle}").map_err(io)?;
                if !met {
                    code = 1;
                }
            }
            Err(e) => {
                return Err(CliError::analysis(format!("flow{i}: {e}")));
            }
        }
    }
    Ok(code)
}

/// One flow's outcome: the printable report bundle and whether the
/// final timing was met (`Err` carries the failing request's reply).
type FlowOutcome = Result<(String, bool), String>;

/// One design's flow: open → load → constraints → ECO loop → slack /
/// worst-paths bundle.
fn run_one_flow(addr: &str, index: usize, text: &str, nets: &[String], ecos: usize) -> FlowOutcome {
    let design = format!("flow{index}");
    let mut client = Client::connect(addr).map_err(|e| format!("{addr}: {e}"))?;
    let mut send = |req: Frame| -> Result<Frame, String> {
        let req = req.arg("design", &design);
        let reply = client.request(&req).map_err(|e| e.to_string())?;
        if reply.verb != "ok" {
            return Err(format!(
                "`{}` answered {}: {}",
                req.verb,
                reply.get("code").unwrap_or(&reply.verb),
                reply.payload.as_deref().unwrap_or("").trim_end()
            ));
        }
        Ok(reply)
    };

    send(Frame::new("open"))?;
    send(Frame::new("load").with_payload(text.to_owned()))?;
    send(Frame::new("constraints"))?;
    // The ECO loop: deterministic load scaling round-robin over the
    // design's nets, nudging up and down so successive flows diverge
    // without drifting monotonically.
    for e in 0..ecos {
        let net = &nets[e % nets.len()];
        let percent = if e % 2 == 0 { 110 } else { 91 };
        send(
            Frame::new("eco")
                .arg("op", "scale-net")
                .arg("net", net)
                .arg("percent", percent),
        )?;
    }
    let report = send(Frame::new("analyze"))?;
    let met = report.get("ok") == Some("1");
    let mut slack = Frame::new("slack");
    for net in nets.iter().take(8) {
        slack = slack.arg("node", net);
    }
    let slacks = send(slack)?;
    let paths = send(Frame::new("worst-paths").arg("k", 3))?;

    let mut bundle = format!(
        "== {design}: ok={} worst={} period={} ==\n",
        report.get("ok").unwrap_or("?"),
        report.get("worst").unwrap_or("?"),
        report.get("period").unwrap_or("?"),
    );
    bundle.push_str("slack bundle:\n");
    bundle.push_str(slacks.payload.as_deref().unwrap_or(""));
    bundle.push_str("worst paths:\n");
    bundle.push_str(paths.payload.as_deref().unwrap_or(""));
    Ok((bundle, met))
}

/// Writes one reply: the header line, then the payload verbatim.
fn print_reply(reply: &Frame, out: &mut impl Write) -> Result<(), CliError> {
    let io = |e: std::io::Error| CliError::io(format!("write failed: {e}"));
    let mut line = reply.verb.clone();
    for (key, value) in &reply.args {
        line.push(' ');
        line.push_str(key);
        line.push('=');
        line.push_str(value);
    }
    writeln!(out, "{line}").map_err(io)?;
    if let Some(payload) = &reply.payload {
        out.write_all(payload.as_bytes()).map_err(io)?;
        if !payload.ends_with('\n') {
            writeln!(out).map_err(io)?;
        }
    }
    Ok(())
}

/// Translates a query command line into a request frame. Trailing
/// `key=value` words pass through as arguments.
fn build_request(cmd: &str, rest: &[&str]) -> Result<Frame, CliError> {
    let need = |what: &str, value: Option<&&str>| -> Result<String, CliError> {
        value
            .map(|s| s.to_string())
            .ok_or_else(|| CliError::usage(format!("query {cmd} needs {what}\n{QUERY_USAGE}")))
    };
    let (mut frame, used) = match cmd {
        "hello" | "analyze" | "constraints" | "dump" | "stats" | "metrics" | "shutdown"
        | "designs" | "min-period" | "slack-at" | "period-sweep" => (Frame::new(cmd), 0),
        "open" | "close" => {
            let id = need("a design id", rest.first())?;
            (Frame::new(cmd).arg("design", id), 1)
        }
        "load" => {
            let path = need("a design file", rest.first())?;
            let text = std::fs::read_to_string(&path)
                .map_err(|e| CliError::io(format!("cannot read {path}: {e}")))?;
            let mut frame = Frame::new("load").with_payload(text);
            if path.ends_with(".blif") {
                frame = frame.arg("format", "blif");
            }
            (frame, 1)
        }
        "slack" => {
            // Every leading non-`key=value` word is a node; several
            // nodes ride in one batched request.
            let nodes: Vec<&str> = rest
                .iter()
                .take_while(|s| !s.contains('='))
                .copied()
                .collect();
            need("a node name", nodes.first())?;
            let mut frame = Frame::new("slack");
            for node in &nodes {
                frame = frame.arg("node", *node);
            }
            (frame, nodes.len())
        }
        "worst-paths" => match rest.first().filter(|s| !s.contains('=')) {
            Some(&k) => (Frame::new("worst-paths").arg("k", k), 1),
            None => (Frame::new("worst-paths"), 0),
        },
        "eco" => match rest.first().copied() {
            Some("resize") => {
                let inst = need("an instance name", rest.get(1))?;
                let steps = rest.get(2).filter(|s| !s.contains('=')).copied();
                let frame = Frame::new("eco")
                    .arg("op", "resize")
                    .arg("inst", inst)
                    .arg("steps", steps.unwrap_or("1"));
                (frame, if steps.is_some() { 3 } else { 2 })
            }
            Some("scale-net") => (
                Frame::new("eco")
                    .arg("op", "scale-net")
                    .arg("net", need("a net name", rest.get(1))?)
                    .arg("percent", need("a percentage", rest.get(2))?),
                3,
            ),
            _ => {
                return Err(CliError::usage(format!(
                    "query eco needs resize or scale-net\n{QUERY_USAGE}"
                )))
            }
        },
        other => {
            return Err(CliError::usage(format!(
                "unknown request {other:?}\n{QUERY_USAGE}"
            )))
        }
    };
    for extra in &rest[used..] {
        let (key, value) = extra.split_once('=').ok_or_else(|| {
            CliError::usage(format!("expected key=value, got {extra:?}\n{QUERY_USAGE}"))
        })?;
        frame = frame.arg(key, value);
    }
    Ok(frame)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_building() {
        let f = build_request("analyze", &["latch=edge"]).unwrap();
        assert_eq!(f.verb, "analyze");
        assert_eq!(f.get("latch"), Some("edge"));

        let f = build_request("slack", &["mid"]).unwrap();
        assert_eq!(f.get("node"), Some("mid"));

        // Multiple nodes batch into one request; key=value trailers
        // still pass through.
        let f = build_request("slack", &["a", "b", "c", "latch=edge"]).unwrap();
        assert_eq!(f.get_all("node").collect::<Vec<_>>(), ["a", "b", "c"]);
        assert_eq!(f.get("latch"), Some("edge"));

        // The what-if verbs are zero-positional; their `key=value`
        // arguments ride through the trailer path.
        let f = build_request("min-period", &[]).unwrap();
        assert_eq!(f.verb, "min-period");
        let f = build_request("slack-at", &["period=12ns", "node=mid"]).unwrap();
        assert_eq!(f.get("period"), Some("12ns"));
        assert_eq!(f.get("node"), Some("mid"));
        let f = build_request("period-sweep", &["lo=8ns", "hi=20ns", "step=1ns"]).unwrap();
        assert_eq!(f.get("lo"), Some("8ns"));
        assert_eq!(f.get("step"), Some("1ns"));

        let f = build_request("worst-paths", &[]).unwrap();
        assert!(f.get("k").is_none());
        let f = build_request("worst-paths", &["7"]).unwrap();
        assert_eq!(f.get("k"), Some("7"));

        let f = build_request("eco", &["resize", "u1"]).unwrap();
        assert_eq!(f.get("steps"), Some("1"));
        let f = build_request("eco", &["resize", "u1", "-1"]).unwrap();
        assert_eq!(f.get("steps"), Some("-1"));
        let f = build_request("eco", &["scale-net", "w", "150"]).unwrap();
        assert_eq!(f.get("percent"), Some("150"));

        // Fleet management verbs: open/close take a positional design
        // id, designs takes nothing.
        let f = build_request("open", &["soc_a"]).unwrap();
        assert_eq!(f.get("design"), Some("soc_a"));
        let f = build_request("close", &["soc_a"]).unwrap();
        assert_eq!(f.get("design"), Some("soc_a"));
        let f = build_request("designs", &[]).unwrap();
        assert_eq!(f.verb, "designs");

        assert!(build_request("eco", &[]).is_err());
        assert!(build_request("slack", &[]).is_err());
        assert!(build_request("open", &[]).is_err());
        assert!(build_request("teleport", &[]).is_err());
        assert!(build_request("analyze", &["positional"]).is_err());
    }
}
