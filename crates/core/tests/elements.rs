//! Element-zoo scenarios on the sc89 library: clocked tristates,
//! active-low latches, inverted control trees, multirate transparency
//! and edge-occurrence selection.

use hb_cells::sc89;
use hb_clock::ClockSet;
use hb_netlist::{Design, ModuleId, NetId, PinDir};
use hb_units::{Time, Transition};
use hummingbird::{AnalysisOptions, Analyzer, EdgeSpec, LatchModel, Spec};

struct Rig {
    design: Design,
    module: ModuleId,
}

impl Rig {
    fn new() -> Rig {
        let lib = sc89();
        let mut design = Design::new("rig");
        lib.declare_into(&mut design).unwrap();
        let module = design.add_module("top").unwrap();
        design.set_top(module).unwrap();
        Rig { design, module }
    }

    fn input(&mut self, name: &str) -> NetId {
        let n = self.design.add_net(self.module, name).unwrap();
        self.design
            .add_port(self.module, name, PinDir::Input, n)
            .unwrap();
        n
    }

    fn net(&mut self, name: &str) -> NetId {
        self.design.add_net(self.module, name).unwrap()
    }

    fn inst(&mut self, name: &str, cell: &str, conns: &[(&str, NetId)]) {
        let leaf = self.design.leaf_by_name(cell).unwrap();
        let id = self
            .design
            .add_leaf_instance(self.module, name, leaf)
            .unwrap();
        for (pin, net) in conns {
            self.design.connect(self.module, id, pin, *net).unwrap();
        }
    }

    /// A chain of `n` BUF_X1 cells.
    fn buf_chain(&mut self, from: NetId, n: usize, tag: &str) -> NetId {
        let mut prev = from;
        for i in 0..n {
            let next = self.net(&format!("{tag}{i}"));
            self.inst(
                &format!("u_{tag}{i}"),
                "BUF_X1",
                &[("A", prev), ("Y", next)],
            );
            prev = next;
        }
        prev
    }
}

/// `in -> chain(n) -> <latch cell> -> chain(m) -> DFF`, two-phase.
fn latch_rig(
    latch_cell: &str,
    control_pin: &str,
    pre: usize,
    post: usize,
) -> (Rig, ClockSet, Spec) {
    let mut r = Rig::new();
    let input = r.input("in");
    let phi1 = r.input("phi1");
    let phi2 = r.input("phi2");
    let mid = r.buf_chain(input, pre, "pre");
    let lat_q = r.net("lat_q");
    r.inst(
        "lat",
        latch_cell,
        &[("D", mid), (control_pin, phi2), ("Q", lat_q)],
    );
    let ff_d = r.buf_chain(lat_q, post, "post");
    let q = r.net("q");
    r.inst("cap", "DFF", &[("D", ff_d), ("CK", phi1), ("Q", q)]);
    let mut clocks = ClockSet::new();
    clocks
        .add_clock("phi1", Time::from_ns(20), Time::ZERO, Time::from_ns(8))
        .unwrap();
    clocks
        .add_clock(
            "phi2",
            Time::from_ns(20),
            Time::from_ns(10),
            Time::from_ns(18),
        )
        .unwrap();
    let spec = Spec::new()
        .clock_port("phi1", "phi1")
        .clock_port("phi2", "phi2")
        .input_arrival("in", EdgeSpec::new("phi1", Transition::Rise), Time::ZERO);
    (r, clocks, spec)
}

fn verdict(r: &Rig, clocks: &ClockSet, spec: Spec, model: LatchModel) -> bool {
    let lib = sc89();
    Analyzer::with_options(
        &r.design,
        r.module,
        &lib,
        clocks,
        spec,
        AnalysisOptions {
            latch_model: model,
            ..AnalysisOptions::default()
        },
    )
    .unwrap()
    .analyze()
    .ok()
}

/// Clocked tristate drivers are "modeled in the same way as transparent
/// latches": a TBUF in the borrowing position behaves like a DLATCH.
#[test]
fn tristate_borrows_like_a_latch() {
    // Sized so the trailing-edge model fails but transparency passes
    // (pre-chain overruns half the period; post-chain is short).
    for (cell, pin) in [("DLATCH", "G"), ("TBUF", "EN")] {
        let (r, clocks, spec) = latch_rig(cell, pin, 40, 20);
        let transparent = verdict(&r, &clocks, spec.clone(), LatchModel::Transparent);
        let edge = verdict(&r, &clocks, spec, LatchModel::EdgeTriggered);
        assert!(transparent, "{cell}: transparent model must pass");
        assert!(!edge, "{cell}: trailing-edge model must fail");
    }
}

/// Builds the active-low rig: data launched at the phi2 falling edge
/// flows through a low-phase window (18..30, wrapping) and is captured
/// by a flop on phi1 rising at 12 (i.e. at 32).
fn active_low_rig(latch_cell: &str, invert_control: bool) -> (Rig, ClockSet, Spec) {
    let mut r = Rig::new();
    let input = r.input("in");
    let phi1 = r.input("phi1");
    let phi2 = r.input("phi2");
    let control = if invert_control {
        let n = r.net("phi2_n");
        r.inst("ci", "CLKINV_X1", &[("A", phi2), ("Y", n)]);
        n
    } else {
        phi2
    };
    let mid = r.buf_chain(input, 40, "pre");
    let lat_q = r.net("lat_q");
    r.inst(
        "lat",
        latch_cell,
        &[("D", mid), ("G", control), ("Q", lat_q)],
    );
    let ff_d = r.buf_chain(lat_q, 20, "post");
    let q = r.net("q");
    r.inst("cap", "DFF", &[("D", ff_d), ("CK", phi1), ("Q", q)]);
    let mut clocks = ClockSet::new();
    clocks
        .add_clock("phi1", Time::from_ns(20), Time::from_ns(12), Time::ZERO)
        .unwrap();
    clocks
        .add_clock(
            "phi2",
            Time::from_ns(20),
            Time::from_ns(10),
            Time::from_ns(18),
        )
        .unwrap();
    let spec = Spec::new()
        .clock_port("phi1", "phi1")
        .clock_port("phi2", "phi2")
        .input_arrival("in", EdgeSpec::new("phi2", Transition::Fall), Time::ZERO);
    (r, clocks, spec)
}

/// An active-low latch (`DLATCHN`) is transparent during the clock-low
/// phase. With the paper's model the pipeline fits; forcing its capture
/// to the trailing (rising) edge overruns the flop.
#[test]
fn active_low_latch_uses_the_low_window() {
    let (r, clocks, spec) = active_low_rig("DLATCHN", false);
    assert!(verdict(&r, &clocks, spec.clone(), LatchModel::Transparent));
    assert!(!verdict(&r, &clocks, spec, LatchModel::EdgeTriggered));
}

/// Driving an active-high latch through CLKINV flips its effective
/// window: the analyzer composes the control-path sense with the cell's
/// control sense.
#[test]
fn inverted_control_tree_flips_the_window() {
    // DLATCH behind an inverter == DLATCHN on the raw clock: both model
    // choices must produce the same verdicts as the native cell.
    let (r, clocks, spec) = active_low_rig("DLATCH", true);
    assert!(verdict(&r, &clocks, spec.clone(), LatchModel::Transparent));
    assert!(!verdict(&r, &clocks, spec, LatchModel::EdgeTriggered));
}

/// A transparent latch on a 2× clock is replicated per pulse and each
/// replica borrows independently.
#[test]
fn multirate_transparent_latch_replicates() {
    let lib = sc89();
    let mut r = Rig::new();
    let input = r.input("in");
    let slow = r.input("slow");
    let fast = r.input("fast");
    let mid = r.buf_chain(input, 8, "pre");
    let lat_q = r.net("lat_q");
    r.inst("lat", "DLATCH", &[("D", mid), ("G", fast), ("Q", lat_q)]);
    let ff_d = r.buf_chain(lat_q, 4, "post");
    let q = r.net("q");
    r.inst("cap", "DFF", &[("D", ff_d), ("CK", slow), ("Q", q)]);
    let mut clocks = ClockSet::new();
    clocks
        .add_clock("slow", Time::from_ns(40), Time::ZERO, Time::from_ns(20))
        .unwrap();
    clocks
        .add_clock(
            "fast",
            Time::from_ns(20),
            Time::from_ns(4),
            Time::from_ns(12),
        )
        .unwrap();
    let spec = Spec::new()
        .clock_port("slow", "slow")
        .clock_port("fast", "fast")
        .input_arrival("in", EdgeSpec::new("slow", Transition::Rise), Time::ZERO);
    let analyzer = Analyzer::new(&r.design, r.module, &lib, &clocks, spec).unwrap();
    // 2 latch replicas (fast pulses at 4..12 and 24..32) + 1 capture FF.
    assert_eq!(analyzer.replica_count(), 3);
    let report = analyzer.analyze();
    assert!(report.ok(), "{report}");
}

/// Edge occurrences select specific pulses of a fast clock for boundary
/// timing, shifting slack by whole sub-periods.
#[test]
fn edge_occurrences_shift_boundary_timing() {
    let lib = sc89();
    let slack_for = |occurrence: u32| {
        let mut r = Rig::new();
        let input = r.input("in");
        let slow = r.input("slow");
        let fast = r.input("fast");
        let _ = fast;
        let d = r.buf_chain(input, 2, "c");
        let q = r.net("q");
        r.inst("cap", "DFF", &[("D", d), ("CK", slow), ("Q", q)]);
        let mut clocks = ClockSet::new();
        clocks
            .add_clock("slow", Time::from_ns(100), Time::ZERO, Time::from_ns(50))
            .unwrap();
        clocks
            .add_clock(
                "fast",
                Time::from_ns(25),
                Time::from_ns(5),
                Time::from_ns(15),
            )
            .unwrap();
        let spec = Spec::new()
            .clock_port("slow", "slow")
            .clock_port("fast", "fast")
            .input_arrival(
                "in",
                EdgeSpec::new("fast", Transition::Rise).at_occurrence(occurrence),
                Time::ZERO,
            );
        Analyzer::new(&r.design, r.module, &lib, &clocks, spec)
            .unwrap()
            .analyze()
            .worst_slack()
    };
    let s0 = slack_for(0); // launch at 5 ns
    let s1 = slack_for(1); // launch at 30 ns
    let s3 = slack_for(3); // launch at 80 ns
    assert_eq!(s0 - s1, Time::from_ns(25), "one fast period apart");
    assert_eq!(s0 - s3, Time::from_ns(75));
}

/// Occurrences beyond the pulse count are rejected with a precise error.
#[test]
fn out_of_range_occurrence_is_an_error() {
    use hummingbird::AnalyzeError;
    let lib = sc89();
    let mut r = Rig::new();
    let input = r.input("in");
    let ck = r.input("ck");
    let d = r.buf_chain(input, 1, "c");
    let q = r.net("q");
    r.inst("cap", "DFF", &[("D", d), ("CK", ck), ("Q", q)]);
    let mut clocks = ClockSet::new();
    clocks
        .add_clock("ck", Time::from_ns(10), Time::ZERO, Time::from_ns(5))
        .unwrap();
    let spec = Spec::new().clock_port("ck", "ck").input_arrival(
        "in",
        EdgeSpec::new("ck", Transition::Rise).at_occurrence(5),
        Time::ZERO,
    );
    let err = Analyzer::new(&r.design, r.module, &lib, &clocks, spec).unwrap_err();
    assert!(
        matches!(
            err,
            AnalyzeError::EdgeOccurrenceOutOfRange { occurrence: 5, .. }
        ),
        "{err}"
    );
}
