//! Low-level construction helpers shared by the generators.

use hb_cells::Library;
use hb_netlist::{Design, InstId, ModuleId, NetId, PinDir};
use hb_rng::SmallRng;

/// A design under construction against a library, with naming and
/// random-logic helpers.
///
/// The builder panics on malformed construction (duplicate names, bad
/// pins): generators are deterministic, so any failure is a programming
/// error, not an input error.
pub struct NetlistBuilder {
    /// The design being built.
    pub design: Design,
    /// The module being populated.
    pub module: ModuleId,
    counter: usize,
    /// Compact naming (`u7`/`w7` instead of `u7_NAND2_X1`/`w_7`) for
    /// at-scale generated designs, where name bytes dominate both the
    /// netlist arena and the `.hum` dump.
    compact: bool,
}

impl NetlistBuilder {
    /// Starts a design with the library's interfaces declared and one
    /// top module.
    pub fn new(name: &str, lib: &Library) -> NetlistBuilder {
        let mut design = Design::new(name);
        lib.declare_into(&mut design).expect("fresh design");
        let module = design.add_module("top").expect("fresh design");
        design.set_top(module).expect("just created");
        NetlistBuilder {
            design,
            module,
            counter: 0,
            compact: false,
        }
    }

    /// Like [`NetlistBuilder::new`] but with compact instance/net
    /// naming, for generated designs in the 10k–1M cell range.
    pub fn new_compact(name: &str, lib: &Library) -> NetlistBuilder {
        let mut b = NetlistBuilder::new(name, lib);
        b.compact = true;
        b
    }

    /// Switches construction to a new module (for hierarchical
    /// workloads). Returns the module id.
    pub fn begin_module(&mut self, name: &str) -> ModuleId {
        let id = self.design.add_module(name).expect("unique module name");
        self.module = id;
        id
    }

    /// Creates a fresh uniquely named net.
    pub fn fresh_net(&mut self, hint: &str) -> NetId {
        self.counter += 1;
        let c = self.counter;
        let name = if self.compact {
            format!("{hint}{c}")
        } else {
            format!("{hint}_{c}")
        };
        self.design
            .add_net(self.module, name)
            .expect("unique by counter")
    }

    /// Creates a named net.
    pub fn net(&mut self, name: &str) -> NetId {
        self.design.add_net(self.module, name).expect("unique name")
    }

    /// Creates an input port with its net.
    pub fn input(&mut self, name: &str) -> NetId {
        let n = self.net(name);
        self.design
            .add_port(self.module, name, PinDir::Input, n)
            .expect("unique name");
        n
    }

    /// Creates an output port bound to an existing net.
    pub fn output(&mut self, name: &str, net: NetId) {
        self.design
            .add_port(self.module, name, PinDir::Output, net)
            .expect("unique name");
    }

    /// Instantiates `cell`, connecting the named pins.
    pub fn inst(&mut self, cell: &str, conns: &[(&str, NetId)]) -> InstId {
        self.counter += 1;
        let leaf = self
            .design
            .leaf_by_name(cell)
            .unwrap_or_else(|| panic!("cell {cell} not in library"));
        let name = if self.compact {
            format!("u{}", self.counter)
        } else {
            format!("u{}_{}", self.counter, cell)
        };
        let id = self
            .design
            .add_leaf_instance(self.module, name, leaf)
            .expect("unique by counter");
        for (pin, net) in conns {
            self.design
                .connect(self.module, id, pin, *net)
                .expect("pins exist on library cells");
        }
        id
    }

    /// Builds a random acyclic logic block of `gates` two-ish-input
    /// gates drawing inputs from `inputs` and returning `outputs` nets
    /// (the most recently created ones, which biases toward depth).
    pub fn random_logic(
        &mut self,
        rng: &mut SmallRng,
        inputs: &[NetId],
        gates: usize,
        outputs: usize,
    ) -> Vec<NetId> {
        assert!(!inputs.is_empty(), "a block needs at least one input");
        const GATES1: &[&str] = &["INV_X1", "BUF_X1"];
        const GATES2: &[&str] = &["NAND2_X1", "NOR2_X1", "XOR2_X1", "AND2_X1", "OR2_X1"];
        const GATES3: &[&str] = &["NAND3_X1", "AOI21_X1", "OAI21_X1"];
        let mut pool: Vec<NetId> = inputs.to_vec();
        let first_new = pool.len();
        for _ in 0..gates {
            // Bias input selection toward recent nets for realistic depth.
            let pick = |rng: &mut SmallRng, pool: &[NetId]| -> NetId {
                let n = pool.len();
                let lo = n.saturating_sub(24);
                if rng.gen_bool(0.7) && lo < n {
                    pool[rng.gen_range(lo..n)]
                } else {
                    pool[rng.gen_range(0..n)]
                }
            };
            let y = self.fresh_net("w");
            let kind = rng.gen_range(0..10);
            if kind < 2 {
                let cell = GATES1[rng.gen_range(0..GATES1.len())];
                let a = pick(rng, &pool);
                self.inst(cell, &[("A", a), ("Y", y)]);
            } else if kind < 8 {
                let cell = GATES2[rng.gen_range(0..GATES2.len())];
                let a = pick(rng, &pool);
                let b = pick(rng, &pool);
                self.inst(cell, &[("A", a), ("B", b), ("Y", y)]);
            } else {
                let cell = GATES3[rng.gen_range(0..GATES3.len())];
                let a = pick(rng, &pool);
                let b = pick(rng, &pool);
                let c = pick(rng, &pool);
                self.inst(cell, &[("A", a), ("B", b), ("C", c), ("Y", y)]);
            }
            pool.push(y);
        }
        let created = &pool[first_new..];
        assert!(
            created.len() >= outputs,
            "need at least {outputs} gates to expose {outputs} outputs"
        );
        created[created.len() - outputs..].to_vec()
    }

    /// Builds a clock distribution: a `CLKBUF_X4` from the clock port
    /// net, returning the buffered net that feeds element control pins.
    pub fn clock_tree(&mut self, root: NetId) -> NetId {
        let buffered = self.fresh_net("ckb");
        self.inst("CLKBUF_X4", &[("A", root), ("Y", buffered)]);
        buffered
    }

    /// Adds a bank of `DFF`s: `data[i] -> Q -> returned[i]`, all clocked
    /// by `ck`.
    pub fn dff_bank(&mut self, data: &[NetId], ck: NetId, hint: &str) -> Vec<NetId> {
        data.iter()
            .map(|&d| {
                let q = self.fresh_net(hint);
                self.inst("DFF", &[("D", d), ("CK", ck), ("Q", q)]);
                q
            })
            .collect()
    }

    /// Adds a bank of transparent latches (`DLATCH`), clocked by `g`.
    pub fn latch_bank(&mut self, data: &[NetId], gate: NetId, hint: &str) -> Vec<NetId> {
        data.iter()
            .map(|&d| {
                let q = self.fresh_net(hint);
                self.inst("DLATCH", &[("D", d), ("G", gate), ("Q", q)]);
                q
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_cells::sc89;

    #[test]
    fn random_logic_is_valid_and_deterministic() {
        let lib = sc89();
        let build = |seed: u64| {
            let mut b = NetlistBuilder::new("t", &lib);
            let mut rng = SmallRng::seed_from_u64(seed);
            let inputs: Vec<NetId> = (0..4).map(|i| b.input(&format!("i{i}"))).collect();
            let outs = b.random_logic(&mut rng, &inputs, 50, 3);
            for (i, o) in outs.iter().enumerate() {
                b.output(&format!("o{i}"), *o);
            }
            b
        };
        let b1 = build(7);
        b1.design.validate().unwrap();
        assert_eq!(b1.design.stats(b1.module).cells, 50);
        // Determinism: same seed, same structure.
        let b2 = build(7);
        let names1: Vec<String> = b1
            .design
            .module(b1.module)
            .instances()
            .map(|(_, i)| i.name().to_owned())
            .collect();
        let names2: Vec<String> = b2
            .design
            .module(b2.module)
            .instances()
            .map(|(_, i)| i.name().to_owned())
            .collect();
        assert_eq!(names1, names2);
    }

    #[test]
    fn banks_connect_cleanly() {
        let lib = sc89();
        let mut b = NetlistBuilder::new("t", &lib);
        let ck = b.input("ck");
        let ckb = b.clock_tree(ck);
        let data: Vec<NetId> = (0..3).map(|i| b.input(&format!("d{i}"))).collect();
        let qs = b.dff_bank(&data, ckb, "q");
        let ls = b.latch_bank(&qs, ckb, "l");
        for (i, l) in ls.iter().enumerate() {
            b.output(&format!("o{i}"), *l);
        }
        b.design.validate().unwrap();
        assert_eq!(b.design.stats(b.module).cells, 7);
    }
}
