//! Errors raised while building or analyzing timing graphs.

use std::fmt;

/// Errors from [`crate::TimingGraph`] construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StaError {
    /// A leaf instance is not bound to any library cell.
    UnboundLeaf {
        /// The instance name.
        inst: String,
    },
    /// The combinational logic contains a directed cycle, violating the
    /// paper's structural assumption.
    CombinationalCycle {
        /// A net on the cycle.
        net: String,
    },
    /// A synchronising element's data or control pin is unconnected.
    DanglingSyncPin {
        /// The instance name.
        inst: String,
        /// Which pin.
        pin: &'static str,
    },
    /// A hierarchical instance's child module contains synchronising
    /// elements; only combinational modules can be abstracted into
    /// pin-to-pin delays.
    SyncInsideAbstractedModule {
        /// The child module name.
        module: String,
        /// The offending instance inside it.
        inst: String,
    },
}

impl fmt::Display for StaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StaError::UnboundLeaf { inst } => {
                write!(f, "instance {inst:?} is not bound to a library cell")
            }
            StaError::CombinationalCycle { net } => {
                write!(
                    f,
                    "combinational logic contains a cycle through net {net:?}"
                )
            }
            StaError::DanglingSyncPin { inst, pin } => {
                write!(
                    f,
                    "synchronising element {inst:?} has an unconnected {pin} pin"
                )
            }
            StaError::SyncInsideAbstractedModule { module, inst } => write!(
                f,
                "module {module:?} cannot be abstracted: it contains synchronising element {inst:?}"
            ),
        }
    }
}

impl std::error::Error for StaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = StaError::CombinationalCycle { net: "loop".into() };
        assert!(e.to_string().contains("loop"));
        let e = StaError::DanglingSyncPin {
            inst: "ff0".into(),
            pin: "control",
        };
        assert!(e.to_string().contains("control"));
    }
}
