//! Property-style tests of database consistency under random edit
//! sequences, driven by a seeded deterministic generator.

use hb_netlist::{Design, Endpoint, InstId, LeafDef, NetId, PinDir, PinSlot};
use hb_rng::SmallRng;

#[derive(Clone, Debug)]
enum Op {
    AddNet,
    AddInst,
    Connect { inst: usize, pin: usize, net: usize },
    Disconnect { inst: usize, pin: usize },
    Retarget { inst: usize },
}

fn random_op(rng: &mut SmallRng) -> Op {
    match rng.gen_range(0..5) {
        0 => Op::AddNet,
        1 => Op::AddInst,
        2 => Op::Connect {
            inst: rng.gen_range(0..64),
            pin: rng.gen_range(0..3),
            net: rng.gen_range(0..64),
        },
        3 => Op::Disconnect {
            inst: rng.gen_range(0..64),
            pin: rng.gen_range(0..3),
        },
        _ => Op::Retarget {
            inst: rng.gen_range(0..64),
        },
    }
}

/// Applies a random edit sequence and checks that the normalized
/// connectivity stays consistent: every instance connection has a
/// matching net endpoint and vice versa.
fn run_ops(ops: Vec<Op>) {
    let mut d = Design::new("p");
    let g1 = d
        .declare_leaf(
            LeafDef::new("G1")
                .pin("A", PinDir::Input)
                .pin("B", PinDir::Input)
                .pin("Y", PinDir::Output),
        )
        .unwrap();
    let g2 = d
        .declare_leaf(
            LeafDef::new("G2")
                .pin("A", PinDir::Input)
                .pin("B", PinDir::Input)
                .pin("Y", PinDir::Output),
        )
        .unwrap();
    let m = d.add_module("top").unwrap();
    d.set_top(m).unwrap();
    let mut nets: Vec<NetId> = vec![d.add_net(m, "seed").unwrap()];
    let mut insts: Vec<InstId> = Vec::new();
    let mut counter = 0usize;

    for op in ops {
        counter += 1;
        match op {
            Op::AddNet => nets.push(d.add_net(m, format!("n{counter}")).unwrap()),
            Op::AddInst => insts.push(d.add_leaf_instance(m, format!("i{counter}"), g1).unwrap()),
            Op::Connect { inst, pin, net } => {
                if !insts.is_empty() {
                    let inst = insts[inst % insts.len()];
                    let net = nets[net % nets.len()];
                    d.connect_slot(m, inst, PinSlot::from_raw(pin as u32), net);
                }
            }
            Op::Disconnect { inst, pin } => {
                if !insts.is_empty() {
                    let inst = insts[inst % insts.len()];
                    d.disconnect(m, inst, PinSlot::from_raw(pin as u32));
                }
            }
            Op::Retarget { inst } => {
                if !insts.is_empty() {
                    let inst = insts[inst % insts.len()];
                    d.replace_instance_ref(m, inst, g2).unwrap();
                }
            }
        }
    }

    // Consistency: instance conns <-> net endpoints, one-to-one.
    let module = d.module(m);
    for (inst_id, inst) in module.instances() {
        for (slot, net) in inst.conns() {
            let found = module
                .net(net)
                .endpoints()
                .iter()
                .any(|ep| matches!(ep, Endpoint::Pin { inst, slot: s, .. } if *inst == inst_id && *s == slot));
            assert!(found, "conn {inst_id}/{slot} missing endpoint");
        }
    }
    for (net_id, net) in module.nets() {
        for ep in net.endpoints() {
            if let Endpoint::Pin { inst, slot, .. } = ep {
                assert_eq!(
                    module.instance(*inst).conn(*slot),
                    Some(net_id),
                    "endpoint without matching conn"
                );
            }
        }
        // No duplicate endpoints.
        let mut eps = net.endpoints().to_vec();
        let before = eps.len();
        eps.sort_by_key(|e| match e {
            Endpoint::Pin { inst, slot, .. } => (1, inst.as_raw(), slot.as_raw()),
            Endpoint::Port(p) => (0, p.as_raw(), 0),
        });
        eps.dedup();
        assert_eq!(eps.len(), before, "duplicate endpoints on {net_id}");
    }
}

#[test]
fn random_edits_keep_connectivity_consistent() {
    for case in 0..128u64 {
        let mut rng = SmallRng::seed_from_u64(0x2000 + case);
        let len = rng.gen_range(0..120);
        let ops: Vec<Op> = (0..len).map(|_| random_op(&mut rng)).collect();
        run_ops(ops);
    }
}
