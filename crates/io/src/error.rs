//! Parse errors with line information.

use std::fmt;

/// An error encountered while parsing a `.hum` or BLIF file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    line: usize,
    message: String,
}

impl ParseError {
    pub(crate) fn new(line: usize, message: impl Into<String>) -> ParseError {
        ParseError {
            line,
            message: message.into(),
        }
    }

    /// The 1-based line number the error was detected on (0 for
    /// end-of-file conditions).
    pub fn line(&self) -> usize {
        self.line
    }

    /// The error description.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "parse error at end of input: {}", self.message)
        } else {
            write!(f, "parse error on line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = ParseError::new(12, "unknown cell \"FOO\"");
        assert_eq!(e.line(), 12);
        assert!(e.to_string().contains("line 12"));
        assert!(e.to_string().contains("FOO"));
        let eof = ParseError::new(0, "missing top");
        assert!(eof.to_string().contains("end of input"));
    }
}
