//! Transports for the resident session: a concurrent TCP daemon, a
//! single-threaded stdio loop for test harnesses, and a small blocking
//! client.
//!
//! The TCP server is thread-per-connection over a keyed
//! [`Fleet`](crate::fleet) of design sessions, each behind its own
//! `RwLock`: requests route on their `design=` argument, read-only
//! queries of a settled analysis run concurrently, and anything that
//! may mutate (load, analyze, eco) serialises on that design's write
//! lock only — tenants never contend with each other. Lock
//! acquisition polls with a per-request deadline so a long-running
//! analysis degrades concurrent requests into structured `busy`
//! errors instead of unbounded stalls.
//!
//! The write path is panic-isolated: a request that panics mid-mutation
//! is answered with `error code=internal` and the session is rebuilt
//! from the write-ahead [`Journal`](crate::Journal) (see
//! [`journal`](crate::journal)), warm through the salvaged slack cache.
//! Should a panic nonetheless escape and poison the lock, the next
//! writer claims the guard ([`PoisonError::into_inner`]), clears the
//! poison, and runs the same recovery — the daemon never answers
//! `poisoned` and never bricks.
//!
//! Sockets carry deadlines. Reads poll on a short grain so a
//! connection trickling a frame one byte at a time (slowloris) is cut
//! off at `frame_deadline`, a silent one is reaped at `idle_timeout`,
//! and writes give up after `write_timeout`. An accept-side connection
//! cap sheds excess clients with `error code=busy retry_after_ms=N`;
//! [`Client::request_with_backoff`] honours that hint.
//!
//! Teardown is cooperative: `shutdown` flips a flag, closes the read
//! half of every connection (idle readers see EOF; in-flight replies
//! still flush over the untouched write halves), pokes the listener
//! loose with a loopback connection, and `run` then joins every
//! connection thread before returning — requests that were already
//! being served complete and their replies are flushed.
//! Peers that vanish mid-reply surface as ordinary write errors (Rust
//! ignores `SIGPIPE`), which close that connection only.

use std::io::{self, BufReader, BufWriter};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError, TryLockError};
use std::thread;
use std::time::{Duration, Instant};

use hb_cells::Library;
use hb_fault::{FaultPlan, FaultStream};
use hb_io::{write_frame, Frame, FrameReader, ProtoError};
use hb_obs::{CountingReader, CountingWriter};
use hb_rng::SmallRng;

use crate::fleet::{DesignSlot, Fleet, DEFAULT_DESIGN};
use crate::journal;
use crate::metrics::Metrics;
use crate::replica;

/// Transport tuning. The defaults suit an interactive daemon; tests
/// shrink the deadlines to keep the chaos suite fast.
#[derive(Clone, Debug)]
pub struct ServerOptions {
    /// How long one request may wait for the session lock before it is
    /// answered with `error code=busy`.
    pub lock_deadline: Duration,
    /// How long a started frame may take to arrive in full before the
    /// connection is cut off (anti-slowloris).
    pub frame_deadline: Duration,
    /// How long a connection may sit between frames before it is
    /// reaped.
    pub idle_timeout: Duration,
    /// Socket write timeout for replies.
    pub write_timeout: Duration,
    /// Concurrent-connection cap; excess clients are shed at accept
    /// with `error code=busy retry_after_ms=N`.
    pub max_connections: usize,
    /// The retry hint (milliseconds) carried by shed and lock-deadline
    /// `busy` errors.
    pub retry_after_ms: u64,
    /// Fault-injection schedule threaded into the session and both
    /// halves of every accepted socket. [`FaultPlan::none`] (the
    /// default) makes every hook a no-op.
    pub faults: FaultPlan,
    /// How many design sessions may stay resident at once; the
    /// least-recently-used one past this is evicted to its journal.
    pub max_designs: usize,
    /// Combined approximate resident-session footprint the LRU policy
    /// keeps the fleet under, in bytes. 0 = unlimited.
    pub mem_budget: usize,
    /// When set, this daemon runs as a warm standby of the node at the
    /// given address (primary or another standby — standbys serve the
    /// replication verbs too, so chains work): the node loop streams
    /// every design's journal over `repl-state`/`repl-pull` and
    /// replays it into shadow sessions. After
    /// [`ServerOptions::promote_after`] consecutive sync failures the
    /// standby either promotes unilaterally (no
    /// [`ServerOptions::peers`]) or runs a ranked quorum election.
    pub standby_of: Option<String>,
    /// How long the standby sync thread sleeps between sync rounds.
    pub sync_interval: Duration,
    /// Consecutive failed sync rounds after which a standby declares
    /// its upstream dead and seeks promotion.
    pub promote_after: u32,
    /// The other nodes of this replication cluster, as `host:port`
    /// listen addresses (exclude this node's own). Empty (the default)
    /// keeps the PR-7 behaviour: a lone standby promotes unilaterally.
    /// Non-empty arms the quorum machinery: promotion requires `vote`
    /// grants from a majority of `peers.len() + 1` nodes, a primary
    /// gossips its term to peers and demotes when it sees a higher
    /// one, and a standby that loses its upstream probes the peers for
    /// the new primary instead of promoting on its own.
    pub peers: Vec<String>,
    /// Page-size bound (bytes of entry-frame payload) a standby
    /// requests per `repl-pull`, and the bound this node applies when
    /// serving a pull with no explicit `max=`. Clamped to
    /// [`crate::replica::MAX_STREAM_BYTES`].
    pub repl_page_bytes: usize,
}

impl Default for ServerOptions {
    fn default() -> ServerOptions {
        ServerOptions {
            lock_deadline: Duration::from_secs(30),
            frame_deadline: Duration::from_secs(10),
            idle_timeout: Duration::from_secs(600),
            write_timeout: Duration::from_secs(10),
            max_connections: 64,
            retry_after_ms: 100,
            faults: FaultPlan::none(),
            max_designs: 64,
            mem_budget: 0,
            standby_of: None,
            sync_interval: Duration::from_millis(200),
            promote_after: 3,
            peers: Vec::new(),
            repl_page_bytes: replica::MAX_STREAM_BYTES,
        }
    }
}

impl ServerOptions {
    /// The socket read timeout: deadlines are enforced by polling, so
    /// the grain is a fraction of the tightest deadline, bounded to
    /// stay responsive without spinning.
    pub(crate) fn poll_grain(&self) -> Duration {
        (self.frame_deadline.min(self.idle_timeout) / 4)
            .clamp(Duration::from_millis(5), Duration::from_millis(250))
    }
}

/// Poison-tolerant mutex lock: the daemon's auxiliary state (journal,
/// connection registry) stays usable even if a holder panicked.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Everything both transports (thread-per-connection and the reactor)
/// share: the design fleet, the metrics, and the shutdown/shedding
/// state.
pub(crate) struct Shared {
    /// The keyed design-session table every request routes through.
    pub(crate) fleet: Fleet,
    /// The fleet-wide metrics instance, shared so the transport can
    /// record lock-wait/handle latency, wire bytes and connection
    /// churn without taking any session lock.
    pub(crate) metrics: Arc<Metrics>,
    /// The library recoveries and reloads replay against.
    pub(crate) library: Library,
    pub(crate) shutdown: AtomicBool,
    pub(crate) options: ServerOptions,
    /// Live connections, for the cap.
    pub(crate) active: AtomicUsize,
    /// Read-half handles of every accepted connection, keyed by
    /// connection id so `shutdown` can unblock idle readers without
    /// cutting in-flight replies, and closed connections can
    /// deregister.
    pub(crate) conns: Mutex<Vec<(u64, TcpStream)>>,
    /// Role, fencing term, upstream and vote ledger — the node's
    /// replication control state (see [`crate::replica`]).
    pub(crate) node: Mutex<replica::NodeCtl>,
}

impl Shared {
    /// The transport-independent daemon state: a fleet with the
    /// default design open, fresh metrics, and `options` applied.
    pub(crate) fn new(library: Library, options: ServerOptions) -> Shared {
        let metrics = Arc::new(Metrics::new());
        let fleet = Fleet::new(
            library.clone(),
            Arc::clone(&metrics),
            options.faults.clone(),
            options.max_designs,
            options.mem_budget,
        );
        let node = replica::NodeCtl::new(&options);
        metrics.term.set(node.term as i64);
        Shared {
            fleet,
            metrics,
            library,
            shutdown: AtomicBool::new(false),
            options,
            active: AtomicUsize::new(0),
            conns: Mutex::new(Vec::new()),
            node: Mutex::new(node),
        }
    }
}

/// Decrements the live-connection count and deregisters the read-half
/// handle when a connection thread exits — including by panic, so an
/// escaped injected panic cannot leak a connection slot.
struct ConnGuard<'a> {
    shared: &'a Shared,
    id: u64,
}

impl Drop for ConnGuard<'_> {
    fn drop(&mut self) {
        self.shared.active.fetch_sub(1, Ordering::AcqRel);
        self.shared.metrics.conns.sub(1);
        lock(&self.shared.conns).retain(|(id, _)| *id != self.id);
    }
}

/// A bound, not-yet-running daemon. [`Server::run`] consumes it and
/// blocks until a client requests `shutdown`.
pub struct Server {
    pub(crate) listener: TcpListener,
    pub(crate) shared: Arc<Shared>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and prepares a
    /// fresh session over `library`, wired to `options.faults`.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(
        addr: impl ToSocketAddrs,
        library: Library,
        options: ServerOptions,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let mut shared = Shared::new(library, options);
        if let Ok(addr) = listener.local_addr() {
            // The listen address doubles as the node id: peers address
            // a node by it, and elections tiebreak on it.
            shared
                .node
                .get_mut()
                .unwrap_or_else(PoisonError::into_inner)
                .id = addr.to_string();
        }
        Ok(Server {
            listener,
            shared: Arc::new(shared),
        })
    }

    /// Mutable access to the options of a bound, not-yet-running
    /// server — `None` once `run` has started (the state is shared
    /// with connection threads from then on). Tests use this to bind a
    /// whole cluster on ephemeral ports first and wire each node's
    /// `peers`/`standby_of` to the resulting addresses afterwards.
    pub fn options_mut(&mut self) -> Option<&mut ServerOptions> {
        Arc::get_mut(&mut self.shared).map(|shared| &mut shared.options)
    }

    /// The bound address — needed when binding port 0.
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves connections until a `shutdown` request, then drains
    /// in-flight connection threads and returns. Connections past
    /// `max_connections` are shed with a `busy` frame instead of being
    /// queued.
    ///
    /// # Errors
    ///
    /// Propagates listener failures; per-connection errors only close
    /// that connection.
    pub fn run(self) -> io::Result<()> {
        // A resident daemon always times its requests: the histograms
        // are the point of running one, and the parity suite plus the
        // perf harness bound the cost.
        hb_obs::arm();
        // Options may have been rewired after bind (tests set peers to
        // addresses they only learned by binding); recompute the node
        // control state from the final options before serving.
        replica::refresh_node(&self.shared);
        let node_loop = spawn_node(&self.shared);
        let addr = self.listener.local_addr()?;
        let mut workers: Vec<thread::JoinHandle<()>> = Vec::new();
        let mut next_id: u64 = 0;
        for stream in self.listener.incoming() {
            if self.shared.shutdown.load(Ordering::Acquire) {
                break;
            }
            let Ok(stream) = stream else { continue };
            if self.shared.active.load(Ordering::Acquire) >= self.shared.options.max_connections {
                self.shared.metrics.shed.inc();
                shed(stream, &self.shared.options);
                continue;
            }
            self.shared.active.fetch_add(1, Ordering::AcqRel);
            self.shared.metrics.conns.add(1);
            let id = next_id;
            next_id += 1;
            let shared = Arc::clone(&self.shared);
            workers.push(thread::spawn(move || {
                let _guard = ConnGuard {
                    shared: &shared,
                    id,
                };
                serve_connection(stream, &shared, addr, id);
            }));
            workers.retain(|w| !w.is_finished());
        }
        for w in workers {
            let _ = w.join();
        }
        if let Some(sync) = node_loop {
            let _ = sync.join();
        }
        Ok(())
    }
}

/// Starts the node control thread when this daemon takes part in
/// replication at all — as a standby (`--standby-of`), as a clustered
/// primary (`--peers`), or both. The thread syncs, probes, gossips and
/// elects (see [`replica::run_node`]); it exits on shutdown, or once
/// it promotes with no peers to gossip to (the legacy lone-standby
/// mode, where nothing remains to do). The blocking transport joins it
/// on the way out; the reactor runs the same duties inline instead.
pub(crate) fn spawn_node(shared: &Arc<Shared>) -> Option<thread::JoinHandle<()>> {
    if shared.options.standby_of.is_none() && shared.options.peers.is_empty() {
        return None;
    }
    let shared = Arc::clone(shared);
    Some(thread::spawn(move || {
        replica::run_node(&shared);
    }))
}

/// Overload shedding: answer an over-cap connection with a structured
/// `busy` carrying the retry hint, then close. Bounded by the write
/// timeout so a non-reading client cannot stall the accept loop.
fn shed(stream: TcpStream, options: &ServerOptions) {
    let _ = stream.set_write_timeout(Some(options.write_timeout));
    let reply = Frame::new("error")
        .arg("code", "busy")
        .arg("retry_after_ms", options.retry_after_ms)
        .with_payload("connection limit reached; retry shortly");
    let _ = write_frame(&mut &stream, &reply);
    let _ = stream.shutdown(Shutdown::Both);
}

/// One connection's framing and teardown; the request loop proper is
/// [`serve_requests`]. Whatever ends the loop, the socket is shut down
/// on exit so the peer sees EOF rather than a half-dead connection.
fn serve_connection(stream: TcpStream, shared: &Shared, addr: SocketAddr, id: u64) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.options.poll_grain()));
    let _ = stream.set_write_timeout(Some(shared.options.write_timeout));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    if let Ok(clone) = stream.try_clone() {
        lock(&shared.conns).push((id, clone));
    }
    // Both halves run under the server's fault plan (with the default
    // disarmed plan the wrappers are transparent) and count their wire
    // bytes into the daemon's metrics.
    let faults = shared.options.faults.clone();
    let mut requests = FrameReader::new(BufReader::new(CountingReader::new(
        FaultStream::reader(read_half, faults.clone()),
        shared.metrics.bytes_in.clone(),
    )));
    // Enforced inside the decoder too, so a drip arriving faster than
    // the poll grain cannot dodge the deadline.
    requests.set_frame_timeout(Some(shared.options.frame_deadline));
    let mut replies = BufWriter::new(CountingWriter::new(
        FaultStream::new(io::empty(), &stream, faults),
        shared.metrics.bytes_out.clone(),
    ));
    serve_requests(&mut requests, &mut replies, shared, addr);
    drop(replies);
    let _ = stream.shutdown(Shutdown::Both);
}

/// Whether an I/O error is a socket-timeout tick rather than a real
/// failure (the kind differs by platform).
fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// One connection's read/reply loop, with the frame and idle deadlines
/// enforced on every poll tick.
fn serve_requests<R: io::BufRead>(
    requests: &mut FrameReader<R>,
    replies: &mut impl io::Write,
    shared: &Shared,
    addr: SocketAddr,
) {
    let options = &shared.options;
    let mut idle_since = Instant::now();
    loop {
        match requests.read_frame() {
            Ok(Some(req)) => {
                idle_since = Instant::now();
                let stop = req.verb == "shutdown";
                let reply = handle_with_deadline(shared, &req);
                let sent_ok = write_frame(replies, &reply).is_ok();
                if stop && reply.verb == "ok" {
                    shared.shutdown.store(true, Ordering::Release);
                    // Stop the intake everywhere: idle readers see EOF
                    // while in-flight replies still flush over the
                    // untouched write halves...
                    for (_, conn) in lock(&shared.conns).iter() {
                        let _ = conn.shutdown(Shutdown::Read);
                    }
                    // ...and unblock the accept loop so `run` can join.
                    let _ = TcpStream::connect(addr);
                    return;
                }
                if !sent_ok {
                    return; // peer closed mid-reply
                }
            }
            Ok(None) => return, // clean disconnect
            Err(ProtoError::Io(e)) if is_timeout(&e) => {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                if requests.mid_frame() {
                    // The decoder's clock started at the frame's first
                    // byte — the slowloris measure.
                    if requests.frame_age().unwrap_or(Duration::ZERO) >= options.frame_deadline {
                        let reply = Frame::new("error")
                            .arg("code", "timeout")
                            .with_payload("frame deadline exceeded: request arrived too slowly");
                        let _ = write_frame(replies, &reply);
                        return;
                    }
                } else if idle_since.elapsed() >= options.idle_timeout {
                    return; // idle reaper
                }
            }
            Err(ProtoError::Io(_)) => return,
            Err(e) => {
                idle_since = Instant::now();
                let reply = Frame::new("error")
                    .arg("code", "proto")
                    .with_payload(e.to_string());
                if write_frame(replies, &reply).is_err() || !e.recoverable() {
                    return;
                }
            }
        }
    }
}

/// Routes a request to its design slot (the `design=` argument, the
/// default design when absent), handling the fleet-management and
/// replication verbs at the transport itself. Everything else runs
/// the per-slot lock dance in [`handle_on_slot`].
///
/// Mutations are fenced first: a node that is not the primary of its
/// term rejects every state-changing verb with `error code=fenced
/// term=N`, so a zombie ex-primary can never accept a write its
/// cluster did not agree to. `stats` and `designs` replies are
/// annotated with the node's `role=`/`term=` on the way out.
pub(crate) fn handle_with_deadline(shared: &Shared, req: &Frame) -> Frame {
    if let Some(denied) = replica::fence(shared, req) {
        shared.metrics.count_write(&req.verb);
        shared.metrics.fenced_writes.inc();
        shared.metrics.error(denied.get("code").unwrap_or("fenced"));
        return denied;
    }
    match req.verb.as_str() {
        "open" | "close" => return counted(shared, req, false, || shared.fleet.manage(req)),
        "designs" => {
            return replica::annotate(
                shared,
                counted(shared, req, true, || shared.fleet.manage(req)),
            )
        }
        "repl-state" => return counted(shared, req, true, || replica::repl_state(shared, req)),
        "repl-pull" => return counted(shared, req, true, || replica::repl_pull(shared, req)),
        "vote" => return counted(shared, req, false, || replica::vote(shared, req)),
        _ => {}
    }
    let id = req.get("design").unwrap_or(DEFAULT_DESIGN);
    let slot = match shared.fleet.route(id) {
        Ok(slot) => slot,
        Err(reply) => {
            // The session never sees this request; count it here so
            // the per-verb totals stay complete.
            shared.metrics.count_write(&req.verb);
            shared.metrics.error(reply.get("code").unwrap_or("unknown"));
            return reply;
        }
    };
    shared.metrics.design_request(&slot.id);
    let reply = handle_on_slot(shared, &slot, req);
    if req.verb == "stats" {
        return replica::annotate(shared, reply);
    }
    reply
}

/// Counts and times a verb the transport answers without a session —
/// the fleet-management and replication verbs — mirroring the
/// counting [`Session::handle`] does for session verbs.
fn counted(shared: &Shared, req: &Frame, read: bool, f: impl FnOnce() -> Frame) -> Frame {
    if read {
        shared.metrics.count_read(&req.verb);
    } else {
        shared.metrics.count_write(&req.verb);
    }
    let _span = shared.metrics.handle_span(&req.verb);
    let reply = f();
    if reply.verb == "error" {
        shared.metrics.error(reply.get("code").unwrap_or("unknown"));
    }
    reply
}

/// Serves one request on one design slot, degrading to `busy` after
/// the configured lock deadline. Read-only requests of a settled
/// analysis take the shared path and run concurrently; the write path
/// is panic-isolated and journal-recovered, and transparently reloads
/// an evicted design from its journal first. A poisoned lock is
/// reclaimed, cleared and recovered — never surfaced to the client.
fn handle_on_slot(shared: &Shared, slot: &DesignSlot, req: &Frame) -> Frame {
    let deadline = Instant::now() + shared.options.lock_deadline;
    // The latency split: lock-wait runs from here until whichever lock
    // actually serves the request is held (a `busy` reply records the
    // full deadline it burned); the session records handle time itself.
    // The span is inert unless the process is armed.
    let mut lock_wait = Some(shared.metrics.lock_wait_span(&req.verb));
    let busy = || {
        Frame::new("error")
            .arg("code", "busy")
            .arg("retry_after_ms", shared.options.retry_after_ms)
            .with_payload("session lock deadline exceeded")
    };
    // An evicted design has nothing to serve read-only; the write
    // path below reloads it from its journal first.
    while slot.resident.load(Ordering::Acquire) {
        match slot.session.try_read() {
            Ok(session) => {
                // `Ok(None)` needs the write path; a read-path panic
                // (`Err`) also falls through — the write path re-runs
                // the request with recovery armed.
                if let Ok(Some(reply)) =
                    catch_unwind(AssertUnwindSafe(|| session.handle_readonly(req)))
                {
                    drop(lock_wait.take());
                    return reply;
                }
                break;
            }
            // Never serve suspect state read-only; the write path
            // below recovers it first.
            Err(TryLockError::Poisoned(_)) => break,
            Err(TryLockError::WouldBlock) => {
                if Instant::now() >= deadline {
                    return busy();
                }
                thread::sleep(Duration::from_micros(250));
            }
        }
    }
    loop {
        match slot.session.try_write() {
            Ok(mut session) => {
                drop(lock_wait.take());
                if !slot.resident.load(Ordering::Acquire) {
                    let journal = lock(&slot.journal);
                    shared.fleet.reload(slot, &mut session, &journal);
                }
                if session.faults().fires(hb_fault::NET_UNWIND_ESCAPE) {
                    // Deliberately unguarded: the chaos suite uses this
                    // to let an injected panic escape and genuinely
                    // poison the lock.
                    return session.handle(req);
                }
                let reply = {
                    let mut journal = lock(&slot.journal);
                    journal::handle_recovering(&mut session, &mut journal, &shared.library, req)
                };
                drop(session);
                shared.fleet.settle(slot);
                return reply;
            }
            Err(TryLockError::Poisoned(e)) => {
                // A panic escaped a previous writer. Claim the guard
                // anyway, clear the poison, rebuild the session from
                // the journal, then serve this request normally.
                drop(lock_wait.take());
                let mut session = e.into_inner();
                slot.session.clear_poison();
                let reply = {
                    let mut journal = lock(&slot.journal);
                    let _ = journal::recover(&mut session, &journal, &shared.library);
                    journal::handle_recovering(&mut session, &mut journal, &shared.library, req)
                };
                drop(session);
                shared.fleet.settle(slot);
                return reply;
            }
            Err(TryLockError::WouldBlock) => {
                if Instant::now() >= deadline {
                    return busy();
                }
                thread::sleep(Duration::from_micros(250));
            }
        }
    }
}

/// Serves a design fleet over arbitrary byte streams — the `--stdio`
/// mode test harnesses drive. Single-threaded: requests are answered
/// in order until `shutdown`, end-of-input, or an unrecoverable
/// protocol error. Routing, panic isolation and journal recovery
/// match the TCP path exactly — both go through
/// [`handle_with_deadline`] — so a stdio transcript and a TCP
/// transcript answer byte-identically.
///
/// # Errors
///
/// Propagates write failures on `output`; read-side protocol errors
/// are answered in-band and only unrecoverable ones end the loop.
pub fn serve_stream(
    library: Library,
    input: impl io::BufRead,
    output: &mut impl io::Write,
) -> io::Result<()> {
    let shared = Shared::new(library, ServerOptions::default());
    let mut requests = FrameReader::new(input);
    loop {
        match requests.read_frame() {
            Ok(Some(req)) => {
                let stop = req.verb == "shutdown";
                let reply = handle_with_deadline(&shared, &req);
                write_frame(output, &reply)?;
                if stop && reply.verb == "ok" {
                    return Ok(());
                }
            }
            Ok(None) => return Ok(()),
            Err(ProtoError::Io(e)) => return Err(e),
            Err(e) => {
                let reply = Frame::new("error")
                    .arg("code", "proto")
                    .with_payload(e.to_string());
                write_frame(output, &reply)?;
                if !e.recoverable() {
                    return Ok(());
                }
            }
        }
    }
}

/// A blocking request/reply client for the daemon protocol.
pub struct Client {
    requests: TcpStream,
    replies: FrameReader<BufReader<TcpStream>>,
}

impl Client {
    /// Connects to a running daemon.
    ///
    /// # Errors
    ///
    /// Propagates the connect failure.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let read_half = stream.try_clone()?;
        Ok(Client {
            requests: stream,
            replies: FrameReader::new(BufReader::new(read_half)),
        })
    }

    /// Wraps an already-connected stream (the replication control
    /// plane connects with a bounded `connect_timeout` first).
    pub(crate) fn from_stream(stream: TcpStream) -> io::Result<Client> {
        let _ = stream.set_nodelay(true);
        let read_half = stream.try_clone()?;
        Ok(Client {
            requests: stream,
            replies: FrameReader::new(BufReader::new(read_half)),
        })
    }

    /// Applies a read/write deadline to the connection (`None` blocks
    /// forever, the default). With a deadline set, [`Client::request`]
    /// fails with a `WouldBlock`/`TimedOut` I/O error instead of
    /// hanging on a stalled daemon.
    ///
    /// # Errors
    ///
    /// Propagates the socket option failure.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.requests.set_read_timeout(timeout)?;
        self.requests.set_write_timeout(timeout)
    }

    /// Sends one request and waits for its reply.
    ///
    /// # Errors
    ///
    /// Returns a [`ProtoError`] on transport failure or a malformed
    /// reply; [`ProtoError::Truncated`] when the server closed without
    /// replying.
    pub fn request(&mut self, frame: &Frame) -> Result<Frame, ProtoError> {
        write_frame(&mut self.requests, frame)?;
        self.replies.read_frame()?.ok_or(ProtoError::Truncated)
    }

    /// Sends every request back to back in one write, then collects
    /// the replies in order — request pipelining. One syscall round
    /// trip carries the whole window, which is where the daemon's
    /// throughput headroom lives (see `server_bench`).
    ///
    /// Callers bound the window: replies to a window larger than the
    /// combined socket buffers can deadlock a server that stops
    /// reading while its reply queue is full. A few hundred small
    /// requests per window is safely under that on every platform.
    ///
    /// # Errors
    ///
    /// The first transport or decode failure; [`ProtoError::Truncated`]
    /// when the server closed before answering the full window.
    pub fn request_pipelined(&mut self, frames: &[Frame]) -> Result<Vec<Frame>, ProtoError> {
        use std::io::Write;
        let mut wire = String::new();
        for f in frames {
            wire.push_str(&f.encode());
        }
        self.requests
            .write_all(wire.as_bytes())
            .map_err(ProtoError::Io)?;
        self.requests.flush().map_err(ProtoError::Io)?;
        frames
            .iter()
            .map(|_| self.replies.read_frame()?.ok_or(ProtoError::Truncated))
            .collect()
    }

    /// One request with overload-aware retry: reconnects per attempt,
    /// honours the server's `retry_after_ms` hint on `busy` replies,
    /// and backs off with seeded decorrelated jitter (see [`Backoff`])
    /// on connect or transport failures. Returns the first conclusive
    /// reply; the last attempt's outcome — even `busy` — is returned
    /// as-is.
    ///
    /// The jitter seed is drawn from the clock and the process id, so
    /// a fleet of clients shed with the same `retry_after_ms` hint
    /// desynchronises instead of stampeding back in lockstep. Use
    /// [`Client::request_with_backoff_seeded`] when a test needs the
    /// retry schedule to be reproducible.
    ///
    /// # Errors
    ///
    /// The last attempt's transport error, when every attempt failed.
    pub fn request_with_backoff(
        addr: impl ToSocketAddrs + Clone,
        frame: &Frame,
        attempts: u32,
    ) -> Result<Frame, ProtoError> {
        let clock = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_nanos() as u64);
        let seed = clock ^ (u64::from(std::process::id()) << 32);
        Client::request_with_backoff_seeded(addr, frame, attempts, seed)
    }

    /// [`Client::request_with_backoff`] with an explicit jitter seed.
    /// Two clients with different seeds retry on diverging schedules;
    /// the same seed reproduces the schedule exactly.
    ///
    /// # Errors
    ///
    /// The last attempt's transport error, when every attempt failed.
    pub fn request_with_backoff_seeded(
        addr: impl ToSocketAddrs + Clone,
        frame: &Frame,
        attempts: u32,
        seed: u64,
    ) -> Result<Frame, ProtoError> {
        let attempts = attempts.max(1);
        let mut backoff = Backoff::new(seed);
        for attempt in 1..=attempts {
            let last = attempt == attempts;
            let outcome = Client::connect(addr.clone())
                .map_err(ProtoError::Io)
                .and_then(|mut client| client.request(frame));
            match outcome {
                Ok(reply)
                    if !last && reply.verb == "error" && reply.get("code") == Some("busy") =>
                {
                    let hint = reply
                        .get("retry_after_ms")
                        .and_then(|v| v.parse::<u64>().ok())
                        .map(Duration::from_millis);
                    thread::sleep(backoff.next_wait(hint));
                }
                Ok(reply) => return Ok(reply),
                Err(e) if last => return Err(e),
                Err(_) => thread::sleep(backoff.next_wait(None)),
            }
        }
        unreachable!("the final attempt returns")
    }
}

/// Decorrelated-jitter retry delays.
///
/// The old schedule — 50 ms doubling, capped at 2 s — was fully
/// deterministic, so every client shed with the same `retry_after_ms`
/// hint slept the same delay and stampeded back into the same accept
/// queue together, re-shedding each other indefinitely. Each wait here
/// is instead drawn uniformly from `[base, 3 × previous]` (clamped to
/// `[base, cap]`, the "decorrelated jitter" scheme): the expected wait
/// still grows geometrically under repeated failure, but two clients
/// with different seeds spread out instead of colliding. A server
/// `retry_after_ms` hint acts as a floor for that wait, never a fixed
/// value every client obeys identically.
///
/// The standby reconnect loop reuses the same walk with its own
/// bounds ([`Backoff::with_bounds`]): a standby whose upstream died
/// retries on a jittered, growing schedule instead of hammering the
/// dead address every sync interval, and two standbys with different
/// seeds probe on diverging schedules.
pub(crate) struct Backoff {
    rng: SmallRng,
    prev: Duration,
    base: Duration,
    cap: Duration,
}

impl Backoff {
    pub(crate) fn new(seed: u64) -> Backoff {
        Backoff::with_bounds(seed, Duration::from_millis(50), Duration::from_secs(2))
    }

    /// A walk over `[base, cap]` — the reconnect flavour, where the
    /// base is the sync interval rather than the client retry floor.
    pub(crate) fn with_bounds(seed: u64, base: Duration, cap: Duration) -> Backoff {
        let base = base.max(Duration::from_millis(1));
        Backoff {
            rng: SmallRng::seed_from_u64(seed),
            prev: base,
            base,
            cap: cap.max(base),
        }
    }

    /// Forgets accumulated growth: the next wait draws from the first
    /// step's range again. Called after a success so one blip does not
    /// leave the reconnect loop crawling.
    pub(crate) fn reset(&mut self) {
        self.prev = self.base;
    }

    /// The next wait: jittered off the previous one, floored by the
    /// server's retry hint when present.
    pub(crate) fn next_wait(&mut self, hint: Option<Duration>) -> Duration {
        let lo = self.base.as_millis() as usize;
        let hi = (self.prev.as_millis() as usize)
            .saturating_mul(3)
            .clamp(lo + 1, self.cap.as_millis() as usize);
        self.prev = Duration::from_millis(self.rng.gen_range(lo..hi) as u64);
        self.prev.max(hint.unwrap_or(Duration::ZERO)).min(self.cap)
    }
}

/// The exact reconnect-wait schedule a standby with `sync_interval`
/// draws from `seed` — the first `rounds` waits of the decorrelated
/// jitter walk [`run_node`](crate::replica) sleeps between failed
/// sync rounds. Exposed so tests can pin that two seeds diverge (two
/// standbys must not retry a dead primary in lockstep) and that every
/// wait stays within `[interval, 8 × interval]`.
pub fn standby_backoff_schedule(seed: u64, interval: Duration, rounds: usize) -> Vec<Duration> {
    let mut backoff = Backoff::with_bounds(seed, interval, interval.saturating_mul(8));
    (0..rounds).map(|_| backoff.next_wait(None)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_jitter_desynchronises_seeds() {
        let schedule = |seed: u64| -> Vec<Duration> {
            let mut b = Backoff::new(seed);
            (0..8)
                .map(|_| b.next_wait(Some(Duration::from_millis(100))))
                .collect()
        };
        assert_eq!(schedule(1), schedule(1), "same seed, same schedule");
        assert_ne!(
            schedule(1),
            schedule(2),
            "different seeds must diverge or shed clients stampede together"
        );
        for wait in schedule(7) {
            assert!(wait >= Duration::from_millis(100), "hint is a floor");
            assert!(wait <= Duration::from_secs(2), "cap bounds every wait");
        }
    }

    #[test]
    fn backoff_grows_toward_the_cap() {
        let mut b = Backoff::new(42);
        let first = b.next_wait(None);
        assert!(first >= Duration::from_millis(50));
        // Drive it hard: the jittered walk must stay within [base, cap]
        // forever and reach beyond the first step's range eventually.
        let mut seen_growth = false;
        for _ in 0..200 {
            let w = b.next_wait(None);
            assert!((Duration::from_millis(50)..=Duration::from_secs(2)).contains(&w));
            if w > Duration::from_millis(150) {
                seen_growth = true;
            }
        }
        assert!(seen_growth, "expected waits beyond 3x base over 200 draws");
    }
}
