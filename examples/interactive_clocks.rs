//! The paper's "interactive mode": change the shapes of the clock
//! waveforms and watch the effect on system timing (Section 8:
//! "changes may be made to the shapes of the clock waveforms to
//! determine the effect").
//!
//! Sweeps the phase-2 pulse position of a two-phase latch pipeline and
//! prints the worst slack for each shape — the classic way to find the
//! workable clocking window.
//!
//! ```sh
//! cargo run -p hb-bench --example interactive_clocks
//! ```

use hb_cells::sc89;
use hb_clock::ClockSet;
use hb_units::Time;
use hb_workloads::latch_pipeline;
use hummingbird::Analyzer;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lib = sc89();
    let w = latch_pipeline(&lib, 4, 8, 5, 80);
    let period = Time::from_ns(80);

    println!("sweeping the phi2 pulse start across the 80 ns period");
    println!(
        "{:>12} {:>12} {:>12} {:>6}",
        "phi2 rise", "phi2 fall", "worst slack", "ok"
    );
    let mut best: Option<(Time, Time)> = None;
    for start_ns in (8..=64).step_by(8) {
        let rise = Time::from_ns(start_ns);
        let fall = rise + Time::from_ns(24);
        if fall >= period {
            continue;
        }
        // Rebuild the clock set with the new shape; the netlist and spec
        // are untouched — this is exactly what the interactive mode of
        // the original program did.
        let mut clocks = ClockSet::new();
        clocks.add_clock("phi1", period, Time::ZERO, period * 2 / 5)?;
        clocks.add_clock("phi2", period, rise, fall)?;
        let analyzer = Analyzer::new(&w.design, w.module, &lib, &clocks, w.spec.clone())?;
        let report = analyzer.analyze();
        println!(
            "{:>12} {:>12} {:>12} {:>6}",
            rise.to_string(),
            fall.to_string(),
            report.worst_slack().to_string(),
            if report.ok() { "yes" } else { "no" }
        );
        if report.ok() && best.is_none() {
            best = Some((rise, fall));
        }
    }
    match best {
        Some((rise, fall)) => println!("\nfirst working shape: phi2 high {rise}..{fall}"),
        None => println!("\nno working phi2 shape at this period — slow the clock"),
    }
    Ok(())
}
