//! The newline-delimited framed protocol of the `hummingbird serve`
//! daemon.
//!
//! A frame is one header line plus an optional length-prefixed payload:
//!
//! ```text
//! frame   = header LF [ payload LF ]
//! header  = verb *( SP key "=" value ) [ SP "payload=" length ]
//! payload = <length bytes of UTF-8, NUL-free>
//! ```
//!
//! The header is plain text with whitespace-free tokens, so a session
//! can be driven by hand (`printf 'stats\n' | nc ...`); anything that
//! needs spaces or newlines — designs, reports, error messages — rides
//! in the payload, whose byte length is declared up front. Because the
//! payload is length-prefixed, the reader never scans it, and because
//! the header is line-delimited, a reader that rejects a malformed
//! header is resynchronised at the next newline and the connection
//! survives.
//!
//! [`FrameReader`] reads from any [`BufRead`], so short reads from a
//! TCP stream (frames split across segments) reassemble naturally.
//! Hard limits on header and payload size make a hostile peer's worst
//! case a bounded allocation followed by a structured error.

use std::fmt;
use std::io::{self, BufRead, Write};

/// Maximum accepted header-line length in bytes (including newline).
pub const MAX_HEADER: usize = 64 * 1024;
/// Maximum accepted declared payload length in bytes.
pub const MAX_PAYLOAD: usize = 16 * 1024 * 1024;

/// One protocol frame: a verb, `key=value` arguments, and an optional
/// payload for content that does not fit a whitespace-free token.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Frame {
    /// The request or response verb (`load`, `ok`, `error`, ...).
    pub verb: String,
    /// Arguments in transmission order; keys may repeat.
    pub args: Vec<(String, String)>,
    /// Optional free-form body (a design, a report, an error message).
    pub payload: Option<String>,
}

impl Frame {
    /// A frame with the given verb and no arguments.
    pub fn new(verb: impl Into<String>) -> Frame {
        Frame {
            verb: verb.into(),
            args: Vec::new(),
            payload: None,
        }
    }

    /// Appends a `key=value` argument (builder style).
    pub fn arg(mut self, key: impl Into<String>, value: impl fmt::Display) -> Frame {
        self.args.push((key.into(), value.to_string()));
        self
    }

    /// Sets the payload (builder style).
    pub fn with_payload(mut self, payload: impl Into<String>) -> Frame {
        self.payload = Some(payload.into());
        self
    }

    /// The first value of `key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.args
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Every value of `key`, in order (for repeatable arguments).
    pub fn get_all<'a>(&'a self, key: &'a str) -> impl Iterator<Item = &'a str> {
        self.args
            .iter()
            .filter(move |(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Encodes the frame as wire bytes.
    ///
    /// # Panics
    ///
    /// Panics if the verb or any argument token contains whitespace,
    /// `=` in a key, or a NUL — such content belongs in the payload.
    /// (All tokens produced by this codebase are identifiers or
    /// numbers; the assertion catches misrouted content in tests.)
    pub fn encode(&self) -> String {
        assert!(token_ok(&self.verb), "verb is not a bare token");
        let mut out = String::with_capacity(64);
        out.push_str(&self.verb);
        for (k, v) in &self.args {
            assert!(
                token_ok(k) && !k.contains('=') && token_ok(v),
                "argument `{k}` is not a bare token pair"
            );
            out.push(' ');
            out.push_str(k);
            out.push('=');
            out.push_str(v);
        }
        if let Some(p) = &self.payload {
            assert!(!p.contains('\0'), "payload contains NUL");
            out.push_str(&format!(" payload={}", p.len()));
            out.push('\n');
            out.push_str(p);
        }
        out.push('\n');
        out
    }
}

fn token_ok(s: &str) -> bool {
    !s.is_empty() && !s.contains(|c: char| c.is_whitespace() || c == '\0')
}

/// Why a frame could not be decoded.
#[derive(Debug)]
pub enum ProtoError {
    /// The underlying stream failed.
    Io(io::Error),
    /// The header line is syntactically invalid. The stream is still
    /// aligned on a frame boundary; reading may continue.
    Malformed(String),
    /// A declared size exceeds the protocol limit. The remaining
    /// stream position is undefined; the connection should close.
    Oversized {
        /// What overflowed (`header` or `payload`).
        what: &'static str,
        /// The enforced limit in bytes.
        limit: usize,
    },
    /// The frame embeds a NUL byte.
    Nul,
    /// The frame is not valid UTF-8.
    Encoding,
    /// The stream ended inside a frame.
    Truncated,
}

impl ProtoError {
    /// Whether the stream is still aligned on a frame boundary after
    /// this error, i.e. the reader may keep serving the connection.
    pub fn recoverable(&self) -> bool {
        matches!(self, ProtoError::Malformed(_) | ProtoError::Nul)
    }
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "protocol stream error: {e}"),
            ProtoError::Malformed(msg) => write!(f, "malformed frame: {msg}"),
            ProtoError::Oversized { what, limit } => {
                write!(f, "frame {what} exceeds {limit} bytes")
            }
            ProtoError::Nul => write!(f, "frame contains a NUL byte"),
            ProtoError::Encoding => write!(f, "frame is not valid UTF-8"),
            ProtoError::Truncated => write!(f, "stream ended inside a frame"),
        }
    }
}

impl std::error::Error for ProtoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ProtoError {
    fn from(e: io::Error) -> ProtoError {
        ProtoError::Io(e)
    }
}

/// Writes one frame and flushes the stream.
///
/// # Errors
///
/// Propagates the underlying write or flush failure. On a TCP stream
/// whose peer vanished this surfaces as an ordinary [`io::Error`]
/// (Rust ignores `SIGPIPE`), which a server treats as a disconnect.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> io::Result<()> {
    w.write_all(frame.encode().as_bytes())?;
    w.flush()
}

/// An incremental frame decoder over any buffered byte stream.
pub struct FrameReader<R> {
    inner: R,
}

impl<R: BufRead> FrameReader<R> {
    /// Wraps a buffered stream.
    pub fn new(inner: R) -> FrameReader<R> {
        FrameReader { inner }
    }

    /// Unwraps the underlying stream.
    pub fn into_inner(self) -> R {
        self.inner
    }

    /// Reads the next frame; `Ok(None)` on a clean end-of-stream (the
    /// previous frame was complete).
    ///
    /// # Errors
    ///
    /// See [`ProtoError`]; [`ProtoError::recoverable`] distinguishes
    /// errors that leave the stream aligned from those that do not.
    pub fn read_frame(&mut self) -> Result<Option<Frame>, ProtoError> {
        let line = match self.read_header_line()? {
            Some(line) => line,
            None => return Ok(None),
        };
        if line.contains('\0') {
            return Err(ProtoError::Nul);
        }
        let mut tokens = line.split_whitespace();
        let verb = tokens
            .next()
            .ok_or_else(|| ProtoError::Malformed("empty header line".into()))?
            .to_owned();
        let mut frame = Frame::new(verb);
        let mut payload_len: Option<usize> = None;
        for token in tokens {
            let (key, value) = token
                .split_once('=')
                .ok_or_else(|| ProtoError::Malformed(format!("argument `{token}` lacks `=`")))?;
            if key.is_empty() {
                return Err(ProtoError::Malformed(format!(
                    "argument `{token}` lacks a key"
                )));
            }
            if key == "payload" {
                let n: usize = value.parse().map_err(|_| {
                    ProtoError::Malformed(format!("payload length `{value}` is not a number"))
                })?;
                if n > MAX_PAYLOAD {
                    return Err(ProtoError::Oversized {
                        what: "payload",
                        limit: MAX_PAYLOAD,
                    });
                }
                payload_len = Some(n);
            } else {
                frame.args.push((key.to_owned(), value.to_owned()));
            }
        }
        if let Some(n) = payload_len {
            frame.payload = Some(self.read_payload(n)?);
        }
        Ok(Some(frame))
    }

    /// Reads one newline-terminated header line, enforcing
    /// [`MAX_HEADER`]. Returns `None` on immediate end-of-stream.
    fn read_header_line(&mut self) -> Result<Option<String>, ProtoError> {
        let mut buf: Vec<u8> = Vec::new();
        loop {
            let chunk = self.inner.fill_buf().map_err(ProtoError::Io)?;
            if chunk.is_empty() {
                return if buf.is_empty() {
                    Ok(None)
                } else {
                    Err(ProtoError::Truncated)
                };
            }
            match chunk.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    if buf.len() + pos > MAX_HEADER {
                        return Err(ProtoError::Oversized {
                            what: "header",
                            limit: MAX_HEADER,
                        });
                    }
                    buf.extend_from_slice(&chunk[..pos]);
                    self.inner.consume(pos + 1);
                    break;
                }
                None => {
                    let len = chunk.len();
                    if buf.len() + len > MAX_HEADER {
                        return Err(ProtoError::Oversized {
                            what: "header",
                            limit: MAX_HEADER,
                        });
                    }
                    buf.extend_from_slice(chunk);
                    self.inner.consume(len);
                }
            }
        }
        String::from_utf8(buf)
            .map(Some)
            .map_err(|_| ProtoError::Encoding)
    }

    /// Reads exactly `n` payload bytes plus the trailing newline.
    fn read_payload(&mut self, n: usize) -> Result<String, ProtoError> {
        let mut bytes = vec![0u8; n + 1];
        self.inner.read_exact(&mut bytes).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                ProtoError::Truncated
            } else {
                ProtoError::Io(e)
            }
        })?;
        let newline = bytes.pop().expect("n + 1 > 0");
        if newline != b'\n' {
            return Err(ProtoError::Malformed(
                "payload is not newline-terminated at its declared length".into(),
            ));
        }
        if bytes.contains(&b'\0') {
            return Err(ProtoError::Nul);
        }
        String::from_utf8(bytes).map_err(|_| ProtoError::Encoding)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn decode_all(bytes: &[u8]) -> Result<Vec<Frame>, ProtoError> {
        let mut reader = FrameReader::new(Cursor::new(bytes.to_vec()));
        let mut frames = Vec::new();
        while let Some(f) = reader.read_frame()? {
            frames.push(f);
        }
        Ok(frames)
    }

    #[test]
    fn round_trip_basics() {
        let frames = [
            Frame::new("stats"),
            Frame::new("slack").arg("node", "ff3").arg("pass", 2),
            Frame::new("load")
                .arg("format", "hum")
                .with_payload("design d\nmodule top\nend\ntop top\n"),
            Frame::new("ok").with_payload(""),
        ];
        let mut wire = Vec::new();
        for f in &frames {
            write_frame(&mut wire, f).unwrap();
        }
        let decoded = decode_all(&wire).unwrap();
        assert_eq!(decoded.as_slice(), frames.as_slice());
    }

    #[test]
    fn header_errors_are_classified() {
        assert!(matches!(
            decode_all(b"slack node\n"),
            Err(ProtoError::Malformed(_))
        ));
        assert!(matches!(
            decode_all(b"load payload=abc\n"),
            Err(ProtoError::Malformed(_))
        ));
        assert!(matches!(
            decode_all(b"load payload=99999999999\n"),
            Err(ProtoError::Oversized {
                what: "payload",
                ..
            })
        ));
        assert!(matches!(decode_all(b"st\0ats\n"), Err(ProtoError::Nul)));
        assert!(matches!(decode_all(b"stats"), Err(ProtoError::Truncated)));
        assert!(matches!(
            decode_all(b"load payload=100\nshort\n"),
            Err(ProtoError::Truncated)
        ));
        assert!(matches!(
            decode_all(b"load payload=2\nabcdef\n"),
            Err(ProtoError::Malformed(_))
        ));
    }

    #[test]
    fn malformed_header_leaves_stream_aligned() {
        let mut reader = FrameReader::new(Cursor::new(b"bad arg\nstats\n".to_vec()));
        let err = reader.read_frame().unwrap_err();
        assert!(err.recoverable());
        let next = reader.read_frame().unwrap().unwrap();
        assert_eq!(next.verb, "stats");
        assert!(reader.read_frame().unwrap().is_none());
    }

    #[test]
    fn oversized_header_is_rejected() {
        let mut wire = vec![b'a'; MAX_HEADER + 10];
        wire.push(b'\n');
        assert!(matches!(
            decode_all(&wire),
            Err(ProtoError::Oversized { what: "header", .. })
        ));
    }
}
