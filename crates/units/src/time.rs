use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Rem, Sub, SubAssign};
use std::str::FromStr;

/// A signed instant or duration measured in integer picoseconds.
///
/// `Time` is deliberately a single type for both instants and durations:
/// the DAC'89 formulation mixes the two freely (terminal *offsets* are
/// durations relative to ideal times, ideal times are instants within the
/// overall clock period) and the arithmetic is always exact integer
/// arithmetic.
///
/// Two sentinel values, [`Time::NEG_INF`] and [`Time::INF`], stand in for
/// "no signal yet" and "unconstrained" during block-oriented slack
/// computation. [`Time::saturating_add`] keeps the sentinels absorbing so
/// that `NEG_INF + delay == NEG_INF` and `INF - delay == INF`.
///
/// # Examples
///
/// ```
/// use hb_units::Time;
///
/// let t = Time::from_ns(3) + Time::from_ps(250);
/// assert_eq!(t.as_ps(), 3_250);
/// assert_eq!(t.to_string(), "3.250ns");
/// assert_eq!("3.25ns".parse::<Time>()?, t);
/// # Ok::<(), hb_units::ParseTimeError>(())
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Time(i64);

impl Time {
    /// The zero instant / empty duration.
    pub const ZERO: Time = Time(0);
    /// Sentinel for "minus infinity" (no transition has occurred).
    ///
    /// One quarter of the `i64` range is reserved as head-room so that
    /// ordinary arithmetic on sentinel-free values can never collide with
    /// the sentinels.
    pub const NEG_INF: Time = Time(i64::MIN / 4);
    /// Sentinel for "plus infinity" (an unconstrained required time).
    pub const INF: Time = Time(i64::MAX / 4);

    /// Creates a time from raw picoseconds.
    #[inline]
    pub const fn from_ps(ps: i64) -> Time {
        Time(ps)
    }

    /// Creates a time from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: i64) -> Time {
        Time(ns * 1_000)
    }

    /// Creates a time from microseconds.
    #[inline]
    pub const fn from_us(us: i64) -> Time {
        Time(us * 1_000_000)
    }

    /// Returns the raw picosecond count.
    #[inline]
    pub const fn as_ps(self) -> i64 {
        self.0
    }

    /// Returns the value in (possibly fractional) nanoseconds.
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns `true` for either of the two infinity sentinels.
    #[inline]
    pub fn is_infinite(self) -> bool {
        self <= Time::NEG_INF || self >= Time::INF
    }

    /// Returns `true` for an ordinary (non-sentinel) value.
    #[inline]
    pub fn is_finite(self) -> bool {
        !self.is_infinite()
    }

    /// Adds, keeping the infinity sentinels absorbing.
    ///
    /// If either operand is at or beyond a sentinel the result is clamped
    /// back to that sentinel, so `NEG_INF + x == NEG_INF` for any finite
    /// `x` and symmetrically for `INF`.
    #[inline]
    pub fn saturating_add(self, rhs: Time) -> Time {
        if self <= Time::NEG_INF || rhs <= Time::NEG_INF {
            Time::NEG_INF
        } else if self >= Time::INF || rhs >= Time::INF {
            Time::INF
        } else {
            Time(self.0 + rhs.0)
        }
    }

    /// Subtracts, keeping the infinity sentinels absorbing.
    ///
    /// `INF - x == INF` and `NEG_INF - x == NEG_INF` for finite `x`;
    /// `x - INF == NEG_INF` and `x - NEG_INF == INF`.
    #[inline]
    pub fn saturating_sub(self, rhs: Time) -> Time {
        if rhs >= Time::INF {
            Time::NEG_INF
        } else if rhs <= Time::NEG_INF {
            Time::INF
        } else if self.is_infinite() {
            self.clamp(Time::NEG_INF, Time::INF)
        } else {
            Time(self.0 - rhs.0)
        }
    }

    /// Euclidean remainder: always in `[0, modulus)`.
    ///
    /// This is the placement primitive for locating clock edges within the
    /// overall clock period.
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is not strictly positive.
    #[inline]
    pub fn rem_euclid(self, modulus: Time) -> Time {
        assert!(modulus > Time::ZERO, "modulus must be positive");
        Time(self.0.rem_euclid(modulus.0))
    }

    /// Places a *closure* time within a window of length `modulus` that
    /// starts at zero: the result is in `(0, modulus]`, i.e. a time that
    /// falls exactly on the window boundary is placed at the **end**.
    ///
    /// The paper's pass-selection rule ("find the broken open clock period
    /// within which the ideal closure time appears closest to the end")
    /// relies on this asymmetry: assertion times use [`Time::rem_euclid`]
    /// (range `[0, modulus)`) while closure times use this method, so a
    /// flip-flop to flip-flop path on the same edge is granted exactly one
    /// full period.
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is not strictly positive.
    #[inline]
    pub fn rem_euclid_end(self, modulus: Time) -> Time {
        assert!(modulus > Time::ZERO, "modulus must be positive");
        Time((self.0 - 1).rem_euclid(modulus.0) + 1)
    }

    /// Returns the smaller of two times.
    #[inline]
    pub fn min(self, other: Time) -> Time {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Returns the larger of two times.
    #[inline]
    pub fn max(self, other: Time) -> Time {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Returns the absolute value.
    #[inline]
    pub fn abs(self) -> Time {
        Time(self.0.abs())
    }

    /// Greatest common divisor of two non-negative times.
    ///
    /// # Panics
    ///
    /// Panics if either operand is negative.
    pub fn gcd(self, other: Time) -> Time {
        assert!(
            self.0 >= 0 && other.0 >= 0,
            "gcd is defined on non-negative times"
        );
        let (mut a, mut b) = (self.0, other.0);
        while b != 0 {
            let r = a % b;
            a = b;
            b = r;
        }
        Time(a)
    }

    /// Least common multiple of two positive times.
    ///
    /// Used to derive the overall clock period from a set of harmonically
    /// related clock periods.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not strictly positive, or on overflow.
    pub fn lcm(self, other: Time) -> Time {
        assert!(
            self.0 > 0 && other.0 > 0,
            "lcm is defined on positive times"
        );
        let g = self.gcd(other).0;
        Time((self.0 / g).checked_mul(other.0).expect("lcm overflow"))
    }
}

impl Add for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Time) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.0;
    }
}

impl Sub for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Time) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl SubAssign for Time {
    #[inline]
    fn sub_assign(&mut self, rhs: Time) {
        self.0 -= rhs.0;
    }
}

impl Neg for Time {
    type Output = Time;
    #[inline]
    fn neg(self) -> Time {
        Time(-self.0)
    }
}

impl Mul<i64> for Time {
    type Output = Time;
    #[inline]
    fn mul(self, rhs: i64) -> Time {
        Time(self.0 * rhs)
    }
}

impl Mul<Time> for i64 {
    type Output = Time;
    #[inline]
    fn mul(self, rhs: Time) -> Time {
        Time(self * rhs.0)
    }
}

impl Div<i64> for Time {
    type Output = Time;
    #[inline]
    fn div(self, rhs: i64) -> Time {
        Time(self.0 / rhs)
    }
}

impl Div<Time> for Time {
    type Output = i64;
    #[inline]
    fn div(self, rhs: Time) -> i64 {
        self.0 / rhs.0
    }
}

impl Rem<Time> for Time {
    type Output = Time;
    #[inline]
    fn rem(self, rhs: Time) -> Time {
        Time(self.0 % rhs.0)
    }
}

impl Sum for Time {
    fn sum<I: Iterator<Item = Time>>(iter: I) -> Time {
        iter.fold(Time::ZERO, Add::add)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self >= Time::INF {
            return f.write_str("+inf");
        }
        if *self <= Time::NEG_INF {
            return f.write_str("-inf");
        }
        let ps = self.0;
        let (sign, mag) = if ps < 0 { ("-", -ps) } else { ("", ps) };
        let ns = mag / 1_000;
        let frac = mag % 1_000;
        if frac == 0 {
            write!(f, "{sign}{ns}ns")
        } else {
            write!(f, "{sign}{ns}.{frac:03}ns")
        }
    }
}

/// Error returned when parsing a [`Time`] from text fails.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseTimeError {
    input: String,
}

impl fmt::Display for ParseTimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid time syntax: {:?}", self.input)
    }
}

impl std::error::Error for ParseTimeError {}

impl FromStr for Time {
    type Err = ParseTimeError;

    /// Parses `"12ps"`, `"3ns"`, `"3.25ns"`, `"1us"`, or a bare
    /// picosecond count such as `"1250"`.
    fn from_str(s: &str) -> Result<Time, ParseTimeError> {
        let err = || ParseTimeError {
            input: s.to_owned(),
        };
        let s = s.trim();
        let (num, scale_ps) = if let Some(stripped) = s.strip_suffix("ps") {
            (stripped, 1i64)
        } else if let Some(stripped) = s.strip_suffix("ns") {
            (stripped, 1_000)
        } else if let Some(stripped) = s.strip_suffix("us") {
            (stripped, 1_000_000)
        } else {
            (s, 1)
        };
        let num = num.trim();
        if num.is_empty() {
            return Err(err());
        }
        let (sign, digits) = match num.strip_prefix('-') {
            Some(rest) => (-1i64, rest),
            None => (1i64, num),
        };
        let mut parts = digits.splitn(2, '.');
        let int_part = parts.next().ok_or_else(err)?;
        let int: i64 = if int_part.is_empty() {
            0
        } else {
            int_part.parse().map_err(|_| err())?
        };
        let mut ps = int.checked_mul(scale_ps).ok_or_else(err)?;
        if let Some(frac) = parts.next() {
            if frac.is_empty() || frac.chars().any(|c| !c.is_ascii_digit()) {
                return Err(err());
            }
            // A fraction is only exact when scale * 10^-len(frac) is integral.
            let mut numer: i64 = frac.parse().map_err(|_| err())?;
            let mut denom: i64 = 10i64.checked_pow(frac.len() as u32).ok_or_else(err)?;
            let g = gcd_i64(numer.max(1), denom);
            numer /= g;
            denom /= g;
            if scale_ps % denom != 0 {
                return Err(err());
            }
            ps = ps.checked_add(numer * (scale_ps / denom)).ok_or_else(err)?;
        }
        Ok(Time(sign * ps))
    }
}

fn gcd_i64(mut a: i64, mut b: i64) -> i64 {
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    a.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        assert_eq!(Time::from_ns(2).as_ps(), 2_000);
        assert_eq!(Time::from_us(1).as_ps(), 1_000_000);
        assert_eq!(Time::from_ps(7).as_ns_f64(), 0.007);
        assert_eq!(Time::default(), Time::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = Time::from_ns(5);
        let b = Time::from_ns(2);
        assert_eq!(a + b, Time::from_ns(7));
        assert_eq!(a - b, Time::from_ns(3));
        assert_eq!(-a, Time::from_ns(-5));
        assert_eq!(a * 3, Time::from_ns(15));
        assert_eq!(3 * a, Time::from_ns(15));
        assert_eq!(a / 5, Time::from_ns(1));
        assert_eq!(Time::from_ns(10) / Time::from_ns(2), 5);
        let mut c = a;
        c += b;
        c -= Time::from_ns(1);
        assert_eq!(c, Time::from_ns(6));
        assert_eq!(vec![a, b].into_iter().sum::<Time>(), Time::from_ns(7));
    }

    #[test]
    fn saturating_behaviour() {
        let d = Time::from_ns(4);
        assert_eq!(Time::NEG_INF.saturating_add(d), Time::NEG_INF);
        assert_eq!(Time::INF.saturating_add(-d), Time::INF);
        assert_eq!(Time::INF.saturating_sub(d), Time::INF);
        assert_eq!(d.saturating_sub(Time::INF), Time::NEG_INF);
        assert_eq!(d.saturating_sub(Time::NEG_INF), Time::INF);
        assert_eq!(d.saturating_add(d), Time::from_ns(8));
        assert!(Time::INF.is_infinite() && Time::NEG_INF.is_infinite());
        assert!(d.is_finite());
    }

    #[test]
    fn euclidean_placement() {
        let t = Time::from_ns(100);
        assert_eq!(Time::from_ns(-30).rem_euclid(t), Time::from_ns(70));
        assert_eq!(Time::from_ns(230).rem_euclid(t), Time::from_ns(30));
        assert_eq!(Time::ZERO.rem_euclid(t), Time::ZERO);
        // Closure placement maps the boundary to the end of the window.
        assert_eq!(Time::ZERO.rem_euclid_end(t), t);
        assert_eq!(Time::from_ns(100).rem_euclid_end(t), t);
        assert_eq!(Time::from_ns(1).rem_euclid_end(t), Time::from_ns(1));
    }

    #[test]
    #[should_panic(expected = "modulus must be positive")]
    fn rem_euclid_rejects_nonpositive_modulus() {
        let _ = Time::from_ns(1).rem_euclid(Time::ZERO);
    }

    #[test]
    fn gcd_lcm() {
        assert_eq!(Time::from_ns(100).gcd(Time::from_ns(40)), Time::from_ns(20));
        assert_eq!(Time::from_ns(50).lcm(Time::from_ns(20)), Time::from_ns(100));
        assert_eq!(
            Time::from_ns(100).lcm(Time::from_ns(100)),
            Time::from_ns(100)
        );
    }

    #[test]
    fn display() {
        assert_eq!(Time::from_ns(3).to_string(), "3ns");
        assert_eq!(Time::from_ps(3_250).to_string(), "3.250ns");
        assert_eq!(Time::from_ps(-500).to_string(), "-0.500ns");
        assert_eq!(Time::INF.to_string(), "+inf");
        assert_eq!(Time::NEG_INF.to_string(), "-inf");
    }

    #[test]
    fn parse() {
        assert_eq!("3ns".parse::<Time>().unwrap(), Time::from_ns(3));
        assert_eq!("3.25ns".parse::<Time>().unwrap(), Time::from_ps(3_250));
        assert_eq!("-1.5ns".parse::<Time>().unwrap(), Time::from_ps(-1_500));
        assert_eq!("250ps".parse::<Time>().unwrap(), Time::from_ps(250));
        assert_eq!("2us".parse::<Time>().unwrap(), Time::from_us(2));
        assert_eq!("42".parse::<Time>().unwrap(), Time::from_ps(42));
        assert!("".parse::<Time>().is_err());
        assert!("ns".parse::<Time>().is_err());
        assert!("1.2345ns".parse::<Time>().is_err(), "sub-ps not exact");
        assert!("1.x ns".parse::<Time>().is_err());
    }

    #[test]
    fn parse_roundtrips_display() {
        for ps in [-12_345, -1, 0, 1, 999, 1_000, 123_456_789] {
            let t = Time::from_ps(ps);
            assert_eq!(t.to_string().parse::<Time>().unwrap(), t);
        }
    }
}
