//! Clock waveforms, the clock-edge timeline, and analysis-pass
//! minimisation for the hummingbird timing analyzer.
//!
//! The paper allows "any set of clock signals, with any (harmonically
//! related) frequencies and phase relationships". This crate models that:
//!
//! * [`Clock`] / [`ClockSet`] — periodic two-edge waveforms with integer
//!   picosecond periods; the *overall period* is the least common
//!   multiple of the individual periods;
//! * [`Timeline`] — the enumeration of every clock-generator edge within
//!   one overall period, with pulse bookkeeping for both enable phases
//!   (a synchronising element whose control is a *negative* monotonic
//!   function of its clock is enabled while the clock is low);
//! * [`EdgeGraph`] — the directed graph of Section 7 / Figure 4 that
//!   represents the cyclic order of clock edges, plus the search for the
//!   **minimum set of "broken open" clock periods** (analysis passes)
//!   that gives every cluster input→output combination a window in which
//!   its ideal assertion time precedes its ideal closure time.
//!
//! # Examples
//!
//! Two-phase non-overlapping clocking:
//!
//! ```
//! use hb_clock::ClockSet;
//! use hb_units::Time;
//!
//! # fn main() -> Result<(), hb_clock::ClockError> {
//! let mut clocks = ClockSet::new();
//! let phi1 = clocks.add_clock("phi1", Time::from_ns(100), Time::ZERO, Time::from_ns(40))?;
//! let phi2 = clocks.add_clock("phi2", Time::from_ns(100), Time::from_ns(50), Time::from_ns(90))?;
//! let timeline = clocks.timeline();
//! assert_eq!(timeline.overall_period(), Time::from_ns(100));
//! assert_eq!(timeline.edges().count(), 4);
//! # let _ = (phi1, phi2);
//! # Ok(())
//! # }
//! ```

mod clock;
mod graph;
mod render;
mod timeline;

pub use clock::{Clock, ClockError, ClockId, ClockSet};
pub use graph::{EdgeGraph, PassPlan, Requirement};
pub use render::{render_markers, render_waveforms};
pub use timeline::{ClockEdge, EdgeId, Pulse, Timeline};
