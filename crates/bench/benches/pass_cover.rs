//! Ablation: the Section 7 minimal analysis-pass search.
//!
//! Measures the exhaustive break-arc subset search as the clock system
//! grows (2–8 phases, all-pairs requirement sets), and compares the
//! resulting pass counts against the naive alternative of one pass per
//! clock edge — which is what "a number of settling times … for each
//! node" costs without the minimisation.

use hb_bench::microbench::bench;
use hb_clock::{ClockSet, EdgeGraph, Requirement};
use hb_units::Time;

fn phase_set(phases: i64) -> ClockSet {
    let mut clocks = ClockSet::new();
    let period = Time::from_ns(120);
    for i in 0..phases {
        let start = Time::from_ps(120_000 / phases * i);
        clocks
            .add_clock(format!("p{i}"), period, start, start + Time::from_ns(10))
            .expect("valid waveform");
    }
    clocks
}

/// Pipeline-style requirements: latches on phase `i` feed latches on
/// phase `i+1` (leading edge asserts, trailing edge closes), with the
/// wrap-around pair included — the realistic multi-phase structure.
fn pipeline_requirements(clocks: &ClockSet) -> Vec<Requirement> {
    let timeline = clocks.timeline();
    let ids: Vec<_> = clocks.clocks().map(|(id, _)| id).collect();
    let mut reqs = Vec::new();
    for (i, &src) in ids.iter().enumerate() {
        let dst = ids[(i + 1) % ids.len()];
        let lead = timeline.pulses(src, hb_units::Sense::Positive)[0].lead;
        let trail = timeline.pulses(dst, hb_units::Sense::Positive)[0].trail;
        reqs.push(Requirement {
            assert_edge: lead,
            close_edge: trail,
        });
    }
    reqs
}

/// The adversarial all-pairs set (every assertion must precede every
/// closure in some window) — the worst case for any cover.
fn all_pairs(clocks: &ClockSet) -> (Vec<Requirement>, usize) {
    let timeline = clocks.timeline();
    let ids: Vec<_> = timeline.edges().map(|(id, _)| id).collect();
    let mut reqs = Vec::new();
    for &a in &ids {
        for &c in &ids {
            reqs.push(Requirement {
                assert_edge: a,
                close_edge: c,
            });
        }
    }
    (reqs, ids.len())
}

fn main() {
    for phases in [2i64, 4, 8] {
        let clocks = phase_set(phases);
        let timeline = clocks.timeline();
        let pipeline = pipeline_requirements(&clocks);
        let (adversarial, edge_count) = all_pairs(&clocks);
        let graph = EdgeGraph::new(&timeline);
        bench(&format!("pass_cover/pipeline/{phases}"), 2, 10, || {
            graph.minimal_passes(&pipeline)
        });
        bench(&format!("pass_cover/all_pairs/{phases}"), 2, 10, || {
            graph.minimal_passes(&adversarial)
        });
        // Report the ablation numbers once per configuration.
        let pipe_plan = graph.minimal_passes(&pipeline);
        let adv_plan = graph.minimal_passes(&adversarial);
        eprintln!(
            "pass_cover: {phases} phases -> pipeline {} passes, all-pairs {} passes (naive: {edge_count})",
            pipe_plan.pass_count(),
            adv_plan.pass_count(),
        );
    }
}
