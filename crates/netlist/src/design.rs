//! The top-level design container and its editing API.

use std::collections::HashMap;
use std::fmt;

use crate::error::NetlistError;
use crate::ids::{InstId, LeafId, ModuleId, NetId, PinSlot, PortId};
use crate::leaf::{LeafDef, PinDir};
use crate::module::{Endpoint, InstRef, Instance, Module, Net, Port};

/// A complete design: leaf-cell interface declarations plus a module
/// hierarchy.
///
/// All structural edits go through `Design` so that the normalized
/// connectivity (net endpoint lists and instance connection tables) can
/// never drift apart. See the [crate-level documentation](crate) for a
/// worked example.
#[derive(Clone, Debug)]
pub struct Design {
    name: String,
    leaves: Vec<LeafDef>,
    leaf_by_name: HashMap<String, LeafId>,
    modules: Vec<Module>,
    module_by_name: HashMap<String, ModuleId>,
    top: Option<ModuleId>,
}

/// Aggregate size counts for a design, in the units of the paper's
/// Table 1 ("cells" and "nets").
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DesignStats {
    /// Leaf-cell instances, counted through the hierarchy.
    pub cells: usize,
    /// Nets, counted through the hierarchy (port-aliased nets are counted
    /// once, in the module that owns them).
    pub nets: usize,
    /// Module (hierarchical) instances.
    pub module_insts: usize,
    /// Maximum hierarchy depth below the counted module (0 for flat).
    pub depth: usize,
}

impl Design {
    /// Creates an empty design.
    pub fn new(name: impl Into<String>) -> Design {
        Design {
            name: name.into(),
            leaves: Vec::new(),
            leaf_by_name: HashMap::new(),
            modules: Vec::new(),
            module_by_name: HashMap::new(),
            top: None,
        }
    }

    /// The design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    // ---- leaf definitions -------------------------------------------------

    /// Registers a leaf-cell interface.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateName`] if a leaf with the same name
    /// exists.
    pub fn declare_leaf(&mut self, def: LeafDef) -> Result<LeafId, NetlistError> {
        if self.leaf_by_name.contains_key(def.name()) {
            return Err(NetlistError::DuplicateName {
                kind: "leaf",
                name: def.name().to_owned(),
            });
        }
        let id = LeafId::from_raw(self.leaves.len() as u32);
        self.leaf_by_name.insert(def.name().to_owned(), id);
        self.leaves.push(def);
        Ok(id)
    }

    /// Returns a leaf definition.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this design.
    pub fn leaf(&self, id: LeafId) -> &LeafDef {
        &self.leaves[id.idx()]
    }

    /// Looks up a leaf definition by cell name.
    pub fn leaf_by_name(&self, name: &str) -> Option<LeafId> {
        self.leaf_by_name.get(name).copied()
    }

    /// Iterates over `(id, definition)` pairs in declaration order.
    pub fn leaves(&self) -> impl Iterator<Item = (LeafId, &LeafDef)> {
        self.leaves
            .iter()
            .enumerate()
            .map(|(i, d)| (LeafId::from_raw(i as u32), d))
    }

    // ---- modules ----------------------------------------------------------

    /// Creates a new, empty module.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateName`] if a module with the same
    /// name exists.
    pub fn add_module(&mut self, name: impl Into<String>) -> Result<ModuleId, NetlistError> {
        let name = name.into();
        if self.module_by_name.contains_key(&name) {
            return Err(NetlistError::DuplicateName {
                kind: "module",
                name,
            });
        }
        let id = ModuleId::from_raw(self.modules.len() as u32);
        self.module_by_name.insert(name.clone(), id);
        self.modules.push(Module::new(name));
        Ok(id)
    }

    /// Returns a module.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this design.
    pub fn module(&self, id: ModuleId) -> &Module {
        &self.modules[id.idx()]
    }

    /// Returns a module mutably (for attribute annotation; structural
    /// edits go through `Design` methods).
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this design.
    pub fn module_mut(&mut self, id: ModuleId) -> &mut Module {
        &mut self.modules[id.idx()]
    }

    /// Looks up a module by name.
    pub fn module_by_name(&self, name: &str) -> Option<ModuleId> {
        self.module_by_name.get(name).copied()
    }

    /// Iterates over `(id, module)` pairs in creation order.
    pub fn modules(&self) -> impl Iterator<Item = (ModuleId, &Module)> {
        self.modules
            .iter()
            .enumerate()
            .map(|(i, m)| (ModuleId::from_raw(i as u32), m))
    }

    /// Marks `id` as the design's top module.
    ///
    /// # Errors
    ///
    /// Currently infallible for valid ids; returns `Ok` for uniform call
    /// sites.
    pub fn set_top(&mut self, id: ModuleId) -> Result<(), NetlistError> {
        assert!(id.idx() < self.modules.len(), "module id out of range");
        self.top = Some(id);
        Ok(())
    }

    /// The design's top module, if set.
    pub fn top(&self) -> Option<ModuleId> {
        self.top
    }

    // ---- structural edits -------------------------------------------------

    /// Pre-sizes a module's instance and net arenas (and their name
    /// indexes) for at least `insts` / `nets` more entries.
    ///
    /// Bulk producers — the `.hum` parser, the design generator — know
    /// their counts up front; reserving once avoids the repeated
    /// grow-and-copy cycles that dominate million-cell construction.
    pub fn reserve(&mut self, module: ModuleId, insts: usize, nets: usize) {
        let m = &mut self.modules[module.idx()];
        m.insts.reserve(insts);
        m.inst_by_name.reserve(insts);
        m.nets.reserve(nets);
        m.net_by_name.reserve(nets);
    }

    /// Adds a net to a module.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateName`] on a name collision.
    pub fn add_net(
        &mut self,
        module: ModuleId,
        name: impl Into<String>,
    ) -> Result<NetId, NetlistError> {
        let m = &mut self.modules[module.idx()];
        let name = name.into();
        if m.net_by_name.contains_key(&name) {
            return Err(NetlistError::DuplicateName { kind: "net", name });
        }
        assert!(
            m.nets.len() < u32::MAX as usize,
            "net arena exceeds the u32 id space"
        );
        let id = NetId::from_raw(m.nets.len() as u32);
        m.net_by_name.insert(name.clone(), id);
        m.nets.push(Net {
            name: name.into_boxed_str(),
            endpoints: Vec::new(),
            attrs: Default::default(),
        });
        Ok(id)
    }

    /// Adds a boundary port bound to an existing internal net.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateName`] on a port-name collision.
    pub fn add_port(
        &mut self,
        module: ModuleId,
        name: impl Into<String>,
        dir: PinDir,
        net: NetId,
    ) -> Result<PortId, NetlistError> {
        let m = &mut self.modules[module.idx()];
        let name = name.into();
        if m.port_by_name.contains_key(&name) {
            return Err(NetlistError::DuplicateName { kind: "port", name });
        }
        assert!(
            m.ports.len() < u32::MAX as usize,
            "port arena exceeds the u32 id space"
        );
        let id = PortId::from_raw(m.ports.len() as u32);
        m.port_by_name.insert(name.clone(), id);
        m.ports.push(Port { name, dir, net });
        m.nets[net.idx()].endpoints.push(Endpoint::Port(id));
        Ok(id)
    }

    /// Instantiates a leaf cell.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateName`] on an instance-name
    /// collision.
    pub fn add_leaf_instance(
        &mut self,
        module: ModuleId,
        name: impl Into<String>,
        leaf: LeafId,
    ) -> Result<InstId, NetlistError> {
        let pin_count = self.leaves[leaf.idx()].pin_count();
        self.add_instance_raw(module, name.into(), InstRef::Leaf(leaf), pin_count)
    }

    /// Instantiates a child module.
    ///
    /// Hierarchy cycles are detected by [`Design::validate`], not here.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateName`] on an instance-name
    /// collision.
    pub fn add_module_instance(
        &mut self,
        module: ModuleId,
        name: impl Into<String>,
        child: ModuleId,
    ) -> Result<InstId, NetlistError> {
        let pin_count = self.modules[child.idx()].ports.len();
        self.add_instance_raw(module, name.into(), InstRef::Module(child), pin_count)
    }

    fn add_instance_raw(
        &mut self,
        module: ModuleId,
        name: String,
        target: InstRef,
        pin_count: usize,
    ) -> Result<InstId, NetlistError> {
        let m = &mut self.modules[module.idx()];
        if m.inst_by_name.contains_key(&name) {
            return Err(NetlistError::DuplicateName {
                kind: "instance",
                name,
            });
        }
        assert!(
            m.insts.len() < u32::MAX as usize,
            "instance arena exceeds the u32 id space"
        );
        let id = InstId::from_raw(m.insts.len() as u32);
        m.inst_by_name.insert(name.clone(), id);
        m.insts.push(Instance {
            name: name.into_boxed_str(),
            target,
            conns: vec![None; pin_count].into_boxed_slice(),
            attrs: Default::default(),
        });
        Ok(id)
    }

    /// Resolves a pin name on an instance's interface to its slot.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownPin`] if the interface has no such
    /// pin.
    pub fn pin_slot(
        &self,
        module: ModuleId,
        inst: InstId,
        pin: &str,
    ) -> Result<PinSlot, NetlistError> {
        let instance = &self.modules[module.idx()].insts[inst.idx()];
        let (slot, iface_name) = match instance.target {
            InstRef::Leaf(l) => (
                self.leaves[l.idx()].pin_by_name(pin),
                self.leaves[l.idx()].name(),
            ),
            InstRef::Module(child) => {
                let cm = &self.modules[child.idx()];
                (
                    cm.port_by_name(pin).map(|p| PinSlot::from_raw(p.as_raw())),
                    cm.name(),
                )
            }
        };
        slot.ok_or_else(|| NetlistError::UnknownPin {
            interface: iface_name.to_owned(),
            pin: pin.to_owned(),
        })
    }

    /// Returns the direction of pin `slot` on `inst`, as seen by the
    /// component.
    ///
    /// # Panics
    ///
    /// Panics if the slot is out of range.
    pub fn pin_dir(&self, module: ModuleId, inst: InstId, slot: PinSlot) -> PinDir {
        let instance = &self.modules[module.idx()].insts[inst.idx()];
        match instance.target {
            InstRef::Leaf(l) => self.leaves[l.idx()].pin_def(slot).dir(),
            InstRef::Module(child) => self.modules[child.idx()].ports[slot.idx()].dir,
        }
    }

    /// Returns the name of pin `slot` on `inst`.
    ///
    /// # Panics
    ///
    /// Panics if the slot is out of range.
    pub fn pin_name(&self, module: ModuleId, inst: InstId, slot: PinSlot) -> &str {
        let instance = &self.modules[module.idx()].insts[inst.idx()];
        match instance.target {
            InstRef::Leaf(l) => self.leaves[l.idx()].pin_def(slot).name(),
            InstRef::Module(child) => &self.modules[child.idx()].ports[slot.idx()].name,
        }
    }

    /// Connects pin `pin` (by name) of `inst` to `net`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownPin`] for a bad pin name. A pin that
    /// is already connected is silently reconnected (the old endpoint is
    /// removed), which is what the re-synthesis loop wants.
    pub fn connect(
        &mut self,
        module: ModuleId,
        inst: InstId,
        pin: &str,
        net: NetId,
    ) -> Result<(), NetlistError> {
        let slot = self.pin_slot(module, inst, pin)?;
        self.connect_slot(module, inst, slot, net);
        Ok(())
    }

    /// Connects pin `slot` of `inst` to `net`, replacing any existing
    /// connection.
    ///
    /// # Panics
    ///
    /// Panics if ids are out of range.
    pub fn connect_slot(&mut self, module: ModuleId, inst: InstId, slot: PinSlot, net: NetId) {
        let dir = self.pin_dir(module, inst, slot);
        let m = &mut self.modules[module.idx()];
        if let Some(old) = m.insts[inst.idx()].conns[slot.idx()].replace(net) {
            detach_endpoint(&mut m.nets[old.idx()], inst, slot);
        }
        m.nets[net.idx()]
            .endpoints
            .push(Endpoint::Pin { inst, slot, dir });
    }

    /// Disconnects pin `slot` of `inst`, returning the net it was bound
    /// to.
    ///
    /// # Panics
    ///
    /// Panics if ids are out of range.
    pub fn disconnect(&mut self, module: ModuleId, inst: InstId, slot: PinSlot) -> Option<NetId> {
        let m = &mut self.modules[module.idx()];
        let old = m.insts[inst.idx()].conns[slot.idx()].take();
        if let Some(net) = old {
            detach_endpoint(&mut m.nets[net.idx()], inst, slot);
        }
        old
    }

    /// Retargets an instance to a different leaf definition with an
    /// identical interface (same pin names, directions and order).
    ///
    /// This is the "gate resizing" primitive of the re-synthesis loop: an
    /// `INV_X1` can be swapped for an `INV_X4` without touching
    /// connectivity.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InterfaceMismatch`] if the new definition's
    /// interface differs in any way.
    pub fn replace_instance_ref(
        &mut self,
        module: ModuleId,
        inst: InstId,
        new_leaf: LeafId,
    ) -> Result<(), NetlistError> {
        let instance = &self.modules[module.idx()].insts[inst.idx()];
        let old_leaf = match instance.target {
            InstRef::Leaf(l) => l,
            InstRef::Module(_) => {
                return Err(NetlistError::InterfaceMismatch {
                    inst: instance.name.to_string(),
                    detail: "instance targets a module, not a leaf".to_owned(),
                })
            }
        };
        let old = &self.leaves[old_leaf.idx()];
        let new = &self.leaves[new_leaf.idx()];
        if old.pin_count() != new.pin_count() {
            return Err(NetlistError::InterfaceMismatch {
                inst: instance.name.to_string(),
                detail: format!("pin count {} vs {}", old.pin_count(), new.pin_count()),
            });
        }
        for (slot, pin) in old.pins() {
            let other = new.pin_def(slot);
            if other.name() != pin.name() || other.dir() != pin.dir() {
                return Err(NetlistError::InterfaceMismatch {
                    inst: instance.name.to_string(),
                    detail: format!(
                        "pin {} is {}/{} vs {}/{}",
                        slot,
                        pin.name(),
                        pin.dir(),
                        other.name(),
                        other.dir()
                    ),
                });
            }
        }
        self.modules[module.idx()].insts[inst.idx()].target = InstRef::Leaf(new_leaf);
        Ok(())
    }

    // ---- statistics ---------------------------------------------------

    /// Counts cells and nets through the hierarchy starting at `root`.
    ///
    /// # Panics
    ///
    /// Panics if the hierarchy under `root` is recursive (validate first).
    pub fn stats(&self, root: ModuleId) -> DesignStats {
        let m = &self.modules[root.idx()];
        let mut stats = DesignStats {
            cells: 0,
            nets: m.nets.len(),
            module_insts: 0,
            depth: 0,
        };
        for inst in &m.insts {
            match inst.target {
                InstRef::Leaf(_) => stats.cells += 1,
                InstRef::Module(child) => {
                    let sub = self.stats(child);
                    stats.cells += sub.cells;
                    // A child net bound to a connected port aliases a net
                    // of this module; count it once, here.
                    stats.nets += sub.nets - inst.conns().count();
                    stats.module_insts += 1 + sub.module_insts;
                    stats.depth = stats.depth.max(1 + sub.depth);
                }
            }
        }
        stats
    }
}

fn detach_endpoint(net: &mut Net, inst: InstId, slot: PinSlot) {
    net.endpoints.retain(
        |ep| !matches!(ep, Endpoint::Pin { inst: i, slot: s, .. } if *i == inst && *s == slot),
    );
}

impl fmt::Display for Design {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "design {} ({} leaf defs, {} modules)",
            self.name,
            self.leaves.len(),
            self.modules.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inv_design() -> (Design, LeafId, ModuleId) {
        let mut d = Design::new("t");
        let inv = d
            .declare_leaf(
                LeafDef::new("INV")
                    .pin("A", PinDir::Input)
                    .pin("Y", PinDir::Output),
            )
            .unwrap();
        let m = d.add_module("top").unwrap();
        (d, inv, m)
    }

    #[test]
    fn duplicate_names_rejected() {
        let (mut d, _, m) = inv_design();
        assert!(matches!(
            d.declare_leaf(LeafDef::new("INV")),
            Err(NetlistError::DuplicateName { kind: "leaf", .. })
        ));
        assert!(d.add_module("top").is_err());
        d.add_net(m, "n").unwrap();
        assert!(d.add_net(m, "n").is_err());
    }

    #[test]
    fn connect_and_reconnect() {
        let (mut d, inv, m) = inv_design();
        let n1 = d.add_net(m, "n1").unwrap();
        let n2 = d.add_net(m, "n2").unwrap();
        let u = d.add_leaf_instance(m, "u", inv).unwrap();
        d.connect(m, u, "A", n1).unwrap();
        assert_eq!(d.module(m).net(n1).endpoints().len(), 1);
        // Reconnect moves the endpoint.
        d.connect(m, u, "A", n2).unwrap();
        assert_eq!(d.module(m).net(n1).endpoints().len(), 0);
        assert_eq!(d.module(m).net(n2).endpoints().len(), 1);
        // Disconnect empties it again.
        let slot = d.pin_slot(m, u, "A").unwrap();
        assert_eq!(d.disconnect(m, u, slot), Some(n2));
        assert_eq!(d.module(m).net(n2).endpoints().len(), 0);
        assert_eq!(d.disconnect(m, u, slot), None);
    }

    #[test]
    fn unknown_pin() {
        let (mut d, inv, m) = inv_design();
        let n = d.add_net(m, "n").unwrap();
        let u = d.add_leaf_instance(m, "u", inv).unwrap();
        assert!(matches!(
            d.connect(m, u, "Q", n),
            Err(NetlistError::UnknownPin { .. })
        ));
    }

    #[test]
    fn driver_and_loads() {
        let (mut d, inv, m) = inv_design();
        let n = d.add_net(m, "n").unwrap();
        let u1 = d.add_leaf_instance(m, "u1", inv).unwrap();
        let u2 = d.add_leaf_instance(m, "u2", inv).unwrap();
        d.connect(m, u1, "Y", n).unwrap();
        d.connect(m, u2, "A", n).unwrap();
        let module = d.module(m);
        match module.driver(n) {
            Some(Endpoint::Pin { inst, dir, .. }) => {
                assert_eq!(inst, u1);
                assert_eq!(dir, PinDir::Output);
            }
            other => panic!("unexpected driver {other:?}"),
        }
        assert_eq!(module.fanout(n), 1);
    }

    #[test]
    fn ports_source_and_sink() {
        let (mut d, inv, m) = inv_design();
        let a = d.add_net(m, "a").unwrap();
        let y = d.add_net(m, "y").unwrap();
        d.add_port(m, "a", PinDir::Input, a).unwrap();
        d.add_port(m, "y", PinDir::Output, y).unwrap();
        let u = d.add_leaf_instance(m, "u", inv).unwrap();
        d.connect(m, u, "A", a).unwrap();
        d.connect(m, u, "Y", y).unwrap();
        let module = d.module(m);
        assert!(matches!(module.driver(a), Some(Endpoint::Port(_))));
        assert!(matches!(module.driver(y), Some(Endpoint::Pin { .. })));
        assert_eq!(module.fanout(y), 1, "output port counts as a load");
    }

    #[test]
    fn retarget_same_interface() {
        let (mut d, inv, m) = inv_design();
        let inv4 = d
            .declare_leaf(
                LeafDef::new("INV_X4")
                    .pin("A", PinDir::Input)
                    .pin("Y", PinDir::Output),
            )
            .unwrap();
        let nand = d
            .declare_leaf(
                LeafDef::new("NAND2")
                    .pin("A", PinDir::Input)
                    .pin("B", PinDir::Input)
                    .pin("Y", PinDir::Output),
            )
            .unwrap();
        let u = d.add_leaf_instance(m, "u", inv).unwrap();
        d.replace_instance_ref(m, u, inv4).unwrap();
        assert_eq!(d.module(m).instance(u).target(), InstRef::Leaf(inv4));
        assert!(matches!(
            d.replace_instance_ref(m, u, nand),
            Err(NetlistError::InterfaceMismatch { .. })
        ));
    }

    #[test]
    fn hierarchy_stats() {
        let (mut d, inv, top) = inv_design();
        let child = d.add_module("child").unwrap();
        let cn = d.add_net(child, "x").unwrap();
        d.add_port(child, "x", PinDir::Input, cn).unwrap();
        let _u = d.add_leaf_instance(child, "u", inv).unwrap();
        let n = d.add_net(top, "n").unwrap();
        let ci = d.add_module_instance(top, "c0", child).unwrap();
        d.connect(top, ci, "x", n).unwrap();
        let _v = d.add_leaf_instance(top, "v", inv).unwrap();
        let stats = d.stats(top);
        assert_eq!(stats.cells, 2);
        // child's "x" net aliases top's "n" through the connected port.
        assert_eq!(stats.nets, 1);
        assert_eq!(stats.module_insts, 1);
        assert_eq!(stats.depth, 1);
    }

    #[test]
    fn module_instance_pins_use_port_names() {
        let (mut d, _inv, top) = inv_design();
        let child = d.add_module("child").unwrap();
        let cn = d.add_net(child, "in").unwrap();
        let co = d.add_net(child, "out").unwrap();
        d.add_port(child, "in", PinDir::Input, cn).unwrap();
        d.add_port(child, "out", PinDir::Output, co).unwrap();
        let n = d.add_net(top, "n").unwrap();
        let ci = d.add_module_instance(top, "c0", child).unwrap();
        d.connect(top, ci, "out", n).unwrap();
        let slot = d.pin_slot(top, ci, "out").unwrap();
        assert_eq!(d.pin_dir(top, ci, slot), PinDir::Output);
        assert_eq!(d.pin_name(top, ci, slot), "out");
        assert!(matches!(
            d.module(top).driver(n),
            Some(Endpoint::Pin { .. })
        ));
    }
}
