//! Daemon-mode benchmark: queries/sec and request latency through the
//! `hummingbird serve` TCP loop, plus the cost of a warm ECO
//! re-analysis against a cold one-shot analysis of the same design.
//!
//! Runs an in-process server on a loopback socket, drives it with the
//! blocking [`Client`], and writes `BENCH_server.json`. Run with
//! `cargo run --release -p hb-bench --bin server_bench`. A second
//! section drives the `poll(2)` reactor transport: sequential
//! request/reply as the baseline, pipelined windows, batched
//! multi-node `slack` requests (the ≥1M-queries/sec path), and a
//! concurrent-connection sweep with thousands of idle peers polling
//! alongside the hot connection.
//!
//! Flags: `--quick` shrinks every iteration count and caps the sweep
//! (for smoke tests and the qps regression gate), `--out PATH`
//! redirects the JSON (default `BENCH_server.json`).

use std::fmt::Write as _;
use std::net::TcpStream;
use std::time::Instant;

use hb_cells::{sc89, Binding, Library};
use hb_io::Frame;
use hb_netlist::InstRef;
use hb_server::{directives_from_spec, raise_nofile_limit, Client, Server, ServerOptions};
use hb_workloads::{des_like, random_pipeline, PipelineParams, Workload};

const COLD_ITERS: usize = 5;
const SLACK_ITERS: usize = 200;
const ECO_ITERS: usize = 40;

/// Single-node slack frames per pipelined window.
const PIPELINE_WINDOW: usize = 512;
/// Nodes per batched multi-node slack request.
const BATCH_NODES: usize = 256;
/// Batched requests per pipelined window.
const BATCH_WINDOW: usize = 16;

struct Latencies(Vec<f64>);

impl Latencies {
    fn measure(n: usize, mut f: impl FnMut()) -> Latencies {
        let mut samples = Vec::with_capacity(n);
        for _ in 0..n {
            let start = Instant::now();
            f();
            samples.push(start.elapsed().as_secs_f64());
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        Latencies(samples)
    }

    fn p50(&self) -> f64 {
        self.0[self.0.len() / 2]
    }

    fn p99(&self) -> f64 {
        self.0[(self.0.len() * 99 / 100).min(self.0.len() - 1)]
    }

    fn qps(&self) -> f64 {
        self.0.len() as f64 / self.0.iter().sum::<f64>()
    }
}

/// The first leaf instance with drive headroom — the resize target.
fn resizable_instance(w: &Workload, lib: &Library) -> String {
    let binding = Binding::new(&w.design, lib);
    let module = w.design.module(w.module);
    for (_, inst) in module.instances() {
        let InstRef::Leaf(leaf) = inst.target() else {
            continue;
        };
        let Some(cell) = binding.cell_for_leaf(leaf) else {
            continue;
        };
        let variants = lib.family_variants(lib.cell(cell).family());
        let pos = variants.iter().position(|&v| v == cell).expect("bound");
        if pos + 1 < variants.len() {
            return inst.name().to_owned();
        }
    }
    panic!("workload has no resizable instance");
}

fn expect_ok(reply: &Frame, what: &str) {
    assert_eq!(
        reply.verb,
        "ok",
        "{what} failed: {:?}",
        reply.payload.as_deref().unwrap_or("")
    );
}

/// One reactor measurement: `requests` served over `elapsed` seconds
/// with per-request latency percentiles derived from window round
/// trips.
struct Throughput {
    requests: usize,
    qps: f64,
    p50_ms: f64,
    p99_ms: f64,
}

/// Drives `windows` pipelined windows of `frames` down the client and
/// reports per-request throughput (each window is one write + one
/// in-order reply burst, so per-request latency is the window round
/// trip divided by its frame count).
fn pipelined(
    client: &mut Client,
    frames: &[Frame],
    windows: usize,
    per_frame: usize,
) -> Throughput {
    let lat = Latencies::measure(windows, || {
        let replies = client.request_pipelined(frames).expect("pipelined replies");
        assert_eq!(replies.len(), frames.len());
        for reply in &replies {
            assert_eq!(reply.verb, "ok", "{:?}", reply.payload);
        }
    });
    let requests = windows * frames.len() * per_frame;
    let total: f64 = lat.0.iter().sum();
    let scale = (frames.len() * per_frame) as f64;
    Throughput {
        requests,
        qps: requests as f64 / total,
        p50_ms: lat.p50() * 1e3 / scale,
        p99_ms: lat.p99() * 1e3 / scale,
    }
}

/// The multi-tenant fleet section: mixed slack queries striped across
/// N resident designs (the session-table routing and per-design lock
/// cost), then an eviction storm where 64 designs share 8 resident
/// slots and queries transparently reload evicted designs from their
/// journals.
fn bench_fleet(lib: &Library, quick: bool, json: &mut String) {
    // A small per-design workload keeps the 256-design level
    // affordable: the cost under test is routing, locking, and
    // eviction, not the analysis itself.
    let w = random_pipeline(
        lib,
        PipelineParams {
            stages: 3,
            width: 4,
            gates_per_stage: 40,
            transparent: false,
            period_ns: 20,
            seed: 707,
            imbalance_pct: 25,
        },
    );
    let text = hb_io::write_hum_with_timing(&w.design, &w.clocks, &directives_from_spec(&w.spec));
    let probe = w
        .design
        .module(w.module)
        .nets()
        .next()
        .expect("nets")
        .1
        .name()
        .to_owned();

    // Opens `fleet{i}`, loads the shared design, settles its analysis.
    let prime = |client: &mut Client, i: usize| {
        let id = format!("fleet{i}");
        expect_ok(
            &client
                .request(&Frame::new("open").arg("design", id.clone()))
                .expect("open reply"),
            "open",
        );
        for req in [
            Frame::new("load").with_payload(text.clone()),
            Frame::new("analyze"),
        ] {
            expect_ok(
                &client
                    .request(&req.arg("design", id.clone()))
                    .expect("fleet reply"),
                "fleet prime",
            );
        }
    };

    // -- The sweep: the same query striped over a growing fleet. --
    let options = ServerOptions {
        max_designs: 512,
        ..ServerOptions::default()
    };
    let server = Server::bind("127.0.0.1:0", lib.clone(), options).expect("bind loopback");
    let addr = server.local_addr().expect("bound address");
    let daemon = std::thread::spawn(move || server.run());
    let mut client = Client::connect(addr).expect("connect");

    let levels: &[usize] = if quick { &[1, 8] } else { &[1, 8, 64, 256] };
    let iters = if quick { 150 } else { 1500 };
    let mut opened = 0usize;
    let mut sweep: Vec<(usize, Latencies)> = Vec::new();
    for &level in levels {
        while opened < level {
            prime(&mut client, opened);
            opened += 1;
        }
        let mut turn = 0usize;
        let lat = Latencies::measure(iters, || {
            let req = Frame::new("slack")
                .arg("design", format!("fleet{}", turn % level))
                .arg("node", probe.clone());
            expect_ok(&client.request(&req).expect("slack reply"), "fleet slack");
            turn += 1;
        });
        eprintln!(
            "fleet sweep {level:>3} designs: {:.0} qps (p50 {:.4} ms)",
            lat.qps(),
            lat.p50() * 1e3
        );
        sweep.push((level, lat));
    }
    expect_ok(
        &client
            .request(&Frame::new("shutdown"))
            .expect("shutdown reply"),
        "shutdown",
    );
    daemon.join().expect("fleet thread").expect("fleet exit");

    // -- Eviction storm: 64 tenants, 8 resident slots. --
    let storm_designs = if quick { 16 } else { 64 };
    let options = ServerOptions {
        max_designs: 8,
        ..ServerOptions::default()
    };
    let server = Server::bind("127.0.0.1:0", lib.clone(), options).expect("bind loopback");
    let addr = server.local_addr().expect("bound address");
    let daemon = std::thread::spawn(move || server.run());
    let mut client = Client::connect(addr).expect("connect");
    for i in 0..storm_designs {
        prime(&mut client, i);
    }
    let storm_iters = if quick { 48 } else { 192 };
    let mut turn = 0usize;
    // Stride co-prime with the fleet so consecutive queries never hit
    // the same residency window — every query risks a reload.
    let storm = Latencies::measure(storm_iters, || {
        let req = Frame::new("slack")
            .arg("design", format!("fleet{}", (turn * 13) % storm_designs))
            .arg("node", probe.clone());
        expect_ok(&client.request(&req).expect("slack reply"), "storm slack");
        turn += 1;
    });
    let metrics = client.request(&Frame::new("metrics")).expect("metrics");
    let evictions: u64 = metrics
        .payload
        .as_deref()
        .unwrap_or("")
        .lines()
        .find_map(|l| l.strip_prefix("hb_evictions_total "))
        .expect("eviction counter")
        .trim()
        .parse()
        .expect("counter value");
    expect_ok(
        &client
            .request(&Frame::new("shutdown"))
            .expect("shutdown reply"),
        "shutdown",
    );
    daemon.join().expect("storm thread").expect("storm exit");

    let _ = writeln!(json, "  \"fleet\": {{");
    let _ = writeln!(json, "    \"workload\": \"{}\",", w.name);
    let _ = writeln!(json, "    \"designs_sweep\": [");
    for (i, (level, lat)) in sweep.iter().enumerate() {
        let _ = writeln!(
            json,
            "      {{\"designs\": {level}, \"queries_per_second\": {:.1}, \
             \"p50_ms\": {:.4}, \"p99_ms\": {:.4}}}{}",
            lat.qps(),
            lat.p50() * 1e3,
            lat.p99() * 1e3,
            if i + 1 < sweep.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "    ],");
    // The gated number: routing qps with 8 resident tenants (present
    // in both quick and full runs, so check.sh can compare them).
    let fleet8 = &sweep.iter().find(|(l, _)| *l == 8).expect("level 8").1;
    let _ = writeln!(json, "    \"fleet8\": {{");
    let _ = writeln!(json, "      \"requests\": {iters},");
    let _ = writeln!(json, "      \"queries_per_second\": {:.1},", fleet8.qps());
    let _ = writeln!(json, "      \"p50_ms\": {:.4},", fleet8.p50() * 1e3);
    let _ = writeln!(json, "      \"p99_ms\": {:.4}", fleet8.p99() * 1e3);
    let _ = writeln!(json, "    }},");
    let _ = writeln!(json, "    \"eviction_storm\": {{");
    let _ = writeln!(json, "      \"designs\": {storm_designs},");
    let _ = writeln!(json, "      \"max_designs\": 8,");
    let _ = writeln!(json, "      \"evictions\": {evictions},");
    let _ = writeln!(json, "      \"requests\": {storm_iters},");
    let _ = writeln!(json, "      \"queries_per_second\": {:.1},", storm.qps());
    let _ = writeln!(json, "      \"p50_ms\": {:.4},", storm.p50() * 1e3);
    let _ = writeln!(json, "      \"p99_ms\": {:.4}", storm.p99() * 1e3);
    let _ = writeln!(json, "    }}");
    let _ = writeln!(json, "  }},");
    eprintln!(
        "fleet: 8 designs {:.0} qps | storm ({storm_designs} designs / 8 slots) \
         {:.0} qps, {evictions} evictions",
        fleet8.qps(),
        storm.qps()
    );
}

/// The what-if section: parametric (symbolic) min-period against the
/// numeric equivalent — a binary search of cold analyses over the same
/// period grid — plus the `slack-at` read path (O(1) table lookups,
/// no sweeps) and a whole-domain `period-sweep` in one frame.
fn bench_whatif(lib: &Library, quick: bool, json: &mut String) {
    use hb_clock::ClockSet;
    use hb_units::Time;
    use hummingbird::Analyzer;

    // An edge-triggered pipeline with slack at its nominal period, so
    // the feasibility boundary is interior to the domain and the
    // numeric baseline has a real search to do.
    let w = random_pipeline(
        lib,
        PipelineParams {
            stages: 6,
            width: 8,
            gates_per_stage: 100,
            transparent: false,
            period_ns: 30,
            seed: 1203,
            imbalance_pct: 25,
        },
    );
    let w = &w;

    let server =
        Server::bind("127.0.0.1:0", lib.clone(), ServerOptions::default()).expect("bind loopback");
    let addr = server.local_addr().expect("bound address");
    let daemon = std::thread::spawn(move || server.run());
    let mut client = Client::connect(addr).expect("connect");
    let text = hb_io::write_hum_with_timing(&w.design, &w.clocks, &directives_from_spec(&w.spec));
    expect_ok(
        &client
            .request(&Frame::new("load").with_payload(text))
            .expect("load reply"),
        "load",
    );
    expect_ok(
        &client
            .request(&Frame::new("analyze"))
            .expect("analyze reply"),
        "analyze",
    );

    // First call: builds the symbolic table and solves the breakpoint
    // structure in one go.
    let t0 = Instant::now();
    let first = client
        .request(&Frame::new("min-period"))
        .expect("min-period reply");
    let build_seconds = t0.elapsed().as_secs_f64();
    expect_ok(&first, "min-period");
    let time_arg = |f: &Frame, key: &str| -> Time {
        f.get(key)
            .unwrap_or_else(|| panic!("min-period reply carries {key}="))
            .parse()
            .expect("time value")
    };
    let stride = time_arg(&first, "stride");
    let (lo, hi) = (time_arg(&first, "lo"), time_arg(&first, "hi"));
    let nominal = time_arg(&first, "nominal");
    let symbolic = first
        .get("period")
        .map(|p| p.parse::<Time>().expect("period"));

    // Warm calls: the table is resident, so every solve is pure
    // breakpoint arithmetic.
    let warm_iters = if quick { 20 } else { 200 };
    let warm = Latencies::measure(warm_iters, || {
        expect_ok(
            &client.request(&Frame::new("min-period")).expect("reply"),
            "warm min-period",
        );
    });

    // The `slack-at` read path: one O(1) evaluation per request.
    let probe = w
        .design
        .module(w.module)
        .nets()
        .next()
        .expect("nets")
        .1
        .name()
        .to_owned();
    let slack_iters = if quick { 100 } else { 1000 };
    let at_req = Frame::new("slack-at")
        .arg("period", nominal)
        .arg("node", probe);
    let slack_at = Latencies::measure(slack_iters, || {
        expect_ok(&client.request(&at_req).expect("reply"), "slack-at");
    });

    // One whole-domain sweep in a single frame (~33 grid points).
    let step = Time::from_ps(((hi.as_ps() - lo.as_ps()) / 32).max(stride.as_ps()));
    let t1 = Instant::now();
    let sweep = client
        .request(
            &Frame::new("period-sweep")
                .arg("lo", lo)
                .arg("hi", hi)
                .arg("step", step),
        )
        .expect("period-sweep reply");
    let sweep_seconds = t1.elapsed().as_secs_f64();
    expect_ok(&sweep, "period-sweep");
    let sweep_points: usize = sweep.get("count").expect("count=").parse().expect("count");

    expect_ok(
        &client
            .request(&Frame::new("shutdown"))
            .expect("shutdown reply"),
        "shutdown",
    );
    daemon.join().expect("whatif thread").expect("whatif exit");

    // The numeric equivalent: binary search of cold analyses over the
    // same grid — what `analyze --min-period` had to do before the
    // symbolic table existed.
    let g = nominal.as_ps() / stride.as_ps();
    let clocks_at = |k: i64| -> ClockSet {
        let mut out = ClockSet::new();
        let scale = |t: Time| Time::from_ps(t.as_ps() * k / g);
        for (_, c) in w.clocks.clocks() {
            out.add_clock(
                c.name(),
                scale(c.period()),
                scale(c.rise()),
                scale(c.fall()),
            )
            .expect("scaled clocks stay valid");
        }
        out
    };
    let mut numeric_probes = 0usize;
    let t2 = Instant::now();
    let mut feasible_at = |k: i64| -> bool {
        numeric_probes += 1;
        Analyzer::new(&w.design, w.module, lib, &clocks_at(k), w.spec.clone())
            .expect("scaled design conforms")
            .analyze()
            .ok()
    };
    let (mut lo_k, mut hi_k) = (lo.as_ps() / stride.as_ps(), hi.as_ps() / stride.as_ps());
    let numeric = if feasible_at(hi_k) {
        while lo_k < hi_k {
            let mid = lo_k + (hi_k - lo_k) / 2;
            if feasible_at(mid) {
                hi_k = mid;
            } else {
                lo_k = mid + 1;
            }
        }
        Some(Time::from_ps(hi_k * stride.as_ps()))
    } else {
        None
    };
    let numeric_seconds = t2.elapsed().as_secs_f64();
    assert_eq!(symbolic, numeric, "symbolic and numeric min-period agree");

    let _ = writeln!(json, "  \"whatif\": {{");
    let _ = writeln!(json, "    \"workload\": \"{}\",", w.name);
    let _ = writeln!(json, "    \"domain\": \"[{lo}, {hi}]\",");
    let _ = writeln!(json, "    \"min_period\": {{");
    let _ = writeln!(
        json,
        "      \"period\": {},",
        symbolic.map_or("null".to_owned(), |p| format!("\"{p}\""))
    );
    let _ = writeln!(
        json,
        "      \"symbolic_build_and_solve_seconds\": {build_seconds:.6},"
    );
    let _ = writeln!(json, "      \"warm_solve_seconds_p50\": {:.6},", warm.p50());
    let _ = writeln!(
        json,
        "      \"numeric_binary_search_seconds\": {numeric_seconds:.6},"
    );
    let _ = writeln!(json, "      \"numeric_probes\": {numeric_probes},");
    let _ = writeln!(
        json,
        "      \"warm_speedup_vs_binary_search\": {:.1}",
        numeric_seconds / warm.p50()
    );
    let _ = writeln!(json, "    }},");
    let _ = writeln!(json, "    \"slack_at\": {{");
    let _ = writeln!(json, "      \"requests\": {slack_iters},");
    let _ = writeln!(json, "      \"queries_per_second\": {:.1},", slack_at.qps());
    let _ = writeln!(json, "      \"p50_ms\": {:.4},", slack_at.p50() * 1e3);
    let _ = writeln!(json, "      \"p99_ms\": {:.4}", slack_at.p99() * 1e3);
    let _ = writeln!(json, "    }},");
    let _ = writeln!(json, "    \"period_sweep\": {{");
    let _ = writeln!(json, "      \"points\": {sweep_points},");
    let _ = writeln!(json, "      \"seconds\": {sweep_seconds:.6}");
    let _ = writeln!(json, "    }}");
    let _ = writeln!(json, "  }},");
    eprintln!(
        "whatif: build+solve {:.1} ms | warm min-period {:.3} ms vs numeric search {:.1} ms \
         ({numeric_probes} probes) | slack-at {:.0}/s",
        build_seconds * 1e3,
        warm.p50() * 1e3,
        numeric_seconds * 1e3,
        slack_at.qps()
    );
}

/// The quorum-failover section: a primary builds a journal, two
/// ranked standbys attach and resync it through the bounded pager,
/// then the primary is killed and the cluster elects a successor.
/// Reports the standby resync paging volume and the promotion
/// downtime — kill acknowledged to a survivor serving `role=primary`.
fn bench_failover(lib: &Library, quick: bool, json: &mut String) {
    use std::net::SocketAddr;
    use std::time::Duration;

    let page_bytes = 2048usize;
    let journal_ecos = if quick { 40 } else { 200 };

    let request = |addr: SocketAddr, frame: &Frame| -> Frame {
        let mut client = Client::connect(addr).expect("connect");
        client
            .set_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        client.request(frame).expect("reply")
    };
    let design_fp = |addr: SocketAddr| -> Option<String> {
        request(addr, &Frame::new("designs"))
            .payload
            .as_deref()
            .unwrap_or("")
            .lines()
            .find_map(|l| {
                let mut parts = l.split_whitespace();
                (parts.next() == Some("default"))
                    .then(|| parts.find_map(|p| p.strip_prefix("fp=")).map(str::to_owned))
                    .flatten()
            })
    };
    let counter = |addr: SocketAddr, name: &str| -> u64 {
        request(addr, &Frame::new("metrics"))
            .payload
            .as_deref()
            .unwrap_or("")
            .lines()
            .find_map(|l| l.strip_prefix(name))
            .expect("counter present")
            .trim()
            .parse()
            .expect("counter value")
    };

    // The primary, alone at first so the journal exists before any
    // standby attaches: the attach is then a true paged resync.
    let server = Server::bind(
        "127.0.0.1:0",
        lib.clone(),
        ServerOptions {
            sync_interval: Duration::from_millis(25),
            ..ServerOptions::default()
        },
    )
    .expect("bind primary");
    let a_addr = server.local_addr().expect("bound address");
    let a = std::thread::spawn(move || server.run());

    let w = random_pipeline(
        lib,
        PipelineParams {
            stages: 3,
            width: 4,
            gates_per_stage: 40,
            transparent: false,
            period_ns: 20,
            seed: 1989,
            imbalance_pct: 25,
        },
    );
    let text = hb_io::write_hum_with_timing(&w.design, &w.clocks, &directives_from_spec(&w.spec));
    let probe = w
        .design
        .module(w.module)
        .nets()
        .next()
        .expect("nets")
        .1
        .name()
        .to_owned();
    expect_ok(
        &request(a_addr, &Frame::new("load").with_payload(text)),
        "load",
    );
    expect_ok(&request(a_addr, &Frame::new("analyze")), "analyze");
    for i in 0..journal_ecos {
        let reply = request(
            a_addr,
            &Frame::new("eco")
                .arg("op", "scale-net")
                .arg("net", probe.clone())
                .arg("percent", 90 + (i % 40) as u64),
        );
        expect_ok(&reply, "journal eco");
    }
    let want = design_fp(a_addr).expect("primary fingerprint");

    // Two ranked standbys, wired as each other's peers so the pair
    // holds a quorum once the primary dies.
    let standby = |upstream: SocketAddr| ServerOptions {
        standby_of: Some(upstream.to_string()),
        sync_interval: Duration::from_millis(25),
        promote_after: 3,
        repl_page_bytes: page_bytes,
        ..ServerOptions::default()
    };
    let mut b = Server::bind("127.0.0.1:0", lib.clone(), standby(a_addr)).expect("bind standby");
    let b_addr = b.local_addr().expect("bound address");
    let mut c = Server::bind("127.0.0.1:0", lib.clone(), standby(a_addr)).expect("bind standby");
    let c_addr = c.local_addr().expect("bound address");
    b.options_mut().expect("pre-run options").peers = vec![a_addr.to_string(), c_addr.to_string()];
    c.options_mut().expect("pre-run options").peers = vec![a_addr.to_string(), b_addr.to_string()];
    let b = std::thread::spawn(move || b.run());
    let c = std::thread::spawn(move || c.run());

    // The paged resync: both standbys pull the whole journal in
    // `page_bytes`-bounded pages.
    let sync_deadline = Instant::now() + Duration::from_secs(30);
    for addr in [b_addr, c_addr] {
        while design_fp(addr).as_deref() != Some(want.as_str()) {
            assert!(
                Instant::now() < sync_deadline,
                "standby never caught up with the primary"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
    }
    let resync_pages = counter(b_addr, "hb_repl_pages_total ");
    let resync_bytes = counter(b_addr, "hb_repl_bytes_total ");

    // The kill: stamp the clock once the primary has acknowledged its
    // shutdown, then poll the survivors until one serves as primary.
    request(a_addr, &Frame::new("shutdown"));
    let killed = Instant::now();
    let deadline = killed + Duration::from_secs(30);
    let winner = loop {
        assert!(Instant::now() < deadline, "no standby promoted");
        let promoted = [b_addr, c_addr]
            .into_iter()
            .find(|&addr| request(addr, &Frame::new("stats")).get("role") == Some("primary"));
        if let Some(addr) = promoted {
            break addr;
        }
        std::thread::sleep(Duration::from_millis(5));
    };
    let downtime = killed.elapsed();
    let term: u64 = request(winner, &Frame::new("stats"))
        .get("term")
        .expect("stats carries term=")
        .parse()
        .expect("term value");

    for addr in [winner, if winner == b_addr { c_addr } else { b_addr }] {
        request(addr, &Frame::new("shutdown"));
    }
    for (name, node) in [("primary", a), ("standby", b), ("standby2", c)] {
        node.join().expect(name).expect("clean exit");
    }

    let _ = writeln!(json, "  \"failover\": {{");
    let _ = writeln!(json, "    \"nodes\": 3,");
    let _ = writeln!(json, "    \"journal_ecos\": {journal_ecos},");
    let _ = writeln!(json, "    \"page_bytes\": {page_bytes},");
    let _ = writeln!(json, "    \"resync_pages\": {resync_pages},");
    let _ = writeln!(json, "    \"resync_bytes_paged\": {resync_bytes},");
    let _ = writeln!(
        json,
        "    \"promotion_downtime_ms\": {:.1},",
        downtime.as_secs_f64() * 1e3
    );
    let _ = writeln!(json, "    \"promoted_term\": {term}");
    let _ = writeln!(json, "  }},");
    eprintln!(
        "failover: resync {resync_pages} pages / {resync_bytes} B (page {page_bytes} B) | \
         promotion downtime {:.0} ms (term {term})",
        downtime.as_secs_f64() * 1e3
    );
}

/// The reactor transport section: sequential vs pipelined vs batched
/// slack throughput, then the same pipelined measurement with a crowd
/// of idle connections sharing the event loop.
fn bench_reactor(lib: &Library, w: &Workload, quick: bool, json: &mut String) {
    let max_conns = if quick { 300 } else { 12_000 };
    // One fd per server-side connection, one per bench-side stream,
    // plus the two Client clones and slack for the process.
    let _ = raise_nofile_limit(2 * max_conns as u64 + 256);
    let options = ServerOptions {
        max_connections: max_conns,
        ..ServerOptions::default()
    };
    let server = Server::bind("127.0.0.1:0", lib.clone(), options).expect("bind loopback");
    let addr = server.local_addr().expect("bound address");
    let daemon = std::thread::spawn(move || server.run_reactor());

    let mut client = Client::connect(addr).expect("connect");
    let text = hb_io::write_hum_with_timing(&w.design, &w.clocks, &directives_from_spec(&w.spec));
    expect_ok(
        &client
            .request(&Frame::new("load").with_payload(text))
            .expect("load reply"),
        "load",
    );
    expect_ok(
        &client
            .request(&Frame::new("analyze"))
            .expect("analyze reply"),
        "analyze",
    );

    let nets: Vec<String> = w
        .design
        .module(w.module)
        .nets()
        .map(|(_, n)| n.name().to_owned())
        .take(BATCH_NODES)
        .collect();

    // Sequential baseline: one request, one reply, one round trip.
    let seq_iters = if quick { SLACK_ITERS } else { 2000 };
    let seq_req = Frame::new("slack").arg("node", nets[0].clone());
    let seq_lat = Latencies::measure(seq_iters, || {
        expect_ok(&client.request(&seq_req).expect("slack reply"), "slack");
    });
    let sequential = Throughput {
        requests: seq_iters,
        qps: seq_lat.qps(),
        p50_ms: seq_lat.p50() * 1e3,
        p99_ms: seq_lat.p99() * 1e3,
    };

    // Pipelined: a window of single-node requests per round trip.
    let window: Vec<Frame> = (0..PIPELINE_WINDOW)
        .map(|i| Frame::new("slack").arg("node", nets[i % nets.len()].clone()))
        .collect();
    let pipe_windows = if quick { 5 } else { 60 };
    let piped = pipelined(&mut client, &window, pipe_windows, 1);

    // Batched: every request carries `BATCH_NODES` nodes, and a window
    // of those requests rides one round trip — per-*node* throughput.
    let mut batched_req = Frame::new("slack");
    for net in &nets {
        batched_req = batched_req.arg("node", net.clone());
    }
    let batch_window: Vec<Frame> = (0..BATCH_WINDOW).map(|_| batched_req.clone()).collect();
    let batch_windows = if quick { 3 } else { 30 };
    let batched = pipelined(&mut client, &batch_window, batch_windows, nets.len());

    // The sweep: the same pipelined window with N-1 idle connections
    // registered in the poll set. Every idle peer costs a poll slot
    // and a sweep visit per loop turn; the hot path must survive the
    // crowd.
    let levels: &[usize] = if quick {
        &[1, 100]
    } else {
        &[1, 100, 1000, 10_000]
    };
    let mut sweep = Vec::new();
    let mut idle: Vec<TcpStream> = Vec::new();
    for &level in levels {
        while idle.len() + 1 < level {
            idle.push(TcpStream::connect(addr).expect("idle connect"));
        }
        let windows = if quick { 3 } else { 20 };
        let t = pipelined(&mut client, &window, windows, 1);
        eprintln!(
            "reactor sweep {level:>6} conns: {:.0} qps (p50 {:.4} ms)",
            t.qps, t.p50_ms
        );
        sweep.push((level, t));
    }
    drop(idle);

    // Bounded per-connection memory, as the daemon itself reports it.
    let stats = client.request(&Frame::new("stats")).expect("stats reply");
    let buffer_peak: u64 = stats
        .get("conn_buffer_peak_bytes")
        .expect("buffer gauge in stats")
        .parse()
        .expect("gauge value");

    expect_ok(
        &client
            .request(&Frame::new("shutdown"))
            .expect("shutdown reply"),
        "shutdown",
    );
    daemon
        .join()
        .expect("reactor thread")
        .expect("reactor exit");

    let _ = writeln!(json, "  \"reactor\": {{");
    let _ = writeln!(json, "    \"workload\": \"{}\",", w.name);
    let _ = writeln!(json, "    \"max_connections\": {max_conns},");
    for (label, t, extra) in [
        ("slack_sequential", &sequential, String::new()),
        (
            "slack_pipelined",
            &piped,
            format!("      \"window\": {PIPELINE_WINDOW},\n"),
        ),
        (
            "slack_batched",
            &batched,
            format!(
                "      \"nodes_per_request\": {},\n      \"window\": {BATCH_WINDOW},\n",
                nets.len()
            ),
        ),
    ] {
        let _ = writeln!(json, "    \"{label}\": {{");
        json.push_str(&extra);
        let _ = writeln!(json, "      \"requests\": {},", t.requests);
        let _ = writeln!(json, "      \"queries_per_second\": {:.1},", t.qps);
        let _ = writeln!(json, "      \"p50_ms\": {:.4},", t.p50_ms);
        let _ = writeln!(json, "      \"p99_ms\": {:.4}", t.p99_ms);
        let _ = writeln!(json, "    }},");
    }
    let _ = writeln!(
        json,
        "    \"pipelined_speedup_vs_sequential\": {:.2},",
        piped.qps / sequential.qps
    );
    let _ = writeln!(
        json,
        "    \"batched_speedup_vs_sequential\": {:.2},",
        batched.qps / sequential.qps
    );
    let _ = writeln!(json, "    \"connection_sweep\": [");
    for (i, (level, t)) in sweep.iter().enumerate() {
        let _ = writeln!(
            json,
            "      {{\"connections\": {level}, \"queries_per_second\": {:.1}, \
             \"p50_ms\": {:.4}, \"p99_ms\": {:.4}}}{}",
            t.qps,
            t.p50_ms,
            t.p99_ms,
            if i + 1 < sweep.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "    ],");
    let _ = writeln!(json, "    \"conn_buffer_peak_bytes\": {buffer_peak}");
    let _ = writeln!(json, "  }}");
    eprintln!(
        "reactor: sequential {:.0}/s | pipelined {:.0}/s ({:.1}x) | batched {:.0} nodes/s ({:.1}x)",
        sequential.qps,
        piped.qps,
        piped.qps / sequential.qps,
        batched.qps,
        batched.qps / sequential.qps,
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_server.json".to_owned());

    let lib = sc89();
    let workloads = [
        random_pipeline(
            &lib,
            PipelineParams {
                stages: 6,
                width: 16,
                gates_per_stage: 600,
                transparent: true,
                period_ns: 30,
                seed: 1203,
                imbalance_pct: 40,
            },
        ),
        des_like(&lib, 1989),
    ];

    let (cold_iters, slack_iters, eco_iters) = if quick {
        (2, 100, 8)
    } else {
        (COLD_ITERS, SLACK_ITERS, ECO_ITERS)
    };

    let server =
        Server::bind("127.0.0.1:0", lib.clone(), ServerOptions::default()).expect("bind loopback");
    let addr = server.local_addr().expect("bound address");
    let daemon = std::thread::spawn(move || server.run());
    let mut client = Client::connect(addr).expect("connect");
    let mut request = |frame: &Frame| client.request(frame).expect("daemon reply");

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"available_parallelism\": {cores},");
    let _ = writeln!(json, "  \"transport\": \"tcp-loopback\",");
    json.push_str("  \"workloads\": [\n");

    for (wi, w) in workloads.iter().enumerate() {
        let text =
            hb_io::write_hum_with_timing(&w.design, &w.clocks, &directives_from_spec(&w.spec));
        let cells = w.stats().cells;
        let inst = resizable_instance(w, &lib);
        let probe_net = w
            .design
            .module(w.module)
            .nets()
            .next()
            .expect("nets")
            .1
            .name()
            .to_owned();

        // Cold analysis: a fresh load resets the resident cache, so
        // each timed analyze sweeps every cluster from scratch.
        let cold = Latencies::measure(cold_iters, || {
            expect_ok(
                &request(&Frame::new("load").with_payload(text.clone())),
                "load",
            );
            expect_ok(&request(&Frame::new("analyze")), "cold analyze");
        });

        // Settled-analysis slack queries: the server's read path.
        let slack_req = Frame::new("slack").arg("node", probe_net.clone());
        let slack = Latencies::measure(slack_iters, || {
            expect_ok(&request(&slack_req), "slack");
        });

        // Warm ECOs: alternate the resize direction so the design keeps
        // changing; every request re-analyzes through the warm cache.
        let mut reused = 0u64;
        let mut swept = 0u64;
        let mut step = 1i64;
        let eco = Latencies::measure(eco_iters, || {
            let reply = request(
                &Frame::new("eco")
                    .arg("op", "resize")
                    .arg("inst", inst.clone())
                    .arg("steps", step),
            );
            expect_ok(&reply, "eco");
            reused = reply.get("items_reused").unwrap().parse().expect("count");
            swept = reply.get("items_swept").unwrap().parse().expect("count");
            step = -step;
        });

        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"workload\": \"{}\",", w.name);
        let _ = writeln!(json, "      \"cells\": {cells},");
        let _ = writeln!(
            json,
            "      \"cold_analyze_seconds_p50\": {:.6},",
            cold.p50()
        );
        let _ = writeln!(json, "      \"slack_query\": {{");
        let _ = writeln!(json, "        \"requests\": {slack_iters},");
        let _ = writeln!(json, "        \"queries_per_second\": {:.1},", slack.qps());
        let _ = writeln!(json, "        \"p50_ms\": {:.4},", slack.p50() * 1e3);
        let _ = writeln!(json, "        \"p99_ms\": {:.4}", slack.p99() * 1e3);
        let _ = writeln!(json, "      }},");
        let _ = writeln!(json, "      \"eco_resize\": {{");
        let _ = writeln!(json, "        \"requests\": {eco_iters},");
        let _ = writeln!(json, "        \"queries_per_second\": {:.1},", eco.qps());
        let _ = writeln!(json, "        \"p50_ms\": {:.4},", eco.p50() * 1e3);
        let _ = writeln!(json, "        \"p99_ms\": {:.4},", eco.p99() * 1e3);
        let _ = writeln!(json, "        \"items_reused_last\": {reused},");
        let _ = writeln!(json, "        \"items_swept_last\": {swept},");
        let _ = writeln!(
            json,
            "        \"warm_eco_speedup_vs_cold_analyze\": {:.3}",
            cold.p50() / eco.p50()
        );
        let _ = writeln!(json, "      }}");
        let _ = writeln!(
            json,
            "    }}{}",
            if wi + 1 < workloads.len() { "," } else { "" }
        );
        eprintln!(
            "{}: cold {:.1} ms | slack p50 {:.3} ms ({:.0}/s) | eco p50 {:.1} ms, \
             {}/{} sweeps reused",
            w.name,
            cold.p50() * 1e3,
            slack.p50() * 1e3,
            slack.qps(),
            eco.p50() * 1e3,
            reused,
            reused + swept
        );
    }
    json.push_str("  ],\n");

    expect_ok(&request(&Frame::new("shutdown")), "shutdown");
    daemon.join().expect("server thread").expect("server exit");

    // Parametric what-if verbs vs the numeric binary-search baseline.
    bench_whatif(&lib, quick, &mut json);

    // The session-fleet routing and eviction costs.
    bench_fleet(&lib, quick, &mut json);

    // Quorum failover: standby resync paging and promotion downtime.
    bench_failover(&lib, quick, &mut json);

    // The reactor transport over the first (pipeline) workload.
    bench_reactor(&lib, &workloads[0], quick, &mut json);
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write benchmark JSON");
    println!("{json}");
}
