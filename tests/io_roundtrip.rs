//! Serialization round-trips across the generated workloads.

use hb_cells::sc89;
use hb_io::{parse_blif, parse_hum, write_blif, write_hum, write_hum_with_timing};
use hb_workloads::{figure1, fsm12, generate, random_pipeline, GenKind, GenParams, PipelineParams};

#[test]
fn hum_roundtrip_across_workloads() {
    let lib = sc89();
    for w in [
        fsm12(&lib, true),
        fsm12(&lib, false),
        figure1(&lib),
        random_pipeline(&lib, PipelineParams::default()),
    ] {
        let text = write_hum(&w.design, &w.clocks);
        let file = parse_hum(&text, &lib)
            .unwrap_or_else(|e| panic!("{}: writer output must re-parse: {e}", w.name));
        file.design
            .validate()
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        let top = file.design.top().expect("top preserved");
        let a = w.design.stats(w.module);
        let b = file.design.stats(top);
        assert_eq!(a.cells, b.cells, "{}", w.name);
        assert_eq!(a.nets, b.nets, "{}", w.name);
        assert_eq!(a.module_insts, b.module_insts, "{}", w.name);
        assert_eq!(file.clocks.len(), w.clocks.len(), "{}", w.name);
        // Second generation is a fixpoint.
        let text2 = write_hum(&file.design, &file.clocks);
        assert_eq!(text, text2, "{}: emission is deterministic", w.name);
    }
}

#[test]
fn blif_roundtrip_flat_workload() {
    let lib = sc89();
    let w = fsm12(&lib, true);
    let text = write_blif(&w.design, &lib);
    assert!(text.contains(".mlatch DFF"), "latches use .mlatch");
    assert!(text.contains(".gate"), "gates use .gate");
    let design = parse_blif(&text, &lib).expect("writer output re-parses");
    design.validate().expect("valid after round-trip");
    let top = design.top().expect("top set from first model");
    let a = w.design.stats(w.module);
    let b = design.stats(top);
    assert_eq!(a.cells, b.cells);
    assert_eq!(a.nets, b.nets);
}

#[test]
fn blif_roundtrip_hierarchical_workload() {
    let lib = sc89();
    let w = fsm12(&lib, false);
    let text = write_blif(&w.design, &lib);
    // The child model must be emitted; re-parsing needs children first,
    // so reorder models: children after top in our writer means the
    // forward reference is rejected — verify that, then feed a reordered
    // document.
    assert!(text.contains(".subckt nsl"));
    let mut models: Vec<&str> = text
        .split("\n\n")
        .filter(|s| !s.trim().is_empty())
        .collect();
    models.reverse();
    let reordered = models.join("\n\n");
    let design = parse_blif(&reordered, &lib).expect("children-first order parses");
    design.validate().expect("valid");
    // Top in the reordered document is `nsl`; find the real top by name.
    let top = design.module_by_name("top").expect("model kept its name");
    let a = w.design.stats(w.module);
    let b = design.stats(top);
    assert_eq!(a.cells, b.cells);
}

/// Generated designs are byte-stable through the writer: the `.hum`
/// emitted by the generator re-parses, and re-emitting the parsed
/// design (with its timing directives) reproduces the text exactly.
#[test]
fn generated_hum_is_byte_stable_through_write_read_write() {
    let lib = sc89();
    for kind in [GenKind::Pipeline, GenKind::Sbox, GenKind::Sram] {
        let w = generate(&lib, &GenParams::new(kind, 4_000, 5));
        let text = w.to_hum();
        let file = parse_hum(&text, &lib)
            .unwrap_or_else(|e| panic!("{}: generator output re-parses: {e}", w.name));
        file.design
            .validate()
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        let top = file.design.top().expect("top preserved");
        let a = w.design.stats(w.module);
        let b = file.design.stats(top);
        assert_eq!(a.cells, b.cells, "{}", w.name);
        assert_eq!(a.nets, b.nets, "{}", w.name);
        let text2 = write_hum_with_timing(&file.design, &file.clocks, &file.timing);
        assert_eq!(text, text2, "{}: write→read→write is byte-stable", w.name);
    }
}

#[test]
fn hum_preserves_analyzability_of_figure1() {
    use hummingbird::Analyzer;
    let lib = sc89();
    let w = figure1(&lib);
    let text = write_hum(&w.design, &w.clocks);
    let file = parse_hum(&text, &lib).expect("re-parses");
    let top = file.design.top().expect("top preserved");
    let analyzer = Analyzer::new(&file.design, top, &lib, &file.clocks, w.spec.clone())
        .expect("round-tripped figure-1 conforms");
    assert_eq!(analyzer.prep_stats().max_cluster_passes, 2);
}
