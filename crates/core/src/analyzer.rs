//! The top-level analyzer facade.

use std::collections::HashMap;
use std::time::Instant;

use hb_cells::Library;
use hb_clock::ClockSet;
use hb_netlist::{Design, ModuleId};
use hb_sta::paths::critical_path;
use hb_units::{Time, Transition};

use crate::algorithms::{algorithm1, algorithm2, Algorithm1Stats, Algorithm2Stats};
use crate::analysis::{prepare, PrepStats, Prepared, SlackView};
use crate::engine::SlackCache;
use crate::error::AnalyzeError;
use crate::mindelay::check_min_delays;
use crate::report::{
    SlowPath, SlowStep, TerminalKind, TerminalSlack, TimingConstraints, TimingReport,
};
use crate::spec::{AnalysisOptions, Spec};
use crate::sync::Replica;

/// At most this many slow paths are traced and reported.
const MAX_SLOW_PATHS: usize = 50;

/// Tallies one analysis run into the process-global registry: run
/// counts per kind and slack-transfer cycle counts per iteration.
/// Purely observational — the report keeps its own authoritative copy.
fn record_analysis_obs(kind: &str, alg1: Algorithm1Stats, alg2: Option<Algorithm2Stats>) {
    let g = hb_obs::global();
    g.counter_with(
        "hb_analyses_total",
        "analysis runs completed",
        &[("kind", kind)],
    )
    .inc();
    let cycles = |iteration: &str, n: usize| {
        g.counter_with(
            "hb_alg_cycles_total",
            "slack-transfer cycles performed, by algorithm iteration",
            &[("iteration", iteration)],
        )
        .add(n as u64);
    };
    cycles("forward", alg1.forward_cycles);
    cycles("backward", alg1.backward_cycles);
    cycles("partial_forward", alg1.partial_forward_cycles);
    cycles("partial_backward", alg1.partial_backward_cycles);
    if let Some(alg2) = alg2 {
        cycles("backward_snatch", alg2.backward_snatch_cycles);
        cycles("forward_snatch", alg2.forward_snatch_cycles);
    }
}

/// A prepared system-level timing analysis.
///
/// Construction performs the paper's *pre-processing*: timing-graph and
/// cluster generation, clock binding of every synchronising element,
/// per-pulse replication, and the Section 7 minimal-pass planning.
/// [`Analyzer::analyze`] then runs Algorithm 1 (slow-path
/// identification) and [`Analyzer::generate_constraints`] additionally
/// runs Algorithm 2 (constraint generation for re-synthesis).
///
/// See the [crate-level documentation](crate) for a worked example.
pub struct Analyzer<'a> {
    prep: Prepared<'a>,
    prep_seconds: f64,
}

impl std::fmt::Debug for Analyzer<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Analyzer")
            .field("module", &self.prep.design.module(self.prep.module).name())
            .field("replicas", &self.prep.replicas.len())
            .field("passes", &self.prep.passes.len())
            .field("prep_seconds", &self.prep_seconds)
            .finish()
    }
}

impl<'a> Analyzer<'a> {
    /// Prepares an analysis with default [`AnalysisOptions`].
    ///
    /// # Errors
    ///
    /// Fails when the design violates the paper's structural assumptions
    /// (combinational cycles, unclocked or non-monotonic controls,
    /// enable paths), when a spec entry does not resolve, or when the
    /// clock set is empty.
    pub fn new(
        design: &'a Design,
        module: ModuleId,
        library: &'a Library,
        clocks: &ClockSet,
        spec: Spec,
    ) -> Result<Analyzer<'a>, AnalyzeError> {
        Analyzer::with_options(
            design,
            module,
            library,
            clocks,
            spec,
            AnalysisOptions::default(),
        )
    }

    /// Prepares an analysis with explicit options (latch model, partial
    /// transfer divisor, min-delay checking).
    ///
    /// # Errors
    ///
    /// As for [`Analyzer::new`].
    pub fn with_options(
        design: &'a Design,
        module: ModuleId,
        library: &'a Library,
        clocks: &ClockSet,
        spec: Spec,
        options: AnalysisOptions,
    ) -> Result<Analyzer<'a>, AnalyzeError> {
        let start = Instant::now();
        let prep = prepare(design, module, library, clocks, &spec, options)?;
        Ok(Analyzer {
            prep,
            prep_seconds: start.elapsed().as_secs_f64(),
        })
    }

    /// Pre-processing statistics: clusters, requirements, pass counts.
    pub fn prep_stats(&self) -> PrepStats {
        self.prep.stats
    }

    /// Wall-clock seconds spent preparing.
    pub fn prep_seconds(&self) -> f64 {
        self.prep_seconds
    }

    /// The overall clock period.
    pub fn overall_period(&self) -> Time {
        self.prep.timeline.overall_period()
    }

    /// The distinct analysis-window start times.
    pub fn pass_starts(&self) -> &[Time] {
        &self.prep.passes
    }

    /// The number of synchronising-element replicas under analysis.
    pub fn replica_count(&self) -> usize {
        self.prep.replicas.len()
    }

    /// Runs Algorithm 1 and reports all paths that are too slow.
    pub fn analyze(&self) -> TimingReport {
        self.analyze_with_cache(&mut SlackCache::new())
    }

    /// Runs Algorithm 1 through a caller-owned [`SlackCache`].
    ///
    /// The cache is content-addressed, so it may come from an earlier
    /// analysis of this design — or of an *edited* revision of it: only
    /// the `(cluster, pass)` sweeps whose shard fingerprint or seed
    /// signature moved are recomputed. The report's engine counters
    /// cover this call only, not the cache's lifetime.
    pub fn analyze_with_cache(&self, cache: &mut SlackCache) -> TimingReport {
        let start = Instant::now();
        let before = cache.stats();
        let mut replicas = self.prep.replicas.clone();
        let (view, alg1) = algorithm1(&self.prep, &mut replicas, cache);
        let min_delay = if self.prep.options.check_min_delays {
            check_min_delays(&self.prep, &replicas)
        } else {
            Vec::new()
        };
        let mut report = self.build_report(&replicas, &view);
        report.alg1 = alg1;
        report.engine = cache.stats().since(before);
        report.min_delay_violations = min_delay;
        report.prep_seconds = self.prep_seconds;
        report.analysis_seconds = start.elapsed().as_secs_f64();
        record_analysis_obs("analyze", alg1, None);
        report
    }

    /// Runs Algorithm 1 symbolically in the overall clock period and
    /// returns the resulting piecewise-linear [`ParametricSlack`]
    /// table: O(1) slack evaluation at any grid period (bit-identical
    /// to a cold numeric run there) and direct min-period solving,
    /// with no further sweeps.
    ///
    /// # Errors
    ///
    /// Fails when the design's seed positions fall off the clock
    /// lattice or the piecewise region budget is exceeded — both
    /// indicate the symbolic parametrization cannot represent the
    /// design, never a numeric mismatch.
    pub fn parametric(&self) -> Result<crate::symbolic::ParametricSlack, AnalyzeError> {
        crate::symbolic::parametric(&self.prep)
            .map_err(|reason| AnalyzeError::Parametric { reason })
    }

    /// Runs Algorithm 1 followed by Algorithm 2 and attaches the
    /// generated ready/required-time constraints to the report.
    pub fn generate_constraints(&self) -> TimingReport {
        self.generate_constraints_with_cache(&mut SlackCache::new())
    }

    /// Runs Algorithms 1 and 2 through a caller-owned [`SlackCache`];
    /// see [`Analyzer::analyze_with_cache`] for the reuse contract.
    pub fn generate_constraints_with_cache(&self, cache: &mut SlackCache) -> TimingReport {
        let start = Instant::now();
        let before = cache.stats();
        let mut replicas = self.prep.replicas.clone();
        let (view, alg1) = algorithm1(&self.prep, &mut replicas, cache);
        let min_delay = if self.prep.options.check_min_delays {
            check_min_delays(&self.prep, &replicas)
        } else {
            Vec::new()
        };
        let mut report = self.build_report(&replicas, &view);
        let (ready_view, required_view, alg2) = algorithm2(&self.prep, &mut replicas, cache);
        report.alg1 = alg1;
        report.alg2 = Some(alg2);
        report.engine = cache.stats().since(before);
        report.constraints = Some(TimingConstraints::new(
            self.prep.passes.clone(),
            ready_view.dense_ready(&self.prep),
            required_view.dense_required(&self.prep),
        ));
        report.min_delay_violations = min_delay;
        report.prep_seconds = self.prep_seconds;
        report.analysis_seconds = start.elapsed().as_secs_f64();
        record_analysis_obs("constraints", alg1, Some(alg2));
        report
    }

    fn build_report(&self, replicas: &[Replica], view: &SlackView) -> TimingReport {
        let prep = &self.prep;
        let module = prep.design.module(prep.module);

        let mut terminal_slacks = Vec::new();
        for (k, r) in replicas.iter().enumerate() {
            terminal_slacks.push(TerminalSlack {
                kind: TerminalKind::SyncInput,
                name: module.instance(r.inst).name().to_owned(),
                pulse: r.pulse_index,
                slack: view.replica_in[k],
            });
            if r.output_net.is_some() {
                terminal_slacks.push(TerminalSlack {
                    kind: TerminalKind::SyncOutput,
                    name: module.instance(r.inst).name().to_owned(),
                    pulse: r.pulse_index,
                    slack: view.replica_out[k],
                });
            }
        }
        for (k, pi) in prep.pis.iter().enumerate() {
            terminal_slacks.push(TerminalSlack {
                kind: TerminalKind::PrimaryInput,
                name: pi.port.clone(),
                pulse: 0,
                slack: view.pi_slack[k],
            });
        }
        for (k, po) in prep.pos.iter().enumerate() {
            terminal_slacks.push(TerminalSlack {
                kind: TerminalKind::PrimaryOutput,
                name: po.port.clone(),
                pulse: 0,
                slack: view.po_slack[k],
            });
        }

        // Slow endpoints, worst first.
        let mut endpoints: Vec<(Time, usize, bool)> = Vec::new(); // (slack, index, is_replica)
        for (k, s) in view.replica_in.iter().enumerate() {
            if *s <= Time::ZERO {
                endpoints.push((*s, k, true));
            }
        }
        for (k, s) in view.po_slack.iter().enumerate() {
            if *s <= Time::ZERO {
                endpoints.push((*s, k, false));
            }
        }
        endpoints.sort_by_key(|&(s, _, _)| s);

        let mut slow_paths = Vec::new();
        // Slow-path tracing needs dense per-pass ready tables;
        // materialise each needed pass once.
        let mut ready_memo: HashMap<usize, hb_sta::analysis::TimeTable> = HashMap::new();
        for &(slack, k, is_replica) in endpoints.iter().take(MAX_SLOW_PATHS) {
            let (net, pass, endpoint) = if is_replica {
                let r = &replicas[k];
                (
                    r.data_net,
                    prep.replica_pass[k],
                    module.instance(r.inst).name().to_owned(),
                )
            } else {
                (prep.pos[k].net, prep.po_pass[k], prep.pos[k].port.clone())
            };
            let ready = ready_memo
                .entry(pass)
                .or_insert_with(|| view.ready_for_pass(prep, pass));
            let arrival = ready[net.as_raw() as usize];
            let tr = if arrival.rise >= arrival.fall {
                Transition::Rise
            } else {
                Transition::Fall
            };
            if let Some(path) = critical_path(&prep.graph, ready, net, tr) {
                let steps = path
                    .steps
                    .iter()
                    .map(|s| SlowStep {
                        net: module.net(s.net).name().to_owned(),
                        through: s.inst.map(|i| module.instance(i).name().to_owned()),
                        time: s.time,
                    })
                    .collect();
                slow_paths.push(SlowPath {
                    slack,
                    endpoint,
                    steps,
                });
            }
        }

        let slow_nets = module
            .nets()
            .filter(|(id, _)| {
                let s = view.net_slack[id.as_raw() as usize];
                s <= Time::ZERO && s.is_finite()
            })
            .map(|(id, _)| id)
            .collect();

        TimingReport {
            module: prep.module,
            ok: view.all_positive(),
            worst_slack: view.worst(),
            overall_period: prep.timeline.overall_period(),
            terminal_slacks,
            slow_paths,
            slow_nets,
            net_slacks: view.net_slack.clone(),
            prep_stats: prep.stats,
            alg1: Default::default(),
            alg2: None,
            engine: Default::default(),
            constraints: None,
            min_delay_violations: Vec::new(),
            prep_seconds: self.prep_seconds,
            analysis_seconds: 0.0,
        }
    }
}
