//! The `hummingbird` command-line driver.
//!
//! See [`hb_cli::run`] for the command reference; this binary is a thin
//! exit-code wrapper so the whole driver stays testable.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let arg_refs: Vec<&str> = args.iter().map(String::as_str).collect();
    let mut stdout = std::io::stdout();
    match hb_cli::run(&arg_refs, &mut stdout) {
        Ok(code) => ExitCode::from(code),
        // A downstream pager/`head` closing the pipe is not an error.
        Err(e) if e.to_string().contains("Broken pipe") => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("hummingbird: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}
