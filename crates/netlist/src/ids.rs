//! Typed index handles into the design database.
//!
//! All identifiers are plain `u32` indices wrapped in newtypes so that the
//! compiler keeps module, instance, net, port and leaf-definition spaces
//! apart. [`InstId`], [`NetId`] and [`PortId`] are scoped to the module
//! that created them; [`ModuleId`] and [`LeafId`] are design-global.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $tag:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub(crate) u32);

        impl $name {
            /// Creates an id from a raw index.
            ///
            /// Intended for serialization layers and generators that mirror
            /// the database's own numbering; an id fabricated out of thin
            /// air will be rejected (by panic) on first use.
            #[inline]
            pub fn from_raw(index: u32) -> $name {
                $name(index)
            }

            /// Returns the raw index.
            #[inline]
            pub fn as_raw(self) -> u32 {
                self.0
            }

            /// Returns the raw index widened for slice indexing.
            #[inline]
            pub(crate) fn idx(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Handle to a [`crate::Module`] within a [`crate::Design`].
    ModuleId,
    "m"
);
id_type!(
    /// Handle to a [`crate::LeafDef`] within a [`crate::Design`].
    LeafId,
    "l"
);
id_type!(
    /// Handle to an [`crate::Instance`] within one module.
    InstId,
    "i"
);
id_type!(
    /// Handle to a [`crate::Net`] within one module.
    NetId,
    "n"
);
id_type!(
    /// Handle to a [`crate::Port`] within one module.
    PortId,
    "p"
);

/// The position of a pin within its owning interface (leaf definition or
/// module port list).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PinSlot(pub(crate) u32);

impl PinSlot {
    /// Creates a slot from a raw pin position.
    #[inline]
    pub fn from_raw(index: u32) -> PinSlot {
        PinSlot(index)
    }

    /// Returns the raw pin position.
    #[inline]
    pub fn as_raw(self) -> u32 {
        self.0
    }

    #[inline]
    pub(crate) fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PinSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pin{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_roundtrip() {
        assert_eq!(ModuleId::from_raw(3).as_raw(), 3);
        assert_eq!(InstId::from_raw(7).as_raw(), 7);
        assert_eq!(PinSlot::from_raw(1).as_raw(), 1);
    }

    #[test]
    fn display() {
        assert_eq!(ModuleId::from_raw(0).to_string(), "m0");
        assert_eq!(NetId::from_raw(12).to_string(), "n12");
        assert_eq!(PinSlot::from_raw(2).to_string(), "pin2");
    }

    #[test]
    fn ordering_follows_indices() {
        assert!(InstId::from_raw(1) < InstId::from_raw(2));
    }
}
