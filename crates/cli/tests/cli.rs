//! End-to-end driver tests against real `.hum` files on disk.

use std::fs;

const DESIGN: &str = "\
design demo
module top
  port in a ck
  port out y
  inst u1 INV_X1 A=a Y=w
  inst u2 NAND2_X1 A=w B=a Y=v
  inst ff DFF D=v CK=ck Q=y
end
top top
clock ck period 20ns rise 0ns fall 10ns
";

const SLOW_DESIGN: &str = "\
design slow
module top
  port in a ck
  port out y
  inst u1 XOR2_X1 A=a B=a Y=w1
  inst u2 XOR2_X1 A=w1 B=a Y=w2
  inst u3 XOR2_X1 A=w2 B=w1 Y=v
  inst ff DFF D=v CK=ck Q=y
end
top top
clock ck period 1ns rise 0ns fall 500ps
";

fn write_temp(name: &str, contents: &str) -> String {
    let dir = std::env::temp_dir().join("hb_cli_tests");
    fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(name);
    fs::write(&path, contents).expect("write fixture");
    path.to_string_lossy().into_owned()
}

fn run_capture(args: &[&str]) -> (u8, String) {
    let mut buf = Vec::new();
    let code = hb_cli::run(args, &mut buf).expect("driver runs");
    (code, String::from_utf8(buf).expect("utf8 output"))
}

#[test]
fn check_reports_stats() {
    let path = write_temp("check.hum", DESIGN);
    let (code, out) = run_capture(&["check", &path]);
    assert_eq!(code, 0);
    assert!(out.contains("3 cells"), "{out}");
}

#[test]
fn analyze_passing_design() {
    let path = write_temp("analyze.hum", DESIGN);
    let (code, out) = run_capture(&["analyze", &path]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("timing OK"), "{out}");
}

#[test]
fn analyze_failing_design_exits_one_and_prints_paths() {
    let path = write_temp("slow.hum", SLOW_DESIGN);
    let (code, out) = run_capture(&["analyze", &path]);
    assert_eq!(code, 1);
    assert!(out.contains("VIOLATED"), "{out}");
    assert!(out.contains("slow path into ff"), "{out}");
    assert!(out.contains("via"), "{out}");
}

#[test]
fn constraints_lists_net_budgets() {
    let path = write_temp("constraints.hum", DESIGN);
    let (code, out) = run_capture(&["constraints", &path]);
    assert_eq!(code, 0);
    assert!(out.contains("net constraints"), "{out}");
    assert!(
        out.contains(" v "),
        "the flop input net is constrained: {out}"
    );
}

#[test]
fn passes_summarizes_preprocessing() {
    let path = write_temp("passes.hum", DESIGN);
    let (code, out) = run_capture(&["passes", &path]);
    assert_eq!(code, 0);
    assert!(out.contains("global windows"), "{out}");
    assert!(out.contains("pass 0"), "{out}");
}

#[test]
fn resynth_writes_output_file() {
    let path = write_temp("resynth_in.hum", SLOW_DESIGN);
    let out_path = write_temp("resynth_out.hum", "");
    let (_, out) = run_capture(&["resynth", &path, "-o", &out_path]);
    assert!(out.contains("resynthesis: met="), "{out}");
    assert!(out.contains(&format!("wrote {out_path}")), "{out}");
    let written = fs::read_to_string(&out_path).expect("written file");
    assert!(written.contains("module top"));
}

#[test]
fn explicit_clock_port_and_edge_triggered() {
    let path = write_temp("flags.hum", DESIGN);
    let (code, out) = run_capture(&[
        "analyze",
        &path,
        "--clock-port",
        "ck=ck",
        "--edge-triggered",
        "--min-delays",
        "--paths",
        "2",
    ]);
    assert_eq!(code, 0, "{out}");
}

#[test]
fn arrive_offsets_shift_slack() {
    let path = write_temp("arrive.hum", DESIGN);
    let (_, relaxed) = run_capture(&["analyze", &path, "--arrive", "a=0ps"]);
    let (_, squeezed) = run_capture(&["analyze", &path, "--arrive", "a=21ns"]);
    let slack = |s: &str| {
        s.lines()
            .next()
            .and_then(|l| l.split("worst slack ").nth(1))
            .map(|l| l.split(' ').next().unwrap_or("").to_owned())
            .unwrap_or_default()
    };
    assert_ne!(slack(&relaxed), slack(&squeezed));
    assert!(squeezed.contains("VIOLATED"), "{squeezed}");
}

const TIMED_DESIGN: &str = "\
design timed
module top
  port in a ck
  port out y
  inst u1 INV_X1 A=a Y=w
  inst ff DFF D=w CK=ck Q=y
end
top top
clock ck period 4ns rise 0ns fall 2ns
clockport ck ck
arrive a ck rise 1ns
require y ck rise 0ps
";

#[test]
fn file_directives_drive_the_analysis() {
    let path = write_temp("timed.hum", TIMED_DESIGN);
    let (code, out) = run_capture(&["analyze", &path]);
    assert_eq!(code, 0, "{out}");
    // CLI overrides beat the file: a late arrival breaks it.
    let (code, out) = run_capture(&["analyze", &path, "--arrive", "a=5ns"]);
    assert_eq!(code, 1, "{out}");
}

#[test]
fn sweep_shows_the_feasibility_boundary() {
    let path = write_temp("sweep.hum", TIMED_DESIGN);
    let (code, out) = run_capture(&["sweep", &path, "--scales", "25,50,100,400"]);
    // Worst point wins: the sweep crosses the boundary, so at least
    // one scale is infeasible and the whole run exits 1.
    assert_eq!(code, 1);
    assert!(out.contains("25%"), "{out}");
    assert!(out.contains("400%"), "{out}");
    let yes = out.matches(" yes").count();
    let no = out.matches(" no").count();
    assert!(yes >= 1 && no >= 1, "boundary visible in:\n{out}");
    // Verdicts are monotone down the scale column.
    let verdicts: Vec<bool> = out
        .lines()
        .skip(1)
        .filter_map(|l| {
            if l.ends_with("yes") {
                Some(true)
            } else if l.ends_with("no") {
                Some(false)
            } else {
                None
            }
        })
        .collect();
    for pair in verdicts.windows(2) {
        assert!(!pair[0] || pair[1], "monotone: {out}");
    }
}

#[test]
fn sweep_exits_zero_when_every_scale_is_feasible() {
    let path = write_temp("sweep_easy.hum", TIMED_DESIGN);
    let (code, out) = run_capture(&["sweep", &path, "--scales", "100,200,400"]);
    assert_eq!(code, 0, "{out}");
    assert_eq!(out.matches(" yes").count(), 3, "{out}");
}

/// A 1250 ps clock scaled by 33% is 412.5 ps; the old truncating
/// arithmetic printed 0.412ns, the rational rule rounds half up.
const FINE_DESIGN: &str = "\
design fine
module top
  port in a ck
  port out y
  inst u1 INV_X1 A=a Y=w
  inst ff DFF D=w CK=ck Q=y
end
top top
clock ck period 1250ps rise 0ps fall 625ps
";

#[test]
fn scaling_rounds_half_up_instead_of_truncating() {
    let path = write_temp("fine.hum", FINE_DESIGN);
    let (_, out) = run_capture(&["sweep", &path, "--scales", "33"]);
    assert!(out.contains("0.413ns"), "rounded, not truncated:\n{out}");
    assert!(!out.contains("0.412ns"), "{out}");
}

/// Clocks at 1250 ps and 3750 ps hold an exact 1:3 ratio. At 33% the
/// rounded periods are 413 ps and 1238 ps — no longer 1:3 — so the
/// scale must refuse rather than silently analyze a detuned pair.
const DUO_DESIGN: &str = "\
design duo
module top
  port in a ck1 ck2
  port out y
  inst u1 INV_X1 A=a Y=w
  inst f1 DFF D=w CK=ck1 Q=v
  inst f2 DFF D=v CK=ck2 Q=y
end
top top
clock ck1 period 1250ps rise 0ps fall 625ps
clock ck2 period 3750ps rise 0ps fall 1875ps
clockport ck1 ck1
clockport ck2 ck2
";

#[test]
fn scaling_that_cannot_preserve_harmonics_errors_cleanly() {
    let path = write_temp("duo.hum", DUO_DESIGN);
    // Scales that keep the ratio exact sweep normally...
    let mut buf = Vec::new();
    hb_cli::run(&["sweep", &path, "--scales", "100,200"], &mut buf).expect("exact scales sweep");
    // ...but one that cannot is an analysis refusal, exit 5.
    let err = hb_cli::run(&["sweep", &path, "--scales", "33"], &mut buf).unwrap_err();
    assert_eq!(
        (err.kind(), err.exit_code()),
        (hb_cli::ErrorKind::Analysis, 5)
    );
    assert!(err.to_string().contains("harmonic"), "{err}");
}

#[test]
fn analyze_min_period_reports_the_boundary() {
    let path = write_temp("minperiod.hum", TIMED_DESIGN);
    let (code, out) = run_capture(&["analyze", &path, "--min-period"]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("parametric table:"), "{out}");
    assert!(out.contains("min feasible period:"), "{out}");
    assert!(out.contains("(nominal 4ns)"), "{out}");
}

#[test]
fn passes_renders_waveforms() {
    let path = write_temp("waves.hum", TIMED_DESIGN);
    let (code, out) = run_capture(&["passes", &path]);
    assert_eq!(code, 0);
    assert!(out.contains('▔'), "{out}");
    assert!(out.contains("window starts"), "{out}");
}

#[test]
fn exit_codes_distinguish_failure_classes() {
    let mut buf = Vec::new();
    // Timing verdicts are return values, not errors.
    let pass = write_temp("codes_pass.hum", DESIGN);
    assert_eq!(run_capture(&["analyze", &pass]).0, 0);
    let fail = write_temp("codes_fail.hum", SLOW_DESIGN);
    assert_eq!(run_capture(&["analyze", &fail]).0, 1);
    // Usage mistakes: exit 2.
    let err = hb_cli::run(&[], &mut buf).unwrap_err();
    assert_eq!((err.kind(), err.exit_code()), (hb_cli::ErrorKind::Usage, 2));
    let err = hb_cli::run(&["analyze", &pass, "--paths", "NaN"], &mut buf).unwrap_err();
    assert_eq!(err.exit_code(), 2);
    // Unreadable input: exit 3.
    let err = hb_cli::run(&["analyze", "/nonexistent/x.hum"], &mut buf).unwrap_err();
    assert_eq!((err.kind(), err.exit_code()), (hb_cli::ErrorKind::Io, 3));
    // Parse failure: exit 4, distinct from both.
    let garbage = write_temp(
        "codes_garbage.hum",
        "design broken\nmodule top\n  inst ???\n",
    );
    let err = hb_cli::run(&["analyze", &garbage], &mut buf).unwrap_err();
    assert_eq!((err.kind(), err.exit_code()), (hb_cli::ErrorKind::Parse, 4));
    // Analyzable-but-refused (no clocks declared): exit 5.
    let unclocked = write_temp(
        "codes_unclocked.hum",
        "design unclocked\nmodule top\n  port in a\n  port out y\n  inst u1 INV_X1 A=a Y=y\nend\ntop top\n",
    );
    let err = hb_cli::run(&["analyze", &unclocked], &mut buf).unwrap_err();
    assert_eq!(
        (err.kind(), err.exit_code()),
        (hb_cli::ErrorKind::Analysis, 5)
    );
}

/// Captures the `listening on ADDR` announcement so the test can
/// connect to a daemon serving an ephemeral port on another thread.
struct Announce {
    sent: Option<std::sync::mpsc::Sender<String>>,
    line: String,
}

impl std::io::Write for Announce {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.line.push_str(&String::from_utf8_lossy(buf));
        // One writeln! may arrive as several writes; wait for the
        // complete line before scraping the address out of it.
        if self.line.contains('\n') {
            if let Some(rest) = self.line.strip_prefix("listening on ") {
                if let Some(addr) = rest.split_whitespace().next() {
                    if let Some(sent) = self.sent.take() {
                        let _ = sent.send(addr.to_owned());
                    }
                }
            }
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn serve_and_query_round_trip() {
    let (sent, announced) = std::sync::mpsc::channel();
    let server = std::thread::spawn(move || {
        let mut out = Announce {
            sent: Some(sent),
            line: String::new(),
        };
        hb_cli::run(&["serve", "--listen", "127.0.0.1:0"], &mut out).expect("serve runs")
    });
    let addr = announced
        .recv_timeout(std::time::Duration::from_secs(30))
        .expect("serve announces its port");

    let path = write_temp("served.hum", DESIGN);
    let (code, out) = run_capture(&["query", &addr, "load", &path]);
    assert_eq!(code, 0, "{out}");
    let (code, out) = run_capture(&["query", &addr, "analyze"]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("timing OK"), "{out}");
    let (code, out) = run_capture(&["query", &addr, "eco", "resize", "u1"]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("desc=u1:INV_X1->INV_X2"), "{out}");
    let (code, out) = run_capture(&["query", &addr, "slack", "v"]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("kind=net"), "{out}");
    // A refused request surfaces as an Analysis error, exit 5.
    let mut buf = Vec::new();
    let err = hb_cli::run(&["query", &addr, "slack", "nosuch"], &mut buf).unwrap_err();
    assert_eq!(err.exit_code(), 5);
    let (code, _) = run_capture(&["query", &addr, "shutdown"]);
    assert_eq!(code, 0);
    assert_eq!(server.join().unwrap(), 0);
}

#[test]
fn daemon_what_if_verbs_round_trip() {
    let (sent, announced) = std::sync::mpsc::channel();
    let server = std::thread::spawn(move || {
        let mut out = Announce {
            sent: Some(sent),
            line: String::new(),
        };
        hb_cli::run(&["serve", "--listen", "127.0.0.1:0"], &mut out).expect("serve runs")
    });
    let addr = announced
        .recv_timeout(std::time::Duration::from_secs(30))
        .expect("serve announces its port");

    let path = write_temp("whatif_served.hum", TIMED_DESIGN);
    let (code, out) = run_capture(&["query", &addr, "load", &path]);
    assert_eq!(code, 0, "{out}");

    // min-period: answered from the symbolic table, no numeric search.
    let (code, out) = run_capture(&["query", &addr, "min-period"]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("feasible=1"), "{out}");
    assert!(out.contains("period="), "{out}");
    assert!(out.contains("regions="), "{out}");
    assert!(out.contains("nominal=4ns"), "{out}");

    // slack-at: O(1) whole-design verdict at an arbitrary grid period.
    let (code, out) = run_capture(&["query", &addr, "slack-at", "period=4ns"]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("worst="), "{out}");
    assert!(out.contains("ok=1"), "{out}");

    // slack-at with a net node and with a terminal node.
    let (code, out) = run_capture(&["query", &addr, "slack-at", "period=4ns", "node=w"]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("kind=net"), "{out}");
    let (code, out) = run_capture(&["query", &addr, "slack-at", "period=4ns", "node=ff"]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("kind=terminal"), "{out}");
    assert!(out.contains("pulse"), "{out}");

    // Off-grid periods are a refusal, not a silent snap.
    let mut buf = Vec::new();
    let err = hb_cli::run(&["query", &addr, "slack-at", "period=3ps"], &mut buf).unwrap_err();
    assert_eq!(err.exit_code(), 5);

    // period-sweep: one frame, one line per distinct grid period.
    let (code, out) = run_capture(&[
        "query",
        &addr,
        "period-sweep",
        "lo=4ns",
        "hi=8ns",
        "step=1ns",
    ]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("count=5"), "{out}");
    assert!(out.contains("period 4ns"), "{out}");

    let (code, _) = run_capture(&["query", &addr, "shutdown"]);
    assert_eq!(code, 0);
    assert_eq!(server.join().unwrap(), 0);
}

#[test]
fn reactor_serve_pipeline_and_batched_slack() {
    let (sent, announced) = std::sync::mpsc::channel();
    let server = std::thread::spawn(move || {
        let mut out = Announce {
            sent: Some(sent),
            line: String::new(),
        };
        hb_cli::run(&["serve", "--listen", "127.0.0.1:0", "--reactor"], &mut out)
            .expect("reactor serves")
    });
    let addr = announced
        .recv_timeout(std::time::Duration::from_secs(30))
        .expect("serve announces its port");

    let path = write_temp("reactor_served.hum", DESIGN);
    let (code, out) = run_capture(&["query", &addr, "load", &path]);
    assert_eq!(code, 0, "{out}");
    let (code, out) = run_capture(&["query", &addr, "analyze"]);
    assert_eq!(code, 0, "{out}");

    // Batched slack: several nodes, one request, one worst= summary.
    let (code, out) = run_capture(&["query", &addr, "slack", "w", "v", "y"]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("count=3"), "{out}");
    assert!(out.contains("worst="), "{out}");
    assert!(out.contains("w net "), "{out}");

    // Pipelined file mode: N requests, one connection, replies in
    // order; a bad node makes the whole run exit nonzero.
    let reqs = write_temp(
        "reactor_reqs.txt",
        "# pipelined transcript\nslack w\nslack v\nworst-paths 2\nstats\n",
    );
    let (code, out) = run_capture(&["query", &addr, "--pipeline", &reqs]);
    assert_eq!(code, 0, "{out}");
    assert!(out.matches("ok").count() >= 4, "{out}");
    let bad = write_temp("reactor_bad_reqs.txt", "slack w\nslack nosuch\n");
    let (code, out) = run_capture(&["query", &addr, "--pipeline", &bad]);
    assert_eq!(code, 1, "{out}");
    assert!(out.contains("error code=unknown-node"), "{out}");

    let (code, _) = run_capture(&["query", &addr, "shutdown"]);
    assert_eq!(code, 0);
    assert_eq!(server.join().unwrap(), 0);
}

#[test]
fn fleet_query_routing_and_flow_driver() {
    let (sent, announced) = std::sync::mpsc::channel();
    let server = std::thread::spawn(move || {
        let mut out = Announce {
            sent: Some(sent),
            line: String::new(),
        };
        hb_cli::run(
            &[
                "serve",
                "--listen",
                "127.0.0.1:0",
                "--max-designs",
                "8",
                "--mem-budget",
                "8000000",
            ],
            &mut out,
        )
        .expect("fleet serve runs")
    });
    let addr = announced
        .recv_timeout(std::time::Duration::from_secs(30))
        .expect("serve announces its port");
    let path = write_temp("fleet_served.hum", DESIGN);

    // open / per-design routing / designs listing round trip.
    let (code, out) = run_capture(&["query", &addr, "open", "d1"]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("created=1"), "{out}");
    let (code, out) = run_capture(&["query", &addr, "--design", "d1", "load", &path]);
    assert_eq!(code, 0, "{out}");
    let (code, out) = run_capture(&[
        "query",
        &addr,
        "--design",
        "d1",
        "--timeout",
        "10000",
        "analyze",
    ]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("timing OK"), "{out}");
    let (code, out) = run_capture(&["query", &addr, "designs"]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("d1 resident=1"), "{out}");

    // The exit-code table, fleet row: a request routed to a design
    // nobody opened is a daemon refusal — exit 5, like other refusals.
    let mut buf = Vec::new();
    let err = hb_cli::run(&["query", &addr, "--design", "ghost", "analyze"], &mut buf).unwrap_err();
    assert_eq!(
        (err.kind(), err.exit_code()),
        (hb_cli::ErrorKind::Analysis, 5)
    );
    // An unreachable daemon under --timeout is exit 3 (io), not a hang.
    let err = hb_cli::run(
        &["query", "127.0.0.1:1", "--timeout", "200", "hello"],
        &mut buf,
    )
    .unwrap_err();
    assert_eq!((err.kind(), err.exit_code()), (hb_cli::ErrorKind::Io, 3));
    // Flag typos stay exit 2.
    let err = hb_cli::run(&["query", &addr, "--design"], &mut buf).unwrap_err();
    assert_eq!(err.exit_code(), 2);
    let err = hb_cli::run(&["query", &addr, "--timeout", "soon", "hello"], &mut buf).unwrap_err();
    assert_eq!(err.exit_code(), 2);

    // close: the design goes away, further routing refuses.
    let (code, out) = run_capture(&["query", &addr, "close", "d1"]);
    assert_eq!(code, 0, "{out}");
    let err = hb_cli::run(&["query", &addr, "--design", "d1", "stats"], &mut buf).unwrap_err();
    assert_eq!(err.exit_code(), 5);

    // The flow driver: three concurrent design flows, reports printed
    // in design order regardless of the two-job interleaving.
    let (code, out) = run_capture(&[
        "flow",
        &addr,
        &path,
        "--designs",
        "3",
        "--ecos",
        "2",
        "--jobs",
        "2",
    ]);
    assert_eq!(code, 0, "{out}");
    let i0 = out.find("== flow0:").expect("flow0 bundle");
    let i1 = out.find("== flow1:").expect("flow1 bundle");
    let i2 = out.find("== flow2:").expect("flow2 bundle");
    assert!(i0 < i1 && i1 < i2, "bundles out of order:\n{out}");
    assert_eq!(out.matches("worst paths:").count(), 3, "{out}");
    let (code, out) = run_capture(&["query", &addr, "designs"]);
    assert_eq!(code, 0);
    assert!(out.contains("flow2"), "{out}");

    let (code, _) = run_capture(&["query", &addr, "shutdown"]);
    assert_eq!(code, 0);
    assert_eq!(server.join().unwrap(), 0);
}

#[test]
fn serve_stdio_round_trip_via_subprocess_free_path() {
    // `--stdio` is exercised through hb_server::serve_stream in its own
    // crate; here just check the flag parses and rejects junk.
    let mut buf = Vec::new();
    let err = hb_cli::run(&["serve", "--port", "99"], &mut buf).unwrap_err();
    assert_eq!(err.exit_code(), 2);
    let err = hb_cli::run(&["query"], &mut buf).unwrap_err();
    assert_eq!(err.exit_code(), 2);
    let err = hb_cli::run(&["query", "127.0.0.1:1", "teleport"], &mut buf).unwrap_err();
    assert_eq!(err.exit_code(), 2);
}

#[test]
fn custom_library_via_flag() {
    // A minimal library whose inverter is wildly slow: the same design
    // that passes with sc89 must fail with it.
    let lib_text = "\
library sluggish
wireload 2 3
cell INV_X1 family INV drive 1 area 2
  pin A in cap 4
  pin Y out
  arc A Y negative intrinsic 30000 30000 slope 6 5 minscale 50
cell NAND2_X1 family NAND2 drive 1 area 3
  pin A in cap 5
  pin B in cap 5
  pin Y out
  arc A Y negative intrinsic 90 65 slope 8 6 minscale 50
  arc B Y negative intrinsic 90 65 slope 8 6 minscale 50
cell DFF family DFF drive 1 area 10
  pin D in cap 5
  pin CK in cap 3
  pin Q out
  sync trailing data D control CK out Q setup 300 hold 100 dcx 450 ddx 0 sense neg outslope 7 7
";
    let lib_path = write_temp("sluggish.lib", lib_text);
    let design_path = write_temp("custom_lib.hum", DESIGN);
    let (code, out) = run_capture(&["analyze", &design_path]);
    assert_eq!(code, 0, "sc89 passes: {out}");
    let (code, out) = run_capture(&["analyze", &design_path, "--library", &lib_path]);
    assert_eq!(code, 1, "a 30 ns inverter misses 20 ns: {out}");
}
