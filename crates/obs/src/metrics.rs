//! The metric primitives: atomic counters, gauges with peak tracking,
//! fixed-bucket power-of-two histograms, and span timers.
//!
//! Every handle is a cheap [`Arc`] clone over shared atomics, so a hot
//! path resolves its handles once (at construction, or through a
//! `OnceLock`) and then updates without taking any lock. Updates use
//! `Relaxed` ordering: metrics are monotone tallies read for human
//! consumption, not synchronisation edges.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Number of histogram buckets. Bucket `i` counts recorded values `v`
/// with `bit_width(v) == i`, i.e. `2^(i-1) <= v < 2^i` (bucket 0 holds
/// exactly `v == 0`), so 64 buckets cover the whole `u64` range.
pub const BUCKETS: usize = 65;

/// A monotonically increasing event tally.
#[derive(Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A free-standing counter starting at zero. Registry users get
    /// handles from [`Registry`](crate::Registry) instead, so the
    /// value is visible in the exposition.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current tally.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

struct GaugeInner {
    value: AtomicI64,
    peak: AtomicI64,
}

/// A value that can go up and down, remembering its all-time peak
/// (live connections, journal length, resident designs).
#[derive(Clone)]
pub struct Gauge(Arc<GaugeInner>);

impl Default for Gauge {
    fn default() -> Gauge {
        Gauge(Arc::new(GaugeInner {
            value: AtomicI64::new(0),
            peak: AtomicI64::new(0),
        }))
    }
}

impl Gauge {
    /// A free-standing gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the gauge to `v`, updating the peak.
    pub fn set(&self, v: i64) {
        self.0.value.store(v, Ordering::Relaxed);
        self.0.peak.fetch_max(v, Ordering::Relaxed);
    }

    /// Adds `d` (may be negative), updating the peak.
    pub fn add(&self, d: i64) {
        let now = self.0.value.fetch_add(d, Ordering::Relaxed) + d;
        self.0.peak.fetch_max(now, Ordering::Relaxed);
    }

    /// Subtracts `d`.
    pub fn sub(&self, d: i64) {
        self.add(-d);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.0.value.load(Ordering::Relaxed)
    }

    /// The highest value ever set or reached.
    pub fn peak(&self) -> i64 {
        self.0.peak.load(Ordering::Relaxed)
    }
}

struct HistogramInner {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

/// A fixed-bucket power-of-two histogram of `u64` samples (typically
/// durations in nanoseconds).
///
/// Recording is three relaxed atomic operations — bucket increment,
/// sum add, max update — with no allocation and no lock, so it is safe
/// on the hottest path. Quantile readout walks the 65 buckets and
/// returns the upper bound of the bucket where the cumulative count
/// crosses the rank: exact to within a factor of two, which is all a
/// latency summary needs.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram(Arc::new(HistogramInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }))
    }
}

/// The bucket index of `v`: its bit width (0 for 0).
fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// The largest value bucket `i` can hold (`2^i - 1`; `u64::MAX` for
/// the last bucket).
pub fn bucket_bound(i: usize) -> u64 {
    if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// A free-standing, empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.0.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
        self.0.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a duration as nanoseconds.
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Starts a span over this histogram: the elapsed time is recorded
    /// when the span is dropped (or stopped). When the process is
    /// [disarmed](crate::armed), the span is inert and never reads the
    /// clock.
    pub fn span(&self) -> Span {
        Span {
            hist: self.clone(),
            start: crate::armed().then(Instant::now),
        }
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.0
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .sum()
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded sample (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.0.max.load(Ordering::Relaxed)
    }

    /// Per-bucket counts (non-cumulative).
    pub fn buckets(&self) -> [u64; BUCKETS] {
        std::array::from_fn(|i| self.0.buckets[i].load(Ordering::Relaxed))
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as the upper bound of the
    /// bucket where the cumulative count crosses the rank; 0 when
    /// empty. `quantile(1.0)` is clamped to the exact recorded max.
    pub fn quantile(&self, q: f64) -> u64 {
        let buckets = self.buckets();
        let total: u64 = buckets.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_bound(i).min(self.max());
            }
        }
        self.max()
    }
}

/// A timer over one histogram; see [`Histogram::span`]. Records on
/// drop so early returns and panics are still measured.
pub struct Span {
    hist: Histogram,
    start: Option<Instant>,
}

impl Span {
    /// Stops the span now and returns the elapsed time it recorded
    /// (`None` when the process was disarmed at span start).
    pub fn stop(mut self) -> Option<Duration> {
        let elapsed = self.start.take().map(|s| s.elapsed());
        if let Some(d) = elapsed {
            self.hist.record_duration(d);
        }
        elapsed
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start.take() {
            self.hist.record_duration(start.elapsed());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let clone = c.clone();
        clone.inc();
        assert_eq!(c.get(), 6, "clones share the tally");

        let g = Gauge::new();
        g.add(3);
        g.add(5);
        g.sub(6);
        assert_eq!(g.get(), 2);
        assert_eq!(g.peak(), 8);
        g.set(1);
        assert_eq!(g.peak(), 8, "peak survives a lower set");
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_bound(0), 0);
        assert_eq!(bucket_bound(2), 3);
        assert_eq!(bucket_bound(64), u64::MAX);

        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0, "empty histogram reads zero");
        for v in [1u64, 2, 3, 100, 1000, 100_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 101_106);
        assert_eq!(h.max(), 100_000);
        // p50 falls in the bucket holding 3 (2..4): bound 3.
        assert_eq!(h.quantile(0.5), 3);
        // p100 is clamped to the exact max, not the bucket bound.
        assert_eq!(h.quantile(1.0), 100_000);
        assert!(h.quantile(0.95) >= 1000);
    }

    #[test]
    fn span_records_only_when_armed() {
        let h = Histogram::new();
        crate::disarm();
        assert!(h.span().stop().is_none());
        assert_eq!(h.count(), 0);
        crate::arm();
        assert!(h.span().stop().is_some());
        {
            let _span = h.span(); // records via drop
        }
        assert_eq!(h.count(), 2);
        crate::disarm();
    }
}
