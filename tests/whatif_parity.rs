//! Symbolic-vs-numeric parity across the generator families.
//!
//! The parametric table's whole contract is that evaluating it at any
//! concrete grid period is *bit-identical* to re-running the numeric
//! engine with the clocks rescaled to that period. This suite holds
//! that contract against every generator family: worst slack,
//! feasibility, every terminal slack, and every net slack at five
//! probe periods, plus `min_feasible_period` against a numeric binary
//! search.
//!
//! The default matrix runs one quick seed per family; set
//! `HB_GEN_FULL=1` for the issue matrix (10k cells, 3 seeds).

use hb_cells::sc89;
use hb_clock::ClockSet;
use hb_units::Time;
use hb_workloads::{generate, GenKind, GenParams, Workload};
use hummingbird::{Analyzer, ParametricSlack};

const KINDS: [GenKind; 3] = [GenKind::Pipeline, GenKind::Sbox, GenKind::Sram];

fn matrix() -> Vec<GenParams> {
    let (cells, seeds): (usize, &[u64]) = if std::env::var_os("HB_GEN_FULL").is_some() {
        (10_000, &[3, 5, 7])
    } else {
        (2_000, &[7])
    };
    let mut points = Vec::new();
    for kind in KINDS {
        for &seed in seeds {
            points.push(GenParams::new(kind, cells, seed));
        }
    }
    points
}

/// Rescales every clock so the set's overall period lands exactly on
/// `period`. All clock times are multiples of the grid unit, so the
/// scaling is exact integer arithmetic — no rounding anywhere.
fn clocks_at(clocks: &ClockSet, param: &ParametricSlack, period: Time) -> ClockSet {
    let stride = param.stride().as_ps();
    assert_eq!(period.as_ps() % stride, 0, "probe periods sit on the grid");
    let g = param.nominal_period().as_ps() / stride;
    let k = period.as_ps() / stride;
    let scale = |t: Time| {
        let scaled = i128::from(t.as_ps()) * i128::from(k);
        assert_eq!(scaled % i128::from(g), 0, "clock time on the lattice");
        Time::from_ps(i64::try_from(scaled / i128::from(g)).expect("scaled time fits"))
    };
    let mut out = ClockSet::new();
    for (_, c) in clocks.clocks() {
        out.add_clock(
            c.name(),
            scale(c.period()),
            scale(c.rise()),
            scale(c.fall()),
        )
        .expect("exactly scaled clocks stay valid");
    }
    out
}

/// Five grid periods per design: the domain ends, the nominal period,
/// and both sides of the feasibility boundary (or the domain midpoint
/// when the design is infeasible everywhere).
fn probe_periods(param: &ParametricSlack) -> Vec<Time> {
    let (lo, hi) = param.domain();
    let stride = param.stride().as_ps();
    let mid_k = (lo.as_ps() / stride + hi.as_ps() / stride) / 2;
    let mut periods = vec![
        lo,
        param.nominal_period(),
        Time::from_ps(mid_k * stride),
        hi,
    ];
    if let Some(min) = param.min_feasible_period() {
        periods.push(min);
        let below = Time::from_ps(min.as_ps() - stride);
        if below >= lo {
            periods.push(below);
        }
    }
    periods.sort_unstable();
    periods.dedup();
    assert!(periods.len() >= 4, "probe set collapsed: {periods:?}");
    periods
}

fn cold_report(
    w: &Workload,
    lib: &hb_cells::Library,
    clocks: &ClockSet,
) -> hummingbird::TimingReport {
    Analyzer::new(&w.design, w.module, lib, clocks, w.spec.clone())
        .expect("rescaled design still conforms")
        .analyze()
}

/// `slack-at`'s backing evaluation is bit-identical to a cold numeric
/// run at every probe period, for every slack the report exposes.
#[test]
fn symbolic_evaluation_matches_cold_runs_across_families() {
    let lib = sc89();
    for p in matrix() {
        let tag = format!("{} cells={} seed={}", p.kind.name(), p.cells, p.seed);
        let w = generate(&lib, &p);
        let analyzer = Analyzer::new(&w.design, w.module, &lib, &w.clocks, w.spec.clone())
            .unwrap_or_else(|e| panic!("{tag}: conforms: {e}"));
        let param = analyzer
            .parametric()
            .unwrap_or_else(|e| panic!("{tag}: parametric builds: {e}"));

        for period in probe_periods(&param) {
            let clocks = clocks_at(&w.clocks, &param, period);
            assert_eq!(clocks.overall_period(), period, "{tag}: exact rescale");
            let report = cold_report(&w, &lib, &clocks);

            assert_eq!(
                param.worst_at(period).unwrap(),
                report.worst_slack(),
                "{tag}: worst slack diverges at {period}"
            );
            assert_eq!(
                param.ok_at(period).unwrap(),
                report.ok(),
                "{tag}: feasibility diverges at {period}"
            );
            let sym = param.terminal_slacks_at(period).unwrap();
            let num = report.terminal_slacks();
            assert_eq!(sym.len(), num.len(), "{tag}: terminal counts");
            for (i, (s, n)) in sym.iter().zip(num).enumerate() {
                assert_eq!(param.terminals()[i].name, n.name, "{tag}");
                assert_eq!(
                    *s, n.slack,
                    "{tag}: terminal {} diverges at {period}",
                    n.name
                );
            }
            let module = w.design.module(w.module);
            for (net, _) in module.nets() {
                assert_eq!(
                    param.net_slack_at(period, net).unwrap(),
                    report.net_slack(net),
                    "{tag}: net slack diverges at {period}"
                );
            }
        }
    }
}

/// `min-period` agrees with a numeric binary search over cold runs —
/// and the boundary is sharp: feasible at the answer, infeasible one
/// grid step below.
#[test]
fn min_period_agrees_with_numeric_binary_search() {
    let lib = sc89();
    for p in matrix() {
        let tag = format!("{} cells={} seed={}", p.kind.name(), p.cells, p.seed);
        let w = generate(&lib, &p);
        let analyzer = Analyzer::new(&w.design, w.module, &lib, &w.clocks, w.spec.clone())
            .unwrap_or_else(|e| panic!("{tag}: conforms: {e}"));
        let param = analyzer
            .parametric()
            .unwrap_or_else(|e| panic!("{tag}: parametric builds: {e}"));

        let stride = param.stride().as_ps();
        let (lo, hi) = param.domain();
        let feasible = |k: i64| -> bool {
            let clocks = clocks_at(&w.clocks, &param, Time::from_ps(k * stride));
            cold_report(&w, &lib, &clocks).ok()
        };

        let symbolic = param.min_feasible_period();
        let (mut lo_k, mut hi_k) = (lo.as_ps() / stride, hi.as_ps() / stride);
        let numeric = if feasible(hi_k) {
            while lo_k < hi_k {
                let mid = lo_k + (hi_k - lo_k) / 2;
                if feasible(mid) {
                    hi_k = mid;
                } else {
                    lo_k = mid + 1;
                }
            }
            Some(Time::from_ps(hi_k * stride))
        } else {
            None
        };

        match (symbolic, numeric) {
            (Some(s), Some(n)) => {
                assert!(
                    (s.as_ps() - n.as_ps()).abs() <= 1,
                    "{tag}: symbolic {s} vs binary-search {n}"
                );
                // The boundary is sharp under cold numeric runs too.
                assert!(feasible(s.as_ps() / stride), "{tag}: feasible at {s}");
                if s > lo {
                    assert!(
                        !feasible(s.as_ps() / stride - 1),
                        "{tag}: infeasible one step below {s}"
                    );
                }
            }
            (None, None) => {}
            (s, n) => panic!("{tag}: symbolic {s:?} vs binary-search {n:?}"),
        }
    }
}
