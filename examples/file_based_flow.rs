//! The file-based flow: parse a `.hum` design (with embedded clocks and
//! timing directives), analyze it, fix it with the redesign loop, and
//! write the improved netlist back out — the full OCT-style round trip.
//!
//! ```sh
//! cargo run -p hb-bench --example file_based_flow
//! ```

use hb_cells::sc89;
use hb_io::{parse_hum, write_hum_with_timing, TimingDirective};
use hb_resynth::{optimize, ResynthOptions};
use hb_units::{Time, Transition};
use hummingbird::{Analyzer, EdgeSpec, Spec};

const DESIGN: &str = "\
design overloaded
module top
  port in din ck
  port out dout
  # One X1 inverter fans out to eight loads: too slow at 1.25 ns.
  inst drv INV_X1 A=din Y=hub
  inst l0 INV_X1 A=hub Y=w0
  inst l1 INV_X1 A=hub Y=w1
  inst l2 INV_X1 A=hub Y=w2
  inst l3 INV_X1 A=hub Y=w3
  inst m0 NAND2_X1 A=w0 B=w1 Y=m0y
  inst m1 NAND2_X1 A=w2 B=w3 Y=m1y
  inst m2 NAND2_X1 A=m0y B=m1y Y=m2y
  inst j0 XOR2_X1 A=m2y B=hub Y=jy
  inst cap DFF D=jy CK=ck Q=dout
end
top top
clock ck period 1.25ns rise 0ns fall 0.625ns
clockport ck ck
arrive din ck rise 0ns
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lib = sc89();
    let file = parse_hum(DESIGN, &lib)?;
    let mut design = file.design;
    let top = design.top().expect("top directive present");

    // Convert the file's timing directives into a Spec.
    let mut spec = Spec::new();
    for d in &file.timing {
        match d {
            TimingDirective::ClockPort { port, clock } => {
                spec = spec.clock_port(port, clock);
            }
            TimingDirective::Arrive { port, edge, offset } => {
                spec = spec.input_arrival(
                    port,
                    EdgeSpec::new(&edge.0, edge.1).at_occurrence(edge.2),
                    *offset,
                );
            }
            TimingDirective::Require { port, edge, offset } => {
                spec = spec.output_required(
                    port,
                    EdgeSpec::new(&edge.0, edge.1).at_occurrence(edge.2),
                    *offset,
                );
            }
        }
    }

    let before = Analyzer::new(&design, top, &lib, &file.clocks, spec.clone())?.analyze();
    println!(
        "parsed {:?}: worst slack {}",
        design.name(),
        before.worst_slack()
    );
    for path in before.slow_paths().iter().take(2) {
        println!("  slow into {} (slack {})", path.endpoint, path.slack);
    }

    let outcome = optimize(
        &mut design,
        top,
        &lib,
        &file.clocks,
        &spec,
        ResynthOptions::default(),
    )?;
    println!(
        "redesign: met={} ({} resizes, {} buffers)",
        outcome.met, outcome.resizes, outcome.buffers
    );

    let emitted = write_hum_with_timing(&design, &file.clocks, &file.timing);
    println!("--- optimized netlist ---\n{emitted}");

    // The emission re-parses and still meets timing.
    let again = parse_hum(&emitted, &lib)?;
    let verify = Analyzer::new(
        &again.design,
        again.design.top().expect("kept"),
        &lib,
        &again.clocks,
        spec,
    )?
    .analyze();
    println!(
        "re-parsed verdict: ok={} worst {}",
        verify.ok(),
        verify.worst_slack()
    );
    assert_eq!(verify.ok(), outcome.met);
    let _ = Time::ZERO;
    let _ = Transition::Rise;
    Ok(())
}
