//! Per-daemon request metrics.
//!
//! Each daemon instance (TCP server or stdio loop) owns one
//! [`Metrics`] over its own [`Registry`], so two servers in one test
//! process never bleed counts into each other. Request counters are
//! pre-registered per verb at construction, making the hot path one
//! relaxed atomic increment with no registry lookup; only rare events
//! (error replies) register lazily.
//!
//! This is also where the historical `stats` undercount is fixed at
//! the root: both the read-lock path (`Session::handle_readonly`) and
//! the write path (`Session::handle`) tally into the *same* atomics
//! through a shared reference, so a request is counted no matter which
//! lock served it. Journal replay bypasses the counting wrapper
//! entirely — recovery must not inflate history.

use std::sync::Arc;

use hb_obs::{Counter, Gauge, Histogram, Registry, Span};

/// Every wire verb with a dedicated counter slot; anything else lands
/// in `other` (still counted — unknown verbs are requests too).
pub const VERBS: [&str; 19] = [
    "hello",
    "stats",
    "metrics",
    "shutdown",
    "slack",
    "worst-paths",
    "dump",
    "load",
    "analyze",
    "constraints",
    "eco",
    "batch",
    "open",
    "close",
    "designs",
    "repl-state",
    "repl-pull",
    "vote",
    "other",
];

/// The counter slot of `verb` (the `other` slot for unknown verbs).
fn verb_index(verb: &str) -> usize {
    VERBS
        .iter()
        .position(|v| *v == verb)
        .unwrap_or(VERBS.len() - 1)
}

/// One daemon instance's metrics: per-verb request counters split by
/// lock path, per-verb latency histograms split lock-wait vs handle,
/// wire byte counters, connection gauge, shed/recovery counters.
pub struct Metrics {
    registry: Arc<Registry>,
    /// `hb_requests_total{verb=..., path="read"}` — served under the
    /// shared read lock.
    read: Vec<Counter>,
    /// `hb_requests_total{verb=..., path="write"}` — served under the
    /// exclusive write lock (every mutating verb, plus read-only verbs
    /// that found the analysis stale).
    write: Vec<Counter>,
    /// Time a request waited for the session lock, by verb.
    lock_wait: Vec<Histogram>,
    /// Time the session spent handling, by verb.
    handle: Vec<Histogram>,
    /// Bytes read off accepted sockets.
    pub bytes_in: Counter,
    /// Bytes written to accepted sockets.
    pub bytes_out: Counter,
    /// Live connections (peak tracked as the gauge watermark).
    pub conns: Gauge,
    /// Bytes of reusable per-connection codec buffers currently
    /// retained (decode scratch plus reply queues) — the daemon's
    /// bounded-memory claim, measurable. Peak tracks the high-water
    /// mark across the connection population.
    pub buffer_bytes: Gauge,
    /// Connections shed at accept by the connection cap.
    pub shed: Counter,
    /// Session rebuilds from the write-ahead journal.
    pub recoveries: Counter,
    /// Resident (non-evicted) design sessions in the fleet table.
    pub sessions_live: Gauge,
    /// Approximate bytes held by resident design sessions (peak is the
    /// watermark the memory budget is judged against).
    pub session_bytes: Gauge,
    /// Design sessions evicted by the LRU policy to stay inside the
    /// fleet's memory budget.
    pub evictions: Counter,
    /// The node's current fencing term (bumped by every promotion,
    /// adopted from any higher term seen on the wire).
    pub term: Gauge,
    /// Promotions to primary this process has performed (unilateral or
    /// quorum-elected).
    pub promotions: Counter,
    /// Mutating requests rejected with `error code=fenced` because
    /// this node is not the primary (or the issuer's term was stale).
    pub fenced_writes: Counter,
    /// `repl-pull` pages this node has applied as a standby.
    pub repl_pages: Counter,
    /// Bytes of `repl-pull` page payload applied as a standby.
    pub repl_bytes: Counter,
}

impl Default for Metrics {
    fn default() -> Metrics {
        Metrics::new()
    }
}

impl Metrics {
    /// A fresh instance over its own registry, with every per-verb
    /// series pre-registered so counting never touches the registry.
    pub fn new() -> Metrics {
        let registry = Arc::new(Registry::new());
        let requests = |path: &str| -> Vec<Counter> {
            VERBS
                .iter()
                .map(|verb| {
                    registry.counter_with(
                        "hb_requests_total",
                        "requests served, by verb and lock path",
                        &[("verb", verb), ("path", path)],
                    )
                })
                .collect()
        };
        let stages = |stage: &str| -> Vec<Histogram> {
            VERBS
                .iter()
                .map(|verb| {
                    registry.histogram_with(
                        "hb_request_nanoseconds",
                        "request latency, by verb, split lock-wait vs handle",
                        &[("verb", verb), ("stage", stage)],
                    )
                })
                .collect()
        };
        Metrics {
            read: requests("read"),
            write: requests("write"),
            lock_wait: stages("lock_wait"),
            handle: stages("handle"),
            bytes_in: registry.counter("hb_bytes_read_total", "bytes read off client sockets"),
            bytes_out: registry
                .counter("hb_bytes_written_total", "bytes written to client sockets"),
            conns: registry.gauge("hb_connections", "live client connections"),
            buffer_bytes: registry.gauge(
                "hb_conn_buffer_bytes",
                "bytes of per-connection codec buffers currently retained",
            ),
            shed: registry.counter(
                "hb_connections_shed_total",
                "connections refused at accept by the connection cap",
            ),
            recoveries: registry.counter(
                "hb_recoveries_total",
                "session rebuilds from the write-ahead journal",
            ),
            sessions_live: registry.gauge(
                "hb_sessions_live",
                "resident design sessions in the fleet table",
            ),
            session_bytes: registry.gauge(
                "hb_session_bytes",
                "approximate bytes held by resident design sessions",
            ),
            evictions: registry.counter(
                "hb_evictions_total",
                "design sessions evicted by the LRU memory-budget policy",
            ),
            term: registry.gauge("hb_term", "current fencing term of this node"),
            promotions: registry
                .counter("hb_promotions_total", "promotions of this node to primary"),
            fenced_writes: registry.counter(
                "hb_fenced_writes_total",
                "mutating requests rejected because this node is fenced",
            ),
            repl_pages: registry.counter(
                "hb_repl_pages_total",
                "repl-pull pages applied while standing by",
            ),
            repl_bytes: registry.counter(
                "hb_repl_bytes_total",
                "bytes of repl-pull page payload applied while standing by",
            ),
            registry,
        }
    }

    /// The backing registry (rendered by the `metrics` verb).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Counts one request served under the read lock.
    pub fn count_read(&self, verb: &str) {
        self.read[verb_index(verb)].inc();
    }

    /// Counts one request served under the write lock.
    pub fn count_write(&self, verb: &str) {
        self.write[verb_index(verb)].inc();
    }

    /// Total requests served over both lock paths.
    pub fn requests_total(&self) -> u64 {
        self.read.iter().chain(&self.write).map(Counter::get).sum()
    }

    /// Requests served under the read lock.
    pub fn read_total(&self) -> u64 {
        self.read.iter().map(Counter::get).sum()
    }

    /// Requests served under the write lock.
    pub fn write_total(&self) -> u64 {
        self.write.iter().map(Counter::get).sum()
    }

    /// Requests of one verb, both paths combined.
    pub fn requests_of(&self, verb: &str) -> u64 {
        let i = verb_index(verb);
        self.read[i].get() + self.write[i].get()
    }

    /// Counts one `error`-verb reply by its `code` argument. Error
    /// replies are rare, so lazy registration here is fine.
    pub fn error(&self, code: &str) {
        self.registry
            .counter_with(
                "hb_errors_total",
                "error replies, by code",
                &[("code", code)],
            )
            .inc();
    }

    /// Counts one routed request against its design id. Designs come
    /// and go at runtime, so — like [`Metrics::error`] — this
    /// registers lazily; the registry interns the series after the
    /// first request, and per-design traffic is one lookup thereafter.
    pub fn design_request(&self, design: &str) {
        self.registry
            .counter_with(
                "hb_design_requests_total",
                "requests routed, by design id",
                &[("design", design)],
            )
            .inc();
    }

    /// A span over `verb`'s lock-wait histogram (inert when disarmed).
    pub fn lock_wait_span(&self, verb: &str) -> Span {
        self.lock_wait[verb_index(verb)].span()
    }

    /// A span over `verb`'s handle histogram (inert when disarmed).
    pub fn handle_span(&self, verb: &str) -> Span {
        self.handle[verb_index(verb)].span()
    }

    /// The `metrics`-verb payload: this instance's registry followed by
    /// the process-global one (engine, algorithm and fault counters).
    pub fn render_with_global(&self) -> String {
        let mut out = self.registry.render();
        out.push_str(&hb_obs::global().render());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verbs_route_to_their_slot() {
        let m = Metrics::new();
        m.count_read("slack");
        m.count_read("slack");
        m.count_write("eco");
        m.count_write("nonsense");
        assert_eq!(m.requests_of("slack"), 2);
        assert_eq!(m.requests_of("eco"), 1);
        assert_eq!(m.requests_of("other"), 1);
        assert_eq!(m.requests_total(), 4);
        assert_eq!(m.read_total(), 2);
        assert_eq!(m.write_total(), 2);
    }

    #[test]
    fn exposition_carries_both_registries() {
        let m = Metrics::new();
        m.count_read("hello");
        m.error("busy");
        let text = m.render_with_global();
        assert!(text.contains("hb_requests_total{path=\"read\",verb=\"hello\"} 1"));
        assert!(text.contains("hb_errors_total{code=\"busy\"} 1"));
        hb_obs::parse_exposition(&text).expect("well-formed exposition");
    }

    #[test]
    fn two_instances_are_isolated() {
        let a = Metrics::new();
        let b = Metrics::new();
        a.count_write("load");
        assert_eq!(a.requests_total(), 1);
        assert_eq!(b.requests_total(), 0);
    }
}
