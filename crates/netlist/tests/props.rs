//! Property-based tests of database consistency under random edit
//! sequences.

use hb_netlist::{Design, Endpoint, InstId, LeafDef, NetId, PinDir, PinSlot};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    AddNet,
    AddInst,
    Connect { inst: usize, pin: usize, net: usize },
    Disconnect { inst: usize, pin: usize },
    Retarget { inst: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::AddNet),
        Just(Op::AddInst),
        (0usize..64, 0usize..3, 0usize..64).prop_map(|(inst, pin, net)| Op::Connect {
            inst,
            pin,
            net
        }),
        (0usize..64, 0usize..3).prop_map(|(inst, pin)| Op::Disconnect { inst, pin }),
        (0usize..64).prop_map(|inst| Op::Retarget { inst }),
    ]
}

/// Applies a random edit sequence and checks that the normalized
/// connectivity stays consistent: every instance connection has a
/// matching net endpoint and vice versa.
fn run_ops(ops: Vec<Op>) {
    let mut d = Design::new("p");
    let g1 = d
        .declare_leaf(
            LeafDef::new("G1")
                .pin("A", PinDir::Input)
                .pin("B", PinDir::Input)
                .pin("Y", PinDir::Output),
        )
        .unwrap();
    let g2 = d
        .declare_leaf(
            LeafDef::new("G2")
                .pin("A", PinDir::Input)
                .pin("B", PinDir::Input)
                .pin("Y", PinDir::Output),
        )
        .unwrap();
    let m = d.add_module("top").unwrap();
    d.set_top(m).unwrap();
    let mut nets: Vec<NetId> = vec![d.add_net(m, "seed").unwrap()];
    let mut insts: Vec<InstId> = Vec::new();
    let mut counter = 0usize;

    for op in ops {
        counter += 1;
        match op {
            Op::AddNet => nets.push(d.add_net(m, format!("n{counter}")).unwrap()),
            Op::AddInst => {
                insts.push(d.add_leaf_instance(m, format!("i{counter}"), g1).unwrap())
            }
            Op::Connect { inst, pin, net } => {
                if !insts.is_empty() {
                    let inst = insts[inst % insts.len()];
                    let net = nets[net % nets.len()];
                    d.connect_slot(m, inst, PinSlot::from_raw(pin as u32), net);
                }
            }
            Op::Disconnect { inst, pin } => {
                if !insts.is_empty() {
                    let inst = insts[inst % insts.len()];
                    d.disconnect(m, inst, PinSlot::from_raw(pin as u32));
                }
            }
            Op::Retarget { inst } => {
                if !insts.is_empty() {
                    let inst = insts[inst % insts.len()];
                    d.replace_instance_ref(m, inst, g2).unwrap();
                }
            }
        }
    }

    // Consistency: instance conns <-> net endpoints, one-to-one.
    let module = d.module(m);
    for (inst_id, inst) in module.instances() {
        for (slot, net) in inst.conns() {
            let found = module
                .net(net)
                .endpoints()
                .iter()
                .any(|ep| matches!(ep, Endpoint::Pin { inst, slot: s, .. } if *inst == inst_id && *s == slot));
            assert!(found, "conn {inst_id}/{slot} missing endpoint");
        }
    }
    for (net_id, net) in module.nets() {
        for ep in net.endpoints() {
            if let Endpoint::Pin { inst, slot, .. } = ep {
                assert_eq!(
                    module.instance(*inst).conn(*slot),
                    Some(net_id),
                    "endpoint without matching conn"
                );
            }
        }
        // No duplicate endpoints.
        let mut eps = net.endpoints().to_vec();
        let before = eps.len();
        eps.sort_by_key(|e| match e {
            Endpoint::Pin { inst, slot, .. } => (1, inst.as_raw(), slot.as_raw()),
            Endpoint::Port(p) => (0, p.as_raw(), 0),
        });
        eps.dedup();
        assert_eq!(eps.len(), before, "duplicate endpoints on {net_id}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn random_edits_keep_connectivity_consistent(
        ops in prop::collection::vec(op_strategy(), 0..120)
    ) {
        run_ops(ops);
    }
}
