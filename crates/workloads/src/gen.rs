//! The at-scale design generator: parameterized, hb-rng-seeded
//! netlists from 10k to 1M cells across 2–8 harmonically related
//! clocks.
//!
//! Three structural families cover the shapes that stress different
//! parts of the analyzer:
//!
//! * [`GenKind::Pipeline`] — a deep multi-phase transparent-latch
//!   pipeline: hundreds of latch banks on rotating clock phases with
//!   random logic between them. Exercises time borrowing and the
//!   multi-pass engine across many small clusters in series.
//! * [`GenKind::Sbox`] — a DES-like S-box mesh: rounds of eight
//!   8-lane random-logic boxes whose outputs are permuted before the
//!   next round's register bank. Exercises wide, interleaved clusters
//!   with heavy cross-lane fanout.
//! * [`GenKind::Sram`] — SRAM-style macro banks: address registers,
//!   an AND-chain row decoder, a wordline × data AND array, and
//!   per-column OR reduction trees into output registers. Exercises
//!   many independent mid-size clusters — the sharded engine's best
//!   case — mirroring the programmatic macro generation of `sramgen`.
//!
//! Every emitted design is well-formed by construction: no floating
//! inputs, no combinational cycles, every sync element's control pin
//! reachable from exactly one clock port through a tree-shaped buffer
//! network, and every sync element's data cone reachable from a
//! primary input. The same [`GenParams`] always produce a
//! byte-identical [`Workload::to_hum`] dump.

use hb_cells::Library;
use hb_clock::ClockSet;
use hb_io::{write_hum_with_timing, TimingDirective};
use hb_netlist::{NetId, PinDir};
use hb_rng::SmallRng;
use hb_units::{Time, Transition};
use hummingbird::{EdgeSpec, Spec};

use crate::build::NetlistBuilder;
use crate::designs::Workload;

/// The generator family.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GenKind {
    /// Deep multi-phase transparent-latch pipeline.
    Pipeline,
    /// DES-like S-box mesh with inter-round permutations.
    Sbox,
    /// SRAM-style address/decode/array/mux banks.
    Sram,
}

impl GenKind {
    /// Parses a CLI-style kind name.
    pub fn parse(s: &str) -> Option<GenKind> {
        match s {
            "pipeline" => Some(GenKind::Pipeline),
            "sbox" => Some(GenKind::Sbox),
            "sram" => Some(GenKind::Sram),
            _ => None,
        }
    }

    /// The CLI-style kind name.
    pub fn name(&self) -> &'static str {
        match self {
            GenKind::Pipeline => "pipeline",
            GenKind::Sbox => "sbox",
            GenKind::Sram => "sram",
        }
    }
}

/// Parameters for [`generate`]. The tuple (`kind`, `cells`, `seed`,
/// `clocks`) fully determines the output, byte for byte.
#[derive(Clone, Copy, Debug)]
pub struct GenParams {
    /// The structural family.
    pub kind: GenKind,
    /// The exact standard-cell count of the emitted design.
    pub cells: usize,
    /// The hb-rng seed; part of the design's identity.
    pub seed: u64,
    /// How many harmonically related clocks to spread sync elements
    /// across (clamped to 2–8).
    pub clocks: usize,
}

impl GenParams {
    /// Parameters with the default clock count (4).
    pub fn new(kind: GenKind, cells: usize, seed: u64) -> GenParams {
        GenParams {
            kind,
            cells,
            seed,
            clocks: 4,
        }
    }
}

/// The smallest cell budget every family can hit exactly.
pub const MIN_GEN_CELLS: usize = 1000;

/// Max sync control pins per clock-tree leaf buffer.
const LEAF_FANOUT: usize = 48;
/// Internal clock-tree buffer fanout.
const TREE_FANOUT: usize = 8;

/// Round-robin taps over each clock's leaf buffer nets, so no leaf
/// drives more than `LEAF_FANOUT` control pins.
struct ClockTaps {
    leaves: Vec<Vec<NetId>>,
    cursor: Vec<usize>,
}

impl ClockTaps {
    fn tap(&mut self, clock: usize) -> NetId {
        let leaves = &self.leaves[clock];
        let c = self.cursor[clock];
        self.cursor[clock] = (c + 1) % leaves.len();
        leaves[c]
    }
}

/// Builds a tree of `CLKBUF_X4` from `root` with `leaves` leaf nets:
/// every buffer has exactly one driver (tree-shaped, so clock reach
/// stays monotonic) and at most `TREE_FANOUT` buffer loads.
fn fanout_tree(b: &mut NetlistBuilder, root: NetId, leaves: usize) -> Vec<NetId> {
    let mut sizes = vec![leaves.max(1)];
    while *sizes.last().unwrap() > 1 {
        let up = sizes.last().unwrap().div_ceil(TREE_FANOUT);
        sizes.push(up);
    }
    sizes.reverse();
    let mut current = vec![root];
    for &size in &sizes {
        let mut next = Vec::with_capacity(size);
        for i in 0..size {
            let parent = current[i * current.len() / size];
            let y = b.fresh_net("ck");
            b.inst("CLKBUF_X4", &[("A", parent), ("Y", y)]);
            next.push(y);
        }
        current = next;
    }
    current
}

/// Declares `count` clocks `gck0..` with harmonically related periods
/// (40ns and 80ns against an 80ns overall period) and staggered
/// pulses, one input port and one buffer tree each, sized for
/// `sinks_per_clock[j]` control pins.
fn build_clocks(
    b: &mut NetlistBuilder,
    mut spec: Spec,
    count: usize,
    sinks_per_clock: &[usize],
) -> (ClockSet, Spec, ClockTaps) {
    assert_eq!(sinks_per_clock.len(), count);
    let base = Time::from_ns(40);
    let mut clocks = ClockSet::new();
    let mut leaves = Vec::with_capacity(count);
    for (j, &sinks) in sinks_per_clock.iter().enumerate() {
        let name = format!("gck{j}");
        // Even clocks run at the overall period, odd ones at half of
        // it, so every period divides the 80ns overall period.
        let period = if j % 2 == 0 { base * 2 } else { base };
        let rise = period * (j % 4) as i64 / 8;
        let fall = rise + period * 3 / 8;
        clocks
            .add_clock(&name, period, rise, fall)
            .expect("staggered 3/8-duty waveforms are valid");
        let root = b.input(&name);
        spec = spec.clock_port(&name, &name);
        leaves.push(fanout_tree(b, root, sinks.div_ceil(LEAF_FANOUT)));
    }
    let cursor = vec![0; count];
    (clocks, spec, ClockTaps { leaves, cursor })
}

/// A bank of `DFF`s whose clock pins round-robin over the clock's
/// leaf buffers.
fn dff_bank(
    b: &mut NetlistBuilder,
    taps: &mut ClockTaps,
    clock: usize,
    data: &[NetId],
    hint: &str,
) -> Vec<NetId> {
    data.iter()
        .map(|&d| {
            let ck = taps.tap(clock);
            let q = b.fresh_net(hint);
            b.inst("DFF", &[("D", d), ("CK", ck), ("Q", q)]);
            q
        })
        .collect()
}

/// A bank of transparent `DLATCH`es, gates round-robined likewise.
fn latch_bank(
    b: &mut NetlistBuilder,
    taps: &mut ClockTaps,
    clock: usize,
    data: &[NetId],
    hint: &str,
) -> Vec<NetId> {
    data.iter()
        .map(|&d| {
            let g = taps.tap(clock);
            let q = b.fresh_net(hint);
            b.inst("DLATCH", &[("D", d), ("G", g), ("Q", q)]);
            q
        })
        .collect()
}

/// Splits `budget` into `parts` near-equal shares (remainder spread
/// over the leading shares), preserving the exact total.
fn share(budget: usize, parts: usize, index: usize) -> usize {
    budget / parts + usize::from(index < budget % parts)
}

/// Generates a well-formed design of exactly `params.cells` standard
/// cells. Panics if `params.cells < MIN_GEN_CELLS` — generators are
/// deterministic, so a bad budget is a programming error upstream
/// (the CLI validates user input first).
pub fn generate(lib: &Library, params: &GenParams) -> Workload {
    assert!(
        params.cells >= MIN_GEN_CELLS,
        "generator needs at least {MIN_GEN_CELLS} cells, got {}",
        params.cells
    );
    let clocks = params.clocks.clamp(2, 8);
    let w = match params.kind {
        GenKind::Pipeline => gen_pipeline(lib, params.cells, params.seed, clocks),
        GenKind::Sbox => gen_sbox(lib, params.cells, params.seed, clocks),
        GenKind::Sram => gen_sram(lib, params.cells, params.seed, clocks),
    };
    debug_assert_eq!(w.design.module(w.module).instance_count(), params.cells);
    w
}

/// Deep multi-phase latch pipeline: `stages` transparent-latch banks
/// on rotating phases with random logic between them, capped by a
/// DFF output bank.
fn gen_pipeline(lib: &Library, cells: usize, seed: u64, clocks: usize) -> Workload {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = NetlistBuilder::new_compact("gen_pipeline", lib);
    b.design.reserve(b.module, cells, cells + 128);

    let width = (cells / 64).clamp(8, 256);
    // ~12% of the budget goes to sync elements.
    let stages = ((cells * 12 / 100) / width).max(clocks);
    let mut sinks = vec![0usize; clocks];
    for s in 0..stages {
        sinks[s % clocks] += width;
    }
    sinks[clocks - 1] += width; // the output DFF bank
    let (clockset, mut spec, mut taps) = build_clocks(&mut b, Spec::new(), clocks, &sinks);

    let pis: Vec<NetId> = (0..width).map(|i| b.input(&format!("pi{i}"))).collect();
    for i in 0..width {
        // Valid slightly before the launch edge, as a registered
        // external interface would provide them.
        spec = spec.input_arrival(
            format!("pi{i}"),
            EdgeSpec::new("gck0", Transition::Rise),
            Time::from_ps(-500),
        );
    }

    let syncs = stages * width + width;
    let fixed = b.design.module(b.module).instance_count();
    let logic_budget = cells
        .checked_sub(fixed + syncs)
        .expect("cell budget covers clock trees and sync banks");
    assert!(
        logic_budget / stages >= width,
        "every stage needs at least `width` gates"
    );

    let mut bus = pis;
    for s in 0..stages {
        let gates = share(logic_budget, stages, s);
        bus = b.random_logic(&mut rng, &bus, gates, width);
        bus = latch_bank(&mut b, &mut taps, s % clocks, &bus, "l");
    }
    let outs = dff_bank(&mut b, &mut taps, clocks - 1, &bus, "q");
    let final_clock = format!("gck{}", clocks - 1);
    for (i, q) in outs.iter().enumerate() {
        b.output(&format!("po{i}"), *q);
        spec = spec.output_required(
            format!("po{i}"),
            EdgeSpec::new(final_clock.as_str(), Transition::Rise),
            Time::ZERO,
        );
    }

    Workload {
        name: format!("GEN-PIPE{cells}"),
        design: b.design,
        module: b.module,
        clocks: clockset,
        spec,
    }
}

/// DES-like S-box mesh: rounds of eight 8-lane boxes, outputs
/// permuted between rounds, register bank per round.
fn gen_sbox(lib: &Library, cells: usize, seed: u64, clocks: usize) -> Workload {
    const LANES: usize = 64;
    const BOXES: usize = 8;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = NetlistBuilder::new_compact("gen_sbox", lib);
    b.design.reserve(b.module, cells, cells + 128);

    let rounds = (cells / 1500).clamp(2, 1024);
    let mut sinks = vec![0usize; clocks];
    for r in 0..rounds {
        sinks[r % clocks] += LANES;
    }
    sinks[clocks - 1] += LANES; // the output bank
    let (clockset, mut spec, mut taps) = build_clocks(&mut b, Spec::new(), clocks, &sinks);

    let pis: Vec<NetId> = (0..LANES).map(|i| b.input(&format!("pi{i}"))).collect();
    for i in 0..LANES {
        spec = spec.input_arrival(
            format!("pi{i}"),
            EdgeSpec::new("gck0", Transition::Rise),
            Time::ZERO,
        );
    }

    let syncs = (rounds + 1) * LANES;
    let fixed = b.design.module(b.module).instance_count();
    let logic_budget = cells
        .checked_sub(fixed + syncs)
        .expect("cell budget covers clock trees and round registers");

    let mut bus = pis;
    for r in 0..rounds {
        bus = dff_bank(&mut b, &mut taps, r % clocks, &bus, "r");
        let round_gates = share(logic_budget, rounds, r);
        let mut next = Vec::with_capacity(LANES);
        for sbox in 0..BOXES {
            let gates = share(round_gates, BOXES, sbox);
            let lanes = LANES / BOXES;
            let ins = &bus[sbox * lanes..(sbox + 1) * lanes];
            assert!(gates >= lanes, "every S-box needs at least its lane count");
            next.extend(b.random_logic(&mut rng, ins, gates, lanes));
        }
        // Inter-round permutation (Fisher–Yates), the mesh's cross-box
        // diffusion.
        for i in (1..next.len()).rev() {
            let j = rng.gen_range(0..i + 1);
            next.swap(i, j);
        }
        bus = next;
    }
    let outs = dff_bank(&mut b, &mut taps, clocks - 1, &bus, "q");
    let final_clock = format!("gck{}", clocks - 1);
    for (i, q) in outs.iter().enumerate() {
        b.output(&format!("po{i}"), *q);
        spec = spec.output_required(
            format!("po{i}"),
            EdgeSpec::new(final_clock.as_str(), Transition::Rise),
            Time::ZERO,
        );
    }

    Workload {
        name: format!("GEN-SBOX{cells}"),
        design: b.design,
        module: b.module,
        clocks: clockset,
        spec,
    }
}

/// SRAM-style macro banks: address registers, AND-chain row decode,
/// wordline × data AND array, per-column OR reduction trees, output
/// registers. Bank geometry scales with the budget; the remainder is
/// padded with observable-free random logic off the address inputs so
/// the stated cell count is exact.
fn gen_sram(lib: &Library, cells: usize, seed: u64, clocks: usize) -> Workload {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = NetlistBuilder::new_compact("gen_sram", lib);
    b.design.reserve(b.module, cells, cells + 128);

    // Geometry: (address bits, columns). Rows = 1 << abits. Small
    // budgets get a small bank so at least one whole bank always fits.
    let (abits, cols) = if cells >= 4800 { (6, 16) } else { (4, 8) };
    let rows = 1usize << abits;
    let bank_cost = 2 * abits + rows * (abits - 1) + rows * cols + cols * (rows - 1) + 2 * cols;
    let bank_syncs = abits + 2 * cols;
    let banks = ((cells * 95 / 100) / bank_cost).max(1);

    let mut sinks = vec![0usize; clocks];
    for bank in 0..banks {
        sinks[bank % clocks] += bank_syncs;
    }
    let (clockset, mut spec, mut taps) = build_clocks(&mut b, Spec::new(), clocks, &sinks);

    let addr: Vec<NetId> = (0..abits).map(|i| b.input(&format!("ad{i}"))).collect();
    let din: Vec<NetId> = (0..cols).map(|i| b.input(&format!("di{i}"))).collect();
    for name in (0..abits)
        .map(|i| format!("ad{i}"))
        .chain((0..cols).map(|i| format!("di{i}")))
    {
        spec = spec.input_arrival(name, EdgeSpec::new("gck0", Transition::Rise), Time::ZERO);
    }

    for bank in 0..banks {
        let clock = bank % clocks;
        let aq = dff_bank(&mut b, &mut taps, clock, &addr, "aq");
        let an: Vec<NetId> = aq
            .iter()
            .map(|&q| {
                let n = b.fresh_net("an");
                b.inst("INV_X1", &[("A", q), ("Y", n)]);
                n
            })
            .collect();
        // Row decode: AND chain over one literal per address bit.
        let wordlines: Vec<NetId> = (0..rows)
            .map(|row| {
                let lit = |k: usize| if row >> k & 1 == 1 { aq[k] } else { an[k] };
                let mut term = lit(0);
                for k in 1..abits {
                    let y = b.fresh_net("wl");
                    b.inst("AND2_X1", &[("A", term), ("B", lit(k)), ("Y", y)]);
                    term = y;
                }
                term
            })
            .collect();
        let dq = dff_bank(&mut b, &mut taps, clock, &din, "dq");
        // Array + column OR reduction into the output registers.
        let douts: Vec<NetId> = (0..cols)
            .map(|col| {
                let mut bits: Vec<NetId> = wordlines
                    .iter()
                    .map(|&wl| {
                        let y = b.fresh_net("b");
                        b.inst("AND2_X1", &[("A", wl), ("B", dq[col]), ("Y", y)]);
                        y
                    })
                    .collect();
                while bits.len() > 1 {
                    let mut up = Vec::with_capacity(bits.len().div_ceil(2));
                    for pair in bits.chunks(2) {
                        if let [a, b2] = *pair {
                            let y = b.fresh_net("o");
                            b.inst("OR2_X1", &[("A", a), ("B", b2), ("Y", y)]);
                            up.push(y);
                        } else {
                            up.push(pair[0]);
                        }
                    }
                    bits = up;
                }
                bits[0]
            })
            .collect();
        let oq = dff_bank(&mut b, &mut taps, clock, &douts, "oq");
        if bank == 0 {
            for (i, q) in oq.iter().enumerate() {
                b.output(&format!("do{i}"), *q);
                spec = spec.output_required(
                    format!("do{i}"),
                    EdgeSpec::new("gck0", Transition::Rise),
                    Time::ZERO,
                );
            }
        }
    }

    // Pad to the exact budget with random logic off the inputs; its
    // outputs are deliberately unobserved.
    let built = b.design.module(b.module).instance_count();
    let pad = cells
        .checked_sub(built)
        .expect("bank sizing stays under the cell budget");
    if pad > 0 {
        let mut ins = addr.clone();
        ins.extend(&din);
        b.random_logic(&mut rng, &ins, pad, 0);
    }

    Workload {
        name: format!("GEN-SRAM{cells}"),
        design: b.design,
        module: b.module,
        clocks: clockset,
        spec,
    }
}

impl Workload {
    /// Serializes the workload — design, clocks, and boundary spec —
    /// as a self-contained `.hum` file.
    ///
    /// Directives are emitted in module-port creation order (the
    /// [`Spec`] itself hashes its maps), so the text is deterministic:
    /// the same `GenParams` always produce byte-identical output.
    pub fn to_hum(&self) -> String {
        let m = self.design.module(self.module);
        let edge_ref = |e: &EdgeSpec| (e.clock.clone(), e.transition, e.occurrence);
        let mut timing = Vec::new();
        for (_, port) in m.ports() {
            let name = port.name();
            match port.dir() {
                PinDir::Input => {
                    if let Some(clock) = self.spec.clock_for_port(name) {
                        timing.push(TimingDirective::ClockPort {
                            port: name.to_owned(),
                            clock: clock.to_owned(),
                        });
                    } else if let Some((edge, offset)) = self.spec.arrival_for_port(name) {
                        timing.push(TimingDirective::Arrive {
                            port: name.to_owned(),
                            edge: edge_ref(edge),
                            offset,
                        });
                    }
                }
                PinDir::Output => {
                    if let Some((edge, offset)) = self.spec.required_for_port(name) {
                        timing.push(TimingDirective::Require {
                            port: name.to_owned(),
                            edge: edge_ref(edge),
                            offset,
                        });
                    }
                }
            }
        }
        write_hum_with_timing(&self.design, &self.clocks, &timing)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_cells::sc89;
    use hummingbird::Analyzer;

    #[test]
    fn every_family_hits_the_exact_cell_count_and_analyzes() {
        let lib = sc89();
        for kind in [GenKind::Pipeline, GenKind::Sbox, GenKind::Sram] {
            let params = GenParams::new(kind, 3000, 42);
            let w = generate(&lib, &params);
            w.design
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            assert_eq!(w.stats().cells, 3000, "{}", w.name);
            let analyzer = Analyzer::new(&w.design, w.module, &lib, &w.clocks, w.spec.clone())
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            let report = analyzer.analyze();
            assert!(report.worst_slack().is_finite(), "{}", w.name);
        }
    }

    #[test]
    fn clock_periods_divide_the_overall_period() {
        let lib = sc89();
        let w = generate(&lib, &GenParams::new(GenKind::Sram, 2000, 7));
        let overall = w.clocks.overall_period();
        for (_, clock) in w.clocks.clocks() {
            assert_eq!(
                overall.rem_euclid(clock.period()),
                Time::ZERO,
                "clock {} not harmonic",
                clock.name()
            );
        }
    }

    #[test]
    fn same_seed_same_bytes_different_seed_different_bytes() {
        let lib = sc89();
        let p = GenParams::new(GenKind::Sbox, 2500, 9);
        let a = generate(&lib, &p).to_hum();
        let b = generate(&lib, &p).to_hum();
        assert_eq!(a, b, "same params must be byte-identical");
        let c = generate(&lib, &GenParams { seed: 10, ..p }).to_hum();
        assert_ne!(a, c, "different seeds must diverge");
    }
}
