//! End-to-end analyzer scenarios with hand-checkable arithmetic.

mod common;

use common::{exact_lib, Builder};
use hb_clock::ClockSet;
use hb_units::{Time, Transition};
use hummingbird::{AnalysisOptions, Analyzer, EdgeSpec, LatchModel, Spec, TerminalKind};

/// `in -> DEL(d) -> FF(ck) -> out`, 10 ns clock. The flip-flop captures
/// on the rising edge; the input is asserted at the rising edge, so the
/// path budget is exactly one period.
fn ff_pipeline(delay_ns: i64) -> (Builder, ClockSet, Spec) {
    let lib = exact_lib(&[delay_ns]);
    let mut b = Builder::new(&lib);
    let input = b.input("in");
    let ck = b.input("ck");
    let q = b.output("q");
    let d = b.net("d");
    b.delay_chain(input, d, &[delay_ns]);
    b.inst("FF", &[("D", d), ("C", ck), ("Q", q)]);
    let mut clocks = ClockSet::new();
    clocks
        .add_clock("ck", Time::from_ns(10), Time::ZERO, Time::from_ns(5))
        .unwrap();
    let spec = Spec::new().clock_port("ck", "ck").input_arrival(
        "in",
        EdgeSpec::new("ck", Transition::Rise),
        Time::ZERO,
    );
    (b, clocks, spec)
}

#[test]
fn ff_pipeline_meets_timing() {
    let (b, clocks, spec) = ff_pipeline(6);
    let lib = exact_lib(&[6]);
    let a = Analyzer::new(&b.design, b.module, &lib, &clocks, spec).unwrap();
    let report = a.analyze();
    assert!(report.ok(), "6 ns through a 10 ns budget: {report}");
    // Slack is exactly 10 − 6 = 4 ns at the capture flop.
    let ff_in = report
        .terminal_slacks()
        .iter()
        .find(|t| t.kind == TerminalKind::SyncInput)
        .expect("one sync input");
    assert_eq!(ff_in.slack, Time::from_ns(4));
    assert!(report.slow_paths().is_empty());
    assert_eq!(report.overall_period(), Time::from_ns(10));
}

#[test]
fn ff_pipeline_violates_and_reports_path() {
    let (mut b, clocks, spec) = ff_pipeline(11);
    let lib = exact_lib(&[11]);
    let a = Analyzer::new(&b.design, b.module, &lib, &clocks, spec).unwrap();
    let report = a.analyze();
    assert!(!report.ok());
    assert_eq!(report.worst_slack(), Time::from_ns(-1), "10 − 11 = −1 ns");
    let path = &report.slow_paths()[0];
    assert_eq!(path.slack, Time::from_ns(-1));
    assert!(path.endpoint.contains("ff"), "endpoint is the capture flop");
    assert!(path.steps.len() >= 2, "origin plus the delay cell");
    assert_eq!(path.steps.first().unwrap().net, "in");
    assert_eq!(path.steps.last().unwrap().net, "d");
    // OCT-style flagging.
    assert!(!report.slow_nets().is_empty());
    report.annotate(&mut b.design);
    let module = b.design.module(b.module);
    let d = module.net_by_name("d").unwrap();
    assert_eq!(module.net(d).attr("hb.slow"), Some("1"));
}

/// Two-phase borrowing: `in --70ns--> LAT(phi2: high 50..90) --25ns--> FF
/// (phi1 rising, captures at 100)`. A trailing-edge latch model fails
/// (90 + 25 > 100); the transparent model borrows through the latch
/// window and passes (needs assertion in [70, 75] ⊂ [50, 90]).
fn borrowing() -> (Builder, ClockSet, Spec) {
    let lib = exact_lib(&[70, 25]);
    let mut b = Builder::new(&lib);
    let input = b.input("in");
    let phi1 = b.input("phi1");
    let phi2 = b.input("phi2");
    let q = b.output("q");
    let mid = b.net("mid");
    let lat_q = b.net("lat_q");
    let ff_d = b.net("ff_d");
    b.delay_chain(input, mid, &[70]);
    b.inst("LAT", &[("D", mid), ("C", phi2), ("Q", lat_q)]);
    b.delay_chain(lat_q, ff_d, &[25]);
    b.inst("FF", &[("D", ff_d), ("C", phi1), ("Q", q)]);
    let mut clocks = ClockSet::new();
    clocks
        .add_clock("phi1", Time::from_ns(100), Time::ZERO, Time::from_ns(40))
        .unwrap();
    clocks
        .add_clock(
            "phi2",
            Time::from_ns(100),
            Time::from_ns(50),
            Time::from_ns(90),
        )
        .unwrap();
    let spec = Spec::new()
        .clock_port("phi1", "phi1")
        .clock_port("phi2", "phi2")
        .input_arrival("in", EdgeSpec::new("phi1", Transition::Rise), Time::ZERO);
    (b, clocks, spec)
}

#[test]
fn transparent_latch_borrows_time() {
    let (b, clocks, spec) = borrowing();
    let lib = exact_lib(&[70, 25]);
    let a = Analyzer::new(&b.design, b.module, &lib, &clocks, spec).unwrap();
    let report = a.analyze();
    assert!(
        report.ok(),
        "the transparent model must borrow through the latch: {report}"
    );
    // Borrowing requires actual slack transfer, not just the initial
    // offsets.
    let stats = report.algorithm1_stats();
    assert!(
        stats.forward_cycles + stats.backward_cycles > 0,
        "expected at least one complete transfer cycle: {stats:?}"
    );
}

#[test]
fn edge_triggered_baseline_is_pessimistic_here() {
    let (b, clocks, spec) = borrowing();
    let lib = exact_lib(&[70, 25]);
    let options = AnalysisOptions {
        latch_model: LatchModel::EdgeTriggered,
        ..AnalysisOptions::default()
    };
    let a = Analyzer::with_options(&b.design, b.module, &lib, &clocks, spec, options).unwrap();
    let report = a.analyze();
    assert!(!report.ok(), "McWilliams-style model cannot borrow");
    // 90 (trailing-edge assertion) + 25 − 100 = 15 ns violation.
    assert_eq!(report.worst_slack(), Time::from_ns(-15));
}

#[test]
fn borrowing_fails_when_total_exceeds_budget() {
    // 80 + 40 = 120 > 100: infeasible for any latch position.
    let lib = exact_lib(&[80, 40]);
    let mut b = Builder::new(&lib);
    let input = b.input("in");
    let phi1 = b.input("phi1");
    let phi2 = b.input("phi2");
    let q = b.output("q");
    let mid = b.net("mid");
    let lat_q = b.net("lat_q");
    let ff_d = b.net("ff_d");
    b.delay_chain(input, mid, &[80]);
    b.inst("LAT", &[("D", mid), ("C", phi2), ("Q", lat_q)]);
    b.delay_chain(lat_q, ff_d, &[40]);
    b.inst("FF", &[("D", ff_d), ("C", phi1), ("Q", q)]);
    let mut clocks = ClockSet::new();
    clocks
        .add_clock("phi1", Time::from_ns(100), Time::ZERO, Time::from_ns(40))
        .unwrap();
    clocks
        .add_clock(
            "phi2",
            Time::from_ns(100),
            Time::from_ns(50),
            Time::from_ns(90),
        )
        .unwrap();
    let spec = Spec::new()
        .clock_port("phi1", "phi1")
        .clock_port("phi2", "phi2")
        .input_arrival("in", EdgeSpec::new("phi1", Transition::Rise), Time::ZERO);
    let a = Analyzer::new(&b.design, b.module, &lib, &clocks, spec).unwrap();
    let report = a.analyze();
    assert!(!report.ok());
    // Both the latch and the flop paths are implicated (proposition in
    // Section 4: both paths are too slow).
    let slow_inputs: Vec<&str> = report
        .terminal_slacks()
        .iter()
        .filter(|t| t.kind == TerminalKind::SyncInput && t.slack <= Time::ZERO)
        .map(|t| t.name.as_str())
        .collect();
    assert_eq!(
        slow_inputs.len(),
        2,
        "latch and flop inputs: {slow_inputs:?}"
    );
}

/// The Figure 1 configuration: a gate fed by latches on phases 1 and 3,
/// feeding latches on phases 2 and 4 — time-multiplexed within the
/// period, so its cluster needs two analysis passes.
#[test]
fn figure1_needs_two_passes() {
    let lib = exact_lib(&[2]);
    let mut b = Builder::new(&lib);
    let mut clocks = ClockSet::new();
    let mut clk_nets = Vec::new();
    for i in 0..4 {
        let name = format!("p{}", i + 1);
        let start = Time::from_ns(25 * i);
        clocks
            .add_clock(&name, Time::from_ns(100), start, start + Time::from_ns(10))
            .unwrap();
        clk_nets.push(b.input(&name));
    }
    let a_in = b.input("a");
    let c_in = b.input("c");
    let l1q = b.net("l1q");
    let l3q = b.net("l3q");
    let gate_out = b.net("gate_out");
    let joined = b.net("joined");
    b.inst("LAT", &[("D", a_in), ("C", clk_nets[0]), ("Q", l1q)]);
    b.inst("LAT", &[("D", c_in), ("C", clk_nets[2]), ("Q", l3q)]);
    b.inst("JOIN2", &[("A", l1q), ("B", l3q), ("Y", joined)]);
    b.delay_chain(joined, gate_out, &[2]);
    let q2 = b.output("q2");
    let q4 = b.output("q4");
    b.inst("LAT", &[("D", gate_out), ("C", clk_nets[1]), ("Q", q2)]);
    b.inst("LAT", &[("D", gate_out), ("C", clk_nets[3]), ("Q", q4)]);

    let mut spec = Spec::new();
    for i in 0..4 {
        let name = format!("p{}", i + 1);
        spec = spec.clock_port(&name, &name);
    }
    spec = spec
        .input_arrival("a", EdgeSpec::new("p1", Transition::Rise), Time::ZERO)
        .input_arrival("c", EdgeSpec::new("p3", Transition::Rise), Time::ZERO);

    let a = Analyzer::new(&b.design, b.module, &lib, &clocks, spec).unwrap();
    let stats = a.prep_stats();
    assert_eq!(
        stats.max_cluster_passes, 2,
        "the time-multiplexed cluster needs exactly two settling times: {stats:?}"
    );
    let report = a.analyze();
    assert!(report.ok(), "3 ns of logic fits either phase gap: {report}");
}

/// An element clocked at 4× the overall rate is replicated once per
/// pulse, and the binding constraint is the *next* closure.
#[test]
fn multirate_capture_uses_next_pulse() {
    for (delay, expect_ok) in [(3i64, true), (7, false)] {
        let lib = exact_lib(&[delay]);
        let mut b = Builder::new(&lib);
        let input = b.input("in");
        let slow_ck = b.input("slow");
        let fast_ck = b.input("fast");
        let q = b.output("q");
        let launch_q = b.net("launch_q");
        let ff_d = b.net("ff_d");
        b.inst("FF", &[("D", input), ("C", slow_ck), ("Q", launch_q)]);
        b.delay_chain(launch_q, ff_d, &[delay]);
        b.inst("FF", &[("D", ff_d), ("C", fast_ck), ("Q", q)]);
        let mut clocks = ClockSet::new();
        clocks
            .add_clock("slow", Time::from_ns(100), Time::ZERO, Time::from_ns(50))
            .unwrap();
        // Fast rises at 5, 30, 55, 80.
        clocks
            .add_clock(
                "fast",
                Time::from_ns(25),
                Time::from_ns(5),
                Time::from_ns(15),
            )
            .unwrap();
        let spec = Spec::new()
            .clock_port("slow", "slow")
            .clock_port("fast", "fast")
            .input_arrival("in", EdgeSpec::new("slow", Transition::Rise), Time::ZERO);
        let a = Analyzer::new(&b.design, b.module, &lib, &clocks, spec).unwrap();
        // 1 slow replica + 4 fast replicas.
        assert_eq!(a.replica_count(), 5);
        let report = a.analyze();
        assert_eq!(
            report.ok(),
            expect_ok,
            "launch at 0, next fast capture at 5, delay {delay}: {report}"
        );
        if !expect_ok {
            assert_eq!(report.worst_slack(), Time::from_ns(-2), "5 − 7 = −2");
        }
    }
}

/// A directed cycle through two transparent latches (the paper notes
/// "too slow" can apply to such cycles).
fn latch_loop(d_ab: i64, d_ba: i64) -> (Builder, ClockSet, Spec) {
    let lib = exact_lib(&[d_ab, d_ba]);
    let mut b = Builder::new(&lib);
    let phi_a = b.input("phiA");
    let phi_b = b.input("phiB");
    let aq = b.net("aq");
    let bd = b.net("bd");
    let bq = b.net("bq");
    let ad = b.net("ad");
    b.inst("LAT", &[("D", ad), ("C", phi_a), ("Q", aq)]);
    b.delay_chain(aq, bd, &[d_ab]);
    b.inst("LAT", &[("D", bd), ("C", phi_b), ("Q", bq)]);
    b.delay_chain(bq, ad, &[d_ba]);
    let mut clocks = ClockSet::new();
    clocks
        .add_clock("phiA", Time::from_ns(100), Time::ZERO, Time::from_ns(40))
        .unwrap();
    clocks
        .add_clock(
            "phiB",
            Time::from_ns(100),
            Time::from_ns(50),
            Time::from_ns(90),
        )
        .unwrap();
    let spec = Spec::new()
        .clock_port("phiA", "phiA")
        .clock_port("phiB", "phiB");
    (b, clocks, spec)
}

#[test]
fn latch_loop_feasible() {
    let (b, clocks, spec) = latch_loop(60, 30);
    let lib = exact_lib(&[60, 30]);
    let a = Analyzer::new(&b.design, b.module, &lib, &clocks, spec).unwrap();
    let report = a.analyze();
    assert!(report.ok(), "60 + 30 < 100 with feasible windows: {report}");
}

#[test]
fn latch_loop_too_slow_implicates_both() {
    let (b, clocks, spec) = latch_loop(80, 40);
    let lib = exact_lib(&[80, 40]);
    let a = Analyzer::new(&b.design, b.module, &lib, &clocks, spec).unwrap();
    let report = a.analyze();
    assert!(!report.ok(), "80 + 40 > 100: the loop cannot settle");
    let slow: Vec<&str> = report
        .terminal_slacks()
        .iter()
        .filter(|t| t.slack <= Time::ZERO)
        .map(|t| t.name.as_str())
        .collect();
    assert!(slow.len() >= 2, "both latches implicated: {slow:?}");
}

#[test]
fn constraints_bound_ready_before_required() {
    let (b, clocks, spec) = borrowing();
    let lib = exact_lib(&[70, 25]);
    let a = Analyzer::new(&b.design, b.module, &lib, &clocks, spec).unwrap();
    let report = a.generate_constraints();
    assert!(report.ok());
    assert!(report.algorithm2_stats().is_some());
    let constraints = report.constraints().expect("generated");
    let module = b.design.module(b.module);
    for name in ["mid", "ff_d", "in", "lat_q"] {
        let net = module.net_by_name(name).unwrap();
        let ready = constraints.ready_at(net);
        let required = constraints.required_at(net);
        let slack = constraints.net_slack(net);
        assert!(ready.is_some(), "net {name} must have a ready time");
        assert!(required.is_some(), "net {name} must have a required time");
        assert!(
            slack.unwrap() >= Time::ZERO,
            "fast-enough design: ready precedes required at {name} ({:?} vs {:?})",
            ready,
            required
        );
    }
}

#[test]
fn constraints_settle_actual_times_on_slow_paths() {
    let (b, clocks, spec) = latch_loop(80, 40);
    let lib = exact_lib(&[80, 40]);
    let a = Analyzer::new(&b.design, b.module, &lib, &clocks, spec).unwrap();
    let report = a.generate_constraints();
    assert!(!report.ok());
    let constraints = report.constraints().expect("generated");
    let module = b.design.module(b.module);
    let bd = module.net_by_name("bd").unwrap();
    let slack = constraints.net_slack(bd).expect("constrained net");
    assert!(
        slack < Time::ZERO,
        "slow net keeps a negative budget: {slack}"
    );
}

#[test]
fn min_delay_skew_race_detected() {
    // FF1 and FF2 on the same clock; FF2's clock arrives 5 ns late
    // (through DEL5), the data path is a fast DEL3 (min delay 1.5 ns):
    // a classic skew race.
    for (skew_ns, expect_violation) in [(5i64, true), (0, false)] {
        let lib = exact_lib(&[3, 5]);
        let mut b = Builder::new(&lib);
        let input = b.input("in");
        let ck = b.input("ck");
        let q = b.output("q");
        let q1 = b.net("q1");
        let d2 = b.net("d2");
        b.inst("FF", &[("D", input), ("C", ck), ("Q", q1)]);
        b.delay_chain(q1, d2, &[3]);
        let ck2 = if skew_ns > 0 {
            let ck2 = b.net("ck2");
            b.delay_chain(ck, ck2, &[skew_ns]);
            ck2
        } else {
            ck
        };
        b.inst("FF", &[("D", d2), ("C", ck2), ("Q", q)]);
        let mut clocks = ClockSet::new();
        clocks
            .add_clock("ck", Time::from_ns(50), Time::ZERO, Time::from_ns(25))
            .unwrap();
        let spec = Spec::new().clock_port("ck", "ck").input_arrival(
            "in",
            EdgeSpec::new("ck", Transition::Rise),
            Time::from_ns(1),
        );
        let options = AnalysisOptions {
            check_min_delays: true,
            ..AnalysisOptions::default()
        };
        let a = Analyzer::with_options(&b.design, b.module, &lib, &clocks, spec, options).unwrap();
        let report = a.analyze();
        assert!(report.ok(), "max-delay constraints are easy here");
        assert_eq!(
            !report.min_delay_violations().is_empty(),
            expect_violation,
            "skew {skew_ns}: {:?}",
            report.min_delay_violations()
        );
    }
}

#[test]
fn widening_the_clock_fixes_violations_monotonically() {
    let mut was_ok = false;
    for period_ns in [8i64, 10, 12, 16] {
        let lib = exact_lib(&[9]);
        let mut b = Builder::new(&lib);
        let input = b.input("in");
        let ck = b.input("ck");
        let q = b.output("q");
        let d = b.net("d");
        b.delay_chain(input, d, &[9]);
        b.inst("FF", &[("D", d), ("C", ck), ("Q", q)]);
        let mut clocks = ClockSet::new();
        clocks
            .add_clock(
                "ck",
                Time::from_ns(period_ns),
                Time::ZERO,
                Time::from_ns(period_ns / 2),
            )
            .unwrap();
        let spec = Spec::new().clock_port("ck", "ck").input_arrival(
            "in",
            EdgeSpec::new("ck", Transition::Rise),
            Time::ZERO,
        );
        let a = Analyzer::new(&b.design, b.module, &lib, &clocks, spec).unwrap();
        let ok = a.analyze().ok();
        assert!(
            !was_ok || ok,
            "once fast enough, a slower clock stays fast (period {period_ns})"
        );
        was_ok |= ok;
    }
    assert!(was_ok, "16 ns must be enough for 9 ns of logic");
}

#[test]
fn structural_assumption_errors() {
    use hummingbird::AnalyzeError;
    // Unclocked control: latch control tied to a data input.
    let lib = exact_lib(&[1]);
    let mut b = Builder::new(&lib);
    let input = b.input("in");
    let fake_ck = b.input("fake");
    let q = b.output("q");
    b.inst("FF", &[("D", input), ("C", fake_ck), ("Q", q)]);
    let mut clocks = ClockSet::new();
    clocks
        .add_clock("ck", Time::from_ns(10), Time::ZERO, Time::from_ns(5))
        .unwrap();
    // "fake" is not declared as a clock port.
    let spec = Spec::new();
    let err = Analyzer::new(&b.design, b.module, &lib, &clocks, spec).unwrap_err();
    assert!(
        matches!(err, AnalyzeError::UnclockedControl { .. }),
        "{err}"
    );

    // Unknown clock port in the spec.
    let spec = Spec::new().clock_port("nonexistent", "ck");
    let err = Analyzer::new(&b.design, b.module, &lib, &clocks, spec).unwrap_err();
    assert!(matches!(err, AnalyzeError::UnknownPort { .. }), "{err}");

    // Empty clock set.
    let spec = Spec::new().clock_port("fake", "ck");
    let err = Analyzer::new(&b.design, b.module, &lib, &ClockSet::new(), spec).unwrap_err();
    assert!(matches!(err, AnalyzeError::NoClocks), "{err}");
}

#[test]
fn enable_path_rejected() {
    use hummingbird::AnalyzeError;
    let lib = exact_lib(&[1]);
    let mut b = Builder::new(&lib);
    let input = b.input("in");
    let ck = b.input("ck");
    let q1 = b.net("q1");
    let gated = b.net("gated");
    let q = b.output("q");
    b.inst("FF", &[("D", input), ("C", ck), ("Q", q1)]);
    // q1 gates the clock of the second flop: an enable path.
    b.inst("JOIN2", &[("A", ck), ("B", q1), ("Y", gated)]);
    b.inst("FF", &[("D", input), ("C", gated), ("Q", q)]);
    let mut clocks = ClockSet::new();
    clocks
        .add_clock("ck", Time::from_ns(10), Time::ZERO, Time::from_ns(5))
        .unwrap();
    let spec = Spec::new().clock_port("ck", "ck").input_arrival(
        "in",
        EdgeSpec::new("ck", Transition::Rise),
        Time::ZERO,
    );
    let err = Analyzer::new(&b.design, b.module, &lib, &clocks, spec).unwrap_err();
    assert!(matches!(err, AnalyzeError::EnablePath { .. }), "{err}");
}

#[test]
fn clock_skew_tightens_paths() {
    // The capture flop's control path delay floors its output assertion
    // but does not relax its closure (the simplified model keeps the
    // closure lower bound): a launch-side skew eats into the next
    // stage's budget.
    let lib = exact_lib(&[4, 8]);
    let mut b = Builder::new(&lib);
    let input = b.input("in");
    let ck = b.input("ck");
    let ck_late = b.net("ck_late");
    let q1 = b.net("q1");
    let d2 = b.net("d2");
    let q = b.output("q");
    b.delay_chain(ck, ck_late, &[4]);
    b.inst("FF", &[("D", input), ("C", ck_late), ("Q", q1)]);
    b.delay_chain(q1, d2, &[8]);
    b.inst("FF", &[("D", d2), ("C", ck), ("Q", q)]);
    let mut clocks = ClockSet::new();
    clocks
        .add_clock("ck", Time::from_ns(10), Time::ZERO, Time::from_ns(5))
        .unwrap();
    let spec = Spec::new().clock_port("ck", "ck").input_arrival(
        "in",
        EdgeSpec::new("ck", Transition::Rise),
        Time::ZERO,
    );
    let a = Analyzer::new(&b.design, b.module, &lib, &clocks, spec).unwrap();
    let report = a.analyze();
    // Launch asserts at 4 (skew) and the capture closes at 10:
    // 4 + 8 = 12 > 10 → −2 ns.
    assert!(!report.ok());
    assert_eq!(report.worst_slack(), Time::from_ns(-2));
}
