//! Path extraction and the path-enumeration baseline.
//!
//! The block method reports node slacks without materializing paths; for
//! re-synthesis guidance and for reporting, the analyzer still needs the
//! actual worst path through a violating endpoint
//! ([`critical_path`]). For the ablation study, [`enumerate_max_arrival`]
//! reproduces the naive path-enumeration procedure that the paper calls
//! "computationally expensive" and rejects in favour of the block
//! method.

use hb_netlist::{InstId, NetId};
use hb_units::{RiseFall, Sense, Time, Transition};

use crate::analysis::TimeTable;
use crate::graph::TimingGraph;

/// One step of an extracted path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PathStep {
    /// The net reached.
    pub net: NetId,
    /// The instance whose arc produced this step (`None` at the path
    /// origin).
    pub inst: Option<InstId>,
    /// The transition direction at the net.
    pub transition: Transition,
    /// The arrival time at the net.
    pub time: Time,
}

/// A source-to-sink combinational path.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Path {
    /// The steps from source to sink, inclusive.
    pub steps: Vec<PathStep>,
}

impl Path {
    /// The total path delay (sink arrival minus source arrival).
    ///
    /// # Panics
    ///
    /// Panics on an empty path.
    pub fn delay(&self) -> Time {
        let first = self.steps.first().expect("non-empty path");
        let last = self.steps.last().expect("non-empty path");
        last.time - first.time
    }

    /// The source net.
    ///
    /// # Panics
    ///
    /// Panics on an empty path.
    pub fn source(&self) -> NetId {
        self.steps.first().expect("non-empty path").net
    }

    /// The sink net.
    ///
    /// # Panics
    ///
    /// Panics on an empty path.
    pub fn sink(&self) -> NetId {
        self.steps.last().expect("non-empty path").net
    }
}

/// Traces the worst path that establishes `ready[sink][transition]`,
/// walking backwards over arcs whose delays exactly explain the arrival
/// times (the standard block-method path recovery).
///
/// Returns `None` if the sink was never reached (sentinel arrival).
pub fn critical_path(
    graph: &TimingGraph,
    ready: &TimeTable,
    sink: NetId,
    transition: Transition,
) -> Option<Path> {
    let mut time = ready[sink.as_raw() as usize][transition];
    if !time.is_finite() {
        return None;
    }
    let mut steps = vec![PathStep {
        net: sink,
        inst: None,
        transition,
        time,
    }];
    let mut net = sink;
    let mut tr = transition;
    loop {
        let mut found = None;
        for &ai in graph.fanin_arcs(net) {
            let arc = graph.arc(ai);
            let candidates: &[Transition] = match arc.sense {
                Sense::Positive => &[tr][..],
                Sense::Negative => match tr {
                    Transition::Rise => &[Transition::Fall],
                    Transition::Fall => &[Transition::Rise],
                },
                Sense::NonUnate => &Transition::BOTH,
            };
            for &tr_in in candidates {
                let at_in = ready[arc.from.as_raw() as usize][tr_in];
                if at_in.is_finite() && at_in.saturating_add(arc.delay.max[tr]) == time {
                    found = Some((arc.from, tr_in, at_in, arc.inst));
                    break;
                }
            }
            if found.is_some() {
                break;
            }
        }
        match found {
            Some((from, tr_in, at_in, inst)) => {
                // Attribute the traversed instance to the step we already
                // recorded at `net`.
                let last = steps.last_mut().expect("at least the sink");
                last.inst = Some(inst);
                steps.push(PathStep {
                    net: from,
                    inst: None,
                    transition: tr_in,
                    time: at_in,
                });
                net = from;
                tr = tr_in;
                time = at_in;
            }
            None => break,
        }
    }
    steps.reverse();
    Some(Path { steps })
}

/// Enumerates the `k` worst (latest-arriving) source-to-`sink` paths
/// for the given transition, exactly, using the block-method arrival
/// table as an admissible bound: a partial (suffix) path from some net
/// can complete to at best `ready[net] + suffix_delay`, so branches
/// that cannot beat the current k-th best are pruned.
///
/// Paths are returned worst first. `ready` must be a completed
/// [`crate::analysis::propagate_ready_max`] table; the paths end at
/// `sink` and begin at seeded nets (those whose arrival no arc
/// explains).
pub fn k_worst_paths(
    graph: &TimingGraph,
    ready: &TimeTable,
    sink: NetId,
    transition: Transition,
    k: usize,
) -> Vec<Path> {
    if k == 0 || !ready[sink.as_raw() as usize][transition].is_finite() {
        return Vec::new();
    }
    let mut found: Vec<Path> = Vec::new();
    // A suffix under construction, sink-first. Each element is
    // (net, transition-at-net, arc-index-into-net) — the arc is the one
    // the suffix descended through, `None` only on the current frontier.
    let mut suffix: Vec<(NetId, Transition, Option<u32>)> = vec![(sink, transition, None)];

    fn materialize(
        graph: &TimingGraph,
        ready: &TimeTable,
        suffix: &[(NetId, Transition, Option<u32>)],
    ) -> Path {
        // Source-first order.
        let nodes: Vec<_> = suffix.iter().rev().copied().collect();
        let (src, src_tr, _) = nodes[0];
        let mut time = ready[src.as_raw() as usize][src_tr];
        let mut steps = vec![PathStep {
            net: src,
            inst: None,
            transition: src_tr,
            time,
        }];
        // nodes[i].2 is the arc into nodes[i-1]... careful: arcs were
        // recorded on the *consumer* entry; entry i carries the arc that
        // produces entry i's predecessor in suffix order, i.e. node
        // i+1 in source-first order carries None, while node i's arc is
        // stored on the consumer. Walk pairs and read the consumer arc.
        for pair in nodes.windows(2) {
            let (_, _, _) = pair[0];
            let (net, tr, arc_idx) = pair[1];
            let ai = arc_idx.expect("every non-frontier consumer recorded its arc");
            let arc = graph.arc(ai);
            time = time.saturating_add(arc.delay.max[tr]);
            steps.push(PathStep {
                net,
                inst: Some(arc.inst),
                transition: tr,
                time,
            });
        }
        Path { steps }
    }

    fn descend(
        graph: &TimingGraph,
        ready: &TimeTable,
        suffix: &mut Vec<(NetId, Transition, Option<u32>)>,
        suffix_delay: Time,
        found: &mut Vec<Path>,
        k: usize,
    ) {
        let &(net, tr, _) = suffix.last().expect("non-empty suffix");
        let bound = ready[net.as_raw() as usize][tr].saturating_add(suffix_delay);
        if found.len() == k
            && bound
                <= found
                    .last()
                    .expect("k > 0")
                    .steps
                    .last()
                    .expect("steps")
                    .time
        {
            return;
        }
        let mut extended = false;
        for &ai in graph.fanin_arcs(net) {
            let arc = graph.arc(ai);
            let candidates: &[Transition] = match arc.sense {
                Sense::Positive => &[tr][..],
                Sense::Negative => match tr {
                    Transition::Rise => &[Transition::Fall],
                    Transition::Fall => &[Transition::Rise],
                },
                Sense::NonUnate => &Transition::BOTH,
            };
            for &tr_in in candidates {
                if !ready[arc.from.as_raw() as usize][tr_in].is_finite() {
                    continue;
                }
                extended = true;
                // Record which arc produced this node, then descend.
                suffix.last_mut().expect("non-empty").2 = Some(ai);
                suffix.push((arc.from, tr_in, None));
                descend(
                    graph,
                    ready,
                    suffix,
                    suffix_delay.saturating_add(arc.delay.max[tr]),
                    found,
                    k,
                );
                suffix.pop();
            }
        }
        if !extended {
            let path = materialize(graph, ready, suffix);
            let arrival = path.steps.last().expect("steps").time;
            let pos = found
                .binary_search_by(|p| arrival.cmp(&p.steps.last().expect("steps").time))
                .unwrap_or_else(|e| e);
            found.insert(pos, path);
            found.truncate(k);
        }
    }
    descend(graph, ready, &mut suffix, Time::ZERO, &mut found, k);
    found
}

/// Statistics from a path enumeration run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EnumerationStats {
    /// Source-to-endpoint paths visited (per transition direction).
    pub paths: u64,
    /// Whether the run stopped at the path limit.
    pub truncated: bool,
}

/// Computes maximum arrival times by *enumerating every path* from the
/// seeded nets — the expensive baseline the paper's block method
/// replaces. Arrivals match [`crate::analysis::propagate_ready_max`]
/// exactly (when not truncated); only the cost differs.
///
/// Stops after visiting `limit` paths and sets
/// [`EnumerationStats::truncated`].
pub fn enumerate_max_arrival(
    graph: &TimingGraph,
    seeds: &[(NetId, RiseFall<Time>)],
    limit: u64,
) -> (TimeTable, EnumerationStats) {
    let mut ready = vec![RiseFall::splat(Time::NEG_INF); graph.node_count()];
    let mut stats = EnumerationStats::default();
    for &(net, at) in seeds {
        let slot = &mut ready[net.as_raw() as usize];
        *slot = (*slot).max(at);
    }
    for &(net, at) in seeds {
        for tr in Transition::BOTH {
            if at[tr].is_finite() {
                dfs(graph, net, tr, at[tr], &mut ready, &mut stats, limit);
            }
        }
    }
    (ready, stats)
}

fn dfs(
    graph: &TimingGraph,
    net: NetId,
    tr: Transition,
    time: Time,
    ready: &mut TimeTable,
    stats: &mut EnumerationStats,
    limit: u64,
) {
    if stats.paths >= limit {
        stats.truncated = true;
        return;
    }
    let slot = &mut ready[net.as_raw() as usize][tr];
    if time > *slot {
        *slot = time;
    }
    let mut extended = false;
    for &ai in graph.fanout_arcs(net) {
        let arc = graph.arc(ai);
        let outs: &[Transition] = match arc.sense {
            Sense::Positive => &[tr][..],
            Sense::Negative => match tr {
                Transition::Rise => &[Transition::Fall],
                Transition::Fall => &[Transition::Rise],
            },
            Sense::NonUnate => &Transition::BOTH,
        };
        for &tr_out in outs {
            extended = true;
            dfs(
                graph,
                arc.to,
                tr_out,
                time.saturating_add(arc.delay.max[tr_out]),
                ready,
                stats,
                limit,
            );
        }
    }
    if !extended {
        stats.paths += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{propagate_ready_max, table};
    use hb_cells::{sc89, Binding, Library};
    use hb_netlist::{Design, ModuleId, PinDir};

    /// A 3-deep reconvergent ladder with mixed senses.
    fn ladder() -> (Design, ModuleId, Library) {
        let lib = sc89();
        let mut d = Design::new("ladder");
        lib.declare_into(&mut d).unwrap();
        let m = d.add_module("top").unwrap();
        let a = d.add_net(m, "a").unwrap();
        d.add_port(m, "a", PinDir::Input, a).unwrap();
        let inv = d.leaf_by_name("INV_X1").unwrap();
        let nand = d.leaf_by_name("NAND2_X1").unwrap();
        let xor = d.leaf_by_name("XOR2_X1").unwrap();
        // Give the first stage two distinct inputs so no gate ever sees
        // the same net on both pins (parallel same-pin-pair arcs would
        // make legitimately duplicate-looking paths).
        let a2 = d.add_net(m, "a2").unwrap();
        let pre = d.add_leaf_instance(m, "pre", inv).unwrap();
        d.connect(m, pre, "A", a).unwrap();
        d.connect(m, pre, "Y", a2).unwrap();
        let mut prev = (a, a2);
        for i in 0..3 {
            let n1 = d.add_net(m, format!("l{i}a")).unwrap();
            let n2 = d.add_net(m, format!("l{i}b")).unwrap();
            let u1 = d.add_leaf_instance(m, format!("inv{i}"), inv).unwrap();
            d.connect(m, u1, "A", prev.0).unwrap();
            d.connect(m, u1, "Y", n1).unwrap();
            let u2 = d
                .add_leaf_instance(m, format!("mix{i}"), if i == 1 { xor } else { nand })
                .unwrap();
            d.connect(m, u2, "A", prev.0).unwrap();
            d.connect(m, u2, "B", prev.1).unwrap();
            d.connect(m, u2, "Y", n2).unwrap();
            prev = (n1, n2);
        }
        d.set_top(m).unwrap();
        (d, m, lib)
    }

    #[test]
    fn enumeration_matches_block_method() {
        let (d, m, lib) = ladder();
        let binding = Binding::new(&d, &lib);
        let g = crate::TimingGraph::build(&d, m, &binding, &lib).unwrap();
        let a = d.module(m).net_by_name("a").unwrap();

        let mut block = table(&g, Time::NEG_INF);
        block[a.as_raw() as usize] = RiseFall::ZERO;
        propagate_ready_max(&g, &mut block);

        let (enumerated, stats) = enumerate_max_arrival(&g, &[(a, RiseFall::ZERO)], u64::MAX);
        assert!(!stats.truncated);
        assert!(stats.paths > 1);
        assert_eq!(enumerated, block, "both methods agree on arrivals");
    }

    #[test]
    fn enumeration_truncates_at_limit() {
        let (d, m, lib) = ladder();
        let binding = Binding::new(&d, &lib);
        let g = crate::TimingGraph::build(&d, m, &binding, &lib).unwrap();
        let a = d.module(m).net_by_name("a").unwrap();
        let (_, stats) = enumerate_max_arrival(&g, &[(a, RiseFall::ZERO)], 1);
        assert!(stats.truncated);
    }

    #[test]
    fn critical_path_walks_to_a_seed() {
        let (d, m, lib) = ladder();
        let binding = Binding::new(&d, &lib);
        let g = crate::TimingGraph::build(&d, m, &binding, &lib).unwrap();
        let module = d.module(m);
        let a = module.net_by_name("a").unwrap();
        let sink = module.net_by_name("l2b").unwrap();

        let mut ready = table(&g, Time::NEG_INF);
        ready[a.as_raw() as usize] = RiseFall::ZERO;
        propagate_ready_max(&g, &mut ready);

        let path = critical_path(&g, &ready, sink, Transition::Rise).expect("reached");
        assert_eq!(path.source(), a);
        assert_eq!(path.sink(), sink);
        assert_eq!(path.delay(), ready[sink.as_raw() as usize].rise);
        // Arrival times increase monotonically along the path, and every
        // step after the origin names the instance that produced it.
        for pair in path.steps.windows(2) {
            assert!(pair[0].time <= pair[1].time);
            assert!(
                pair[1].inst.is_some(),
                "non-origin steps name their instance"
            );
        }
        assert!(path.steps.first().unwrap().inst.is_none());
    }

    #[test]
    fn k_worst_paths_orders_and_bounds() {
        let (d, m, lib) = ladder();
        let binding = Binding::new(&d, &lib);
        let g = crate::TimingGraph::build(&d, m, &binding, &lib).unwrap();
        let module = d.module(m);
        let a = module.net_by_name("a").unwrap();
        let sink = module.net_by_name("l2b").unwrap();

        let mut ready = table(&g, Time::NEG_INF);
        ready[a.as_raw() as usize] = RiseFall::ZERO;
        propagate_ready_max(&g, &mut ready);

        let paths = k_worst_paths(&g, &ready, sink, Transition::Rise, 5);
        assert!(!paths.is_empty());
        // Worst first, matching the block arrival exactly.
        assert_eq!(
            paths[0].steps.last().unwrap().time,
            ready[sink.as_raw() as usize].rise
        );
        for pair in paths.windows(2) {
            assert!(
                pair[0].steps.last().unwrap().time >= pair[1].steps.last().unwrap().time,
                "worst first"
            );
        }
        // Each path is internally consistent.
        for p in &paths {
            assert_eq!(p.source(), a);
            assert_eq!(p.sink(), sink);
            for pair in p.steps.windows(2) {
                assert!(pair[0].time <= pair[1].time);
                assert!(pair[1].inst.is_some());
            }
            assert!(p.steps.first().unwrap().inst.is_none());
        }
        // The top path agrees with critical_path.
        let cp = critical_path(&g, &ready, sink, Transition::Rise).unwrap();
        assert_eq!(
            paths[0].steps.last().unwrap().time,
            cp.steps.last().unwrap().time
        );
        // Requesting more paths than exist returns them all, distinct.
        let all = k_worst_paths(&g, &ready, sink, Transition::Rise, 10_000);
        let mut keys: Vec<Vec<(u32, Transition)>> = all
            .iter()
            .map(|p| {
                p.steps
                    .iter()
                    .map(|s| (s.net.as_raw(), s.transition))
                    .collect()
            })
            .collect();
        let n = keys.len();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), n, "no duplicate paths");
        // k=0 and unreached sinks are empty.
        assert!(k_worst_paths(&g, &ready, sink, Transition::Rise, 0).is_empty());
        let cold = table(&g, Time::NEG_INF);
        assert!(k_worst_paths(&g, &cold, sink, Transition::Rise, 3).is_empty());
    }

    #[test]
    fn k_worst_paths_matches_full_enumeration_count() {
        let (d, m, lib) = ladder();
        let binding = Binding::new(&d, &lib);
        let g = crate::TimingGraph::build(&d, m, &binding, &lib).unwrap();
        let module = d.module(m);
        let a = module.net_by_name("a").unwrap();
        let sink = module.net_by_name("l2a").unwrap();
        let mut ready = table(&g, Time::NEG_INF);
        ready[a.as_raw() as usize] = RiseFall::ZERO;
        propagate_ready_max(&g, &mut ready);
        // The k=2 prefix of the exhaustive list equals the k=2 call.
        let all = k_worst_paths(&g, &ready, sink, Transition::Fall, 10_000);
        let two = k_worst_paths(&g, &ready, sink, Transition::Fall, 2);
        assert_eq!(&all[..2.min(all.len())], &two[..]);
    }

    #[test]
    fn critical_path_none_for_unreached() {
        let (d, m, lib) = ladder();
        let binding = Binding::new(&d, &lib);
        let g = crate::TimingGraph::build(&d, m, &binding, &lib).unwrap();
        let sink = d.module(m).net_by_name("l2b").unwrap();
        let ready = table(&g, Time::NEG_INF);
        assert_eq!(critical_path(&g, &ready, sink, Transition::Rise), None);
    }
}
