//! The TCP transport end to end: concurrent clients over loopback,
//! shared-session semantics, structured errors for hostile frames,
//! and a clean shutdown that drains in-flight connections.

use std::io::Write;
use std::net::TcpStream;
use std::thread;

use hb_cells::sc89;
use hb_io::{Frame, FrameReader};
use hb_server::{Client, Server, ServerOptions};
use hb_workloads::fsm12;

fn start_server() -> (
    std::net::SocketAddr,
    thread::JoinHandle<std::io::Result<()>>,
) {
    let server = Server::bind("127.0.0.1:0", sc89(), ServerOptions::default()).unwrap();
    let addr = server.local_addr().unwrap();
    let handle = thread::spawn(move || server.run());
    (addr, handle)
}

fn workload_text() -> String {
    let lib = sc89();
    let w = fsm12(&lib, true);
    hb_io::write_hum_with_timing(
        &w.design,
        &w.clocks,
        &hb_server::directives_from_spec(&w.spec),
    )
}

#[test]
fn loopback_load_analyze_eco_query_shutdown() {
    let (addr, server) = start_server();
    let mut client = Client::connect(addr).unwrap();

    let reply = client.request(&Frame::new("hello")).unwrap();
    assert_eq!(reply.get("server"), Some("hummingbird"));

    let reply = client
        .request(&Frame::new("load").with_payload(workload_text()))
        .unwrap();
    assert_eq!(reply.verb, "ok", "{:?}", reply.payload);

    let reply = client.request(&Frame::new("analyze")).unwrap();
    assert_eq!(reply.verb, "ok");
    let worst_before = reply.get("worst").unwrap().to_owned();

    // A second client sees the same resident session.
    let mut other = Client::connect(addr).unwrap();
    let reply = other.request(&Frame::new("stats")).unwrap();
    assert_eq!(reply.get("loads"), Some("1"));
    let reply = other
        .request(&Frame::new("worst-paths").arg("k", 3))
        .unwrap();
    assert_eq!(reply.verb, "ok");

    // ECO through one client; the other observes the new generation.
    let reply = client
        .request(
            &Frame::new("eco")
                .arg("op", "scale-net")
                .arg("net", "st0")
                .arg("percent", 150),
        )
        .unwrap();
    if reply.verb == "ok" {
        assert!(reply.get("items_reused").is_some());
    } else {
        // Net name is generator-dependent; unknown-node is the only
        // acceptable failure and must not kill the connection.
        assert_eq!(reply.get("code"), Some("eco"));
    }
    let reply = client.request(&Frame::new("analyze")).unwrap();
    assert_eq!(reply.verb, "ok");
    let _ = worst_before;

    // Malformed frame: structured error, connection survives.
    let reply = client.request(&Frame::new("slack")).unwrap();
    assert_eq!(reply.verb, "error");
    assert_eq!(reply.get("code"), Some("usage"));
    let reply = client.request(&Frame::new("stats")).unwrap();
    assert_eq!(reply.verb, "ok");

    let reply = client.request(&Frame::new("shutdown")).unwrap();
    assert_eq!(reply.verb, "ok");
    server.join().unwrap().unwrap();
}

#[test]
fn hostile_bytes_get_structured_errors() {
    let (addr, server) = start_server();

    // Raw socket speaking garbage: malformed header → error frame,
    // connection stays up for a well-formed follow-up.
    let mut raw = TcpStream::connect(addr).unwrap();
    raw.write_all(b"slack node\n").unwrap();
    let mut replies = FrameReader::new(std::io::BufReader::new(raw.try_clone().unwrap()));
    let reply = replies.read_frame().unwrap().unwrap();
    assert_eq!(reply.verb, "error");
    assert_eq!(reply.get("code"), Some("proto"));
    raw.write_all(b"hello\n").unwrap();
    let reply = replies.read_frame().unwrap().unwrap();
    assert_eq!(reply.verb, "ok");

    // An oversized payload declaration closes the connection after the
    // error reply (stream position is undefined past it)...
    raw.write_all(b"load payload=999999999999\n").unwrap();
    let reply = replies.read_frame().unwrap().unwrap();
    assert_eq!(reply.get("code"), Some("proto"));
    assert!(replies.read_frame().unwrap().is_none(), "connection closed");

    // ...but the server itself is unharmed.
    let mut client = Client::connect(addr).unwrap();
    let reply = client.request(&Frame::new("shutdown")).unwrap();
    assert_eq!(reply.verb, "ok");
    server.join().unwrap().unwrap();
}

#[test]
fn concurrent_slack_queries_share_the_session() {
    let (addr, server) = start_server();
    let mut client = Client::connect(addr).unwrap();
    client
        .request(&Frame::new("load").with_payload(workload_text()))
        .unwrap();
    let reply = client.request(&Frame::new("analyze")).unwrap();
    assert_eq!(reply.verb, "ok");

    // Hammer the settled analysis from several clients at once; every
    // query must answer consistently (read path, no serialisation
    // hazards).
    let workers: Vec<_> = (0..4)
        .map(|_| {
            thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                let mut worsts = Vec::new();
                for _ in 0..25 {
                    let r = c.request(&Frame::new("worst-paths").arg("k", 1)).unwrap();
                    assert_eq!(r.verb, "ok");
                    let s = c.request(&Frame::new("stats")).unwrap();
                    assert_eq!(s.verb, "ok");
                    worsts.push(r.payload.unwrap_or_default());
                }
                worsts
            })
        })
        .collect();
    let mut all: Vec<String> = Vec::new();
    for w in workers {
        all.extend(w.join().unwrap());
    }
    assert!(all.windows(2).all(|p| p[0] == p[1]), "answers must agree");

    client.request(&Frame::new("shutdown")).unwrap();
    server.join().unwrap().unwrap();
}
