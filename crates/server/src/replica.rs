//! Journal-streaming replication and warm-standby failover.
//!
//! The unit of replication is the write-ahead [`Journal`]: it already
//! captures, in order, every request that changed a design's state,
//! and [`Journal::replay`] already rebuilds a bit-identical session
//! from it (panic recovery and LRU-eviction reload both rely on
//! that). Streaming the same entries to another process therefore
//! yields a warm shadow of the whole fleet for free — no second
//! serialisation format, no snapshot shipping.
//!
//! The wire protocol is two read-only verbs served by any daemon:
//!
//! * `repl-state` — one payload line per open design:
//!   `ID EPOCH LEN FINGERPRINT` (sorted by id, fingerprint in hex or
//!   `-` before the first mutation).
//! * `repl-pull design=ID epoch=E since=N` — journal entries from
//!   index `N` on, each encoded as a nested
//!   `entry expect=VERB payload=K` frame whose payload is the
//!   original request frame verbatim. When the caller's `epoch` no
//!   longer matches (the primary rewrote history: a fresh `load` or a
//!   compaction), the reply carries `resync=1` and restarts from
//!   index 0. Replies are capped near [`MAX_STREAM_BYTES`]; `more=1`
//!   says pull again. A complete reply (`more=0`) carries the
//!   primary's fingerprint for the replica to verify its rebuilt
//!   session against.
//!
//! A standby (`serve --standby-of ADDR`) runs an ordinary fleet
//! daemon plus one sync thread executing [`run_standby`]: every
//! `sync_interval` it pulls the primary's state, mirrors the design
//! table, applies new entries through [`Session::handle_replay`]
//! under the slot's write lock (so shadow sessions stay warm and
//! queryable), and prunes designs the primary closed. After
//! `promote_after` consecutive sync failures it declares the primary
//! dead and promotes itself — the sync thread exits and what remains
//! is a normal primary already holding every acknowledged design
//! state, so clients re-point their address and continue. Because a
//! panicked request is never journaled, the standby's state after
//! failover is exactly the last state any client was told about.

use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Arc, PoisonError};
use std::thread;
use std::time::Duration;

use hb_io::{Frame, FrameDecoder};

use crate::fleet::{DesignSlot, DEFAULT_DESIGN};
use crate::journal::Journal;
use crate::net::{lock, Client, Shared};

/// Soft cap on one `repl-pull` reply's payload. Entries are batched
/// up to this size and the remainder flagged with `more=1`; a single
/// larger entry (a big `load`) still ships whole, and stays inside
/// the codec's 16 MiB frame limit because session payloads are capped
/// at 8 MiB.
pub const MAX_STREAM_BYTES: usize = 12 * 1024 * 1024;

fn err(code: &str, message: impl std::fmt::Display) -> Frame {
    Frame::new("error")
        .arg("code", code)
        .with_payload(message.to_string())
}

fn fp_hex(fp: Option<u64>) -> String {
    match fp {
        Some(fp) => format!("{fp:016x}"),
        None => "-".to_owned(),
    }
}

/// Serves `repl-state`: every open design's replication cursor.
pub(crate) fn repl_state(shared: &Shared) -> Frame {
    let slots = shared.fleet.snapshot();
    let mut body = String::new();
    for slot in &slots {
        let journal = lock(&slot.journal);
        body.push_str(&format!(
            "{} {} {} {}\n",
            slot.id,
            journal.epoch(),
            journal.len(),
            fp_hex(journal.fingerprint())
        ));
    }
    Frame::new("ok")
        .arg("count", slots.len())
        .with_payload(body)
}

/// Serves `repl-pull`: one design's journal entries from the caller's
/// cursor on (or from zero with `resync=1` when the cursor's epoch is
/// stale).
pub(crate) fn repl_pull(shared: &Shared, req: &Frame) -> Frame {
    let Some(id) = req.get("design") else {
        return err("usage", "repl-pull needs design=ID");
    };
    let Some(slot) = shared.fleet.peek(id) else {
        return err("unknown-design", format!("no open design `{id}`"));
    };
    let epoch: u64 = match req.get("epoch").map(str::parse) {
        None => 0,
        Some(Ok(e)) => e,
        Some(Err(_)) => return err("usage", "bad epoch value"),
    };
    let since: usize = match req.get("since").map(str::parse) {
        None => 0,
        Some(Ok(n)) => n,
        Some(Err(_)) => return err("usage", "bad since value"),
    };
    let journal = lock(&slot.journal);
    let (resync, start) = if epoch != journal.epoch() || since > journal.len() {
        (1u8, 0usize)
    } else {
        (0u8, since)
    };
    let mut body = String::new();
    let mut count = 0usize;
    let mut more = 0u8;
    for entry in &journal.entries()[start..] {
        let encoded = entry.req.encode();
        if count > 0 && body.len() + encoded.len() > MAX_STREAM_BYTES {
            more = 1;
            break;
        }
        body.push_str(
            &Frame::new("entry")
                .arg("expect", &entry.expect)
                .with_payload(encoded)
                .encode(),
        );
        count += 1;
    }
    let mut reply = Frame::new("ok")
        .arg("design", id)
        .arg("epoch", journal.epoch())
        .arg("since", start)
        .arg("count", count)
        .arg("resync", resync)
        .arg("more", more);
    if more == 0 {
        if let Some(fp) = journal.fingerprint() {
            reply = reply.arg("fp", format!("{fp:016x}"));
        }
    }
    reply.with_payload(body)
}

/// One design's line in a `repl-state` payload.
struct RemoteCursor {
    id: String,
    epoch: u64,
    len: usize,
}

fn parse_state(payload: &str) -> Result<Vec<RemoteCursor>, String> {
    payload
        .lines()
        .map(|line| {
            let mut parts = line.split_whitespace();
            let mut parse = || {
                parts
                    .next()
                    .ok_or_else(|| format!("short state line `{line}`"))
            };
            let id = parse()?.to_owned();
            let epoch = parse()?
                .parse()
                .map_err(|_| format!("bad epoch in `{line}`"))?;
            let len = parse()?
                .parse()
                .map_err(|_| format!("bad len in `{line}`"))?;
            Ok(RemoteCursor { id, epoch, len })
        })
        .collect()
}

/// The standby sync loop: mirror the primary every `sync_interval`
/// until shutdown, or promote after `promote_after` consecutive
/// failures. Runs on its own thread (see `spawn_standby`).
pub(crate) fn run_standby(shared: &Arc<Shared>, primary: &str) {
    let interval = shared.options.sync_interval;
    let promote_after = shared.options.promote_after.max(1);
    let mut failures = 0u32;
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        match sync_once(shared, primary) {
            Ok(()) => failures = 0,
            Err(_) => {
                failures += 1;
                if failures >= promote_after {
                    // Promotion: the primary is dead. Stop syncing and
                    // let the fleet this thread kept warm serve as the
                    // new primary.
                    return;
                }
            }
        }
        let mut slept = Duration::ZERO;
        while slept < interval {
            if shared.shutdown.load(Ordering::Acquire) {
                return;
            }
            let step = (interval - slept).min(Duration::from_millis(25));
            thread::sleep(step);
            slept += step;
        }
    }
}

/// One sync round: pull the primary's design table, catch every
/// design's shadow up, prune closed ones.
fn sync_once(shared: &Shared, primary: &str) -> Result<(), String> {
    let mut client = Client::connect(primary).map_err(|e| format!("connect: {e}"))?;
    client
        .set_timeout(Some(Duration::from_secs(5)))
        .map_err(|e| format!("timeout: {e}"))?;
    let state = client
        .request(&Frame::new("repl-state"))
        .map_err(|e| format!("repl-state: {e}"))?;
    if state.verb != "ok" {
        return Err(format!(
            "repl-state answered `{}`: {}",
            state.verb,
            state.payload.as_deref().unwrap_or("")
        ));
    }
    let cursors = parse_state(state.payload.as_deref().unwrap_or(""))?;
    let mut present: HashSet<&str> = HashSet::new();
    for cursor in &cursors {
        present.insert(&cursor.id);
        sync_design(shared, &mut client, cursor)?;
    }
    for slot in shared.fleet.snapshot() {
        if !present.contains(slot.id.as_str()) && slot.id != DEFAULT_DESIGN {
            shared.fleet.remove(&slot.id);
        }
    }
    Ok(())
}

/// Catches one design's shadow up to the primary's cursor, pulling in
/// bounded pages until level.
fn sync_design(shared: &Shared, client: &mut Client, cursor: &RemoteCursor) -> Result<(), String> {
    let slot = shared.fleet.ensure(&cursor.id);
    loop {
        let (epoch, len) = {
            let journal = lock(&slot.journal);
            (journal.epoch(), journal.len())
        };
        if epoch == cursor.epoch && len >= cursor.len {
            return Ok(());
        }
        let reply = client
            .request(
                &Frame::new("repl-pull")
                    .arg("design", &cursor.id)
                    .arg("epoch", epoch)
                    .arg("since", len),
            )
            .map_err(|e| format!("repl-pull {}: {e}", cursor.id))?;
        if reply.verb != "ok" {
            return Err(format!(
                "repl-pull {} answered `{}`: {}",
                cursor.id,
                reply.verb,
                reply.payload.as_deref().unwrap_or("")
            ));
        }
        apply_pull(shared, &slot, &reply)?;
        if reply.get("more") != Some("1") {
            return Ok(());
        }
    }
}

/// Applies one `repl-pull` reply to a shadow slot: resync-reset when
/// flagged, replay every entry, verify the fingerprint on a complete
/// page. Any divergence resets the shadow so the next round resyncs
/// from zero.
fn apply_pull(shared: &Shared, slot: &DesignSlot, reply: &Frame) -> Result<(), String> {
    let epoch: u64 = reply
        .get("epoch")
        .and_then(|v| v.parse().ok())
        .ok_or("repl-pull reply without epoch")?;
    let mut session = slot.session.write().unwrap_or_else(PoisonError::into_inner);
    slot.session.clear_poison();
    let mut journal = lock(&slot.journal);
    let reset = |journal: &mut Journal, session: &mut crate::session::Session, epoch: u64| {
        journal.sync_reset(epoch);
        *session = shared.fleet.fresh_session();
    };
    if reply.get("resync") == Some("1") {
        reset(&mut journal, &mut session, epoch);
    }
    let mut decoder = FrameDecoder::new();
    decoder.feed(reply.payload.as_deref().unwrap_or("").as_bytes());
    loop {
        let entry = match decoder.next_frame() {
            Ok(Some(entry)) => entry,
            Ok(None) => break,
            Err(e) => return Err(format!("bad replication stream: {e}")),
        };
        if entry.verb != "entry" {
            return Err(format!("unexpected `{}` in replication stream", entry.verb));
        }
        let expect = entry.get("expect").unwrap_or("ok").to_owned();
        let mut inner = FrameDecoder::new();
        inner.feed(entry.payload.as_deref().unwrap_or("").as_bytes());
        let req = match inner.next_frame() {
            Ok(Some(req)) => req,
            Ok(None) | Err(_) => return Err("undecodable replication entry".into()),
        };
        let got = catch_unwind(AssertUnwindSafe(|| session.handle_replay(&req)));
        match got {
            Ok(got) if got.verb == expect => journal.sync_push(req, expect),
            outcome => {
                // The shadow diverged (or the replay panicked): throw
                // it away and resync from zero next round.
                reset(&mut journal, &mut session, 0);
                let got = match outcome {
                    Ok(got) => got.verb,
                    Err(_) => "panic".to_owned(),
                };
                return Err(format!(
                    "replicated `{}` replayed to `{got}` (expected `{expect}`)",
                    req.verb
                ));
            }
        }
    }
    decoder
        .finish()
        .map_err(|e| format!("truncated replication stream: {e}"))?;
    if reply.get("more") != Some("1") {
        let fp = reply
            .get("fp")
            .and_then(|v| u64::from_str_radix(v, 16).ok());
        journal.set_fingerprint(fp);
        if let Some(fp) = fp {
            if session.fingerprint() != fp {
                reset(&mut journal, &mut session, 0);
                return Err("replicated fingerprint mismatch; resyncing".into());
            }
        }
    }
    drop(journal);
    drop(session);
    shared.fleet.settle(slot);
    Ok(())
}
