//! Serialization round-trips across the generated workloads.

use hb_cells::sc89;
use hb_io::{parse_blif, parse_hum, write_blif, write_hum};
use hb_workloads::{figure1, fsm12, random_pipeline, PipelineParams};

#[test]
fn hum_roundtrip_across_workloads() {
    let lib = sc89();
    for w in [
        fsm12(&lib, true),
        fsm12(&lib, false),
        figure1(&lib),
        random_pipeline(&lib, PipelineParams::default()),
    ] {
        let text = write_hum(&w.design, &w.clocks);
        let file = parse_hum(&text, &lib)
            .unwrap_or_else(|e| panic!("{}: writer output must re-parse: {e}", w.name));
        file.design
            .validate()
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        let top = file.design.top().expect("top preserved");
        let a = w.design.stats(w.module);
        let b = file.design.stats(top);
        assert_eq!(a.cells, b.cells, "{}", w.name);
        assert_eq!(a.nets, b.nets, "{}", w.name);
        assert_eq!(a.module_insts, b.module_insts, "{}", w.name);
        assert_eq!(file.clocks.len(), w.clocks.len(), "{}", w.name);
        // Second generation is a fixpoint.
        let text2 = write_hum(&file.design, &file.clocks);
        assert_eq!(text, text2, "{}: emission is deterministic", w.name);
    }
}

#[test]
fn blif_roundtrip_flat_workload() {
    let lib = sc89();
    let w = fsm12(&lib, true);
    let text = write_blif(&w.design, &lib);
    assert!(text.contains(".mlatch DFF"), "latches use .mlatch");
    assert!(text.contains(".gate"), "gates use .gate");
    let design = parse_blif(&text, &lib).expect("writer output re-parses");
    design.validate().expect("valid after round-trip");
    let top = design.top().expect("top set from first model");
    let a = w.design.stats(w.module);
    let b = design.stats(top);
    assert_eq!(a.cells, b.cells);
    assert_eq!(a.nets, b.nets);
}

#[test]
fn blif_roundtrip_hierarchical_workload() {
    let lib = sc89();
    let w = fsm12(&lib, false);
    let text = write_blif(&w.design, &lib);
    // The child model must be emitted; re-parsing needs children first,
    // so reorder models: children after top in our writer means the
    // forward reference is rejected — verify that, then feed a reordered
    // document.
    assert!(text.contains(".subckt nsl"));
    let mut models: Vec<&str> = text
        .split("\n\n")
        .filter(|s| !s.trim().is_empty())
        .collect();
    models.reverse();
    let reordered = models.join("\n\n");
    let design = parse_blif(&reordered, &lib).expect("children-first order parses");
    design.validate().expect("valid");
    // Top in the reordered document is `nsl`; find the real top by name.
    let top = design.module_by_name("top").expect("model kept its name");
    let a = w.design.stats(w.module);
    let b = design.stats(top);
    assert_eq!(a.cells, b.cells);
}

#[test]
fn hum_preserves_analyzability_of_figure1() {
    use hummingbird::Analyzer;
    let lib = sc89();
    let w = figure1(&lib);
    let text = write_hum(&w.design, &w.clocks);
    let file = parse_hum(&text, &lib).expect("re-parses");
    let top = file.design.top().expect("top preserved");
    let analyzer = Analyzer::new(&file.design, top, &lib, &file.clocks, w.spec.clone())
        .expect("round-tripped figure-1 conforms");
    assert_eq!(analyzer.prep_stats().max_cluster_passes, 2);
}
