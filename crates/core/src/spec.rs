//! Analysis specifications: clock bindings, boundary timing, options.

use std::collections::HashMap;

use hb_units::{Time, Transition};

/// A reference to a clock edge: which clock, which direction, and which
/// occurrence within the overall period (relevant when the clock runs at
/// a multiple of the overall frequency).
///
/// # Examples
///
/// ```
/// use hb_units::Transition;
/// use hummingbird::EdgeSpec;
///
/// let launch = EdgeSpec::new("phi1", Transition::Rise);
/// assert_eq!(launch.occurrence, 0);
/// let third = EdgeSpec::new("fast", Transition::Fall).at_occurrence(2);
/// assert_eq!(third.occurrence, 2);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EdgeSpec {
    /// The clock name (resolved against the [`hb_clock::ClockSet`]).
    pub clock: String,
    /// The edge direction.
    pub transition: Transition,
    /// Which occurrence within the overall period (0-based).
    pub occurrence: u32,
}

impl EdgeSpec {
    /// References occurrence 0 of the given edge.
    pub fn new(clock: impl Into<String>, transition: Transition) -> EdgeSpec {
        EdgeSpec {
            clock: clock.into(),
            transition,
            occurrence: 0,
        }
    }

    /// Selects a later occurrence within the overall period.
    pub fn at_occurrence(mut self, occurrence: u32) -> EdgeSpec {
        self.occurrence = occurrence;
        self
    }
}

/// How level-sensitive latches are modelled.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum LatchModel {
    /// The paper's model: transparent latches have adjustable
    /// closure/assertion offsets within the control pulse, enabling slack
    /// transfer (Algorithm 1).
    #[default]
    Transparent,
    /// The McWilliams (DAC'80) style baseline: every latch captures and
    /// asserts on the trailing edge of its pulse, with no transparency.
    /// Used by the comparison benchmarks; safe but pessimistic.
    EdgeTriggered,
}

/// Which slack-evaluation engine runs the per-pass sweeps.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EngineKind {
    /// The cluster-sharded engine: per-`(cluster, pass)` sweeps over
    /// compact CSR subgraphs, scheduled onto a thread pool, with
    /// incremental reuse of clusters whose seeds did not move.
    /// Bit-identical to [`EngineKind::Reference`] at any thread count.
    #[default]
    Sharded,
    /// The reference engine: one dense whole-graph forward and backward
    /// sweep per global pass, single-threaded. Kept for differential
    /// testing and benchmarking.
    Reference,
}

/// Tuning knobs for the analysis algorithms.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AnalysisOptions {
    /// The latch model (paper vs baseline).
    pub latch_model: LatchModel,
    /// The divisor `n > 1` for *partial* slack transfer in iterations 3
    /// and 4 of Algorithm 1.
    pub partial_divisor: i64,
    /// Safety cap on slack-transfer cycles per direction. The paper
    /// bounds each iteration by one more than the number of
    /// synchronising elements in a directed path; this cap guards
    /// against pathological inputs.
    pub max_cycles: usize,
    /// Also evaluate the supplementary (minimum-delay) path constraints
    /// after Algorithm 1. The paper defines these but notes its
    /// algorithms do not check them; this is an extension.
    pub check_min_delays: bool,
    /// Worker threads for the sharded engine's sweeps. `0` (the
    /// default) uses [`std::thread::available_parallelism`]. The result
    /// is bit-identical at any thread count.
    pub threads: usize,
    /// Which slack-evaluation engine to use.
    pub engine: EngineKind,
}

impl Default for AnalysisOptions {
    fn default() -> AnalysisOptions {
        AnalysisOptions {
            latch_model: LatchModel::Transparent,
            partial_divisor: 2,
            max_cycles: 64,
            check_min_delays: false,
            threads: 0,
            engine: EngineKind::Sharded,
        }
    }
}

impl AnalysisOptions {
    /// Resolves [`AnalysisOptions::threads`]: `0` becomes the machine's
    /// available parallelism.
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.threads
        }
    }
}

/// The boundary specification of an analysis: which ports carry clocks,
/// when primary inputs are asserted, and when primary outputs must
/// settle.
///
/// Built fluently:
///
/// ```
/// use hb_units::{Time, Transition};
/// use hummingbird::{EdgeSpec, Spec};
///
/// let spec = Spec::new()
///     .clock_port("ck", "phi1")
///     .input_arrival("data_in", EdgeSpec::new("phi1", Transition::Rise), Time::from_ns(2))
///     .output_required("data_out", EdgeSpec::new("phi1", Transition::Rise), Time::ZERO);
/// assert_eq!(spec.clock_ports().count(), 1);
/// ```
///
/// Defaults: data input ports without an explicit arrival are asserted
/// at the first timeline edge with zero offset; output ports without an
/// explicit requirement are unconstrained.
#[derive(Clone, Debug, Default)]
pub struct Spec {
    clock_ports: HashMap<String, String>,
    input_arrivals: HashMap<String, (EdgeSpec, Time)>,
    output_requireds: HashMap<String, (EdgeSpec, Time)>,
}

impl Spec {
    /// Creates an empty spec.
    pub fn new() -> Spec {
        Spec::default()
    }

    /// Declares that module port `port` carries clock `clock`.
    pub fn clock_port(mut self, port: impl Into<String>, clock: impl Into<String>) -> Spec {
        self.clock_ports.insert(port.into(), clock.into());
        self
    }

    /// Declares that input port `port` is asserted `offset` after `edge`.
    pub fn input_arrival(mut self, port: impl Into<String>, edge: EdgeSpec, offset: Time) -> Spec {
        self.input_arrivals.insert(port.into(), (edge, offset));
        self
    }

    /// Declares that output port `port` must settle by `offset` after
    /// `edge` (its closure time).
    pub fn output_required(
        mut self,
        port: impl Into<String>,
        edge: EdgeSpec,
        offset: Time,
    ) -> Spec {
        self.output_requireds.insert(port.into(), (edge, offset));
        self
    }

    /// Iterates over `(port, clock)` bindings.
    pub fn clock_ports(&self) -> impl Iterator<Item = (&str, &str)> {
        self.clock_ports
            .iter()
            .map(|(p, c)| (p.as_str(), c.as_str()))
    }

    /// The clock bound to `port`, if any.
    pub fn clock_for_port(&self, port: &str) -> Option<&str> {
        self.clock_ports.get(port).map(String::as_str)
    }

    /// The explicit arrival of input `port`, if any.
    pub fn arrival_for_port(&self, port: &str) -> Option<(&EdgeSpec, Time)> {
        self.input_arrivals.get(port).map(|(e, t)| (e, *t))
    }

    /// The explicit requirement on output `port`, if any.
    pub fn required_for_port(&self, port: &str) -> Option<(&EdgeSpec, Time)> {
        self.output_requireds.get(port).map(|(e, t)| (e, *t))
    }

    /// Iterates over explicit input arrivals.
    pub fn input_arrivals(&self) -> impl Iterator<Item = (&str, &EdgeSpec, Time)> {
        self.input_arrivals
            .iter()
            .map(|(p, (e, t))| (p.as_str(), e, *t))
    }

    /// Iterates over explicit output requirements.
    pub fn output_requireds(&self) -> impl Iterator<Item = (&str, &EdgeSpec, Time)> {
        self.output_requireds
            .iter()
            .map(|(p, (e, t))| (p.as_str(), e, *t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder() {
        let spec = Spec::new()
            .clock_port("ck1", "phi1")
            .clock_port("ck2", "phi2")
            .input_arrival(
                "a",
                EdgeSpec::new("phi1", Transition::Rise),
                Time::from_ns(1),
            )
            .output_required("y", EdgeSpec::new("phi2", Transition::Fall), Time::ZERO);
        assert_eq!(spec.clock_for_port("ck1"), Some("phi1"));
        assert_eq!(spec.clock_for_port("nope"), None);
        let (edge, off) = spec.arrival_for_port("a").unwrap();
        assert_eq!(edge.clock, "phi1");
        assert_eq!(off, Time::from_ns(1));
        assert!(spec.required_for_port("y").is_some());
        assert_eq!(spec.input_arrivals().count(), 1);
        assert_eq!(spec.output_requireds().count(), 1);
    }

    #[test]
    fn options_default() {
        let o = AnalysisOptions::default();
        assert_eq!(o.latch_model, LatchModel::Transparent);
        assert!(o.partial_divisor > 1);
        assert!(o.max_cycles > 0);
        assert!(!o.check_min_delays);
    }

    #[test]
    fn edge_spec_occurrence() {
        let e = EdgeSpec::new("c", Transition::Fall).at_occurrence(3);
        assert_eq!(e.occurrence, 3);
        assert_eq!(e.transition, Transition::Fall);
    }
}
