//! The benchmark designs.

use hb_cells::Library;
use hb_clock::ClockSet;
use hb_netlist::{Design, ModuleId, NetId};
use hb_rng::SmallRng;
use hb_units::{Time, Transition};
use hummingbird::{EdgeSpec, Spec};

use crate::build::NetlistBuilder;

/// A self-contained benchmark design: netlist, clocks and boundary spec.
pub struct Workload {
    /// A short identifier (`"DES"`, `"ALU"`, `"SM1F"`, …).
    pub name: String,
    /// The design database.
    pub design: Design,
    /// The top module to analyze.
    pub module: ModuleId,
    /// The clock waveforms.
    pub clocks: ClockSet,
    /// The boundary spec (clock ports, arrivals, requirements).
    pub spec: Spec,
}

impl Workload {
    /// Cell and net counts, for Table-1 style reporting.
    pub fn stats(&self) -> hb_netlist::DesignStats {
        self.design.stats(self.module)
    }
}

/// Parameters for [`random_pipeline`].
#[derive(Clone, Copy, Debug)]
pub struct PipelineParams {
    /// Number of register-to-register stages.
    pub stages: usize,
    /// Bits per register bank.
    pub width: usize,
    /// Random gates per stage.
    pub gates_per_stage: usize,
    /// Use transparent latches on alternating phases instead of
    /// flip-flops.
    pub transparent: bool,
    /// Clock period in nanoseconds.
    pub period_ns: i64,
    /// Generator seed.
    pub seed: u64,
    /// Stage imbalance in percent: even stages get this much more logic
    /// and odd stages this much less. Unbalanced transparent pipelines
    /// are where slack transfer (time borrowing) earns its keep.
    pub imbalance_pct: u32,
}

impl Default for PipelineParams {
    fn default() -> PipelineParams {
        PipelineParams {
            stages: 4,
            width: 16,
            gates_per_stage: 200,
            transparent: false,
            period_ns: 100,
            seed: 1,
            imbalance_pct: 0,
        }
    }
}

/// A generic seeded pipeline: `width` primary inputs, `stages` blocks of
/// random logic separated by register banks, outputs registered.
///
/// With `transparent: true`, alternating banks use `DLATCH` elements on
/// two non-overlapping phases (`phi1` high in the first 40%, `phi2` high
/// in the second-half 40% of the period); otherwise all banks are `DFF`s
/// on a single clock `ck`.
pub fn random_pipeline(lib: &Library, params: PipelineParams) -> Workload {
    let mut rng = SmallRng::seed_from_u64(params.seed);
    let mut b = NetlistBuilder::new("pipeline", lib);
    let period = Time::from_ns(params.period_ns);

    let mut clocks = ClockSet::new();
    let mut spec = Spec::new();
    let (cks, phase_count) = if params.transparent {
        clocks
            .add_clock("phi1", period, Time::ZERO, period * 2 / 5)
            .expect("valid waveform");
        clocks
            .add_clock("phi2", period, period / 2, period * 9 / 10)
            .expect("valid waveform");
        let p1 = b.input("phi1");
        let p2 = b.input("phi2");
        spec = spec.clock_port("phi1", "phi1").clock_port("phi2", "phi2");
        (vec![b.clock_tree(p1), b.clock_tree(p2)], 2)
    } else {
        clocks
            .add_clock("ck", period, Time::ZERO, period / 2)
            .expect("valid waveform");
        let ck = b.input("ck");
        spec = spec.clock_port("ck", "ck");
        (vec![b.clock_tree(ck)], 1)
    };

    let inputs: Vec<NetId> = (0..params.width)
        .map(|i| b.input(&format!("in{i}")))
        .collect();
    let first_clock = if params.transparent { "phi1" } else { "ck" };
    for i in 0..params.width {
        // Inputs are valid slightly before the launch edge, as a
        // registered external interface would provide them; asserting
        // exactly *at* the edge would make the first latch bank
        // perpetually marginal (the paper's "marginally fast enough"
        // pessimism) and mask the interesting behaviour downstream.
        spec = spec.input_arrival(
            format!("in{i}"),
            EdgeSpec::new(first_clock, Transition::Rise),
            Time::from_ps(-500),
        );
    }

    let mut bus = inputs;
    for stage in 0..params.stages {
        let ck = cks[stage % phase_count];
        bus = if params.transparent {
            b.latch_bank(&bus, ck, &format!("s{stage}"))
        } else {
            b.dff_bank(&bus, ck, &format!("s{stage}"))
        };
        let swing = params.gates_per_stage * params.imbalance_pct as usize / 100;
        let gates = if stage % 2 == 0 {
            params.gates_per_stage + swing
        } else {
            params
                .gates_per_stage
                .saturating_sub(swing)
                .max(params.width)
        };
        bus = b.random_logic(&mut rng, &bus, gates, params.width);
    }
    let ck = cks[params.stages % phase_count];
    let outs = b.dff_bank(&bus, cks.first().copied().unwrap_or(ck), "out");
    for (i, q) in outs.iter().enumerate() {
        b.output(&format!("out{i}"), *q);
    }

    Workload {
        name: format!(
            "PIPE{}x{}{}",
            params.stages,
            params.gates_per_stage,
            if params.transparent { "L" } else { "F" }
        ),
        design: b.design,
        module: b.module,
        clocks,
        spec,
    }
}

/// The DES-scale workload: a 64-bit iterative data-path in the shape of
/// a data-encryption chip — a 64-bit state register, a 56-bit key input,
/// one large round-function cluster, and registered outputs — totalling
/// 3681 standard cells like the paper's DES example.
pub fn des_like(lib: &Library, seed: u64) -> Workload {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = NetlistBuilder::new("des", lib);
    let period = Time::from_ns(250);
    let mut clocks = ClockSet::new();
    clocks
        .add_clock("ck", period, Time::ZERO, period / 2)
        .expect("valid waveform");
    let ck = b.input("ck");
    let ckb = b.clock_tree(ck);
    let mut spec = Spec::new().clock_port("ck", "ck");

    let key: Vec<NetId> = (0..56).map(|i| b.input(&format!("key{i}"))).collect();
    for i in 0..56 {
        spec = spec.input_arrival(
            format!("key{i}"),
            EdgeSpec::new("ck", Transition::Rise),
            Time::ZERO,
        );
    }
    let din: Vec<NetId> = (0..64).map(|i| b.input(&format!("din{i}"))).collect();
    for i in 0..64 {
        spec = spec.input_arrival(
            format!("din{i}"),
            EdgeSpec::new("ck", Transition::Rise),
            Time::ZERO,
        );
    }

    // State register (64 DFF), loaded from inputs xor round output — the
    // mux logic is folded into the round cluster.
    let state_d: Vec<NetId> = (0..64).map(|i| b.net(&format!("state_d{i}"))).collect();
    let state_q = b.dff_bank(&state_d, ckb, "state");

    // The round function: one large cluster of 8 "S-box" style blocks
    // plus key mixing. Cell budget: 3681 total = 64 state FFs + 1 clock
    // buffer + 64 feedback ties + the logic.
    let logic_budget = 3681 - 64 - 64 - 1;
    let mut round_in: Vec<NetId> = state_q.clone();
    round_in.extend_from_slice(&key);
    round_in.extend_from_slice(&din);
    let per_box = logic_budget / 8;
    let mut round_out = Vec::new();
    for sbox in 0..8 {
        let gates = if sbox == 7 {
            logic_budget - per_box * 7
        } else {
            per_box
        };
        let lo = sbox * 8;
        let mut box_in: Vec<NetId> = round_in[lo..lo + 8].to_vec();
        box_in.extend_from_slice(&round_in[64 + sbox * 7..64 + sbox * 7 + 7]);
        box_in.extend_from_slice(&round_in[120 + sbox * 8..120 + sbox * 8 + 8]);
        round_out.extend(b.random_logic(&mut rng, &box_in, gates, 8));
    }
    for (d, y) in state_d.iter().zip(&round_out) {
        // Tie the round outputs back into the state register inputs.
        let inst = b.inst("BUF_X2", &[("A", *y)]);
        b.design.connect(b.module, inst, "Y", *d).expect("pin Y");
    }
    // Outputs observe the state register directly (the chip's data
    // output is the registered state).
    for (i, q) in state_q.iter().enumerate() {
        b.output(&format!("dout{i}"), *q);
    }

    Workload {
        name: "DES".into(),
        design: b.design,
        module: b.module,
        clocks,
        spec,
    }
}

/// The ALU-scale workload: a 899-cell, 16-bit register-ALU-register
/// slice in the shape of the paper's "portion of a CPU chip".
pub fn alu(lib: &Library, seed: u64) -> Workload {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = NetlistBuilder::new("alu", lib);
    let period = Time::from_ns(150);
    let mut clocks = ClockSet::new();
    clocks
        .add_clock("ck", period, Time::ZERO, period / 2)
        .expect("valid waveform");
    let ck = b.input("ck");
    let ckb = b.clock_tree(ck);
    let mut spec = Spec::new().clock_port("ck", "ck");

    let a_in: Vec<NetId> = (0..16).map(|i| b.input(&format!("a{i}"))).collect();
    let b_in: Vec<NetId> = (0..16).map(|i| b.input(&format!("b{i}"))).collect();
    let op: Vec<NetId> = (0..3).map(|i| b.input(&format!("op{i}"))).collect();
    for name in a_in
        .iter()
        .enumerate()
        .map(|(i, _)| format!("a{i}"))
        .chain((0..16).map(|i| format!("b{i}")))
        .chain((0..3).map(|i| format!("op{i}")))
    {
        spec = spec.input_arrival(name, EdgeSpec::new("ck", Transition::Rise), Time::ZERO);
    }

    let ra = b.dff_bank(&a_in, ckb, "ra");
    let rb = b.dff_bank(&b_in, ckb, "rb");
    // 899 = 16+16+16 FFs + 1 clkbuf + logic.
    let logic_budget = 899 - 48 - 1;
    let mut alu_in = ra;
    alu_in.extend(rb);
    alu_in.extend(op);
    let result = b.random_logic(&mut rng, &alu_in, logic_budget, 16);
    let rq = b.dff_bank(&result, ckb, "r");
    for (i, q) in rq.iter().enumerate() {
        b.output(&format!("y{i}"), *q);
    }

    Workload {
        name: "ALU".into(),
        design: b.design,
        module: b.module,
        clocks,
        spec,
    }
}

/// The 12-bit finite state machine, in flattened (`SM1F`) or
/// hierarchical (`SM1H`) form. Both variants contain the same logic
/// (same seed); the hierarchical form wraps the next-state logic in a
/// single combinational module whose pin-to-pin delays the analyzer
/// pre-combines — the paper's module-level analysis mode.
pub fn fsm12(lib: &Library, flat: bool) -> Workload {
    let mut rng = SmallRng::seed_from_u64(12);
    let mut b = NetlistBuilder::new(if flat { "sm1f" } else { "sm1h" }, lib);
    let period = Time::from_ns(120);
    let mut clocks = ClockSet::new();
    clocks
        .add_clock("ck", period, Time::ZERO, period / 2)
        .expect("valid waveform");

    const STATE_BITS: usize = 12;
    const INPUTS: usize = 4;
    const OUTPUTS: usize = 8;
    const GATES: usize = 276;

    let nsl = if flat {
        None
    } else {
        // The next-state logic as its own module.
        let top = b.module;
        let nsl = b.begin_module("nsl");
        let mut ins = Vec::new();
        for i in 0..STATE_BITS {
            ins.push(b.input(&format!("s{i}")));
        }
        for i in 0..INPUTS {
            ins.push(b.input(&format!("x{i}")));
        }
        let outs = b.random_logic(&mut rng, &ins, GATES, STATE_BITS + OUTPUTS);
        for (i, o) in outs.iter().take(STATE_BITS).enumerate() {
            b.output(&format!("n{i}"), *o);
        }
        for (i, o) in outs.iter().skip(STATE_BITS).enumerate() {
            b.output(&format!("z{i}"), *o);
        }
        b.module = top;
        Some(nsl)
    };

    let ck = b.input("ck");
    let ckb = b.clock_tree(ck);
    let mut spec = Spec::new().clock_port("ck", "ck");
    let xs: Vec<NetId> = (0..INPUTS).map(|i| b.input(&format!("x{i}"))).collect();
    for i in 0..INPUTS {
        spec = spec.input_arrival(
            format!("x{i}"),
            EdgeSpec::new("ck", Transition::Rise),
            Time::ZERO,
        );
    }

    let next: Vec<NetId> = (0..STATE_BITS)
        .map(|i| b.net(&format!("next{i}")))
        .collect();
    let state = b.dff_bank(&next, ckb, "state");
    let zs: Vec<NetId> = (0..OUTPUTS).map(|i| b.net(&format!("z{i}"))).collect();

    match nsl {
        Some(nsl_module) => {
            let inst = b
                .design
                .add_module_instance(b.module, "nsl0", nsl_module)
                .expect("unique name");
            for (i, s) in state.iter().enumerate() {
                b.design
                    .connect(b.module, inst, &format!("s{i}"), *s)
                    .expect("port exists");
            }
            for (i, x) in xs.iter().enumerate() {
                b.design
                    .connect(b.module, inst, &format!("x{i}"), *x)
                    .expect("port exists");
            }
            for (i, n) in next.iter().enumerate() {
                b.design
                    .connect(b.module, inst, &format!("n{i}"), *n)
                    .expect("port exists");
            }
            for (i, z) in zs.iter().enumerate() {
                b.design
                    .connect(b.module, inst, &format!("z{i}"), *z)
                    .expect("port exists");
            }
        }
        None => {
            let mut ins = state.clone();
            ins.extend(&xs);
            let outs = b.random_logic(&mut rng, &ins, GATES, STATE_BITS + OUTPUTS);
            for (n, o) in next.iter().zip(outs.iter().take(STATE_BITS)) {
                let inst = b.inst("BUF_X1", &[("A", *o)]);
                b.design.connect(b.module, inst, "Y", *n).expect("pin Y");
            }
            for (z, o) in zs.iter().zip(outs.iter().skip(STATE_BITS)) {
                let inst = b.inst("BUF_X1", &[("A", *o)]);
                b.design.connect(b.module, inst, "Y", *z).expect("pin Y");
            }
        }
    }
    for (i, z) in zs.iter().enumerate() {
        b.output(&format!("out{i}"), *z);
        spec = spec.output_required(
            format!("out{i}"),
            EdgeSpec::new("ck", Transition::Rise),
            Time::ZERO,
        );
    }

    Workload {
        name: if flat { "SM1F".into() } else { "SM1H".into() },
        design: b.design,
        module: b.module,
        clocks,
        spec,
    }
}

/// A structured (non-random) workload: an `bits`-wide synchronous
/// counter with a ripple carry-enable chain — the classic long unate
/// path. `next[i] = state[i] XOR carry[i-1]`,
/// `carry[i] = state[i] AND carry[i-1]`, `carry[-1] = en`.
///
/// The critical path runs the full length of the AND chain into the top
/// bit's XOR, so the minimum period grows linearly with `bits` — a
/// hand-checkable scaling shape for the analyzer.
pub fn counter(lib: &Library, bits: usize, period_ns: i64) -> Workload {
    assert!(bits >= 2, "a counter needs at least two bits");
    let mut b = NetlistBuilder::new("counter", lib);
    let mut clocks = ClockSet::new();
    clocks
        .add_clock(
            "ck",
            Time::from_ns(period_ns),
            Time::ZERO,
            Time::from_ns(period_ns / 2),
        )
        .expect("valid waveform");
    let ck = b.input("ck");
    let ckb = b.clock_tree(ck);
    let en = b.input("en");
    let mut spec = Spec::new().clock_port("ck", "ck").input_arrival(
        "en",
        EdgeSpec::new("ck", Transition::Rise),
        Time::ZERO,
    );

    let next: Vec<NetId> = (0..bits).map(|i| b.net(&format!("next{i}"))).collect();
    let state = b.dff_bank(&next, ckb, "state");
    let mut carry = en;
    for i in 0..bits {
        let n = b.fresh_net("sum");
        b.inst("XOR2_X1", &[("A", state[i]), ("B", carry), ("Y", n)]);
        let tie = b.inst("BUF_X1", &[("A", n)]);
        b.design
            .connect(b.module, tie, "Y", next[i])
            .expect("pin Y");
        if i + 1 < bits {
            let c = b.fresh_net("carry");
            b.inst("AND2_X1", &[("A", state[i]), ("B", carry), ("Y", c)]);
            carry = c;
        }
    }
    b.output("msb", state[bits - 1]);
    spec = spec.output_required("msb", EdgeSpec::new("ck", Transition::Rise), Time::ZERO);

    Workload {
        name: format!("CNT{bits}"),
        design: b.design,
        module: b.module,
        clocks,
        spec,
    }
}

/// The Figure 1 circuit: a gate fed by latches controlled by four
/// different clock phases, "time multiplexed within each overall clock
/// period" — its cluster needs two settling times per node.
pub fn figure1(lib: &Library) -> Workload {
    let mut b = NetlistBuilder::new("figure1", lib);
    let mut clocks = ClockSet::new();
    let mut spec = Spec::new();
    let mut gates = Vec::new();
    for i in 0..4u32 {
        let name = format!("p{}", i + 1);
        let start = Time::from_ns(25 * i64::from(i));
        clocks
            .add_clock(&name, Time::from_ns(100), start, start + Time::from_ns(10))
            .expect("valid waveform");
        let net = b.input(&name);
        spec = spec.clock_port(&name, &name);
        gates.push(net);
    }
    let a = b.input("a");
    let c = b.input("c");
    spec = spec
        .input_arrival("a", EdgeSpec::new("p1", Transition::Rise), Time::ZERO)
        .input_arrival("c", EdgeSpec::new("p3", Transition::Rise), Time::ZERO);
    let l1 = b.latch_bank(&[a], gates[0], "l1");
    let l3 = b.latch_bank(&[c], gates[2], "l3");
    let mix = b.fresh_net("mix");
    b.inst("NAND2_X1", &[("A", l1[0]), ("B", l3[0]), ("Y", mix)]);
    let l2 = b.latch_bank(&[mix], gates[1], "l2");
    let l4 = b.latch_bank(&[mix], gates[3], "l4");
    b.output("q2", l2[0]);
    b.output("q4", l4[0]);

    Workload {
        name: "FIG1".into(),
        design: b.design,
        module: b.module,
        clocks,
        spec,
    }
}

/// A two-phase transparent-latch pipeline with deliberately unbalanced
/// stage delays — the configuration where slack transfer (time
/// borrowing) matters and the iteration counts of Algorithm 1 become
/// visible.
pub fn latch_pipeline(
    lib: &Library,
    stages: usize,
    width: usize,
    seed: u64,
    period_ns: i64,
) -> Workload {
    let mut w = random_pipeline(
        lib,
        PipelineParams {
            stages,
            width,
            gates_per_stage: 60 + (seed as usize % 40),
            transparent: true,
            period_ns,
            seed,
            imbalance_pct: 60,
        },
    );
    w.name = format!("LATCH{stages}x{width}");
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_cells::sc89;
    use hummingbird::Analyzer;

    #[test]
    fn des_matches_paper_cell_count() {
        let lib = sc89();
        let w = des_like(&lib, 1989);
        w.design.validate().unwrap();
        let stats = w.stats();
        assert_eq!(stats.cells, 3681, "the paper's DES cell count");
        assert!(stats.nets > 3000);
    }

    #[test]
    fn alu_matches_paper_cell_count() {
        let lib = sc89();
        let w = alu(&lib, 7);
        w.design.validate().unwrap();
        assert_eq!(w.stats().cells, 899);
    }

    #[test]
    fn fsm_variants_share_structure() {
        let lib = sc89();
        let flat = fsm12(&lib, true);
        let hier = fsm12(&lib, false);
        flat.design.validate().unwrap();
        hier.design.validate().unwrap();
        assert_eq!(hier.design.stats(hier.module).module_insts, 1);
        assert_eq!(flat.design.stats(flat.module).module_insts, 0);
        // Same gate budget (flat adds buffers to tie outputs).
        let fc = flat.stats().cells;
        let hc = hier.stats().cells;
        assert!(fc >= hc, "flat {fc} vs hier {hc}");
    }

    #[test]
    fn figure1_two_settling_times() {
        let lib = sc89();
        let w = figure1(&lib);
        w.design.validate().unwrap();
        let a = Analyzer::new(&w.design, w.module, &lib, &w.clocks, w.spec.clone()).unwrap();
        assert_eq!(a.prep_stats().max_cluster_passes, 2);
    }

    #[test]
    fn all_workloads_analyze() {
        let lib = sc89();
        for w in [
            fsm12(&lib, true),
            fsm12(&lib, false),
            figure1(&lib),
            latch_pipeline(&lib, 4, 8, 3, 100),
            random_pipeline(&lib, PipelineParams::default()),
        ] {
            w.design
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            let analyzer = Analyzer::new(&w.design, w.module, &lib, &w.clocks, w.spec.clone())
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            let report = analyzer.analyze();
            // Reports must be well-formed whatever the verdict.
            assert!(report.worst_slack().is_finite(), "{}: {report}", w.name);
        }
    }

    #[test]
    fn counter_critical_path_grows_with_width() {
        let lib = sc89();
        let w8 = counter(&lib, 8, 100);
        let w32 = counter(&lib, 32, 100);
        w8.design.validate().unwrap();
        w32.design.validate().unwrap();
        let slack = |w: &Workload| {
            Analyzer::new(&w.design, w.module, &lib, &w.clocks, w.spec.clone())
                .unwrap()
                .analyze()
                .worst_slack()
        };
        let s8 = slack(&w8);
        let s32 = slack(&w32);
        assert!(s8 > s32, "wider counter has the longer carry chain");
        // The delta is roughly 24 AND stages.
        let per_stage = (s8 - s32) / 24;
        assert!(
            per_stage > hb_units::Time::from_ps(100) && per_stage < hb_units::Time::from_ps(600),
            "per-stage {per_stage}"
        );
    }

    #[test]
    fn counter_fails_with_carry_chain_as_the_slow_path() {
        let lib = sc89();
        let w = counter(&lib, 32, 8);
        let report = Analyzer::new(&w.design, w.module, &lib, &w.clocks, w.spec.clone())
            .unwrap()
            .analyze();
        assert!(!report.ok());
        let path = &report.slow_paths()[0];
        let ands = path
            .steps
            .iter()
            .filter(|s| s.through.as_deref().is_some_and(|t| t.contains("AND2")))
            .count();
        assert!(ands >= 20, "the carry chain dominates: {} ANDs", ands);
    }

    #[test]
    fn pipelines_scale_with_parameters() {
        let lib = sc89();
        let small = random_pipeline(
            &lib,
            PipelineParams {
                gates_per_stage: 50,
                ..PipelineParams::default()
            },
        );
        let large = random_pipeline(
            &lib,
            PipelineParams {
                gates_per_stage: 500,
                ..PipelineParams::default()
            },
        );
        assert!(large.stats().cells > small.stats().cells * 5);
    }
}
