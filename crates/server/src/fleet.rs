//! The multi-tenant session fleet: a keyed table of independent
//! design sessions behind one daemon.
//!
//! Every wire verb routes on its `design=ID` argument (absent means
//! the [`DEFAULT_DESIGN`], so single-tenant clients and transcripts
//! keep working byte-for-byte); `open`/`close`/`designs` manage the
//! table. Each design owns its own [`Session`] behind its own
//! [`RwLock`] and its own write-ahead [`Journal`], so two tenants
//! never contend on a lock and one tenant's panic recovery never
//! touches another's state.
//!
//! The table is bounded two ways. `--max-designs` caps how many
//! sessions stay *resident* at once, and `--mem-budget` caps their
//! combined approximate footprint ([`Session::approx_resident_bytes`]).
//! Past either bound the least-recently-used design is **evicted**:
//! its session is dropped, its journal kept. The next request for an
//! evicted design replays the journal into a fresh session first —
//! the same machinery panic recovery uses — so eviction is invisible
//! on the wire apart from latency (and the fingerprint check makes
//! the reload provably exact). Eviction is why the journal, not the
//! session, is the fleet's unit of durability; it is also exactly
//! what the replication layer ([`crate::replica`]) streams to a
//! warm standby.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use hb_cells::Library;
use hb_fault::FaultPlan;
use hb_io::Frame;

use crate::journal::Journal;
use crate::metrics::Metrics;
use crate::net::lock;
use crate::session::Session;

/// The design every request without a `design=` argument routes to.
/// Always present and never closeable: a fleet of one behaves exactly
/// like the historical single-session daemon.
pub const DEFAULT_DESIGN: &str = "default";

/// Hard cap on table entries (resident or evicted), independent of
/// the memory budget: a hostile client spamming `open` runs into a
/// structured `limit` error, not an unbounded journal map.
pub const FLEET_MAX_DESIGNS: usize = 4096;

/// Longest accepted design id.
pub const MAX_DESIGN_ID: usize = 64;

fn err(code: &str, message: impl std::fmt::Display) -> Frame {
    Frame::new("error")
        .arg("code", code)
        .with_payload(message.to_string())
}

/// A printable, length-capped rendition of a (possibly hostile)
/// design id for error payloads.
fn display_id(id: &str) -> String {
    let mut out: String = id
        .chars()
        .take(MAX_DESIGN_ID)
        .map(|c| if c.is_ascii_graphic() { c } else { '?' })
        .collect();
    if id.chars().count() > MAX_DESIGN_ID {
        out.push('…');
    }
    out
}

/// Whether `id` is a well-formed design id: 1..=[`MAX_DESIGN_ID`]
/// chars from `[A-Za-z0-9_.-]`. Conservative on purpose — ids travel
/// as wire argument values and as metric label values.
pub fn valid_design_id(id: &str) -> bool {
    !id.is_empty()
        && id.len() <= MAX_DESIGN_ID
        && id
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'_' | b'.' | b'-'))
}

/// One design's slot in the table: its session, its journal, and the
/// accounting the eviction policy reads.
pub(crate) struct DesignSlot {
    pub(crate) id: String,
    pub(crate) session: RwLock<Session>,
    /// Locked only while the slot's write lock is already held (or
    /// being recovered) — same discipline as the single-session
    /// daemon, so the pair never deadlocks.
    pub(crate) journal: Mutex<Journal>,
    /// Whether the session currently holds the design (false after
    /// eviction; the journal is then the only copy).
    pub(crate) resident: AtomicBool,
    /// Logical-clock tick of the last routed request — the LRU key.
    last_used: AtomicU64,
    /// Approximate resident footprint after the last write request.
    bytes: AtomicUsize,
}

impl DesignSlot {
    fn new(id: &str, session: Session) -> DesignSlot {
        let bytes = session.approx_resident_bytes();
        DesignSlot {
            id: id.to_owned(),
            session: RwLock::new(session),
            journal: Mutex::new(Journal::new()),
            resident: AtomicBool::new(true),
            last_used: AtomicU64::new(0),
            bytes: AtomicUsize::new(bytes),
        }
    }

    pub(crate) fn bytes(&self) -> usize {
        self.bytes.load(Ordering::Acquire)
    }
}

/// The keyed session table plus the bounds it is kept inside.
pub(crate) struct Fleet {
    slots: Mutex<HashMap<String, Arc<DesignSlot>>>,
    /// Logical clock driving LRU ordering (wall time would tie under
    /// load and is banned from deterministic tests anyway).
    clock: AtomicU64,
    max_designs: usize,
    /// 0 = unlimited.
    mem_budget: usize,
    metrics: Arc<Metrics>,
    library: Library,
    faults: FaultPlan,
}

impl Fleet {
    /// A fleet with the default design already open.
    pub(crate) fn new(
        library: Library,
        metrics: Arc<Metrics>,
        faults: FaultPlan,
        max_designs: usize,
        mem_budget: usize,
    ) -> Fleet {
        let fleet = Fleet {
            slots: Mutex::new(HashMap::new()),
            clock: AtomicU64::new(0),
            max_designs: max_designs.max(1),
            mem_budget,
            metrics,
            library,
            faults,
        };
        fleet.insert_slot(DEFAULT_DESIGN);
        fleet
    }

    /// A fresh empty session wired to the fleet's shared metrics and
    /// fault plan — what `open` installs and what eviction leaves
    /// behind.
    pub(crate) fn fresh_session(&self) -> Session {
        let mut session = Session::with_faults(self.library.clone(), self.faults.clone());
        session.set_metrics(Arc::clone(&self.metrics));
        session
    }

    fn insert_slot(&self, id: &str) -> Arc<DesignSlot> {
        let mut slots = lock(&self.slots);
        if let Some(existing) = slots.get(id) {
            // Lost a create race; the winner's slot is the slot.
            return Arc::clone(existing);
        }
        let slot = Arc::new(DesignSlot::new(id, self.fresh_session()));
        self.touch(&slot);
        slots.insert(id.to_owned(), Arc::clone(&slot));
        self.metrics.sessions_live.add(1);
        self.metrics.session_bytes.add(slot.bytes() as i64);
        slot
    }

    /// Looks a slot up without bumping its LRU tick — replication
    /// traffic must not keep a cold design looking hot.
    pub(crate) fn peek(&self, id: &str) -> Option<Arc<DesignSlot>> {
        lock(&self.slots).get(id).map(Arc::clone)
    }

    /// The slot for `id`, created empty if absent — the standby sync
    /// loop mirroring a design it has not seen before.
    pub(crate) fn ensure(&self, id: &str) -> Arc<DesignSlot> {
        if let Some(slot) = self.peek(id) {
            return slot;
        }
        self.insert_slot(id)
    }

    /// Drops a design outright (the standby pruning a design its
    /// primary closed). No-op when absent.
    pub(crate) fn remove(&self, id: &str) {
        if let Some(slot) = lock(&self.slots).remove(id) {
            if slot.resident.swap(false, Ordering::AcqRel) {
                self.metrics.sessions_live.sub(1);
                self.metrics.session_bytes.sub(slot.bytes() as i64);
            }
        }
    }

    /// Resolves the slot a request routes to, bumping its LRU tick.
    /// Unknown non-default ids earn `error code=unknown-design`; the
    /// default design is created on demand so it can never be missing.
    pub(crate) fn route(&self, id: &str) -> Result<Arc<DesignSlot>, Frame> {
        if let Some(slot) = lock(&self.slots).get(id) {
            self.touch(slot);
            return Ok(Arc::clone(slot));
        }
        if id == DEFAULT_DESIGN {
            return Ok(self.insert_slot(DEFAULT_DESIGN));
        }
        Err(err(
            "unknown-design",
            format!("no open design `{}` (open it first)", display_id(id)),
        ))
    }

    /// Every open design, sorted by id (the `designs` verb and the
    /// replication source both want a deterministic order).
    pub(crate) fn snapshot(&self) -> Vec<Arc<DesignSlot>> {
        let mut slots: Vec<_> = lock(&self.slots).values().map(Arc::clone).collect();
        slots.sort_by(|a, b| a.id.cmp(&b.id));
        slots
    }

    fn touch(&self, slot: &DesignSlot) {
        let tick = self.clock.fetch_add(1, Ordering::AcqRel) + 1;
        slot.last_used.store(tick, Ordering::Release);
    }

    /// Handles the fleet-management verbs (`open`, `close`,
    /// `designs`). The caller has already counted the request.
    pub(crate) fn manage(&self, req: &Frame) -> Frame {
        match req.verb.as_str() {
            "open" => self.open(req),
            "close" => self.close(req),
            "designs" => self.designs(),
            _ => unreachable!("gated by the transport router"),
        }
    }

    fn open(&self, req: &Frame) -> Frame {
        let Some(id) = req.get("design") else {
            return err("usage", "open needs design=ID");
        };
        if !valid_design_id(id) {
            return err(
                "usage",
                format!(
                    "bad design id `{}` (want 1..={MAX_DESIGN_ID} chars of [A-Za-z0-9_.-])",
                    display_id(id)
                ),
            );
        }
        {
            let slots = lock(&self.slots);
            if let Some(slot) = slots.get(id) {
                self.touch(slot);
                return Frame::new("ok").arg("design", id).arg("created", 0);
            }
            if slots.len() >= FLEET_MAX_DESIGNS {
                return err(
                    "limit",
                    format!("the fleet is capped at {FLEET_MAX_DESIGNS} open designs"),
                );
            }
        }
        self.insert_slot(id);
        self.enforce_budget();
        Frame::new("ok").arg("design", id).arg("created", 1)
    }

    fn close(&self, req: &Frame) -> Frame {
        let Some(id) = req.get("design") else {
            return err("usage", "close needs design=ID");
        };
        if id == DEFAULT_DESIGN {
            return err("usage", "the default design cannot be closed");
        }
        let Some(slot) = lock(&self.slots).remove(id) else {
            return err(
                "unknown-design",
                format!("no open design `{}`", display_id(id)),
            );
        };
        if slot.resident.swap(false, Ordering::AcqRel) {
            self.metrics.sessions_live.sub(1);
            self.metrics.session_bytes.sub(slot.bytes() as i64);
        }
        // In-flight requests holding the Arc finish against the
        // detached slot; new requests no longer route to it.
        Frame::new("ok").arg("design", id)
    }

    fn designs(&self) -> Frame {
        let slots = self.snapshot();
        let mut live = 0usize;
        let mut body = String::new();
        for slot in &slots {
            let resident = slot.resident.load(Ordering::Acquire);
            live += usize::from(resident);
            let journal = lock(&slot.journal);
            let fp = match journal.fingerprint() {
                Some(fp) => format!("{fp:016x}"),
                None => "-".to_owned(),
            };
            body.push_str(&format!(
                "{} resident={} bytes={} journal={} epoch={} fp={}\n",
                slot.id,
                u8::from(resident),
                slot.bytes(),
                journal.len(),
                journal.epoch(),
                fp
            ));
        }
        Frame::new("ok")
            .arg("count", slots.len())
            .arg("live", live)
            .with_payload(body)
    }

    /// Re-reads a slot's footprint after a write request and brings
    /// the fleet back inside its bounds. Called with no slot locks
    /// held.
    pub(crate) fn settle(&self, slot: &DesignSlot) {
        if let Ok(session) = slot.session.try_read() {
            if slot.resident.load(Ordering::Acquire) {
                let now = session.approx_resident_bytes();
                let before = slot.bytes.swap(now, Ordering::AcqRel);
                self.metrics.session_bytes.add(now as i64 - before as i64);
            }
        }
        self.enforce_budget();
    }

    fn over_budget(&self) -> bool {
        let slots = lock(&self.slots);
        let resident = slots
            .values()
            .filter(|s| s.resident.load(Ordering::Acquire));
        let (count, bytes) = resident.fold((0usize, 0usize), |(c, b), s| (c + 1, b + s.bytes()));
        count > self.max_designs || (self.mem_budget > 0 && bytes > self.mem_budget)
    }

    /// Evicts least-recently-used resident designs until the fleet is
    /// back inside `max_designs` and `mem_budget`. A slot whose write
    /// lock is held (a request in flight) is skipped this round — it
    /// is by definition not the least recently *used* for long.
    pub(crate) fn enforce_budget(&self) {
        while self.over_budget() {
            let mut candidates: Vec<Arc<DesignSlot>> = lock(&self.slots)
                .values()
                .filter(|s| s.resident.load(Ordering::Acquire))
                .map(Arc::clone)
                .collect();
            candidates.sort_by_key(|s| s.last_used.load(Ordering::Acquire));
            let mut evicted_one = false;
            for slot in candidates {
                if self.evict(&slot) {
                    evicted_one = true;
                    break;
                }
            }
            if !evicted_one {
                return; // everything evictable is locked or gone
            }
        }
    }

    /// Drops one design's session, keeping its journal. Returns false
    /// when the slot is busy (write lock held) or already evicted.
    fn evict(&self, slot: &DesignSlot) -> bool {
        let Ok(mut session) = slot.session.try_write() else {
            return false;
        };
        if !slot.resident.load(Ordering::Acquire) {
            return false;
        }
        *session = self.fresh_session();
        slot.resident.store(false, Ordering::Release);
        let before = slot.bytes.swap(0, Ordering::AcqRel);
        self.metrics.session_bytes.sub(before as i64);
        self.metrics.sessions_live.sub(1);
        self.metrics.evictions.inc();
        true
    }

    /// Rebuilds an evicted slot's session from its journal. The
    /// caller holds the slot's write lock and the journal lock;
    /// replay verifies the rebuilt fingerprint, so a reloaded design
    /// is provably the one that was evicted. On replay failure the
    /// session stays empty (the error will surface on the request
    /// itself, e.g. as `no-design`).
    pub(crate) fn reload(&self, slot: &DesignSlot, session: &mut Session, journal: &Journal) {
        if slot.resident.load(Ordering::Acquire) {
            return;
        }
        if let Ok(mut rebuilt) = journal.replay(self.library.clone(), None) {
            rebuilt.set_faults(self.faults.clone());
            rebuilt.set_metrics(Arc::clone(&self.metrics));
            *session = rebuilt;
        }
        slot.resident.store(true, Ordering::Release);
        let bytes = session.approx_resident_bytes();
        let before = slot.bytes.swap(bytes, Ordering::AcqRel);
        self.metrics.session_bytes.add(bytes as i64 - before as i64);
        self.metrics.sessions_live.add(1);
    }
}
