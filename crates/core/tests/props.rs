//! Property-based tests of the analyzer's core invariants, on designs
//! with exact (load-independent) delays.

mod common;

use common::{exact_lib, Builder};
use hb_clock::ClockSet;
use hb_units::{Time, Transition};
use hummingbird::{AnalysisOptions, Analyzer, EdgeSpec, LatchModel, Spec};
use proptest::prelude::*;

/// `in -> DEL… -> FF(ck)` with the given chain and a given period; the
/// capture budget is exactly one period.
fn chain_design(delays: &[i64], period_ns: i64) -> (Builder, ClockSet, Spec) {
    let lib = exact_lib(delays);
    let mut b = Builder::new(&lib);
    let input = b.input("in");
    let ck = b.input("ck");
    let q = b.output("q");
    let d = b.net("d");
    b.delay_chain(input, d, delays);
    b.inst("FF", &[("D", d), ("C", ck), ("Q", q)]);
    let mut clocks = ClockSet::new();
    clocks
        .add_clock(
            "ck",
            Time::from_ns(period_ns),
            Time::ZERO,
            Time::from_ns(period_ns / 2),
        )
        .unwrap();
    let spec = Spec::new()
        .clock_port("ck", "ck")
        .input_arrival("in", EdgeSpec::new("ck", Transition::Rise), Time::ZERO);
    (b, clocks, spec)
}

/// Two-phase single-latch borrowing fixture with arbitrary stage delays.
fn latch_design(
    d_a: i64,
    d_b: i64,
    lead2: i64,
    width2: i64,
    period: i64,
) -> (Builder, ClockSet, Spec) {
    let lib = exact_lib(&[d_a, d_b]);
    let mut b = Builder::new(&lib);
    let input = b.input("in");
    let phi1 = b.input("phi1");
    let phi2 = b.input("phi2");
    let q = b.output("q");
    let mid = b.net("mid");
    let lat_q = b.net("lat_q");
    let ff_d = b.net("ff_d");
    b.delay_chain(input, mid, &[d_a]);
    b.inst("LAT", &[("D", mid), ("C", phi2), ("Q", lat_q)]);
    b.delay_chain(lat_q, ff_d, &[d_b]);
    b.inst("FF", &[("D", ff_d), ("C", phi1), ("Q", q)]);
    let mut clocks = ClockSet::new();
    clocks
        .add_clock(
            "phi1",
            Time::from_ns(period),
            Time::ZERO,
            Time::from_ns(period * 2 / 5),
        )
        .unwrap();
    clocks
        .add_clock(
            "phi2",
            Time::from_ns(period),
            Time::from_ns(lead2),
            Time::from_ns(lead2 + width2),
        )
        .unwrap();
    let spec = Spec::new()
        .clock_port("phi1", "phi1")
        .clock_port("phi2", "phi2")
        .input_arrival("in", EdgeSpec::new("phi1", Transition::Rise), Time::ZERO);
    (b, clocks, spec)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The worst slack of a pure chain is exactly `period − Σ delays` —
    /// the analyzer's arithmetic is closed-form on simple designs.
    #[test]
    fn chain_slack_is_closed_form(
        delays in prop::collection::vec(1i64..20, 1..6),
        period_ns in 10i64..200,
    ) {
        let (b, clocks, spec) = chain_design(&delays, period_ns);
        let lib = exact_lib(&delays);
        let report = Analyzer::new(&b.design, b.module, &lib, &clocks, spec)
            .unwrap()
            .analyze();
        let expected = Time::from_ns(period_ns - delays.iter().sum::<i64>());
        prop_assert_eq!(report.worst_slack(), expected);
        prop_assert_eq!(report.ok(), expected > Time::ZERO);
    }

    /// Analysis is deterministic.
    #[test]
    fn analysis_is_deterministic(
        d_a in 1i64..60, d_b in 1i64..60,
        lead2 in 45i64..55, width2 in 10i64..40,
    ) {
        let (b, clocks, spec) = latch_design(d_a, d_b, lead2, width2, 100);
        let lib = exact_lib(&[d_a, d_b]);
        let r1 = Analyzer::new(&b.design, b.module, &lib, &clocks, spec.clone())
            .unwrap()
            .analyze();
        let r2 = Analyzer::new(&b.design, b.module, &lib, &clocks, spec)
            .unwrap()
            .analyze();
        prop_assert_eq!(r1.worst_slack(), r2.worst_slack());
        prop_assert_eq!(r1.ok(), r2.ok());
    }

    /// Whenever the edge-triggered baseline accepts a latch design, the
    /// transparent analysis does too (the proposition's feasible-set
    /// containment).
    #[test]
    fn transparent_subsumes_edge_triggered(
        d_a in 1i64..90, d_b in 1i64..90,
        lead2 in 42i64..58, width2 in 8i64..40,
    ) {
        let (b, clocks, spec) = latch_design(d_a, d_b, lead2, width2, 100);
        let lib = exact_lib(&[d_a, d_b]);
        let transparent = Analyzer::new(&b.design, b.module, &lib, &clocks, spec.clone())
            .unwrap()
            .analyze()
            .ok();
        let edge = Analyzer::with_options(
            &b.design, b.module, &lib, &clocks, spec,
            AnalysisOptions { latch_model: LatchModel::EdgeTriggered, ..AnalysisOptions::default() },
        )
        .unwrap()
        .analyze()
        .ok();
        prop_assert!(!edge || transparent, "edge ok but transparent not (dA={d_a} dB={d_b})");
    }

    /// The transparent verdict matches the closed-form feasibility of the
    /// single-latch system: there must exist an assertion time
    /// `t ∈ [lead2, lead2+width2]` with `d_a ≤ t` and `t + d_b ≤ period`,
    /// with strict inequalities for a strictly positive verdict.
    #[test]
    fn borrowing_matches_closed_form_feasibility(
        d_a in 1i64..99, d_b in 1i64..99,
        lead2 in 40i64..60, width2 in 10i64..39,
    ) {
        let (b, clocks, spec) = latch_design(d_a, d_b, lead2, width2, 100);
        let lib = exact_lib(&[d_a, d_b]);
        let report = Analyzer::new(&b.design, b.module, &lib, &clocks, spec)
            .unwrap()
            .analyze();
        // Feasible window for the latch assertion time t:
        //   t >= lead2 (window start), t >= d_a (data arrival),
        //   t <= lead2 + width2 (window end), t + d_b <= 100 (capture).
        let lo = lead2.max(d_a);
        let hi = (lead2 + width2).min(100 - d_b);
        // Strictly feasible (slack > 0 achievable) iff lo < hi.
        prop_assert_eq!(
            report.ok(),
            lo < hi,
            "dA={} dB={} window=[{}..{}] verdict={}",
            d_a, d_b, lo, hi, report.ok()
        );
    }

    /// Scaling every waveform and the period together can only help a
    /// fixed netlist: verdicts are monotone in the scale factor.
    #[test]
    fn proportional_period_scaling_is_monotone(
        delays in prop::collection::vec(1i64..15, 1..5),
        base in 8i64..40,
    ) {
        let lib = exact_lib(&delays);
        let mut last_ok = false;
        for scale in [1i64, 2, 4] {
            let (b, clocks, spec) = chain_design(&delays, base * scale);
            let report = Analyzer::new(&b.design, b.module, &lib, &clocks, spec)
                .unwrap()
                .analyze();
            prop_assert!(!last_ok || report.ok(), "ok at {}x but not {}x", scale / 2, scale);
            last_ok = report.ok();
        }
    }
}
