//! A persistent timing-analysis daemon for hummingbird.
//!
//! The original Hummingbird lived inside a synthesis loop and
//! round-tripped the whole design through the OCT database on every
//! redesign iteration; every run paid full preparation from cold
//! state. This crate keeps the analyzed state *resident* instead: a
//! long-running process owns the design, the library binding and —
//! crucially — the content-addressed
//! [`SlackCache`](hummingbird::SlackCache), so an engineering-change
//! edit pays only for the cluster shards it actually dirtied.
//!
//! Three layers:
//!
//! * [`Session`] — transport-agnostic request handling over one loaded
//!   design ([`Frame`](hb_io::Frame) in, frame out): `load`,
//!   `analyze`, `slack`, `worst-paths`, `constraints`, `eco`, `dump`,
//!   `stats`, `metrics`, `shutdown`;
//! * [`Server`] — a thread-per-connection TCP daemon multiplexing a
//!   keyed *fleet* of sessions (`design=ID` routing, `open`/`close`/
//!   `designs` management, LRU eviction under `--max-designs` /
//!   `--mem-budget`, journal-streaming replication to a
//!   `--standby-of` warm standby), each session behind its own
//!   `RwLock` with per-request lock deadlines, socket frame/idle
//!   deadlines, overload shedding, and [`serve_stream`] — the same
//!   routing over arbitrary byte streams (`hummingbird serve
//!   --stdio`);
//! * [`Journal`] — a write-ahead record of state-changing requests;
//!   when a request panics (or a panic poisons the session lock), the
//!   transports rebuild the session by replaying it, warm through the
//!   salvaged slack cache;
//! * [`Client`] — a small blocking request/reply client, used by
//!   `hummingbird query`, the benches, and the loopback smoke test.
//!
//! The wire protocol is the newline-delimited framed codec of
//! [`hb_io::proto`]. See DESIGN.md §6 for the frame grammar, the
//! session lifecycle, and the ECO invalidation flow.
//!
//! # Examples
//!
//! ```
//! use hb_cells::sc89;
//! use hb_io::Frame;
//! use hb_server::Session;
//!
//! let mut session = Session::new(sc89());
//! let text = std::fs::read_to_string("../../designs/two_phase_pipeline.hum").unwrap();
//! let reply = session.handle(&Frame::new("load").with_payload(text));
//! assert_eq!(reply.verb, "ok");
//! let reply = session.handle(&Frame::new("analyze"));
//! assert_eq!(reply.verb, "ok");
//! // An ECO re-analysis through the resident cache reports its reuse.
//! let reply = session.handle(
//!     &Frame::new("eco").arg("op", "resize").arg("inst", "a0").arg("steps", 1),
//! );
//! assert_eq!(reply.verb, "ok");
//! assert!(reply.get("items_reused").is_some());
//! ```

mod fleet;
mod journal;
mod metrics;
mod net;
mod reactor;
mod replica;
mod session;
mod sys;

pub use fleet::{valid_design_id, DEFAULT_DESIGN, FLEET_MAX_DESIGNS, MAX_DESIGN_ID};
pub use journal::Journal;
pub use metrics::Metrics;
pub use net::{serve_stream, standby_backoff_schedule, Client, Server, ServerOptions};
pub use replica::MAX_STREAM_BYTES;
pub use session::{
    directives_from_spec, spec_from_directives, Session, MAX_BATCH, MAX_LOAD_BYTES, MAX_WORST_PATHS,
};
pub use sys::raise_nofile_limit;

#[cfg(test)]
mod tests {
    use super::*;
    use hb_cells::sc89;
    use hb_io::Frame;

    const PIPE: &str = "\
design two_phase
module top
  port in din phi1 phi2
  port out dout
  inst a0 BUF_X1 A=din Y=a0y
  inst a1 XOR2_X1 A=a0y B=din Y=a1y
  inst mid DLATCH D=a1y G=phi2 Q=midq
  inst b0 INV_X1 A=midq Y=b0y
  inst cap DFF D=b0y CK=phi1 Q=dout
end
top top
clock phi1 period 12ns rise 0ns fall 5ns
clock phi2 period 12ns rise 6ns fall 11ns
clockport phi1 phi1
clockport phi2 phi2
arrive din phi1 rise 0.5ns
";

    #[test]
    fn session_lifecycle() {
        let mut s = Session::new(sc89());
        // Queries before a load are structured errors, not panics.
        let reply = s.handle(&Frame::new("slack").arg("node", "x"));
        assert_eq!(reply.verb, "error");
        assert_eq!(reply.get("code"), Some("no-design"));

        let reply = s.handle(&Frame::new("load").with_payload(PIPE));
        assert_eq!(reply.verb, "ok", "{:?}", reply.payload);
        assert_eq!(reply.get("clocks"), Some("2"));

        let reply = s.handle(&Frame::new("analyze"));
        assert_eq!(reply.verb, "ok");
        assert!(reply.get("worst").is_some());

        // A net query answers from the settled analysis (read-only).
        let reply = s
            .handle_readonly(&Frame::new("slack").arg("node", "a1y"))
            .expect("analysis is fresh");
        assert_eq!(reply.verb, "ok");
        assert_eq!(reply.get("kind"), Some("net"));

        // A terminal query aggregates the instance's replicas.
        let reply = s.handle(&Frame::new("slack").arg("node", "mid"));
        assert_eq!(reply.get("kind"), Some("terminal"));

        // The ECO dirties the analysis: read-only queries step aside...
        let reply = s.handle(
            &Frame::new("eco")
                .arg("op", "resize")
                .arg("inst", "b0")
                .arg("steps", 1),
        );
        assert_eq!(reply.verb, "ok", "{:?}", reply.payload);
        assert_eq!(reply.get("desc"), Some("b0:INV_X1->INV_X2"));

        // ...and a failed ECO leaves the design untouched.
        let reply = s.handle(&Frame::new("eco").arg("op", "resize").arg("inst", "nosuch"));
        assert_eq!(reply.get("code"), Some("eco"));

        let reply = s.handle(&Frame::new("stats"));
        assert_eq!(reply.get("ecos"), Some("1"));
        assert_eq!(reply.get("design"), Some("two_phase"));

        let reply = s.handle(&Frame::new("nonsense"));
        assert_eq!(reply.get("code"), Some("unknown-verb"));
    }

    /// Duplicate `node=` keys in a batched slack query collapse to
    /// their first occurrence: one payload line per distinct node,
    /// `count` reporting distinct nodes, `worst` unchanged by the
    /// repetition.
    #[test]
    fn slack_batch_dedupes_repeated_nodes() {
        let mut s = Session::new(sc89());
        assert_eq!(s.handle(&Frame::new("load").with_payload(PIPE)).verb, "ok");
        assert_eq!(s.handle(&Frame::new("analyze")).verb, "ok");

        let single = s.handle(&Frame::new("slack").arg("node", "a1y"));
        assert_eq!(single.verb, "ok");

        let doubled = s.handle(
            &Frame::new("slack")
                .arg("node", "a1y")
                .arg("node", "a1y")
                .arg("node", "a1y"),
        );
        assert_eq!(doubled.verb, "ok");
        assert_eq!(doubled.get("count"), Some("1"));
        assert_eq!(doubled.get("worst"), single.get("slack"));
        let want = format!("a1y net {}\n", single.get("slack").unwrap());
        assert_eq!(
            doubled.payload.as_deref(),
            Some(want.as_str()),
            "one line per distinct node"
        );

        // Mixed batch: distinct nodes keep first-occurrence order.
        let mixed = s.handle(
            &Frame::new("slack")
                .arg("node", "a1y")
                .arg("node", "a0y")
                .arg("node", "a1y"),
        );
        assert_eq!(mixed.get("count"), Some("2"));
        let lines: Vec<&str> = mixed.payload.as_deref().unwrap().lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("a1y "), "{:?}", lines[0]);
        assert!(lines[1].starts_with("a0y "), "{:?}", lines[1]);
    }

    #[test]
    fn stdio_loop_round_trips() {
        let mut wire = Vec::new();
        for f in [
            Frame::new("hello"),
            Frame::new("load").with_payload(PIPE),
            Frame::new("analyze"),
            Frame::new("shutdown"),
        ] {
            wire.extend_from_slice(f.encode().as_bytes());
        }
        let mut out = Vec::new();
        serve_stream(sc89(), std::io::Cursor::new(wire), &mut out).unwrap();
        let mut replies = hb_io::FrameReader::new(std::io::Cursor::new(out));
        let mut verbs = Vec::new();
        while let Some(f) = replies.read_frame().unwrap() {
            verbs.push(f.verb);
        }
        assert_eq!(verbs, ["ok", "ok", "ok", "ok"]);
    }
}
