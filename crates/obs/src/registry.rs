//! The metric registry and its Prometheus-style text exposition.
//!
//! A [`Registry`] is a named collection of metrics. Registration takes
//! a mutex once per `(name, labels)` pair and hands back an atomic
//! handle; every subsequent update through that handle is lock-free.
//! Registration is idempotent — asking again for the same name and
//! labels returns a handle to the same underlying atomics — so call
//! sites do not need to coordinate who registers first.
//!
//! Rendering is deterministic: metrics sort by name, then by label
//! values, so two snapshots of identical counters are byte-identical
//! and the exposition can be diffed.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Mutex, MutexGuard, PoisonError};

use crate::metrics::{bucket_bound, Counter, Gauge, Histogram};

/// What a registered metric is, for exposition typing.
#[derive(Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

struct Entry {
    help: &'static str,
    metric: Metric,
}

/// A metric's identity: its name plus its sorted label pairs.
type Key = (&'static str, Vec<(String, String)>);

/// A named collection of metrics with deterministic exposition.
///
/// Most code uses the process-wide [`global()`](crate::global)
/// registry; subsystems that need isolated counters (one per server
/// session, say) own their own instance and render both.
#[derive(Default)]
pub struct Registry {
    entries: Mutex<BTreeMap<Key, Entry>>,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn sorted_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
        .collect();
    out.sort();
    out
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter `name` with no labels, registering it on first use.
    pub fn counter(&self, name: &'static str, help: &'static str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// The counter `name` with the given labels, registering it on
    /// first use. Label order does not matter.
    ///
    /// # Panics
    ///
    /// Panics if `name` was already registered as a different metric
    /// type — one name, one type, as the exposition format requires.
    pub fn counter_with(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Counter {
        let key = (name, sorted_labels(labels));
        let mut entries = lock(&self.entries);
        let entry = entries.entry(key).or_insert_with(|| Entry {
            help,
            metric: Metric::Counter(Counter::new()),
        });
        match &entry.metric {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric `{name}` is already registered with another type"),
        }
    }

    /// The gauge `name` with no labels, registering it on first use.
    pub fn gauge(&self, name: &'static str, help: &'static str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// The gauge `name` with the given labels, registering it on first
    /// use.
    ///
    /// # Panics
    ///
    /// Panics on a type conflict, as for [`Registry::counter_with`].
    pub fn gauge_with(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Gauge {
        let key = (name, sorted_labels(labels));
        let mut entries = lock(&self.entries);
        let entry = entries.entry(key).or_insert_with(|| Entry {
            help,
            metric: Metric::Gauge(Gauge::new()),
        });
        match &entry.metric {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric `{name}` is already registered with another type"),
        }
    }

    /// The histogram `name` with no labels, registering it on first
    /// use.
    pub fn histogram(&self, name: &'static str, help: &'static str) -> Histogram {
        self.histogram_with(name, help, &[])
    }

    /// The histogram `name` with the given labels, registering it on
    /// first use.
    ///
    /// # Panics
    ///
    /// Panics on a type conflict, as for [`Registry::counter_with`].
    pub fn histogram_with(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Histogram {
        let key = (name, sorted_labels(labels));
        let mut entries = lock(&self.entries);
        let entry = entries.entry(key).or_insert_with(|| Entry {
            help,
            metric: Metric::Histogram(Histogram::new()),
        });
        match &entry.metric {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric `{name}` is already registered with another type"),
        }
    }

    /// Renders every registered metric as Prometheus-style text
    /// exposition: `# HELP` / `# TYPE` headers per name, then one
    /// `name{labels} value` sample line per series. Histograms render
    /// cumulative `_bucket{le="..."}` lines over their non-empty
    /// power-of-two buckets plus `_sum` and `_count`. Output is
    /// deterministic (sorted by name, then labels).
    pub fn render(&self) -> String {
        let entries = lock(&self.entries);
        let mut out = String::new();
        let mut last_name: Option<&str> = None;
        for ((name, labels), entry) in entries.iter() {
            if last_name != Some(name) {
                let kind = match entry.metric {
                    Metric::Counter(_) => "counter",
                    Metric::Gauge(_) => "gauge",
                    Metric::Histogram(_) => "histogram",
                };
                let _ = writeln!(out, "# HELP {name} {}", entry.help);
                let _ = writeln!(out, "# TYPE {name} {kind}");
                last_name = Some(name);
            }
            match &entry.metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "{name}{} {}", render_labels(labels, &[]), c.get());
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "{name}{} {}", render_labels(labels, &[]), g.get());
                    let _ = writeln!(
                        out,
                        "{name}{} {}",
                        render_labels(labels, &[("watermark", "peak")]),
                        g.peak()
                    );
                }
                Metric::Histogram(h) => {
                    let buckets = h.buckets();
                    let mut cumulative = 0u64;
                    for (i, &n) in buckets.iter().enumerate() {
                        if n == 0 {
                            continue;
                        }
                        cumulative += n;
                        let le = bucket_bound(i).to_string();
                        let _ = writeln!(
                            out,
                            "{name}_bucket{} {cumulative}",
                            render_labels(labels, &[("le", &le)])
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{name}_bucket{} {cumulative}",
                        render_labels(labels, &[("le", "+Inf")])
                    );
                    let _ = writeln!(out, "{name}_sum{} {}", render_labels(labels, &[]), h.sum());
                    let _ = writeln!(
                        out,
                        "{name}_count{} {cumulative}",
                        render_labels(labels, &[])
                    );
                }
            }
        }
        out
    }
}

/// `{k="v",...}` with `extra` pairs appended, or the empty string for
/// no labels at all.
fn render_labels(labels: &[(String, String)], extra: &[(&str, &str)]) -> String {
    if labels.is_empty() && extra.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .chain(extra.iter().copied())
    {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{k}=\"{}\"",
            v.replace('\\', "\\\\").replace('"', "\\\"")
        );
    }
    out.push('}');
    out
}

/// Validates that `text` is well-formed exposition as produced by
/// [`Registry::render`] and returns the parsed `(series, value)`
/// samples, where `series` is the full name-plus-labels string.
/// Used by tests and the CI metrics smoke to assert the daemon's
/// `metrics` verb emits something a scraper could ingest.
///
/// # Errors
///
/// Returns a description of the first malformed line.
pub fn parse_exposition(text: &str) -> Result<Vec<(String, f64)>, String> {
    let mut samples = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no value separator: {line:?}", lineno + 1))?;
        let name_end = series.find('{').unwrap_or(series.len());
        let name = &series[..name_end];
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
            || name.starts_with(|c: char| c.is_ascii_digit())
        {
            return Err(format!("line {}: bad metric name {name:?}", lineno + 1));
        }
        let labels = &series[name_end..];
        if !labels.is_empty() && (!labels.starts_with('{') || !labels.ends_with('}')) {
            return Err(format!("line {}: bad label block {labels:?}", lineno + 1));
        }
        let value: f64 = value
            .parse()
            .map_err(|_| format!("line {}: bad value {value:?}", lineno + 1))?;
        samples.push((series.to_owned(), value));
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_and_shared() {
        let r = Registry::new();
        let a = r.counter_with("req_total", "requests", &[("verb", "slack")]);
        let b = r.counter_with("req_total", "requests", &[("verb", "slack")]);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3, "same series, same atomics");
        let other = r.counter_with("req_total", "requests", &[("verb", "eco")]);
        assert_eq!(other.get(), 0, "different labels, different series");
    }

    #[test]
    #[should_panic(expected = "another type")]
    fn type_conflicts_are_refused() {
        let r = Registry::new();
        let _ = r.counter("thing", "");
        let _ = r.gauge("thing", "");
    }

    #[test]
    fn render_is_deterministic_and_parses() {
        let r = Registry::new();
        r.counter_with("hb_requests_total", "served", &[("verb", "slack")])
            .add(41);
        r.counter_with("hb_requests_total", "served", &[("verb", "eco")])
            .inc();
        r.gauge("hb_conns", "live connections").add(3);
        let h = r.histogram("hb_wait_nanoseconds", "lock wait");
        h.record(5);
        h.record(900);

        let text = r.render();
        assert_eq!(text, r.render(), "rendering is stable");
        assert!(text.contains("# TYPE hb_requests_total counter"));
        assert!(text.contains("hb_requests_total{verb=\"eco\"} 1"));
        assert!(text.contains("hb_requests_total{verb=\"slack\"} 41"));
        assert!(text.contains("hb_conns{watermark=\"peak\"} 3"));
        assert!(text.contains("hb_wait_nanoseconds_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("hb_wait_nanoseconds_sum 905"));

        let samples = parse_exposition(&text).expect("well-formed");
        let total: f64 = samples
            .iter()
            .filter(|(s, _)| s.starts_with("hb_requests_total"))
            .map(|(_, v)| v)
            .sum();
        assert_eq!(total, 42.0);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_exposition("no_value_here\n").is_err());
        assert!(parse_exposition("1bad_name 3\n").is_err());
        assert!(parse_exposition("name{unclosed 3\n").is_err());
        assert!(parse_exposition("name NaNopes\n").is_err());
        assert!(parse_exposition("# comment only\n\n").unwrap().is_empty());
    }
}
