//! The newline-delimited framed protocol of the `hummingbird serve`
//! daemon.
//!
//! A frame is one header line plus an optional length-prefixed payload:
//!
//! ```text
//! frame   = header LF [ payload LF ]
//! header  = verb *( SP key "=" value ) [ SP "payload=" length ]
//! payload = <length bytes of UTF-8, NUL-free>
//! ```
//!
//! The header is plain text with whitespace-free tokens, so a session
//! can be driven by hand (`printf 'stats\n' | nc ...`); anything that
//! needs spaces or newlines — designs, reports, error messages — rides
//! in the payload, whose byte length is declared up front. Because the
//! payload is length-prefixed, the reader never scans it, and because
//! the header is line-delimited, a reader that rejects a malformed
//! header is resynchronised at the next newline and the connection
//! survives.
//!
//! [`FrameReader`] reads from any [`BufRead`], so short reads from a
//! TCP stream (frames split across segments) reassemble naturally.
//! Hard limits on header and payload size make a hostile peer's worst
//! case a bounded allocation followed by a structured error.

use std::fmt;
use std::io::{self, BufRead, Write};
use std::time::{Duration, Instant};

/// Maximum accepted header-line length in bytes (including newline).
pub const MAX_HEADER: usize = 64 * 1024;
/// Maximum accepted declared payload length in bytes.
pub const MAX_PAYLOAD: usize = 16 * 1024 * 1024;

/// One protocol frame: a verb, `key=value` arguments, and an optional
/// payload for content that does not fit a whitespace-free token.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Frame {
    /// The request or response verb (`load`, `ok`, `error`, ...).
    pub verb: String,
    /// Arguments in transmission order; keys may repeat.
    pub args: Vec<(String, String)>,
    /// Optional free-form body (a design, a report, an error message).
    pub payload: Option<String>,
}

impl Frame {
    /// A frame with the given verb and no arguments.
    pub fn new(verb: impl Into<String>) -> Frame {
        Frame {
            verb: verb.into(),
            args: Vec::new(),
            payload: None,
        }
    }

    /// Appends a `key=value` argument (builder style).
    pub fn arg(mut self, key: impl Into<String>, value: impl fmt::Display) -> Frame {
        self.args.push((key.into(), value.to_string()));
        self
    }

    /// Sets the payload (builder style).
    pub fn with_payload(mut self, payload: impl Into<String>) -> Frame {
        self.payload = Some(payload.into());
        self
    }

    /// The first value of `key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.args
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Every value of `key`, in order (for repeatable arguments).
    pub fn get_all<'a>(&'a self, key: &'a str) -> impl Iterator<Item = &'a str> {
        self.args
            .iter()
            .filter(move |(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Encodes the frame as wire bytes.
    ///
    /// # Panics
    ///
    /// Panics if the verb or any argument token contains whitespace,
    /// `=` in a key, or a NUL — such content belongs in the payload.
    /// (All tokens produced by this codebase are identifiers or
    /// numbers; the assertion catches misrouted content in tests.)
    pub fn encode(&self) -> String {
        assert!(token_ok(&self.verb), "verb is not a bare token");
        let mut out = String::with_capacity(64);
        out.push_str(&self.verb);
        for (k, v) in &self.args {
            assert!(
                token_ok(k) && !k.contains('=') && token_ok(v),
                "argument `{k}` is not a bare token pair"
            );
            out.push(' ');
            out.push_str(k);
            out.push('=');
            out.push_str(v);
        }
        if let Some(p) = &self.payload {
            assert!(!p.contains('\0'), "payload contains NUL");
            out.push_str(&format!(" payload={}", p.len()));
            out.push('\n');
            out.push_str(p);
        }
        out.push('\n');
        out
    }
}

fn token_ok(s: &str) -> bool {
    !s.is_empty() && !s.contains(|c: char| c.is_whitespace() || c == '\0')
}

/// Why a frame could not be decoded.
#[derive(Debug)]
pub enum ProtoError {
    /// The underlying stream failed.
    Io(io::Error),
    /// The header line is syntactically invalid. The stream is still
    /// aligned on a frame boundary; reading may continue.
    Malformed(String),
    /// A declared size exceeds the protocol limit. The remaining
    /// stream position is undefined; the connection should close.
    Oversized {
        /// What overflowed (`header` or `payload`).
        what: &'static str,
        /// The enforced limit in bytes.
        limit: usize,
    },
    /// The frame embeds a NUL byte.
    Nul,
    /// The frame is not valid UTF-8.
    Encoding,
    /// The stream ended inside a frame.
    Truncated,
}

impl ProtoError {
    /// Whether the stream is still aligned on a frame boundary after
    /// this error, i.e. the reader may keep serving the connection.
    pub fn recoverable(&self) -> bool {
        matches!(self, ProtoError::Malformed(_) | ProtoError::Nul)
    }
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "protocol stream error: {e}"),
            ProtoError::Malformed(msg) => write!(f, "malformed frame: {msg}"),
            ProtoError::Oversized { what, limit } => {
                write!(f, "frame {what} exceeds {limit} bytes")
            }
            ProtoError::Nul => write!(f, "frame contains a NUL byte"),
            ProtoError::Encoding => write!(f, "frame is not valid UTF-8"),
            ProtoError::Truncated => write!(f, "stream ended inside a frame"),
        }
    }
}

impl std::error::Error for ProtoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ProtoError {
    fn from(e: io::Error) -> ProtoError {
        ProtoError::Io(e)
    }
}

/// Writes one frame and flushes the stream.
///
/// # Errors
///
/// Propagates the underlying write or flush failure. On a TCP stream
/// whose peer vanished this surfaces as an ordinary [`io::Error`]
/// (Rust ignores `SIGPIPE`), which a server treats as a disconnect.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> io::Result<()> {
    w.write_all(frame.encode().as_bytes())?;
    w.flush()
}

/// Parses one already-delimited, UTF-8-validated, NUL-free header line
/// into a frame plus its declared payload length. Shared by the
/// blocking [`FrameReader`] and the nonblocking [`FrameDecoder`] so the
/// two classify malformed input identically.
fn parse_header_str(line: &str) -> Result<(Frame, Option<usize>), ProtoError> {
    let mut tokens = line.split_whitespace();
    let verb = tokens
        .next()
        .ok_or_else(|| ProtoError::Malformed("empty header line".into()))?
        .to_owned();
    let mut frame = Frame::new(verb);
    let mut payload_len: Option<usize> = None;
    for token in tokens {
        let (key, value) = token
            .split_once('=')
            .ok_or_else(|| ProtoError::Malformed(format!("argument `{token}` lacks `=`")))?;
        if key.is_empty() {
            return Err(ProtoError::Malformed(format!(
                "argument `{token}` lacks a key"
            )));
        }
        if key == "payload" {
            let n: usize = value.parse().map_err(|_| {
                ProtoError::Malformed(format!("payload length `{value}` is not a number"))
            })?;
            if n > MAX_PAYLOAD {
                return Err(ProtoError::Oversized {
                    what: "payload",
                    limit: MAX_PAYLOAD,
                });
            }
            payload_len = Some(n);
        } else {
            frame.args.push((key.to_owned(), value.to_owned()));
        }
    }
    Ok((frame, payload_len))
}

/// Finishes a frame from its raw payload body (`need` declared bytes
/// plus the terminating newline), applying the same checks in the same
/// order as the blocking reader: terminator, NUL, UTF-8.
fn finish_payload(frame: Frame, mut body: Vec<u8>) -> Result<Frame, ProtoError> {
    let newline = body.pop().expect("total > 0");
    if newline != b'\n' {
        return Err(ProtoError::Malformed(
            "payload is not newline-terminated at its declared length".into(),
        ));
    }
    if body.contains(&b'\0') {
        return Err(ProtoError::Nul);
    }
    let payload = String::from_utf8(body).map_err(|_| ProtoError::Encoding)?;
    let mut frame = frame;
    frame.payload = Some(payload);
    Ok(frame)
}

/// Decode progress carried across [`FrameReader::read_frame`] calls
/// when a read times out mid-frame.
enum Pending {
    /// Between frames: nothing buffered, a timeout here is pure idle.
    Idle,
    /// Mid-header: the bytes accumulated before the stream stalled.
    Header(Vec<u8>),
    /// Mid-payload: the decoded header plus the body bytes read so
    /// far (of `need` + 1, counting the terminating newline).
    Payload {
        frame: Frame,
        need: usize,
        body: Vec<u8>,
    },
}

/// An incremental frame decoder over any buffered byte stream.
///
/// The decoder is *resumable*: [`io::ErrorKind::Interrupted`] is
/// retried internally, and [`io::ErrorKind::WouldBlock`] /
/// [`io::ErrorKind::TimedOut`] (a socket read deadline expiring)
/// surface as [`ProtoError::Io`] **without losing partial progress** —
/// the next `read_frame` call picks up the half-read frame where the
/// timeout left it. [`FrameReader::mid_frame`] tells a server whether
/// a timeout struck inside a frame (a stalled or slow-dripping peer)
/// or between frames (an idle one), which is the difference between a
/// slowloris cut-off and an idle-reaper decision.
///
/// With [`FrameReader::set_frame_timeout`] armed, the decoder also
/// bounds how long any *single frame* may take to arrive, measured
/// from its first byte: a peer dripping bytes just fast enough to keep
/// the socket's read timeout from ever firing still gets cut off. The
/// expiry surfaces as a resumable [`io::ErrorKind::TimedOut`] error;
/// [`FrameReader::frame_age`] tells the caller how stale the partial
/// frame is.
pub struct FrameReader<R> {
    inner: R,
    pending: Pending,
    /// When the current frame's first byte arrived; `None` between
    /// frames.
    started: Option<Instant>,
    /// Per-frame arrival budget; checked between reads, so enforcement
    /// granularity is one buffered chunk.
    limit: Option<Duration>,
    /// The header accumulation buffer, reclaimed after every decoded
    /// frame so steady-state decoding allocates nothing per request.
    scratch: Vec<u8>,
}

impl<R: BufRead> FrameReader<R> {
    /// Wraps a buffered stream.
    pub fn new(inner: R) -> FrameReader<R> {
        FrameReader {
            inner,
            pending: Pending::Idle,
            started: None,
            limit: None,
            scratch: Vec::new(),
        }
    }

    /// Bytes of reusable decode-buffer capacity this reader holds
    /// (header scratch plus any stashed partial frame) — the
    /// per-connection memory a transport reports to its gauges.
    pub fn buffer_capacity(&self) -> usize {
        self.scratch.capacity()
            + match &self.pending {
                Pending::Idle => 0,
                Pending::Header(buf) => buf.capacity(),
                Pending::Payload { body, .. } => body.capacity(),
            }
    }

    /// Unwraps the underlying stream.
    pub fn into_inner(self) -> R {
        self.inner
    }

    /// Whether the decoder holds a partially read frame — i.e. the
    /// last [`ProtoError::Io`] timeout struck mid-frame rather than
    /// between frames.
    pub fn mid_frame(&self) -> bool {
        !matches!(self.pending, Pending::Idle)
    }

    /// Bounds how long one frame may take to arrive, first byte to
    /// last. `None` (the default) waits forever. Expiry surfaces as a
    /// resumable [`io::ErrorKind::TimedOut`] [`ProtoError::Io`].
    pub fn set_frame_timeout(&mut self, limit: Option<Duration>) {
        self.limit = limit;
    }

    /// How long ago the current partial frame's first byte arrived;
    /// `None` between frames. The slowloris clock.
    pub fn frame_age(&self) -> Option<Duration> {
        self.started.map(|s| s.elapsed())
    }

    /// Whether the current frame has outlived the configured budget.
    fn frame_overdue(&self) -> bool {
        match (self.limit, self.started) {
            (Some(limit), Some(started)) => started.elapsed() >= limit,
            _ => false,
        }
    }

    fn overdue_error() -> ProtoError {
        ProtoError::Io(io::Error::new(
            io::ErrorKind::TimedOut,
            "frame deadline exceeded",
        ))
    }

    /// Reads the next frame; `Ok(None)` on a clean end-of-stream (the
    /// previous frame was complete).
    ///
    /// # Errors
    ///
    /// See [`ProtoError`]; [`ProtoError::recoverable`] distinguishes
    /// errors that leave the stream aligned from those that do not.
    /// A `WouldBlock`/`TimedOut` [`ProtoError::Io`] is resumable:
    /// call `read_frame` again once the stream is readable.
    pub fn read_frame(&mut self) -> Result<Option<Frame>, ProtoError> {
        let result = self.read_frame_inner();
        // The frame clock only survives a resumable mid-frame timeout;
        // anything that realigns the stream restarts it.
        if matches!(self.pending, Pending::Idle) {
            self.started = None;
        }
        result
    }

    fn read_frame_inner(&mut self) -> Result<Option<Frame>, ProtoError> {
        let (frame, need, body) = match std::mem::replace(&mut self.pending, Pending::Idle) {
            Pending::Payload { frame, need, body } => (frame, need, body),
            Pending::Header(partial) => match self.parse_header(partial)? {
                None => return Ok(None),
                Some((frame, None)) => return Ok(Some(frame)),
                Some((frame, Some(need))) => (frame, need, Vec::new()),
            },
            Pending::Idle => {
                // Steady-state path: accumulate the header into the
                // reclaimed scratch buffer instead of a fresh Vec.
                let mut buf = std::mem::take(&mut self.scratch);
                buf.clear();
                match self.parse_header(buf)? {
                    None => return Ok(None),
                    Some((frame, None)) => return Ok(Some(frame)),
                    Some((frame, Some(need))) => (frame, need, Vec::new()),
                }
            }
        };
        let payload = self.read_payload(frame, need, body)?;
        Ok(Some(payload))
    }

    /// Reads and parses one header line (resuming from `partial`).
    /// Returns the frame plus its declared payload length, if any.
    fn parse_header(
        &mut self,
        partial: Vec<u8>,
    ) -> Result<Option<(Frame, Option<usize>)>, ProtoError> {
        let buf = match self.read_header_line(partial)? {
            Some(buf) => buf,
            None => return Ok(None),
        };
        let line = std::str::from_utf8(&buf).map_err(|_| ProtoError::Encoding)?;
        if line.contains('\0') {
            return Err(ProtoError::Nul);
        }
        let parsed = parse_header_str(line)?;
        // The accumulation buffer is done with; reclaim it so the next
        // frame decodes without a fresh allocation.
        self.scratch = buf;
        Ok(Some(parsed))
    }

    /// Reads one newline-terminated header line, enforcing
    /// [`MAX_HEADER`]. Returns `None` on immediate end-of-stream.
    /// On a resumable timeout, progress is stashed in `self.pending`.
    fn read_header_line(&mut self, mut buf: Vec<u8>) -> Result<Option<Vec<u8>>, ProtoError> {
        loop {
            let chunk = match self.inner.fill_buf() {
                Ok(chunk) => chunk,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) if is_timeout(&e) => {
                    if !buf.is_empty() {
                        self.pending = Pending::Header(buf);
                    }
                    return Err(ProtoError::Io(e));
                }
                Err(e) => return Err(ProtoError::Io(e)),
            };
            if chunk.is_empty() {
                return if buf.is_empty() {
                    Ok(None)
                } else {
                    Err(ProtoError::Truncated)
                };
            }
            if self.started.is_none() {
                self.started = Some(Instant::now());
            }
            match chunk.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    if buf.len() + pos > MAX_HEADER {
                        return Err(ProtoError::Oversized {
                            what: "header",
                            limit: MAX_HEADER,
                        });
                    }
                    buf.extend_from_slice(&chunk[..pos]);
                    self.inner.consume(pos + 1);
                    break;
                }
                None => {
                    let len = chunk.len();
                    if buf.len() + len > MAX_HEADER {
                        return Err(ProtoError::Oversized {
                            what: "header",
                            limit: MAX_HEADER,
                        });
                    }
                    buf.extend_from_slice(chunk);
                    self.inner.consume(len);
                    // A drip arriving faster than the socket timeout
                    // never errors above; bound it here.
                    if self.frame_overdue() {
                        self.pending = Pending::Header(buf);
                        return Err(Self::overdue_error());
                    }
                }
            }
        }
        Ok(Some(buf))
    }

    /// Reads the remaining payload bytes (`need` + newline, resuming
    /// from `body`) and finishes the frame. On a resumable timeout,
    /// progress is stashed in `self.pending`.
    fn read_payload(
        &mut self,
        frame: Frame,
        need: usize,
        mut body: Vec<u8>,
    ) -> Result<Frame, ProtoError> {
        let total = need + 1; // the declared bytes plus the newline
        while body.len() < total {
            let chunk = match self.inner.fill_buf() {
                Ok(chunk) => chunk,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) if is_timeout(&e) => {
                    self.pending = Pending::Payload { frame, need, body };
                    return Err(ProtoError::Io(e));
                }
                Err(e) => return Err(ProtoError::Io(e)),
            };
            if chunk.is_empty() {
                return Err(ProtoError::Truncated);
            }
            let take = chunk.len().min(total - body.len());
            body.extend_from_slice(&chunk[..take]);
            self.inner.consume(take);
            if body.len() < total && self.frame_overdue() {
                self.pending = Pending::Payload { frame, need, body };
                return Err(Self::overdue_error());
            }
        }
        finish_payload(frame, body)
    }
}

/// How much decoded-but-unparsed input a [`FrameDecoder`] will hold
/// before compacting its buffer in place. Purely a memory/throughput
/// trade; correctness is insensitive to it.
const DECODER_COMPACT: usize = 8 * 1024;

/// An incremental *push* decoder for the frame protocol — the
/// nonblocking twin of [`FrameReader`], built for readiness-driven
/// event loops.
///
/// Bytes go in via [`FrameDecoder::feed`] whenever the transport has
/// them; [`FrameDecoder::next_frame`] hands back every complete frame
/// already buffered (`Ok(None)` meaning *need more bytes*, never
/// end-of-stream — a push decoder cannot observe EOF; call
/// [`FrameDecoder::finish`] when the transport reports it). Pipelined
/// peers are the design case: one `feed` may carry many back-to-back
/// frames, and `next_frame` drains them without further I/O.
///
/// Error classification matches [`FrameReader`] exactly (the reactor
/// parity suite depends on it): [`ProtoError::recoverable`] errors
/// leave the buffer aligned on the next frame boundary and decoding
/// may continue; anything else means the connection should close.
///
/// The internal buffer is reused for the life of the decoder and
/// compacted in place, so a connection's steady-state decode cost is
/// zero allocations; [`FrameDecoder::buffer_capacity`] reports the
/// retained bytes for per-connection memory accounting.
#[derive(Default)]
pub struct FrameDecoder {
    /// Fed-but-unconsumed bytes; `start..` is live.
    buf: Vec<u8>,
    start: usize,
    /// A decoded header whose declared payload has not fully arrived.
    awaiting: Option<(Frame, usize)>,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Appends transport bytes to the decode buffer.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes fed but not yet decoded into frames.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start + self.awaiting.as_ref().map_or(0, |(_, need)| *need)
    }

    /// Retained buffer capacity — the decoder's share of a
    /// connection's bounded memory.
    pub fn buffer_capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Whether a partially arrived frame is pending — the
    /// distinction between a slow-dripping peer (cut it off at the
    /// frame deadline) and an idle one (reap it at the idle timeout).
    pub fn mid_frame(&self) -> bool {
        self.awaiting.is_some() || self.start < self.buf.len()
    }

    /// Declares end-of-stream.
    ///
    /// # Errors
    ///
    /// [`ProtoError::Truncated`] when the stream ended inside a frame.
    pub fn finish(&self) -> Result<(), ProtoError> {
        if self.mid_frame() {
            Err(ProtoError::Truncated)
        } else {
            Ok(())
        }
    }

    /// Drops the `..start` dead prefix once it dominates the buffer,
    /// and resets cheaply when everything was consumed.
    fn compact(&mut self) {
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        } else if self.start >= DECODER_COMPACT {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }

    /// Decodes the next complete frame out of the buffer; `Ok(None)`
    /// means more bytes are needed.
    ///
    /// # Errors
    ///
    /// See [`ProtoError`]; recoverable errors ([`ProtoError::Nul`],
    /// [`ProtoError::Malformed`]) consume the offending frame and
    /// leave the buffer aligned, so decoding may continue.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, ProtoError> {
        if let Some((frame, need)) = self.awaiting.take() {
            match self.take_payload(need)? {
                Some(body) => return finish_payload(frame, body).map(Some),
                None => {
                    self.awaiting = Some((frame, need));
                    return Ok(None);
                }
            }
        }
        let line_end = match self.buf[self.start..].iter().position(|&b| b == b'\n') {
            Some(pos) => {
                if pos > MAX_HEADER {
                    return Err(ProtoError::Oversized {
                        what: "header",
                        limit: MAX_HEADER,
                    });
                }
                self.start + pos
            }
            None => {
                if self.buf.len() - self.start > MAX_HEADER {
                    return Err(ProtoError::Oversized {
                        what: "header",
                        limit: MAX_HEADER,
                    });
                }
                self.compact();
                return Ok(None);
            }
        };
        // Consume the header line (and its newline) before validating:
        // a recoverable rejection must leave the buffer aligned on the
        // next line, exactly like the blocking reader's resync rule.
        let header_start = self.start;
        self.start = line_end + 1;
        let parsed = {
            let raw = &self.buf[header_start..line_end];
            let line = std::str::from_utf8(raw).map_err(|_| ProtoError::Encoding)?;
            if line.contains('\0') {
                return Err(ProtoError::Nul);
            }
            parse_header_str(line)?
        };
        match parsed {
            (frame, None) => {
                self.compact();
                Ok(Some(frame))
            }
            (frame, Some(need)) => match self.take_payload(need)? {
                Some(body) => finish_payload(frame, body).map(Some),
                None => {
                    self.awaiting = Some((frame, need));
                    Ok(None)
                }
            },
        }
    }

    /// Takes `need` payload bytes plus the terminating newline off the
    /// buffer, or `None` when they have not all arrived yet.
    #[allow(clippy::unnecessary_wraps)]
    fn take_payload(&mut self, need: usize) -> Result<Option<Vec<u8>>, ProtoError> {
        let total = need + 1;
        if self.buf.len() - self.start < total {
            self.compact();
            return Ok(None);
        }
        let body = self.buf[self.start..self.start + total].to_vec();
        self.start += total;
        self.compact();
        Ok(Some(body))
    }
}

/// Whether an I/O error is a read-deadline expiry (`WouldBlock` on
/// Unix, `TimedOut` on Windows) rather than a real transport failure.
fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn decode_all(bytes: &[u8]) -> Result<Vec<Frame>, ProtoError> {
        let mut reader = FrameReader::new(Cursor::new(bytes.to_vec()));
        let mut frames = Vec::new();
        while let Some(f) = reader.read_frame()? {
            frames.push(f);
        }
        Ok(frames)
    }

    #[test]
    fn round_trip_basics() {
        let frames = [
            Frame::new("stats"),
            Frame::new("slack").arg("node", "ff3").arg("pass", 2),
            Frame::new("load")
                .arg("format", "hum")
                .with_payload("design d\nmodule top\nend\ntop top\n"),
            Frame::new("ok").with_payload(""),
        ];
        let mut wire = Vec::new();
        for f in &frames {
            write_frame(&mut wire, f).unwrap();
        }
        let decoded = decode_all(&wire).unwrap();
        assert_eq!(decoded.as_slice(), frames.as_slice());
    }

    #[test]
    fn header_errors_are_classified() {
        assert!(matches!(
            decode_all(b"slack node\n"),
            Err(ProtoError::Malformed(_))
        ));
        assert!(matches!(
            decode_all(b"load payload=abc\n"),
            Err(ProtoError::Malformed(_))
        ));
        assert!(matches!(
            decode_all(b"load payload=99999999999\n"),
            Err(ProtoError::Oversized {
                what: "payload",
                ..
            })
        ));
        assert!(matches!(decode_all(b"st\0ats\n"), Err(ProtoError::Nul)));
        assert!(matches!(decode_all(b"stats"), Err(ProtoError::Truncated)));
        assert!(matches!(
            decode_all(b"load payload=100\nshort\n"),
            Err(ProtoError::Truncated)
        ));
        assert!(matches!(
            decode_all(b"load payload=2\nabcdef\n"),
            Err(ProtoError::Malformed(_))
        ));
    }

    #[test]
    fn malformed_header_leaves_stream_aligned() {
        let mut reader = FrameReader::new(Cursor::new(b"bad arg\nstats\n".to_vec()));
        let err = reader.read_frame().unwrap_err();
        assert!(err.recoverable());
        let next = reader.read_frame().unwrap().unwrap();
        assert_eq!(next.verb, "stats");
        assert!(reader.read_frame().unwrap().is_none());
    }

    /// A reader that yields `WouldBlock` between every real byte —
    /// the worst-case behaviour of a socket with a read deadline.
    struct Choppy {
        data: Vec<u8>,
        at: usize,
        block_next: bool,
    }

    impl std::io::Read for Choppy {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            self.block_next = !self.block_next;
            if self.block_next {
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "not ready"));
            }
            if self.at == self.data.len() {
                return Ok(0);
            }
            buf[0] = self.data[self.at];
            self.at += 1;
            Ok(1)
        }
    }

    #[test]
    fn timeouts_mid_frame_are_resumable() {
        let frames = [
            Frame::new("slack").arg("node", "ff3"),
            Frame::new("load").with_payload("design d\nmodule top\nend\n"),
        ];
        let mut wire = Vec::new();
        for f in &frames {
            write_frame(&mut wire, f).unwrap();
        }
        let choppy = Choppy {
            data: wire,
            at: 0,
            block_next: false,
        };
        // A 1-byte buffer makes every fill_buf hit the raw reader, so
        // WouldBlock strikes mid-header and mid-payload repeatedly.
        let mut reader = FrameReader::new(io::BufReader::with_capacity(1, choppy));
        let mut decoded = Vec::new();
        let mut timeouts = 0usize;
        loop {
            match reader.read_frame() {
                Ok(Some(f)) => decoded.push(f),
                Ok(None) => break,
                Err(ProtoError::Io(e)) if e.kind() == io::ErrorKind::WouldBlock => {
                    timeouts += 1;
                    assert!(timeouts < 10_000, "no forward progress");
                }
                Err(e) => panic!("unexpected decode error: {e}"),
            }
        }
        assert_eq!(decoded.as_slice(), frames.as_slice());
        assert!(timeouts > 0, "the choppy reader must have blocked");
        assert!(!reader.mid_frame(), "all frames completed");
    }

    #[test]
    fn mid_frame_reports_partial_progress() {
        let choppy = Choppy {
            data: b"sla".to_vec(), // header fragment, never terminated
            at: 0,
            block_next: false,
        };
        let mut reader = FrameReader::new(io::BufReader::with_capacity(1, choppy));
        assert!(!reader.mid_frame());
        loop {
            match reader.read_frame() {
                Err(ProtoError::Io(e)) if e.kind() == io::ErrorKind::WouldBlock => {
                    if reader.mid_frame() {
                        break; // partial header observed and retained
                    }
                }
                Err(ProtoError::Truncated) => panic!("EOF before WouldBlock observation"),
                other => panic!("unexpected result: {other:?}"),
            }
        }
        assert!(reader.mid_frame());
    }

    #[test]
    fn oversized_header_is_rejected() {
        let mut wire = vec![b'a'; MAX_HEADER + 10];
        wire.push(b'\n');
        assert!(matches!(
            decode_all(&wire),
            Err(ProtoError::Oversized { what: "header", .. })
        ));
    }

    /// Runs the push decoder over `bytes` delivered in one feed.
    fn push_decode_all(bytes: &[u8]) -> Result<Vec<Frame>, ProtoError> {
        let mut dec = FrameDecoder::new();
        dec.feed(bytes);
        let mut frames = Vec::new();
        while let Some(f) = dec.next_frame()? {
            frames.push(f);
        }
        dec.finish()?;
        Ok(frames)
    }

    #[test]
    fn decoder_round_trip_matches_reader() {
        let frames = [
            Frame::new("stats"),
            Frame::new("slack").arg("node", "ff3").arg("node", "ff4"),
            Frame::new("load")
                .arg("format", "hum")
                .with_payload("design d\nmodule top\nend\ntop top\n"),
            Frame::new("ok").with_payload(""),
        ];
        let mut wire = Vec::new();
        for f in &frames {
            write_frame(&mut wire, f).unwrap();
        }
        assert_eq!(
            push_decode_all(&wire).unwrap().as_slice(),
            frames.as_slice()
        );
    }

    #[test]
    fn decoder_pipelined_frames_in_one_feed() {
        // The pipelining case: many back-to-back frames land in one
        // feed and next_frame drains them all without further input.
        let mut wire = Vec::new();
        for i in 0..100 {
            write_frame(&mut wire, &Frame::new("slack").arg("node", format!("n{i}"))).unwrap();
        }
        let mut dec = FrameDecoder::new();
        dec.feed(&wire);
        let mut seen = 0;
        while let Some(f) = dec.next_frame().unwrap() {
            assert_eq!(f.get("node").unwrap(), format!("n{seen}"));
            seen += 1;
        }
        assert_eq!(seen, 100);
        assert!(!dec.mid_frame());
        dec.finish().unwrap();
    }

    #[test]
    fn decoder_needs_more_mid_frame() {
        let wire = Frame::new("load").with_payload("abc").encode();
        let bytes = wire.as_bytes();
        let mut dec = FrameDecoder::new();
        // Every proper prefix must report NeedMore and mid-frame.
        for cut in 1..bytes.len() {
            let mut d = FrameDecoder::new();
            d.feed(&bytes[..cut]);
            assert!(d.next_frame().unwrap().is_none(), "cut at {cut}");
            assert!(d.mid_frame(), "cut at {cut}");
            assert!(matches!(d.finish(), Err(ProtoError::Truncated)));
        }
        dec.feed(bytes);
        assert_eq!(dec.next_frame().unwrap().unwrap().payload.unwrap(), "abc");
    }

    #[test]
    fn decoder_classifies_errors_like_reader() {
        // Each hostile input must produce the same variant from both
        // codecs — the reactor's error replies depend on it.
        let cases: &[&[u8]] = &[
            b"slack node\n",
            b"load payload=abc\n",
            b"load payload=99999999999\n",
            b"st\0ats\n",
            b"load payload=2\nabcdef\n",
            b"\xff\xfe bad utf8\n",
            b"load payload=2\nab\0\n",
        ];
        for wire in cases {
            let blocking = decode_all(wire).unwrap_err();
            let pushed = push_decode_all(wire).unwrap_err();
            assert_eq!(
                std::mem::discriminant(&blocking),
                std::mem::discriminant(&pushed),
                "divergent classification for {:?}: {blocking:?} vs {pushed:?}",
                String::from_utf8_lossy(wire)
            );
        }
    }

    #[test]
    fn decoder_recoverable_error_leaves_buffer_aligned() {
        let mut dec = FrameDecoder::new();
        dec.feed(b"bad arg\nstats\n");
        let err = dec.next_frame().unwrap_err();
        assert!(err.recoverable());
        assert_eq!(dec.next_frame().unwrap().unwrap().verb, "stats");
        assert!(dec.next_frame().unwrap().is_none());
        dec.finish().unwrap();
    }

    #[test]
    fn decoder_rejects_unterminated_oversized_header() {
        // A hostile peer streaming an endless header with no newline
        // must be rejected as soon as the buffer passes the limit,
        // not buffered forever.
        let mut dec = FrameDecoder::new();
        dec.feed(&vec![b'a'; MAX_HEADER + 10]);
        assert!(matches!(
            dec.next_frame(),
            Err(ProtoError::Oversized { what: "header", .. })
        ));
    }

    #[test]
    fn decoder_compacts_and_bounds_memory() {
        let wire = Frame::new("slack").arg("node", "n1").encode();
        let mut dec = FrameDecoder::new();
        for _ in 0..10_000 {
            dec.feed(wire.as_bytes());
            assert!(dec.next_frame().unwrap().is_some());
        }
        assert_eq!(dec.buffered(), 0);
        // Fully drained between frames: the buffer resets in place and
        // capacity stays at one frame's worth, not 10k frames'.
        assert!(
            dec.buffer_capacity() < 4 * 1024,
            "decoder retained {} bytes",
            dec.buffer_capacity()
        );
    }
}
