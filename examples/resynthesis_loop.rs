//! The analysis/redesign loop (Algorithm 3): analyze, generate
//! ready/required constraints (Algorithm 2), speed up the violating
//! logic, repeat until all paths are fast enough.
//!
//! ```sh
//! cargo run -p hb-bench --example resynthesis_loop
//! ```

use hb_cells::sc89;
use hb_resynth::{optimize, ResynthOptions};
use hb_workloads::{random_pipeline, PipelineParams};
use hummingbird::Analyzer;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lib = sc89();
    // An area-optimised (all X1) pipeline on an aggressive clock.
    let mut w = random_pipeline(
        &lib,
        PipelineParams {
            stages: 3,
            width: 8,
            gates_per_stage: 120,
            transparent: false,
            period_ns: 7,
            seed: 23,
            imbalance_pct: 0,
        },
    );

    let before = {
        let analyzer = Analyzer::new(&w.design, w.module, &lib, &w.clocks, w.spec.clone())?;
        analyzer.analyze()
    };
    println!("initial design: worst slack {}", before.worst_slack());
    for path in before.slow_paths().iter().take(3) {
        println!(
            "  slow: {} (slack {}, {} steps)",
            path.endpoint,
            path.slack,
            path.steps.len()
        );
    }

    let outcome = optimize(
        &mut w.design,
        w.module,
        &lib,
        &w.clocks,
        &w.spec,
        ResynthOptions::default(),
    )?;
    println!(
        "\nredesign loop: {} iterations, {} resizes, {} isolation buffers",
        outcome.iterations, outcome.resizes, outcome.buffers
    );
    println!("worst slack per iteration:");
    for (i, s) in outcome.worst_slack_history.iter().enumerate() {
        println!("  iteration {i}: {s}");
    }
    println!("timing met: {}", outcome.met);

    let after = {
        let analyzer = Analyzer::new(&w.design, w.module, &lib, &w.clocks, w.spec.clone())?;
        analyzer.analyze()
    };
    println!("final worst slack: {}", after.worst_slack());
    assert!(
        after.worst_slack() >= before.worst_slack(),
        "the loop never makes timing worse"
    );
    Ok(())
}
